file(REMOVE_RECURSE
  "CMakeFiles/diy.dir/decomposer.cpp.o"
  "CMakeFiles/diy.dir/decomposer.cpp.o.d"
  "CMakeFiles/diy.dir/ghost.cpp.o"
  "CMakeFiles/diy.dir/ghost.cpp.o.d"
  "libdiy.a"
  "libdiy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
