
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diy/decomposer.cpp" "src/diy/CMakeFiles/diy.dir/decomposer.cpp.o" "gcc" "src/diy/CMakeFiles/diy.dir/decomposer.cpp.o.d"
  "/root/repo/src/diy/ghost.cpp" "src/diy/CMakeFiles/diy.dir/ghost.cpp.o" "gcc" "src/diy/CMakeFiles/diy.dir/ghost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simmpi/CMakeFiles/simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
