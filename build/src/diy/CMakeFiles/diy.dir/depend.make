# Empty dependencies file for diy.
# This may be replaced when dependencies are built.
