file(REMOVE_RECURSE
  "libdiy.a"
)
