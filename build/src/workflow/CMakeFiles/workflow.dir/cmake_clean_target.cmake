file(REMOVE_RECURSE
  "libworkflow.a"
)
