file(REMOVE_RECURSE
  "CMakeFiles/workflow.dir/config.cpp.o"
  "CMakeFiles/workflow.dir/config.cpp.o.d"
  "CMakeFiles/workflow.dir/workflow.cpp.o"
  "CMakeFiles/workflow.dir/workflow.cpp.o.d"
  "libworkflow.a"
  "libworkflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
