file(REMOVE_RECURSE
  "CMakeFiles/h5.dir/convert.cpp.o"
  "CMakeFiles/h5.dir/convert.cpp.o.d"
  "CMakeFiles/h5.dir/copy.cpp.o"
  "CMakeFiles/h5.dir/copy.cpp.o.d"
  "CMakeFiles/h5.dir/dataspace.cpp.o"
  "CMakeFiles/h5.dir/dataspace.cpp.o.d"
  "CMakeFiles/h5.dir/native_vol.cpp.o"
  "CMakeFiles/h5.dir/native_vol.cpp.o.d"
  "CMakeFiles/h5.dir/storage.cpp.o"
  "CMakeFiles/h5.dir/storage.cpp.o.d"
  "CMakeFiles/h5.dir/tree.cpp.o"
  "CMakeFiles/h5.dir/tree.cpp.o.d"
  "CMakeFiles/h5.dir/types.cpp.o"
  "CMakeFiles/h5.dir/types.cpp.o.d"
  "libh5.a"
  "libh5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
