file(REMOVE_RECURSE
  "libh5.a"
)
