
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/h5/convert.cpp" "src/h5/CMakeFiles/h5.dir/convert.cpp.o" "gcc" "src/h5/CMakeFiles/h5.dir/convert.cpp.o.d"
  "/root/repo/src/h5/copy.cpp" "src/h5/CMakeFiles/h5.dir/copy.cpp.o" "gcc" "src/h5/CMakeFiles/h5.dir/copy.cpp.o.d"
  "/root/repo/src/h5/dataspace.cpp" "src/h5/CMakeFiles/h5.dir/dataspace.cpp.o" "gcc" "src/h5/CMakeFiles/h5.dir/dataspace.cpp.o.d"
  "/root/repo/src/h5/native_vol.cpp" "src/h5/CMakeFiles/h5.dir/native_vol.cpp.o" "gcc" "src/h5/CMakeFiles/h5.dir/native_vol.cpp.o.d"
  "/root/repo/src/h5/storage.cpp" "src/h5/CMakeFiles/h5.dir/storage.cpp.o" "gcc" "src/h5/CMakeFiles/h5.dir/storage.cpp.o.d"
  "/root/repo/src/h5/tree.cpp" "src/h5/CMakeFiles/h5.dir/tree.cpp.o" "gcc" "src/h5/CMakeFiles/h5.dir/tree.cpp.o.d"
  "/root/repo/src/h5/types.cpp" "src/h5/CMakeFiles/h5.dir/types.cpp.o" "gcc" "src/h5/CMakeFiles/h5.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/diy/CMakeFiles/diy.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
