# Empty dependencies file for h5.
# This may be replaced when dependencies are built.
