file(REMOVE_RECURSE
  "CMakeFiles/baselines.dir/bredala.cpp.o"
  "CMakeFiles/baselines.dir/bredala.cpp.o.d"
  "CMakeFiles/baselines.dir/dataspaces.cpp.o"
  "CMakeFiles/baselines.dir/dataspaces.cpp.o.d"
  "CMakeFiles/baselines.dir/pure_mpi.cpp.o"
  "CMakeFiles/baselines.dir/pure_mpi.cpp.o.d"
  "libbaselines.a"
  "libbaselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
