
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bredala.cpp" "src/baselines/CMakeFiles/baselines.dir/bredala.cpp.o" "gcc" "src/baselines/CMakeFiles/baselines.dir/bredala.cpp.o.d"
  "/root/repo/src/baselines/dataspaces.cpp" "src/baselines/CMakeFiles/baselines.dir/dataspaces.cpp.o" "gcc" "src/baselines/CMakeFiles/baselines.dir/dataspaces.cpp.o.d"
  "/root/repo/src/baselines/pure_mpi.cpp" "src/baselines/CMakeFiles/baselines.dir/pure_mpi.cpp.o" "gcc" "src/baselines/CMakeFiles/baselines.dir/pure_mpi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/diy/CMakeFiles/diy.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
