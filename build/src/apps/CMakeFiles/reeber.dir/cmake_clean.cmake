file(REMOVE_RECURSE
  "CMakeFiles/reeber.dir/reeber/merge_tree.cpp.o"
  "CMakeFiles/reeber.dir/reeber/merge_tree.cpp.o.d"
  "CMakeFiles/reeber.dir/reeber/reeber.cpp.o"
  "CMakeFiles/reeber.dir/reeber/reeber.cpp.o.d"
  "libreeber.a"
  "libreeber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reeber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
