
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/reeber/merge_tree.cpp" "src/apps/CMakeFiles/reeber.dir/reeber/merge_tree.cpp.o" "gcc" "src/apps/CMakeFiles/reeber.dir/reeber/merge_tree.cpp.o.d"
  "/root/repo/src/apps/reeber/reeber.cpp" "src/apps/CMakeFiles/reeber.dir/reeber/reeber.cpp.o" "gcc" "src/apps/CMakeFiles/reeber.dir/reeber/reeber.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/h5/CMakeFiles/h5.dir/DependInfo.cmake"
  "/root/repo/build/src/diy/CMakeFiles/diy.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
