# Empty compiler generated dependencies file for reeber.
# This may be replaced when dependencies are built.
