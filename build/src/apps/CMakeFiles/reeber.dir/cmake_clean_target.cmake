file(REMOVE_RECURSE
  "libreeber.a"
)
