file(REMOVE_RECURSE
  "libnyx.a"
)
