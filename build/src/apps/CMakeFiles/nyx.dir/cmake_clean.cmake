file(REMOVE_RECURSE
  "CMakeFiles/nyx.dir/nyx/nyx.cpp.o"
  "CMakeFiles/nyx.dir/nyx/nyx.cpp.o.d"
  "CMakeFiles/nyx.dir/nyx/plotfile.cpp.o"
  "CMakeFiles/nyx.dir/nyx/plotfile.cpp.o.d"
  "libnyx.a"
  "libnyx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nyx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
