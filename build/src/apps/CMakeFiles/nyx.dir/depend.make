# Empty dependencies file for nyx.
# This may be replaced when dependencies are built.
