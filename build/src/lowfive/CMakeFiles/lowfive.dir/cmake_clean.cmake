file(REMOVE_RECURSE
  "CMakeFiles/lowfive.dir/config.cpp.o"
  "CMakeFiles/lowfive.dir/config.cpp.o.d"
  "CMakeFiles/lowfive.dir/dist_vol.cpp.o"
  "CMakeFiles/lowfive.dir/dist_vol.cpp.o.d"
  "CMakeFiles/lowfive.dir/metadata_vol.cpp.o"
  "CMakeFiles/lowfive.dir/metadata_vol.cpp.o.d"
  "liblowfive.a"
  "liblowfive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowfive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
