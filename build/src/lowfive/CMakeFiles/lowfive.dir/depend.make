# Empty dependencies file for lowfive.
# This may be replaced when dependencies are built.
