file(REMOVE_RECURSE
  "liblowfive.a"
)
