# Empty compiler generated dependencies file for test_metadata_vol.
# This may be replaced when dependencies are built.
