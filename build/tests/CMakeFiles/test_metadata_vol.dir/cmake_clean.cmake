file(REMOVE_RECURSE
  "CMakeFiles/test_metadata_vol.dir/test_metadata_vol.cpp.o"
  "CMakeFiles/test_metadata_vol.dir/test_metadata_vol.cpp.o.d"
  "test_metadata_vol"
  "test_metadata_vol.pdb"
  "test_metadata_vol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metadata_vol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
