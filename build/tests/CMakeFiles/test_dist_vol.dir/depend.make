# Empty dependencies file for test_dist_vol.
# This may be replaced when dependencies are built.
