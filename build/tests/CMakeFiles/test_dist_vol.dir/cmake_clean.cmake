file(REMOVE_RECURSE
  "CMakeFiles/test_dist_vol.dir/test_dist_vol.cpp.o"
  "CMakeFiles/test_dist_vol.dir/test_dist_vol.cpp.o.d"
  "test_dist_vol"
  "test_dist_vol.pdb"
  "test_dist_vol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_vol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
