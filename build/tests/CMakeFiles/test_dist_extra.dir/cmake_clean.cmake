file(REMOVE_RECURSE
  "CMakeFiles/test_dist_extra.dir/test_dist_extra.cpp.o"
  "CMakeFiles/test_dist_extra.dir/test_dist_extra.cpp.o.d"
  "test_dist_extra"
  "test_dist_extra.pdb"
  "test_dist_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
