file(REMOVE_RECURSE
  "CMakeFiles/test_diy.dir/test_diy.cpp.o"
  "CMakeFiles/test_diy.dir/test_diy.cpp.o.d"
  "test_diy"
  "test_diy.pdb"
  "test_diy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
