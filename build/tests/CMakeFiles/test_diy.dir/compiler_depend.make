# Empty compiler generated dependencies file for test_diy.
# This may be replaced when dependencies are built.
