file(REMOVE_RECURSE
  "CMakeFiles/test_dataspace.dir/test_dataspace.cpp.o"
  "CMakeFiles/test_dataspace.dir/test_dataspace.cpp.o.d"
  "test_dataspace"
  "test_dataspace.pdb"
  "test_dataspace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
