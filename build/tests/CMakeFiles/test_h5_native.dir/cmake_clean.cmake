file(REMOVE_RECURSE
  "CMakeFiles/test_h5_native.dir/test_h5_native.cpp.o"
  "CMakeFiles/test_h5_native.dir/test_h5_native.cpp.o.d"
  "test_h5_native"
  "test_h5_native.pdb"
  "test_h5_native[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_h5_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
