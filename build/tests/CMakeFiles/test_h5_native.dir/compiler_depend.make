# Empty compiler generated dependencies file for test_h5_native.
# This may be replaced when dependencies are built.
