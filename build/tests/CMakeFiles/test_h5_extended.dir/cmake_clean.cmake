file(REMOVE_RECURSE
  "CMakeFiles/test_h5_extended.dir/test_h5_extended.cpp.o"
  "CMakeFiles/test_h5_extended.dir/test_h5_extended.cpp.o.d"
  "test_h5_extended"
  "test_h5_extended.pdb"
  "test_h5_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_h5_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
