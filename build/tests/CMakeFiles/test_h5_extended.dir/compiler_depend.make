# Empty compiler generated dependencies file for test_h5_extended.
# This may be replaced when dependencies are built.
