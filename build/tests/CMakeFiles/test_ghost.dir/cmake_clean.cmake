file(REMOVE_RECURSE
  "CMakeFiles/test_ghost.dir/test_ghost.cpp.o"
  "CMakeFiles/test_ghost.dir/test_ghost.cpp.o.d"
  "test_ghost"
  "test_ghost.pdb"
  "test_ghost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ghost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
