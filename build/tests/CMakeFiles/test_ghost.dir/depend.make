# Empty dependencies file for test_ghost.
# This may be replaced when dependencies are built.
