file(REMOVE_RECURSE
  "CMakeFiles/test_format_robustness.dir/test_format_robustness.cpp.o"
  "CMakeFiles/test_format_robustness.dir/test_format_robustness.cpp.o.d"
  "test_format_robustness"
  "test_format_robustness.pdb"
  "test_format_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_format_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
