# Empty compiler generated dependencies file for test_format_robustness.
# This may be replaced when dependencies are built.
