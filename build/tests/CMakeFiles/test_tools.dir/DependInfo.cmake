
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tools.cpp" "tests/CMakeFiles/test_tools.dir/test_tools.cpp.o" "gcc" "tests/CMakeFiles/test_tools.dir/test_tools.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workflow/CMakeFiles/workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/lowfive/CMakeFiles/lowfive.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/nyx.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/reeber.dir/DependInfo.cmake"
  "/root/repo/build/src/h5/CMakeFiles/h5.dir/DependInfo.cmake"
  "/root/repo/build/src/diy/CMakeFiles/diy.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
