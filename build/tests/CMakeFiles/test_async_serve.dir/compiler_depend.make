# Empty compiler generated dependencies file for test_async_serve.
# This may be replaced when dependencies are built.
