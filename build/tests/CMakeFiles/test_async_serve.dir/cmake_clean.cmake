file(REMOVE_RECURSE
  "CMakeFiles/test_async_serve.dir/test_async_serve.cpp.o"
  "CMakeFiles/test_async_serve.dir/test_async_serve.cpp.o.d"
  "test_async_serve"
  "test_async_serve.pdb"
  "test_async_serve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_async_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
