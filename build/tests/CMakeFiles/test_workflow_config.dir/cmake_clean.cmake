file(REMOVE_RECURSE
  "CMakeFiles/test_workflow_config.dir/test_workflow_config.cpp.o"
  "CMakeFiles/test_workflow_config.dir/test_workflow_config.cpp.o.d"
  "test_workflow_config"
  "test_workflow_config.pdb"
  "test_workflow_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workflow_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
