# Empty compiler generated dependencies file for test_workflow_config.
# This may be replaced when dependencies are built.
