# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_simmpi[1]_include.cmake")
include("/root/repo/build/tests/test_diy[1]_include.cmake")
include("/root/repo/build/tests/test_dataspace[1]_include.cmake")
include("/root/repo/build/tests/test_h5_native[1]_include.cmake")
include("/root/repo/build/tests/test_metadata_vol[1]_include.cmake")
include("/root/repo/build/tests/test_dist_vol[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_workflow[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_dist_extra[1]_include.cmake")
include("/root/repo/build/tests/test_h5_extended[1]_include.cmake")
include("/root/repo/build/tests/test_async_serve[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
include("/root/repo/build/tests/test_ghost[1]_include.cmake")
include("/root/repo/build/tests/test_merge_tree[1]_include.cmake")
include("/root/repo/build/tests/test_convert[1]_include.cmake")
include("/root/repo/build/tests/test_copy[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
include("/root/repo/build/tests/test_format_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_workflow_config[1]_include.cmake")
