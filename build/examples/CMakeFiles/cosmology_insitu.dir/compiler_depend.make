# Empty compiler generated dependencies file for cosmology_insitu.
# This may be replaced when dependencies are built.
