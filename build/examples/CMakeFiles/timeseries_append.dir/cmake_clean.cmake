file(REMOVE_RECURSE
  "CMakeFiles/timeseries_append.dir/timeseries_append.cpp.o"
  "CMakeFiles/timeseries_append.dir/timeseries_append.cpp.o.d"
  "timeseries_append"
  "timeseries_append.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeseries_append.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
