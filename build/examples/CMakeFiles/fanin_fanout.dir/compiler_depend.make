# Empty compiler generated dependencies file for fanin_fanout.
# This may be replaced when dependencies are built.
