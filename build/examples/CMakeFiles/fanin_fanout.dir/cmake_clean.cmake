file(REMOVE_RECURSE
  "CMakeFiles/fanin_fanout.dir/fanin_fanout.cpp.o"
  "CMakeFiles/fanin_fanout.dir/fanin_fanout.cpp.o.d"
  "fanin_fanout"
  "fanin_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanin_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
