file(REMOVE_RECURSE
  "CMakeFiles/file_vs_memory.dir/file_vs_memory.cpp.o"
  "CMakeFiles/file_vs_memory.dir/file_vs_memory.cpp.o.d"
  "file_vs_memory"
  "file_vs_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_vs_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
