# Empty dependencies file for file_vs_memory.
# This may be replaced when dependencies are built.
