# Empty dependencies file for halo_catalog_pipeline.
# This may be replaced when dependencies are built.
