file(REMOVE_RECURSE
  "CMakeFiles/halo_catalog_pipeline.dir/halo_catalog_pipeline.cpp.o"
  "CMakeFiles/halo_catalog_pipeline.dir/halo_catalog_pipeline.cpp.o.d"
  "halo_catalog_pipeline"
  "halo_catalog_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_catalog_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
