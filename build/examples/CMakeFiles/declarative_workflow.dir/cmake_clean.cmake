file(REMOVE_RECURSE
  "CMakeFiles/declarative_workflow.dir/declarative_workflow.cpp.o"
  "CMakeFiles/declarative_workflow.dir/declarative_workflow.cpp.o.d"
  "declarative_workflow"
  "declarative_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/declarative_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
