# Empty compiler generated dependencies file for declarative_workflow.
# This may be replaced when dependencies are built.
