# Empty dependencies file for mh5ls.
# This may be replaced when dependencies are built.
