file(REMOVE_RECURSE
  "CMakeFiles/mh5ls.dir/mh5ls.cpp.o"
  "CMakeFiles/mh5ls.dir/mh5ls.cpp.o.d"
  "mh5ls"
  "mh5ls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mh5ls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
