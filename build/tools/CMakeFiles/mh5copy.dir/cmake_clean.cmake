file(REMOVE_RECURSE
  "CMakeFiles/mh5copy.dir/mh5copy.cpp.o"
  "CMakeFiles/mh5copy.dir/mh5copy.cpp.o.d"
  "mh5copy"
  "mh5copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mh5copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
