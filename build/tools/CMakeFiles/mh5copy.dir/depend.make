# Empty dependencies file for mh5copy.
# This may be replaced when dependencies are built.
