file(REMOVE_RECURSE
  "CMakeFiles/mh5dump.dir/mh5dump.cpp.o"
  "CMakeFiles/mh5dump.dir/mh5dump.cpp.o.d"
  "mh5dump"
  "mh5dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mh5dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
