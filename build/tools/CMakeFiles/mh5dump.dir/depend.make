# Empty dependencies file for mh5dump.
# This may be replaced when dependencies are built.
