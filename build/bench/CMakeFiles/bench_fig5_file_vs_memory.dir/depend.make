# Empty dependencies file for bench_fig5_file_vs_memory.
# This may be replaced when dependencies are built.
