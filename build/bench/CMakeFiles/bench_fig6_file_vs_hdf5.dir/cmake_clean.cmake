file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_file_vs_hdf5.dir/bench_fig6_file_vs_hdf5.cpp.o"
  "CMakeFiles/bench_fig6_file_vs_hdf5.dir/bench_fig6_file_vs_hdf5.cpp.o.d"
  "bench_fig6_file_vs_hdf5"
  "bench_fig6_file_vs_hdf5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_file_vs_hdf5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
