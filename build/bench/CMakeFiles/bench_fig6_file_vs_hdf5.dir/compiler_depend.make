# Empty compiler generated dependencies file for bench_fig6_file_vs_hdf5.
# This may be replaced when dependencies are built.
