# Empty compiler generated dependencies file for bench_fig9_memory_vs_bredala.
# This may be replaced when dependencies are built.
