file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_memory_vs_bredala.dir/bench_fig9_memory_vs_bredala.cpp.o"
  "CMakeFiles/bench_fig9_memory_vs_bredala.dir/bench_fig9_memory_vs_bredala.cpp.o.d"
  "bench_fig9_memory_vs_bredala"
  "bench_fig9_memory_vs_bredala.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_memory_vs_bredala.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
