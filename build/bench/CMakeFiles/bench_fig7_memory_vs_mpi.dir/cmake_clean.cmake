file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_memory_vs_mpi.dir/bench_fig7_memory_vs_mpi.cpp.o"
  "CMakeFiles/bench_fig7_memory_vs_mpi.dir/bench_fig7_memory_vs_mpi.cpp.o.d"
  "bench_fig7_memory_vs_mpi"
  "bench_fig7_memory_vs_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_memory_vs_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
