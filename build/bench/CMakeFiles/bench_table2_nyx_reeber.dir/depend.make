# Empty dependencies file for bench_table2_nyx_reeber.
# This may be replaced when dependencies are built.
