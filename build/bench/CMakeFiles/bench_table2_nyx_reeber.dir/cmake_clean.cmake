file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_nyx_reeber.dir/bench_table2_nyx_reeber.cpp.o"
  "CMakeFiles/bench_table2_nyx_reeber.dir/bench_table2_nyx_reeber.cpp.o.d"
  "bench_table2_nyx_reeber"
  "bench_table2_nyx_reeber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_nyx_reeber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
