# Empty compiler generated dependencies file for bench_fig10_redistribution_policies.
# This may be replaced when dependencies are built.
