# Empty dependencies file for bench_fig11_large_data.
# This may be replaced when dependencies are built.
