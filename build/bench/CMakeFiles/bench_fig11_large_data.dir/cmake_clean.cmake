file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_large_data.dir/bench_fig11_large_data.cpp.o"
  "CMakeFiles/bench_fig11_large_data.dir/bench_fig11_large_data.cpp.o.d"
  "bench_fig11_large_data"
  "bench_fig11_large_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_large_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
