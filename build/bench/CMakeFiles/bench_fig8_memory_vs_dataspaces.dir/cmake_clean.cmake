file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_memory_vs_dataspaces.dir/bench_fig8_memory_vs_dataspaces.cpp.o"
  "CMakeFiles/bench_fig8_memory_vs_dataspaces.dir/bench_fig8_memory_vs_dataspaces.cpp.o.d"
  "bench_fig8_memory_vs_dataspaces"
  "bench_fig8_memory_vs_dataspaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_memory_vs_dataspaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
