# Empty compiler generated dependencies file for bench_fig8_memory_vs_dataspaces.
# This may be replaced when dependencies are built.
