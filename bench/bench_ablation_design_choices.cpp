/// Ablations for the design choices DESIGN.md calls out (not a paper
/// figure, but quantifying the paper's qualitative claims):
///
///  1. deep copy vs zero-copy dataset storage (paper §I: "deep or
///     shallow copies ... configurable by the user") — full in-situ
///     exchange timed both ways;
///  2. run-optimized serialization vs per-point serialization (paper
///     §IV-B(c): LowFive beats hand-written MPI because it "optimizes
///     the serialization of contiguous regions") — packing a 3-d block
///     selection both ways;
///  3. the shared-file lock-contention model on vs off — how much of
///     file-mode cost is contention rather than bandwidth;
///  4. synchronous close-serve vs background serving (our implementation
///     of the paper's §V-C future work): workflow makespan over several
///     coupled rounds where producer compute and consumer analysis can
///     overlap only in background mode.

#include "runners.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <thread>

using namespace benchcommon;

namespace {

// --- 4: coupling ablation -------------------------------------------------

/// Several producer->consumer rounds with per-round "compute" sleeps on
/// both sides; returns the workflow makespan. Sleeps idle the CPU, so
/// overlap is observable even on one core.
double run_coupled(int world_size, const Params& p, bool background) {
    Shape s = make_shape(world_size, p);

    constexpr int rounds     = 3;
    constexpr auto sim_time  = std::chrono::milliseconds(25);
    constexpr auto ana_time  = std::chrono::milliseconds(25);

    workflow::Options opts;
    opts.mode             = workflow::Mode::in_situ();
    opts.background_serve = background;

    auto t0 = std::chrono::steady_clock::now();
    workflow::run(
        {
            {"producer", s.nprod,
             [&](workflow::Context& ctx) {
                 for (int r = 0; r < rounds; ++r) {
                     std::this_thread::sleep_for(sim_time); // "simulation"
                     produce_synthetic(s, ctx.rank(), "coupled" + std::to_string(r) + ".h5",
                                       ctx.vol);
                 }
             }},
            {"consumer", s.ncons,
             [&](workflow::Context& ctx) {
                 for (int r = 0; r < rounds; ++r) {
                     consume_synthetic(s, ctx.rank(), "coupled" + std::to_string(r) + ".h5",
                                       ctx.vol, false);
                     std::this_thread::sleep_for(ana_time); // "analysis"
                 }
             }},
        },
        {workflow::Link{0, 1, "*"}}, opts);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// --- 2: serializer ablation ---------------------------------------------------

void bm_pack_runs(benchmark::State& st) {
    const auto    n = static_cast<std::uint64_t>(st.range(0));
    h5::Dataspace sp({n, n, n});
    // interior block: rows are contiguous runs
    std::uint64_t start[] = {1, 1, 1}, count[] = {n - 2, n - 2, n - 2};
    sp.select_box(start, count);

    std::vector<std::uint64_t> full(n * n * n, 7), packed(sp.npoints());
    for (auto _ : st) {
        pack_selection(sp, full.data(), 8, packed.data());
        benchmark::DoNotOptimize(packed.data());
    }
    st.SetBytesProcessed(static_cast<std::int64_t>(st.iterations()) *
                         static_cast<std::int64_t>(sp.npoints() * 8));
}

void bm_pack_pointwise(benchmark::State& st) {
    const auto n = static_cast<std::uint64_t>(st.range(0));
    // the same interior block, packed element by element (what the
    // paper's hand-written MPI comparator does)
    std::vector<std::uint64_t> full(n * n * n, 7), packed((n - 2) * (n - 2) * (n - 2));
    for (auto _ : st) {
        std::size_t k = 0;
        for (std::uint64_t x = 1; x < n - 1; ++x)
            for (std::uint64_t y = 1; y < n - 1; ++y)
                for (std::uint64_t z = 1; z < n - 1; ++z)
                    std::memcpy(&packed[k++], &full[(x * n + y) * n + z], 8);
        benchmark::DoNotOptimize(packed.data());
    }
    st.SetBytesProcessed(static_cast<std::int64_t>(st.iterations()) *
                         static_cast<std::int64_t>(packed.size() * 8));
}

} // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    Params p     = Params::from_env();
    auto   sizes = world_sizes(p);

    // --- 1: copy-mode ablation (manual-timed full exchanges) -----------------
    for (int ws : sizes) {
        benchmark::RegisterBenchmark(
            ("Ablation/DeepCopy/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_lowfive(ws, p, workflow::Mode::in_situ(), false);
                    st.SetIterationTime(t);
                    record_lowfive("Deep copy", ws, t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
        benchmark::RegisterBenchmark(
            ("Ablation/ZeroCopy/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_lowfive(ws, p, workflow::Mode::in_situ(), true);
                    st.SetIterationTime(t);
                    record_lowfive("Zero copy", ws, t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
    }

    // --- 3: lock-model ablation (file mode with/without contention) -----------
    for (int ws : sizes) {
        benchmark::RegisterBenchmark(
            ("Ablation/FileModeLockOn/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    h5::PfsModel::instance().configure(1000, 2, 5);
                    double t = run_lowfive(ws, p, workflow::Mode::file());
                    st.SetIterationTime(t);
                    record_lowfive("File mode, lock model on", ws, t);
                    h5::PfsModel::instance().configure(0, 0, 0);
                }
            })
            ->UseManualTime()
            ->Iterations(1);
        benchmark::RegisterBenchmark(
            ("Ablation/FileModeLockOff/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    h5::PfsModel::instance().configure(1000, 2, 0);
                    double t = run_lowfive(ws, p, workflow::Mode::file());
                    st.SetIterationTime(t);
                    record_lowfive("File mode, lock model off", ws, t);
                    h5::PfsModel::instance().configure(0, 0, 0);
                }
            })
            ->UseManualTime()
            ->Iterations(1);
    }

    // --- 4: sync vs background coupling ----------------------------------------
    for (int ws : sizes) {
        benchmark::RegisterBenchmark(
            ("Ablation/CoupledSyncServe/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_coupled(ws, p, false);
                    st.SetIterationTime(t);
                    record("Coupled, sync serve", ws, t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
        benchmark::RegisterBenchmark(
            ("Ablation/CoupledBackgroundServe/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_coupled(ws, p, true);
                    st.SetIterationTime(t);
                    record("Coupled, background serve", ws, t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
    }

    // --- 2: serializer microbenchmarks ----------------------------------------
    benchmark::RegisterBenchmark("Ablation/PackContiguousRuns", bm_pack_runs)->Arg(32)->Arg(64);
    benchmark::RegisterBenchmark("Ablation/PackPointwise", bm_pack_pointwise)->Arg(32)->Arg(64);

    benchmark::RunSpecifiedBenchmarks();
    print_recorded("Ablation: copy modes and file-mode lock model (seconds)", p, sizes);
    write_recorded_json("ablation_design_choices", p, sizes);
    benchmark::Shutdown();
    return 0;
}
