/// Figure 8 of the paper: LowFive memory mode vs DataSpaces (run on Cori
/// Haswell). DataSpaces used additional dedicated server nodes and the
/// dspaces_put_local in-place API; it was consistently 20-50% faster
/// while LowFive pays for its file-close synchronization and collective
/// indexing — at the price of extra resources and a restricted data
/// model. Both effects are reproduced here: the staging servers run on
/// extra ranks outside the timed section.

#include "runners.hpp"

#include <benchmark/benchmark.h>

using namespace benchcommon;

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);

    Params p     = Params::from_env();
    auto   sizes = world_sizes(p);
    int    extra = 0;

    for (int ws : sizes) {
        benchmark::RegisterBenchmark(
            ("Fig8/LowFiveMemoryMode/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_lowfive(ws, p, workflow::Mode::in_situ(), /*zerocopy=*/true);
                    st.SetIterationTime(t);
                    record_lowfive("LowFive Memory Mode", ws, t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
        benchmark::RegisterBenchmark(
            ("Fig8/DataSpaces/procs:" + std::to_string(ws)).c_str(),
            [ws, p, &extra](benchmark::State& st) {
                for (auto _ : st) {
                    int    servers = 0;
                    double t       = run_dataspaces(ws, p, &servers);
                    extra          = std::max(extra, servers);
                    st.SetIterationTime(t);
                    record("DataSpaces", ws, t);
                }
                st.counters["server_ranks"] = extra;
            })
            ->UseManualTime()
            ->Iterations(p.trials);
    }

    benchmark::RunSpecifiedBenchmarks();
    print_recorded("Figure 8: Weak Scaling, LowFive Memory Mode vs DataSpaces "
                   "(completion time, seconds)",
                   p, sizes);
    std::printf("Note: DataSpaces uses up to %d additional dedicated server ranks (extra "
                "resources, as in the paper).\n",
                extra);
    std::printf("Expected shape (paper): DataSpaces somewhat faster (20-50%%), curves roughly "
                "parallel.\n");
    write_recorded_json("fig8_memory_vs_dataspaces", p, sizes);
    benchmark::Shutdown();
    return 0;
}
