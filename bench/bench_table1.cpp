/// Table I of the paper: number of MPI processes and data sizes for the
/// weak-scaling synthetic benchmark (1 producer task + 1 consumer task,
/// 3:1 rank split, 1e6 grid points + 1e6 particles per producer rank on
/// the paper's machines). This binary prints both the paper's original
/// table and the configuration this reproduction actually runs (which is
/// scaled by L5_BENCH_SCALE / bounded by L5_BENCH_MAX_PROCS).

#include "common.hpp"

#include <cinttypes>
#include <cstdio>

using namespace benchcommon;

int main() {
    std::printf("=== Table I (paper): weak-scaling configuration on Theta/Cori ===\n");
    std::printf("%-10s %-10s %-10s %-14s %-14s %-10s\n", "procs", "nprod", "ncons", "grid pts",
                "particles", "GiB");
    struct Row {
        int    procs, nprod, ncons;
        double grid, particles, gib;
    };
    const Row paper[] = {
        {4, 3, 1, 3.0e6, 3.0e6, 0.06},      {16, 12, 4, 1.2e7, 1.2e7, 0.22},
        {64, 48, 16, 4.8e7, 4.8e7, 0.99},   {256, 192, 64, 1.9e8, 1.9e8, 3.54},
        {1024, 768, 256, 7.7e8, 7.7e8, 14.34}, {4096, 3072, 1024, 3.0e9, 3.0e9, 55.88},
        {16384, 12288, 4096, 1.2e10, 1.2e10, 223.51},
    };
    for (const auto& r : paper)
        std::printf("%-10d %-10d %-10d %-14.2e %-14.2e %-10.2f\n", r.procs, r.nprod, r.ncons,
                    r.grid, r.particles, r.gib);

    Params p = Params::from_env();
    std::printf("\n=== Table I (this reproduction): rank-threads on this machine ===\n");
    std::printf("(L5_BENCH_SCALE=%g of the paper's 1e6-per-rank payload; "
                "L5_BENCH_MAX_PROCS=%d)\n",
                static_cast<double>(p.grid_points_per_rank) / 1e6, p.max_procs);
    std::printf("%-10s %-10s %-10s %-14s %-14s %-10s\n", "procs", "nprod", "ncons", "grid pts",
                "particles", "GiB");
    for (int ws : world_sizes(p)) {
        Shape         s    = make_shape(ws, p);
        std::uint64_t gpts = s.grid_dims[0] * s.grid_dims[1] * s.grid_dims[2];
        double        gib  = static_cast<double>(gpts * 8 + s.total_particles * 12)
                     / (1024.0 * 1024.0 * 1024.0);
        std::printf("%-10d %-10d %-10d %-14" PRIu64 " %-14" PRIu64 " %-10.4f\n", ws, s.nprod,
                    s.ncons, gpts, s.total_particles, gib);
    }
    return 0;
}
