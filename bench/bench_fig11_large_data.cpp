/// Figure 11 of the paper: the three best in situ transports — LowFive
/// memory mode, DataSpaces, and pure MPI — at 10x the payload of the
/// earlier figures (the paper: 1e7 grid points + 1e7 particles per
/// producer rank, 0.55 TiB at the largest scale). The question is whether
/// the trends hold when the data get bigger; the paper found LowFive as
/// fast as MPI and ~20% slower than DataSpaces at the largest scale.

#include "runners.hpp"

#include <benchmark/benchmark.h>

using namespace benchcommon;

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);

    Params p = Params::from_env();
    // 10x the default payload, exactly as the paper scales Fig. 5-9 -> Fig. 11
    p.grid_points_per_rank *= 10;
    p.particles_per_rank *= 10;
    auto sizes = world_sizes(p);

    for (int ws : sizes) {
        benchmark::RegisterBenchmark(
            ("Fig11/LowFiveMemoryMode/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_lowfive(ws, p, workflow::Mode::in_situ(), /*zerocopy=*/true);
                    st.SetIterationTime(t);
                    record_lowfive("LowFive Memory Mode", ws, t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
        benchmark::RegisterBenchmark(
            ("Fig11/DataSpaces/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_dataspaces(ws, p);
                    st.SetIterationTime(t);
                    record("DataSpaces", ws, t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
        benchmark::RegisterBenchmark(
            ("Fig11/PureMPI/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_pure_mpi(ws, p);
                    st.SetIterationTime(t);
                    record("MPI", ws, t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
    }

    benchmark::RunSpecifiedBenchmarks();
    print_recorded("Figure 11: Weak Scaling at 10x Payload — LowFive vs DataSpaces vs MPI "
                   "(completion time, seconds)",
                   p, sizes);
    std::printf("Expected shape (paper): same ordering as Figs. 7/8 — LowFive ~ MPI, DataSpaces "
                "modestly faster.\n");
    write_recorded_json("fig11_large_data", p, sizes);
    benchmark::Shutdown();
    return 0;
}
