/// Streaming-transport benchmark: a producer publishing steps as fast
/// as it can against a consumer that drains them at roughly a quarter
/// of that rate (it reads the full dataset four times per acquired
/// step), under each staging policy:
///
///   block        lossless — the producer backpressures into the
///                window, so publish rate collapses to the drain rate
///   drop         bounded staging — the producer never waits; steps
///                that were never acquired are evicted oldest-first
///   latest_only  window of one — the consumer always jumps to the
///                newest snapshot, everything in between is dropped
///
/// Reported per policy: producer-side steps/s, published/dropped/
/// drained counts, publish waits, and the publish→first-full-drain
/// latency quantiles from the step_latency_ns histogram. Emits
/// BENCH_stream.json (median of L5_BENCH_TRIALS trials, default 3).

#include "common.hpp"

#include <lowfive/stream/stream.hpp>

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

using namespace h5;
using workflow::Context;
using workflow::Link;
using workflow::Options;

namespace {

constexpr std::uint64_t points  = 1u << 16; ///< uint64 per step (512 KiB)
constexpr int           nprod   = 2, ncons = 1;
constexpr int           nsteps  = 32;
constexpr int           reads_per_step = 4; ///< the consumer's R/4 drag

struct ScenarioResult {
    std::string             label;
    std::vector<double>     seconds; ///< producer wall per trial
    obs::Registry::Snapshot metrics; ///< producer rank 0, last trial

    std::uint64_t counter(const char* name) const {
        auto it = metrics.counters.find(name);
        return it == metrics.counters.end() ? 0 : it->second;
    }

    double median() const {
        auto s = seconds;
        std::sort(s.begin(), s.end());
        return s[s.size() / 2];
    }
};

lowfive::stream::StreamConfig make_config(lowfive::stream::StepPolicy policy) {
    lowfive::stream::StreamConfig cfg;
    cfg.policy = policy;
    return cfg.normalized(); // latest_only collapses the window to 1
}

/// One trial: the producer publishes `nsteps` steps back to back and
/// the consumer drains at ~1/4 of that rate. Returns the producer-side
/// wall time of the whole stream (publish loop + drain of the window).
double run_trial(lowfive::stream::StepPolicy policy, ScenarioResult* sink) {
    const auto cfg = make_config(policy);

    double  seconds = 0.0;
    Options opts;
    opts.mode = workflow::Mode::in_situ();

    workflow::run(
        {
            {"producer", nprod,
             [&](Context& ctx) {
                 const std::uint64_t half = points / nprod;
                 double t = benchcommon::timed_section(ctx.local, [&] {
                     lowfive::stream::Writer w(ctx.vol, "bs.h5", cfg);
                     for (int s = 0; s < nsteps; ++s) {
                         File& f = w.begin_step();
                         auto  d = f.create_dataset("v", dt::uint64(), Dataspace({points}));
                         Dataspace sel({points});
                         diy::Bounds b(1);
                         b.min[0] = static_cast<std::int64_t>(half) * ctx.rank();
                         b.max[0] = static_cast<std::int64_t>(half) * (ctx.rank() + 1);
                         sel.select_box(b);
                         std::vector<std::uint64_t> vals(half);
                         for (std::uint64_t i = 0; i < half; ++i)
                             vals[i] = static_cast<std::uint64_t>(s) * points + half * ctx.rank() + i;
                         d.write(vals.data(), sel);
                         w.end_step();
                     }
                     w.close();
                     ctx.vol->finish_serving(); // wait for the consumer to drain out
                 });
                 if (ctx.rank() == 0 && sink) {
                     seconds       = t;
                     sink->metrics = ctx.vol->metrics().snapshot();
                 }
             }},
            {"consumer", ncons,
             [&](Context& ctx) {
                 lowfive::stream::Reader r(ctx.vol, "bs.h5", cfg);
                 while (r.next_step()) {
                     const auto step = r.current_step().value();
                     auto       d    = r.file().open_dataset("v");
                     for (int k = 0; k < reads_per_step; ++k) {
                         auto vals = d.read_vector<std::uint64_t>();
                         // spot-check so the reads cannot be elided
                         if (vals.front() != step * points)
                             throw std::runtime_error("bench_stream: wrong snapshot");
                     }
                 }
                 r.close();
             }},
        },
        {Link{0, 1, "*", "", 0}}, opts);

    return seconds;
}

ScenarioResult run_scenario(lowfive::stream::StepPolicy policy, int trials) {
    ScenarioResult res;
    res.label = lowfive::stream::to_string(policy);
    for (int t = 0; t < trials; ++t) res.seconds.push_back(run_trial(policy, &res));
    const double median = res.median();
    std::printf("  %-12s median %.4f s  %6.1f steps/s  published %llu  dropped %llu  "
                "drained %llu  waits %llu\n",
                res.label.c_str(), median, median > 0 ? nsteps / median : 0.0,
                static_cast<unsigned long long>(res.counter("n_steps_published")),
                static_cast<unsigned long long>(res.counter("n_steps_dropped")),
                static_cast<unsigned long long>(res.counter("n_steps_drained")),
                static_cast<unsigned long long>(res.counter("n_step_publish_waits")));
    return res;
}

void emit_json(const std::vector<ScenarioResult>& results, int trials) {
    auto env = benchcommon::bench_envelope("stream", points * 8 / nprod, trials);
    env.set("steps", nsteps);
    env.set("step_bytes", points * 8);
    env.set("reads_per_step", reads_per_step);
    for (const auto& r : results) {
        auto sc = benchcommon::scenario_json(r.label, nprod + ncons, nprod, ncons, r.seconds,
                                             &r.metrics);
        const double median = r.median();
        sc.set("steps_per_second", median > 0 ? nsteps / median : 0.0);
        if (auto it = r.metrics.histograms.find("step_latency_ns");
            it != r.metrics.histograms.end() && it->second.count) {
            obs::json::Value h{obs::json::Object{}};
            h.set("count", it->second.count);
            h.set("mean", it->second.mean());
            h.set("p50", it->second.quantile(0.5));
            h.set("p99", it->second.quantile(0.99));
            sc.set("step_latency_ns", std::move(h));
        }
        benchcommon::add_scenario(env, std::move(sc));
    }
    benchcommon::write_bench_json(env);
}

} // namespace

int main() {
    const auto params = benchcommon::Params::from_env();
    const int  trials = params.trials;

    std::printf("stream bench: %dx%d ranks, %d steps of %llu KiB, consumer reads %dx per step, "
                "%d trials\n",
                nprod, ncons, nsteps, static_cast<unsigned long long>(points * 8 >> 10),
                reads_per_step, trials);

    std::vector<ScenarioResult> results;
    results.push_back(run_scenario(lowfive::stream::StepPolicy::Block, trials));
    results.push_back(run_scenario(lowfive::stream::StepPolicy::Drop, trials));
    results.push_back(run_scenario(lowfive::stream::StepPolicy::LatestOnly, trials));
    emit_json(results, trials);
    return 0;
}
