/// Figure 5 of the paper: weak scaling of LowFive communicating through a
/// physical file vs communicating in situ over message passing. The paper
/// ran this on Theta; file mode was hundreds of times slower. Here the
/// file path goes to local disk through the modelled PFS (bandwidth,
/// open latency, shared-file lock contention), the memory path through
/// the index–serve–query protocol.

#include "runners.hpp"

#include <benchmark/benchmark.h>

using namespace benchcommon;

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);

    h5::PfsModel::instance().configure(1000, 2, 5); // defaults; env overrides
    h5::PfsModel::instance().configure_from_env();

    Params p     = Params::from_env();
    auto   sizes = world_sizes(p);

    for (int ws : sizes) {
        benchmark::RegisterBenchmark(
            ("Fig5/LowFiveMemoryMode/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_lowfive(ws, p, workflow::Mode::in_situ(), /*zerocopy=*/true);
                    st.SetIterationTime(t);
                    record_lowfive("LowFive Memory Mode", ws, t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
        benchmark::RegisterBenchmark(
            ("Fig5/LowFiveFileMode/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_lowfive(ws, p, workflow::Mode::file());
                    st.SetIterationTime(t);
                    record_lowfive("LowFive File Mode", ws, t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
    }

    benchmark::RunSpecifiedBenchmarks();
    print_recorded("Figure 5: Weak Scaling, LowFive File vs Memory Mode "
                   "(completion time, seconds)",
                   p, sizes);
    std::printf("Expected shape (paper): file mode orders of magnitude slower; memory mode "
                "rises slowly with scale.\n");
    write_recorded_json("fig5_file_vs_memory", p, sizes);
    benchmark::Shutdown();
    return 0;
}
