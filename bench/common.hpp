#pragma once

/// Shared infrastructure for the per-figure/table benchmark binaries:
/// the paper's synthetic weak-scaling workload (§IV-B) — one producer
/// task and one consumer task exchanging a 3-d uint64 grid and a list of
/// float32 3-vector particles whose values encode their global position —
/// plus timing and table-printing helpers.
///
/// Environment knobs (all optional):
///   L5_BENCH_MAX_PROCS  largest world size in the sweep (default 64)
///   L5_BENCH_SCALE      per-rank payload multiplier (default 1 =
///                       62,500 grid points + 62,500 particles per
///                       producer rank; the paper used 1e6 + 1e6 on
///                       supercomputer nodes — scale 16 reproduces that)
///   L5_BENCH_TRIALS     trials per data point (default 3, as the paper)
///   L5_PFS_BW_MBPS      modelled PFS aggregate bandwidth for file modes
///   L5_PFS_LAT_MS       modelled PFS open latency

#include <diy/decomposer.hpp>
#include <h5/h5.hpp>
#include <lowfive/lowfive.hpp>
#include <obs/obs.hpp>
#include <simmpi/simmpi.hpp>
#include <workflow/workflow.hpp>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace benchcommon {

struct Params {
    std::uint64_t grid_points_per_rank = 62'500;
    std::uint64_t particles_per_rank   = 62'500;
    int           trials               = 3;
    int           max_procs            = 64;

    static Params from_env();

    /// Bytes exchanged per producer rank (8 B per grid point, 12 B per particle).
    std::uint64_t bytes_per_rank() const {
        return grid_points_per_rank * 8 + particles_per_rank * 12;
    }
};

/// Geometry of one weak-scaling data point: world split 3:1 into
/// producers and consumers (the paper's ratio), a 3-d grid whose global
/// extent grows with the producer count, and a global particle list.
struct Shape {
    int           nprod = 0;
    int           ncons = 0;
    h5::Extent    grid_dims;      ///< 3-d
    std::uint64_t total_particles = 0;

    diy::Bounds domain() const;
    /// Producer r's grid block (its own write decomposition).
    diy::Bounds prod_grid_block(int r) const;
    /// Consumer r's grid block (a different decomposition: consumers
    /// decompose over ncons blocks).
    diy::Bounds cons_grid_block(int r) const;
    /// Producer/consumer r's contiguous particle range [lo, hi).
    std::pair<std::uint64_t, std::uint64_t> prod_particles(int r) const;
    std::pair<std::uint64_t, std::uint64_t> cons_particles(int r) const;
};

/// 3:1 producer:consumer split of `world_size` (paper's Table I).
std::pair<int, int> split_3_to_1(int world_size);

Shape make_shape(int world_size, const Params& p);

/// The datatype of one particle row (compound of three float32).
h5::Datatype particle_type();

/// Fill the values of a producer's grid block: global linear position.
std::vector<std::uint64_t> grid_values(const Shape& s, const diy::Bounds& block);
/// Fill a particle range: component c of particle i is 3*i + c.
std::vector<float> particle_values(std::uint64_t lo, std::uint64_t hi);

/// Validate consumer-side data (sampled); throws on mismatch.
void validate_grid(const Shape& s, const diy::Bounds& block, const std::vector<std::uint64_t>& v);
void validate_particles(std::uint64_t lo, const std::vector<float>& v);

/// Producer body: write grid + particles into `fname` through `vol`.
void produce_synthetic(const Shape& s, int rank, const std::string& fname, const h5::VolPtr& vol);
/// Consumer body: read (and optionally validate) both datasets.
void consume_synthetic(const Shape& s, int rank, const std::string& fname, const h5::VolPtr& vol,
                       bool validate);

/// Barrier-bounded wall time of `fn` across `world`: every rank runs fn,
/// and the returned value (identical on every rank) is the max elapsed.
double timed_section(const simmpi::Comm& world, const std::function<void()>& fn);

/// The world sizes of the sweep: 4, 16, 64, ... up to max_procs.
std::vector<int> world_sizes(const Params& p);

/// One collected series (label -> completion time per world size).
struct Series {
    std::string         label;
    std::vector<double> seconds; ///< aligned with the world-size vector
};

/// Print a paper-style table: rows = world sizes, columns = series.
void print_table(const std::string& title, const Params& p, const std::vector<int>& sizes,
                 const std::vector<Series>& series);

/// Run `run_once(world_size) -> seconds` for each size, `trials` times,
/// keeping the mean (the paper reports averages over 3 trials).
Series sweep(const std::string& label, const Params& p, const std::vector<int>& sizes,
             const std::function<double(int)>& run_once);

/// Collector used by the google-benchmark-driven binaries: each manual
/// iteration records its timing here (optionally with the consumer-side
/// metrics registry snapshot of that run); the binary prints a
/// paper-style table at the end from the recorded medians and writes the
/// unified BENCH_*.json artifact.
void record(const std::string& label, int world_size, double seconds,
            const obs::Registry::Snapshot* metrics = nullptr);
void print_recorded(const std::string& title, const Params& p, const std::vector<int>& sizes);

/// --- unified BENCH_*.json envelope -------------------------------------
///
/// Every benchmark binary emits its machine-readable results through the
/// same schema:
///
///   { "bench": <name>, "schema": 1, "trials": N,
///     "payload_bytes_per_rank": B,
///     "scenarios": [
///       { "label": ..., "procs": P, "nprod": ..., "ncons": ...,
///         "seconds": [...], "seconds_median": ...,
///         "phases":   { "index_ns", "serve_ns", "query_ns",
///                       "query_intersect_ns", "query_data_ns",
///                       "query_other_ns",
///                       "query_compress_ns", "query_copy_ns",
///                       "serve_compress_ns" },         // when metrics known
///         "counters": { "bytes_served", "bytes_wire", ... }, // when metrics known
///         "query_latency_ns": { "count", "mean", "p50", "p99" } }, ... ],
///     ...bench-specific extras }
///
/// `phases` comes from the DistMetadataVol registry of consumer rank 0:
/// the time_*_ns counters accumulated by obs::ScopedTimerNs, so the
/// index / intersect / data / other breakdown is available without
/// tracing. query_intersect_ns + query_data_ns + query_other_ns ==
/// query_ns by construction. query_compress_ns (frame decompression) and
/// query_copy_ns (scatter/unpack into the user buffer) are sub-phases
/// *inside* query_data_ns and do not enter that identity; likewise
/// serve_compress_ns (frame encoding) is a sub-phase of serve_ns.

obs::json::Value bench_envelope(const std::string& bench,
                                std::uint64_t payload_bytes_per_rank, int trials);

/// The "phases" object of the schema above; zeros for unknown counters.
obs::json::Value phase_json(const obs::Registry::Snapshot& metrics);

obs::json::Value scenario_json(const std::string& label, int procs, int nprod, int ncons,
                               const std::vector<double>& seconds,
                               const obs::Registry::Snapshot* metrics = nullptr);

void add_scenario(obs::json::Value& envelope, obs::json::Value scenario);

/// Write `envelope` to BENCH_<bench>.json in the working directory.
bool write_bench_json(const obs::json::Value& envelope);

/// Build the envelope from everything record()ed and write
/// BENCH_<bench>.json (one scenario per recorded label × world size).
void write_recorded_json(const std::string& bench, const Params& p,
                         const std::vector<int>& sizes);

} // namespace benchcommon
