/// Figure 10 of the paper illustrates Bredala's two redistribution
/// policies: contiguous (for linear lists — cheap, order-preserving
/// buffer splits) and bounding-box (for grids — coordinate-indexed,
/// requiring intersection computation and per-point reordering). This
/// microbenchmark quantifies the contrast the figure draws: the same
/// number of 8-byte items is redistributed from 9 producers to 4
/// consumers (the figure's task sizes) under each policy.

#include "common.hpp"

#include <baselines/bredala.hpp>

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <mutex>
#include <numeric>

using namespace benchcommon;
namespace br = baselines::bredala;

namespace {

constexpr int nprod = 9, ncons = 4; // the task sizes drawn in Fig. 10

double run_policy(br::RedistPolicy policy, std::uint64_t items_per_prod) {
    double     result = 0;
    std::mutex mutex;

    simmpi::Runtime::run(nprod + ncons, [&](simmpi::Comm& world) {
        const bool is_prod = world.rank() < nprod;
        auto       local   = world.split(is_prod ? 0 : 1);

        std::vector<int> prod(nprod), cons(ncons);
        std::iota(prod.begin(), prod.end(), 0);
        std::iota(cons.begin(), cons.end(), nprod);
        auto ic = simmpi::Comm::create_intercomm(world, prod, cons);

        const std::uint64_t total = items_per_prod * nprod;
        // for the bbox policy, arrange the same item count as a 2-d grid
        auto        side = static_cast<std::int64_t>(std::llround(std::sqrt(static_cast<double>(total))));
        diy::Bounds dom(2);
        dom.max[0] = side;
        dom.max[1] = side;
        diy::RegularDecomposer pdec(dom, nprod);

        auto make_field = [&](bool producer_side, int rank) {
            br::Field f;
            f.elem = 8;
            if (policy == br::RedistPolicy::Contiguous) {
                f.name         = "list";
                f.policy       = policy;
                f.global_count = total;
                if (producer_side) {
                    f.offset = total * static_cast<std::uint64_t>(rank) / nprod;
                    auto hi  = total * static_cast<std::uint64_t>(rank + 1) / nprod;
                    f.data.assign((hi - f.offset) * 8, std::byte{7});
                }
            } else {
                f.name   = "grid";
                f.policy = policy;
                f.domain = dom;
                if (producer_side) {
                    f.bounds = pdec.block_bounds(rank);
                    f.data.assign(f.bounds.size() * 8, std::byte{7});
                }
            }
            return f;
        };

        double t = timed_section(world, [&] {
            br::Container c;
            c.append(make_field(is_prod, local.rank()));
            if (is_prod)
                br::redistribute_producer(c, local, ic);
            else
                br::redistribute_consumer(c, local, ic);
        });
        if (world.rank() == 0) {
            std::lock_guard<std::mutex> lock(mutex);
            result = t;
        }
    });
    return result;
}

} // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    Params p = Params::from_env();

    const std::vector<std::uint64_t> sizes{10'000, 100'000, 1'000'000};
    for (auto items : sizes) {
        benchmark::RegisterBenchmark(
            ("Fig10/Contiguous/items_per_prod:" + std::to_string(items)).c_str(),
            [items, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_policy(br::RedistPolicy::Contiguous, items);
                    st.SetIterationTime(t);
                    record("Contiguous policy", static_cast<int>(items / 1000), t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
        benchmark::RegisterBenchmark(
            ("Fig10/BoundingBox/items_per_prod:" + std::to_string(items)).c_str(),
            [items, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_policy(br::RedistPolicy::BBox, items);
                    st.SetIterationTime(t);
                    record("Bounding-box policy", static_cast<int>(items / 1000), t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
    }

    benchmark::RunSpecifiedBenchmarks();

    std::printf("\n=== Figure 10: Bredala redistribution policies, 9 producers -> 4 consumers ===\n");
    std::printf("(rows are thousands of 8-byte items per producer; seconds)\n");
    std::vector<int> rows;
    for (auto items : sizes) rows.push_back(static_cast<int>(items / 1000));
    print_recorded("Figure 10 summary (column 'procs' = kilo-items per producer)", p, rows);
    std::printf("Expected shape (paper): contiguous stays cheap; bounding-box pays intersection "
                "indexing + per-point serialization and grows much faster.\n");
    write_recorded_json("fig10_redistribution_policies", p, rows);
    benchmark::Shutdown();
    return 0;
}
