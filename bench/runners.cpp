#include "runners.hpp"

#include <baselines/bredala.hpp>
#include <baselines/dataspaces.hpp>
#include <baselines/pure_mpi.hpp>

#include <atomic>
#include <filesystem>
#include <mutex>
#include <numeric>

namespace benchcommon {

namespace {

std::string temp_file(const char* stem) {
    static std::atomic<std::uint64_t> counter{0};
    return (std::filesystem::temp_directory_path()
            / (std::string(stem) + "_" + std::to_string(::getpid()) + "_"
               + std::to_string(counter.fetch_add(1)) + ".mh5"))
        .string();
}

/// Stash for the completion time measured inside the rank-threads.
struct TimeSink {
    std::mutex mutex;
    double     seconds = 0;
    void       set(double s) {
        std::lock_guard<std::mutex> lock(mutex);
        seconds = s;
    }
};

std::mutex              metrics_mutex;
obs::Registry::Snapshot last_metrics;

} // namespace

obs::Registry::Snapshot last_lowfive_metrics() {
    std::lock_guard<std::mutex> lock(metrics_mutex);
    return last_metrics;
}

void record_lowfive(const std::string& label, int world_size, double seconds) {
    auto m = last_lowfive_metrics();
    record(label, world_size, seconds, &m);
}

double run_lowfive(int world_size, const Params& p, workflow::Mode mode, bool zerocopy) {
    Shape s = make_shape(world_size, p);

    const bool  file_mode = mode.passthru;
    std::string fname     = file_mode ? temp_file("l5_bench") : "bench.h5";

    TimeSink          sink;
    workflow::Options opts;
    opts.mode = mode;
    if (zerocopy) opts.zerocopy = {{"*", "*"}};

    workflow::run(
        {
            {"producer", s.nprod,
             [&](workflow::Context& ctx) {
                 double t = timed_section(ctx.world, [&] {
                     produce_synthetic(s, ctx.rank(), fname, ctx.vol);
                     // consumers finish inside this window: the producer's
                     // file close serves until all consumers are done
                     // (memory mode); in file mode the second barrier of
                     // timed_section bounds the consumer's read
                 });
                 if (ctx.world.rank() == 0) sink.set(t);
                 ctx.vol->drop_file(fname);
             }},
            {"consumer", s.ncons,
             [&](workflow::Context& ctx) {
                 (void)timed_section(ctx.world, [&] {
                     consume_synthetic(s, ctx.rank(), fname, ctx.vol, true);
                 });
                 if (ctx.rank() == 0) {
                     std::lock_guard<std::mutex> lock(metrics_mutex);
                     last_metrics = ctx.vol->metrics().snapshot();
                 }
             }},
        },
        {workflow::Link{0, 1, "*"}}, opts);

    if (file_mode) std::filesystem::remove(fname);
    return sink.seconds;
}

double run_pure_hdf5(int world_size, const Params& p) {
    Shape       s     = make_shape(world_size, p);
    std::string fname = temp_file("hdf5_bench");
    TimeSink    sink;

    simmpi::Runtime::run(world_size, [&](simmpi::Comm& world) {
        const bool is_prod = world.rank() < s.nprod;
        auto       local   = world.split(is_prod ? 0 : 1);
        auto       vol     = std::make_shared<h5::NativeVol>(local);

        double t = timed_section(world, [&] {
            if (is_prod) produce_synthetic(s, local.rank(), fname, vol);
            world.barrier(); // the file must be complete before readers open it
            if (!is_prod) consume_synthetic(s, local.rank(), fname, vol, true);
        });
        if (world.rank() == 0) sink.set(t);
    });
    std::filesystem::remove(fname);
    return sink.seconds;
}

double run_pure_mpi(int world_size, const Params& p) {
    Shape    s = make_shape(world_size, p);
    TimeSink sink;

    simmpi::Runtime::run(world_size, [&](simmpi::Comm& world) {
        const bool is_prod = world.rank() < s.nprod;
        auto       local   = world.split(is_prod ? 0 : 1);

        std::vector<int> prod(static_cast<std::size_t>(s.nprod)),
            cons(static_cast<std::size_t>(s.ncons));
        std::iota(prod.begin(), prod.end(), 0);
        std::iota(cons.begin(), cons.end(), s.nprod);
        auto ic = simmpi::Comm::create_intercomm(world, prod, cons);

        auto prod_pbounds = [&](int r) {
            auto [lo, hi] = s.prod_particles(r);
            diy::Bounds b(1);
            b.min[0] = static_cast<std::int64_t>(lo);
            b.max[0] = static_cast<std::int64_t>(hi);
            return b;
        };
        auto cons_pbounds = [&](int r) {
            auto [lo, hi] = s.cons_particles(r);
            diy::Bounds b(1);
            b.min[0] = static_cast<std::int64_t>(lo);
            b.max[0] = static_cast<std::int64_t>(hi);
            return b;
        };

        double t = timed_section(world, [&] {
            if (is_prod) {
                auto block  = s.prod_grid_block(local.rank());
                auto values = grid_values(s, block);
                baselines::pure_mpi::producer_send(
                    ic, block, values.data(), 8, [&](int r) { return s.cons_grid_block(r); },
                    s.ncons, 11);
                auto [lo, hi] = s.prod_particles(local.rank());
                auto pvals    = particle_values(lo, hi);
                baselines::pure_mpi::producer_send(ic, prod_pbounds(local.rank()), pvals.data(),
                                                   12, cons_pbounds, s.ncons, 12);
            } else {
                auto                       block = s.cons_grid_block(local.rank());
                std::vector<std::uint64_t> gv(block.size());
                baselines::pure_mpi::consumer_recv(
                    ic, block, gv.data(), 8, [&](int r) { return s.prod_grid_block(r); }, s.nprod,
                    11);
                auto [lo, hi] = s.cons_particles(local.rank());
                std::vector<float> pv((hi - lo) * 3);
                baselines::pure_mpi::consumer_recv(ic, cons_pbounds(local.rank()), pv.data(), 12,
                                                   prod_pbounds, s.nprod, 12);
                validate_grid(s, block, gv);
                validate_particles(lo, pv);
            }
        });
        if (world.rank() == 0) sink.set(t);
    });
    return sink.seconds;
}

double run_dataspaces(int world_size, const Params& p, int* extra_servers) {
    Shape     s        = make_shape(world_size, p);
    const int nservers = std::max(1, world_size / 16);
    if (extra_servers) *extra_servers = nservers;
    TimeSink sink;

    namespace ds = baselines::dataspaces;

    simmpi::Runtime::run(world_size + nservers, [&](simmpi::Comm& world) {
        enum Role { Prod, Cons, Serv };
        Role role = world.rank() < s.nprod          ? Prod
                    : world.rank() < s.nprod + s.ncons ? Cons
                                                       : Serv;
        auto local = world.split(role);

        std::vector<int> prod(static_cast<std::size_t>(s.nprod)),
            cons(static_cast<std::size_t>(s.ncons)), serv(static_cast<std::size_t>(nservers));
        std::iota(prod.begin(), prod.end(), 0);
        std::iota(cons.begin(), cons.end(), s.nprod);
        std::iota(serv.begin(), serv.end(), s.nprod + s.ncons);
        auto prod_serv = simmpi::Comm::create_intercomm(world, prod, serv);
        auto cons_serv = simmpi::Comm::create_intercomm(world, cons, serv);
        auto prod_cons = simmpi::Comm::create_intercomm(world, prod, cons);

        // the timed window covers only producer+consumer ranks, so build a
        // client-only communicator for the barriers (collective: servers
        // participate in the split, then go serve)
        auto clients = world.split(role == Serv ? 1 : 0);

        if (role == Serv) {
            // servers are extra resources: they do not participate in the
            // timed client-side section (but they do the index work)
            ds::Server::run(prod_serv, cons_serv);
            return;
        }

        double t = timed_section(clients, [&] {
            if (role == Prod) {
                ds::ProducerClient client(prod_serv, prod_cons);
                auto               block  = s.prod_grid_block(local.rank());
                auto               values = grid_values(s, block);
                client.put_local("grid", 0, block, values.data(), 8);

                auto [lo, hi] = s.prod_particles(local.rank());
                auto        pvals = particle_values(lo, hi);
                diy::Bounds pb(1);
                pb.min[0] = static_cast<std::int64_t>(lo);
                pb.max[0] = static_cast<std::int64_t>(hi);
                client.put_local("particles", 0, pb, pvals.data(), 12);

                client.serve_pulls();
                client.finalize();
            } else {
                ds::ConsumerClient client(cons_serv, prod_cons);
                auto               block = s.cons_grid_block(local.rank());
                std::vector<std::uint64_t> gv(block.size());
                client.get("grid", 0, s.nprod, block, gv.data(), 8);

                auto [lo, hi] = s.cons_particles(local.rank());
                diy::Bounds pb(1);
                pb.min[0] = static_cast<std::int64_t>(lo);
                pb.max[0] = static_cast<std::int64_t>(hi);
                std::vector<float> pv((hi - lo) * 3);
                client.get("particles", 0, s.nprod, pb, pv.data(), 12);

                client.done();
                client.finalize();
                validate_grid(s, block, gv);
                validate_particles(lo, pv);
            }
        });
        if (clients.rank() == 0 && role == Prod) sink.set(t);
    });
    return sink.seconds;
}

double run_bredala(int world_size, const Params& p, double* grid_seconds,
                   double* particle_seconds) {
    Shape    s = make_shape(world_size, p);
    TimeSink sink, grid_sink, part_sink;

    namespace br = baselines::bredala;

    simmpi::Runtime::run(world_size, [&](simmpi::Comm& world) {
        const bool is_prod = world.rank() < s.nprod;
        auto       local   = world.split(is_prod ? 0 : 1);

        std::vector<int> prod(static_cast<std::size_t>(s.nprod)),
            cons(static_cast<std::size_t>(s.ncons));
        std::iota(prod.begin(), prod.end(), 0);
        std::iota(cons.begin(), cons.end(), s.nprod);
        auto ic = simmpi::Comm::create_intercomm(world, prod, cons);

        std::map<std::string, double> times;
        double t = timed_section(world, [&] {
            if (is_prod) {
                br::Container c;
                br::Field     grid;
                grid.name   = "grid";
                grid.policy = br::RedistPolicy::BBox;
                grid.elem   = 8;
                grid.domain = s.domain();
                grid.bounds = s.prod_grid_block(local.rank());
                auto values = grid_values(s, grid.bounds);
                grid.data.resize(values.size() * 8);
                std::memcpy(grid.data.data(), values.data(), grid.data.size());
                c.append(std::move(grid));

                br::Field parts;
                parts.name         = "particles";
                parts.policy       = br::RedistPolicy::Contiguous;
                parts.elem         = 12;
                parts.global_count = s.total_particles;
                auto [lo, hi]      = s.prod_particles(local.rank());
                parts.offset       = lo;
                auto pvals         = particle_values(lo, hi);
                parts.data.resize(pvals.size() * 4);
                std::memcpy(parts.data.data(), pvals.data(), parts.data.size());
                c.append(std::move(parts));

                br::redistribute_producer(c, local, ic, &times);
            } else {
                br::Container c;
                br::Field     grid;
                grid.name   = "grid";
                grid.policy = br::RedistPolicy::BBox;
                grid.elem   = 8;
                grid.domain = s.domain();
                c.append(std::move(grid));
                br::Field parts;
                parts.name         = "particles";
                parts.policy       = br::RedistPolicy::Contiguous;
                parts.elem         = 12;
                parts.global_count = s.total_particles;
                c.append(std::move(parts));

                br::redistribute_consumer(c, local, ic, &times);
            }
        });

        auto max_time = [&](const char* key) {
            double v = times.count(key) ? times.at(key) : 0.0;
            return world.allreduce(v, [](double a, double b) { return std::max(a, b); });
        };
        double gt = max_time("grid");
        double pt = max_time("particles");
        if (world.rank() == 0) {
            sink.set(t);
            grid_sink.set(gt);
            part_sink.set(pt);
        }
    });

    if (grid_seconds) *grid_seconds = grid_sink.seconds;
    if (particle_seconds) *particle_seconds = part_sink.seconds;
    return sink.seconds;
}

} // namespace benchcommon
