#include "common.hpp"

#include <chrono>
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <numeric>

namespace benchcommon {

Params Params::from_env() {
    Params p;
    double scale = 1.0;
    if (const char* s = std::getenv("L5_BENCH_SCALE")) scale = std::atof(s);
    if (scale > 0) {
        p.grid_points_per_rank = static_cast<std::uint64_t>(62'500 * scale);
        p.particles_per_rank   = static_cast<std::uint64_t>(62'500 * scale);
    }
    if (const char* s = std::getenv("L5_BENCH_TRIALS")) p.trials = std::max(1, std::atoi(s));
    if (const char* s = std::getenv("L5_BENCH_MAX_PROCS")) p.max_procs = std::max(4, std::atoi(s));
    return p;
}

std::pair<int, int> split_3_to_1(int world_size) {
    int ncons = std::max(1, world_size / 4);
    return {world_size - ncons, ncons};
}

diy::Bounds Shape::domain() const {
    diy::Bounds d(3);
    for (int i = 0; i < 3; ++i)
        d.max[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(grid_dims[static_cast<std::size_t>(i)]);
    return d;
}

diy::Bounds Shape::prod_grid_block(int r) const {
    return diy::RegularDecomposer(domain(), nprod).block_bounds(r);
}

diy::Bounds Shape::cons_grid_block(int r) const {
    return diy::RegularDecomposer(domain(), ncons).block_bounds(r);
}

std::pair<std::uint64_t, std::uint64_t> Shape::prod_particles(int r) const {
    auto n = static_cast<std::uint64_t>(nprod);
    return {total_particles * static_cast<std::uint64_t>(r) / n,
            total_particles * static_cast<std::uint64_t>(r + 1) / n};
}

std::pair<std::uint64_t, std::uint64_t> Shape::cons_particles(int r) const {
    auto m = static_cast<std::uint64_t>(ncons);
    return {total_particles * static_cast<std::uint64_t>(r) / m,
            total_particles * static_cast<std::uint64_t>(r + 1) / m};
}

Shape make_shape(int world_size, const Params& p) {
    Shape s;
    std::tie(s.nprod, s.ncons) = split_3_to_1(world_size);

    // per-producer-rank cube of ~grid_points_per_rank cells, arranged by
    // the near-equal factorization of the producer count
    auto side = static_cast<std::uint64_t>(
        std::llround(std::cbrt(static_cast<double>(p.grid_points_per_rank))));
    side         = std::max<std::uint64_t>(side, 2);
    auto factors = diy::RegularDecomposer::factor(s.nprod, 3);
    s.grid_dims  = {factors[0] * side, factors[1] * side, factors[2] * side};

    s.total_particles = p.particles_per_rank * static_cast<std::uint64_t>(s.nprod);
    return s;
}

h5::Datatype particle_type() {
    return h5::Datatype::compound(12)
        .insert("x", 0, h5::dt::float32())
        .insert("y", 4, h5::dt::float32())
        .insert("z", 8, h5::dt::float32());
}

std::vector<std::uint64_t> grid_values(const Shape& s, const diy::Bounds& block) {
    std::vector<std::uint64_t> v(block.size());
    const auto                 dy = s.grid_dims[1], dz = s.grid_dims[2];
    std::size_t                k = 0;
    for (auto x = block.min[0]; x < block.max[0]; ++x)
        for (auto y = block.min[1]; y < block.max[1]; ++y)
            for (auto z = block.min[2]; z < block.max[2]; ++z)
                v[k++] = (static_cast<std::uint64_t>(x) * dy + static_cast<std::uint64_t>(y)) * dz
                         + static_cast<std::uint64_t>(z);
    return v;
}

namespace {
float particle_component(std::uint64_t i, int c) {
    return static_cast<float>(i % 1'000'000) + 0.25f * static_cast<float>(c);
}
} // namespace

std::vector<float> particle_values(std::uint64_t lo, std::uint64_t hi) {
    std::vector<float> v((hi - lo) * 3);
    for (std::uint64_t i = lo; i < hi; ++i)
        for (int c = 0; c < 3; ++c) v[(i - lo) * 3 + static_cast<std::uint64_t>(c)] = particle_component(i, c);
    return v;
}

void validate_grid(const Shape& s, const diy::Bounds& block, const std::vector<std::uint64_t>& v) {
    const auto    dy = s.grid_dims[1], dz = s.grid_dims[2];
    std::uint64_t k = 0;
    for (auto x = block.min[0]; x < block.max[0]; ++x)
        for (auto y = block.min[1]; y < block.max[1]; ++y)
            for (auto z = block.min[2]; z < block.max[2]; ++z, ++k) {
                if (k % 97 != 0) continue; // sampled validation
                auto expect = (static_cast<std::uint64_t>(x) * dy + static_cast<std::uint64_t>(y)) * dz
                              + static_cast<std::uint64_t>(z);
                if (v[k] != expect)
                    throw std::runtime_error("bench: grid validation failed at k=" + std::to_string(k));
            }
}

void validate_particles(std::uint64_t lo, const std::vector<float>& v) {
    for (std::uint64_t k = 0; k < v.size() / 3; k += 97) {
        for (int c = 0; c < 3; ++c)
            if (v[k * 3 + static_cast<std::uint64_t>(c)] != particle_component(lo + k, c))
                throw std::runtime_error("bench: particle validation failed at k=" + std::to_string(k));
    }
}

void produce_synthetic(const Shape& s, int rank, const std::string& fname, const h5::VolPtr& vol) {
    h5::File f = h5::File::create(fname, vol);

    auto g1 = f.create_group("group1");
    auto dg = g1.create_dataset("grid", h5::dt::uint64(),
                                h5::Dataspace({s.grid_dims[0], s.grid_dims[1], s.grid_dims[2]}));
    auto          block  = s.prod_grid_block(rank);
    auto          values = grid_values(s, block);
    h5::Dataspace gsel({s.grid_dims[0], s.grid_dims[1], s.grid_dims[2]});
    gsel.select_box(block);
    dg.write(values.data(), gsel);

    auto g2       = f.create_group("group2");
    auto dp       = g2.create_dataset("particles", particle_type(), h5::Dataspace({s.total_particles}));
    auto [lo, hi] = s.prod_particles(rank);
    auto pvals    = particle_values(lo, hi);
    h5::Dataspace psel({s.total_particles});
    diy::Bounds   pb(1);
    pb.min[0] = static_cast<std::int64_t>(lo);
    pb.max[0] = static_cast<std::int64_t>(hi);
    psel.select_box(pb);
    dp.write(pvals.data(), psel);

    f.close();
}

void consume_synthetic(const Shape& s, int rank, const std::string& fname, const h5::VolPtr& vol,
                       bool validate) {
    h5::File f = h5::File::open(fname, vol);

    auto          dg    = f.open_dataset("group1/grid");
    auto          block = s.cons_grid_block(rank);
    h5::Dataspace gsel({s.grid_dims[0], s.grid_dims[1], s.grid_dims[2]});
    gsel.select_box(block);
    auto gv = dg.read_vector<std::uint64_t>(gsel);

    auto dp       = f.open_dataset("group2/particles");
    auto [lo, hi] = s.cons_particles(rank);
    h5::Dataspace psel({s.total_particles});
    diy::Bounds   pb(1);
    pb.min[0] = static_cast<std::int64_t>(lo);
    pb.max[0] = static_cast<std::int64_t>(hi);
    psel.select_box(pb);
    std::vector<float> pv((hi - lo) * 3);
    dp.read(pv.data(), psel);

    f.close();

    if (validate) {
        validate_grid(s, block, gv);
        validate_particles(lo, pv);
    }
}

double timed_section(const simmpi::Comm& world, const std::function<void()>& fn) {
    world.barrier();
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return world.allreduce(elapsed, [](double a, double b) { return std::max(a, b); });
}

std::vector<int> world_sizes(const Params& p) {
    std::vector<int> sizes;
    for (int n = 4; n <= p.max_procs; n *= 4) sizes.push_back(n);
    if (sizes.empty()) sizes.push_back(4);
    return sizes;
}

void print_table(const std::string& title, const Params& p, const std::vector<int>& sizes,
                 const std::vector<Series>& series) {
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("(per-producer-rank payload: %" PRIu64 " grid points + %" PRIu64
                " particles = %.2f MiB; %d trials averaged)\n",
                p.grid_points_per_rank, p.particles_per_rank,
                static_cast<double>(p.bytes_per_rank()) / (1024.0 * 1024.0), p.trials);
    std::printf("%-8s %-8s %-8s %-12s", "procs", "nprod", "ncons", "data(MiB)");
    for (const auto& s : series) std::printf(" %-24s", s.label.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        auto [np, nc] = split_3_to_1(sizes[i]);
        double mib    = static_cast<double>(p.bytes_per_rank()) * np / (1024.0 * 1024.0);
        std::printf("%-8d %-8d %-8d %-12.1f", sizes[i], np, nc, mib);
        for (const auto& s : series) {
            if (i < s.seconds.size() && s.seconds[i] >= 0)
                std::printf(" %-24.4f", s.seconds[i]);
            else
                std::printf(" %-24s", "-");
        }
        std::printf("\n");
    }
    std::fflush(stdout);
}

namespace {
std::mutex                                        record_mutex;
std::map<std::string, std::map<int, std::vector<double>>> recorded;
std::vector<std::string>                          record_order;
// latest metrics snapshot per (label, world size); missing = no metrics
std::map<std::string, std::map<int, obs::Registry::Snapshot>> recorded_metrics;
} // namespace

void record(const std::string& label, int world_size, double seconds,
            const obs::Registry::Snapshot* metrics) {
    std::lock_guard<std::mutex> lock(record_mutex);
    if (!recorded.count(label)) record_order.push_back(label);
    recorded[label][world_size].push_back(seconds);
    if (metrics) recorded_metrics[label][world_size] = *metrics;
}

void print_recorded(const std::string& title, const Params& p, const std::vector<int>& sizes) {
    std::vector<Series> series;
    {
        std::lock_guard<std::mutex> lock(record_mutex);
        for (const auto& label : record_order) {
            Series s;
            s.label = label;
            for (int ws : sizes) {
                auto it = recorded[label].find(ws);
                if (it == recorded[label].end() || it->second.empty()) {
                    s.seconds.push_back(-1);
                } else {
                    // median: robust against scheduler noise when many
                    // rank-threads share few cores
                    auto v = it->second;
                    std::sort(v.begin(), v.end());
                    s.seconds.push_back(v[v.size() / 2]);
                }
            }
            series.push_back(std::move(s));
        }
    }
    print_table(title, p, sizes, series);
}

// --- unified BENCH_*.json envelope -------------------------------------

obs::json::Value bench_envelope(const std::string& bench,
                                std::uint64_t payload_bytes_per_rank, int trials) {
    obs::json::Value env{obs::json::Object{}};
    env.set("bench", bench);
    env.set("schema", 1);
    env.set("trials", trials);
    env.set("payload_bytes_per_rank", payload_bytes_per_rank);
    // timings taken under the deterministic scheduler measure the
    // serialized schedule, not the parallel data plane — record the mode
    // so such results are never compared against real ones
    const char* sched = std::getenv("L5_SCHED");
    env.set("sched", sched && *sched ? sched : "off");
    env.set("scenarios", obs::json::Value{obs::json::Array{}});
    return env;
}

obs::json::Value phase_json(const obs::Registry::Snapshot& metrics) {
    auto c = [&](const char* name) -> std::uint64_t {
        auto it = metrics.counters.find(name);
        return it == metrics.counters.end() ? 0 : it->second;
    };
    const std::uint64_t query     = c("time_query_ns");
    const std::uint64_t intersect = c("time_query_intersect_ns");
    const std::uint64_t data      = c("time_query_data_ns");

    obs::json::Value phases{obs::json::Object{}};
    phases.set("index_ns", c("time_index_ns"));
    phases.set("serve_ns", c("time_serve_ns"));
    phases.set("query_ns", query);
    phases.set("query_intersect_ns", intersect);
    phases.set("query_data_ns", data);
    phases.set("query_other_ns", query >= intersect + data ? query - intersect - data : 0);
    // sub-phases *inside* query_data_ns (they do not enter the
    // intersect + data + other == query identity): consumer-side frame
    // decompression and the scatter/unpack copies into the user buffer
    phases.set("query_compress_ns", c("time_query_compress_ns"));
    phases.set("query_copy_ns", c("time_query_copy_ns"));
    // serve-side frame encoding, a sub-phase of serve_ns
    phases.set("serve_compress_ns", c("time_serve_compress_ns"));
    return phases;
}

obs::json::Value scenario_json(const std::string& label, int procs, int nprod, int ncons,
                               const std::vector<double>& seconds,
                               const obs::Registry::Snapshot* metrics) {
    obs::json::Value sc{obs::json::Object{}};
    sc.set("label", label);
    sc.set("procs", procs);
    sc.set("nprod", nprod);
    sc.set("ncons", ncons);
    obs::json::Array times;
    for (double s : seconds) times.emplace_back(s);
    sc.set("seconds", obs::json::Value{std::move(times)});
    {
        auto v = seconds;
        std::sort(v.begin(), v.end());
        sc.set("seconds_median", v.empty() ? 0.0 : v[v.size() / 2]);
    }
    if (metrics) {
        sc.set("phases", phase_json(*metrics));
        obs::json::Value counters{obs::json::Object{}};
        for (const auto& [name, v] : metrics->counters)
            if (name.rfind("time_", 0) != 0) counters.set(name, v);
        sc.set("counters", std::move(counters));
        if (auto it = metrics->histograms.find("query_latency_ns");
            it != metrics->histograms.end() && it->second.count) {
            obs::json::Value h{obs::json::Object{}};
            h.set("count", it->second.count);
            h.set("mean", it->second.mean());
            h.set("p50", it->second.quantile(0.5));
            h.set("p99", it->second.quantile(0.99));
            sc.set("query_latency_ns", std::move(h));
        }
    }
    return sc;
}

void add_scenario(obs::json::Value& envelope, obs::json::Value scenario) {
    if (auto* scs = envelope.find("scenarios")) scs->array().push_back(std::move(scenario));
}

bool write_bench_json(const obs::json::Value& envelope) {
    const auto* name = envelope.find("bench");
    if (!name || !name->is_string()) return false;
    const std::string path = "BENCH_" + name->str() + ".json";
    FILE*             f    = std::fopen(path.c_str(), "w");
    if (!f) return false;
    const std::string text = envelope.dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
}

void write_recorded_json(const std::string& bench, const Params& p,
                         const std::vector<int>& sizes) {
    auto env = bench_envelope(bench, p.bytes_per_rank(), p.trials);
    std::lock_guard<std::mutex> lock(record_mutex);
    for (const auto& label : record_order) {
        for (int ws : sizes) {
            auto it = recorded[label].find(ws);
            if (it == recorded[label].end() || it->second.empty()) continue;
            auto [np, nc] = split_3_to_1(ws);
            const obs::Registry::Snapshot* metrics = nullptr;
            if (auto lit = recorded_metrics.find(label); lit != recorded_metrics.end())
                if (auto mit = lit->second.find(ws); mit != lit->second.end())
                    metrics = &mit->second;
            add_scenario(env, scenario_json(label, ws, np, nc, it->second, metrics));
        }
    }
    write_bench_json(env);
}

Series sweep(const std::string& label, const Params& p, const std::vector<int>& sizes,
             const std::function<double(int)>& run_once) {
    Series s;
    s.label = label;
    for (int ws : sizes) {
        double sum = 0;
        for (int t = 0; t < p.trials; ++t) sum += run_once(ws);
        s.seconds.push_back(sum / p.trials);
    }
    return s;
}

} // namespace benchcommon
