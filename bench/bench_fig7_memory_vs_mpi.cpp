/// Figure 7 of the paper: LowFive memory mode vs a hand-written MPI code
/// performing the same redistribution. The paper found LowFive 10-40%
/// *faster* at small scale (its serializer copies contiguous runs while
/// the hand-written code serializes point by point) and ~6% slower at
/// 16K processes.

#include "runners.hpp"

#include <benchmark/benchmark.h>

using namespace benchcommon;

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);

    Params p     = Params::from_env();
    auto   sizes = world_sizes(p);

    for (int ws : sizes) {
        benchmark::RegisterBenchmark(
            ("Fig7/LowFiveMemoryMode/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_lowfive(ws, p, workflow::Mode::in_situ(), /*zerocopy=*/true);
                    st.SetIterationTime(t);
                    record_lowfive("LowFive Memory Mode", ws, t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
        benchmark::RegisterBenchmark(
            ("Fig7/PureMPI/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_pure_mpi(ws, p);
                    st.SetIterationTime(t);
                    record("Pure MPI", ws, t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
    }

    benchmark::RunSpecifiedBenchmarks();
    print_recorded("Figure 7: Weak Scaling, LowFive Memory Mode vs Pure MPI "
                   "(completion time, seconds)",
                   p, sizes);
    std::printf("Expected shape (paper): comparable; LowFive often faster at small scale thanks "
                "to contiguous-run serialization vs the hand-written per-point loop.\n");
    write_recorded_json("fig7_memory_vs_mpi", p, sizes);
    benchmark::Shutdown();
    return 0;
}
