/// Raw-speed benchmark for the data plane: how fast do bytes move from a
/// producer's write buffer into a consumer's read buffer, compared
/// against this machine's raw memcpy bandwidth?
///
/// One producer writes a 1-d uint64 array, one consumer reads all of it:
/// the filespace is one contiguous run, so the consumer scatters replies
/// straight into the user buffer (the direct fast path) and the
/// end-to-end transfer is producer-extract + envelope + consumer-scatter.
///
/// Sections:
///   memcpy     raw single-copy bandwidth per payload size (the baseline
///              the acceptance target is expressed against)
///   sweep      end-to-end payload-size sweep, vectorized kernels; the
///              JSON records bytes / time_query_data_ns per size and the
///              ratio against memcpy at the largest payload
///   kernels    naive / coalesced / vectorized ablation at the largest
///              payload
///   wire       compression ablation on a throttled wire (WireModel at
///              L5_DATAPATH_WIRE_MBPS, default 500): with the wire as the
///              bottleneck, spending serve CPU on the codec must win
///              end-to-end on compressible data
///
/// Environment knobs:
///   L5_BENCH_TRIALS        trials per scenario (default 3)
///   L5_DATAPATH_MAX_MIB    largest payload in MiB (default 128; set 1024
///                          for the paper-style GB-scale point)
///   L5_DATAPATH_WIRE_MBPS  modelled wire bandwidth for the ablation
///
/// Emits BENCH_datapath.json into the working directory.

#include "common.hpp"

#include <h5/par.hpp>
#include <lowfive/codec.hpp>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace h5;
using workflow::Context;
using workflow::Link;
using workflow::Options;

namespace {

std::size_t max_payload_bytes() {
    std::size_t mib = 128;
    if (const char* e = std::getenv("L5_DATAPATH_MAX_MIB"); e && *e) {
        const long long v = std::atoll(e);
        if (v > 0) mib = static_cast<std::size_t>(v);
    }
    return mib << 20;
}

double wire_mbps() {
    if (const char* e = std::getenv("L5_DATAPATH_WIRE_MBPS"); e && *e) return std::atof(e);
    return 500.0;
}

/// Best-of-5 bandwidth of one memcpy of `bytes`, in GB/s.
double memcpy_GBps(std::size_t bytes) {
    std::vector<std::byte> src(bytes), dst(bytes);
    for (std::size_t i = 0; i < bytes; i += 64) src[i] = static_cast<std::byte>(i);
    double best = 0;
    for (int t = 0; t < 5; ++t) {
        const auto t0 = std::chrono::steady_clock::now();
        std::memcpy(dst.data(), src.data(), bytes);
        const auto t1 = std::chrono::steady_clock::now();
        // keep the copy observable
        if (dst[bytes / 2] == std::byte{0xFF}) std::abort();
        const double s = std::chrono::duration<double>(t1 - t0).count();
        if (s > 0) best = std::max(best, static_cast<double>(bytes) / s / 1e9);
    }
    return best;
}

struct EteResult {
    std::vector<double>     seconds; ///< consumer wall per trial
    obs::Registry::Snapshot metrics; ///< consumer, last trial
    obs::Registry::Snapshot producer_metrics;

    std::uint64_t counter(const char* name) const {
        auto it = metrics.counters.find(name);
        return it == metrics.counters.end() ? 0 : it->second;
    }
    double median() const {
        auto s = seconds;
        std::sort(s.begin(), s.end());
        return s.empty() ? 0 : s[s.size() / 2];
    }
};

/// One end-to-end trial: 1 producer writes n uint64s (values = index, so
/// the payload is compressible the way numeric HPC data is), 1 consumer
/// reads the full array once.
void run_ete(std::size_t bytes, KernelMode mode, bool compress, int trials, EteResult& out) {
    set_selection_kernel_mode(mode);
    const std::uint64_t n = bytes / 8;

    for (int t = 0; t < trials; ++t) {
        Options opts;
        opts.mode = workflow::Mode::in_situ();
        workflow::run(
            {
                {"producer", 1,
                 [&](Context& ctx) {
                     File f = File::create("dp.h5", ctx.vol);
                     auto d = f.create_dataset("v", dt::uint64(), Dataspace({n}));
                     std::vector<std::uint64_t> vals(n);
                     for (std::uint64_t i = 0; i < n; ++i) vals[i] = i;
                     d.write(vals.data(), Dataspace({n}));
                     // the close serves the consumer's whole round; the
                     // timed_section barriers pair with the consumer's
                     benchcommon::timed_section(ctx.world, [&] { f.close(); });
                     if (t == trials - 1) out.producer_metrics = ctx.vol->metrics().snapshot();
                 }},
                {"consumer", 1,
                 [&](Context& ctx) {
                     if (compress) ctx.vol->set_compress("*", "*");
                     double s = benchcommon::timed_section(ctx.world, [&] {
                         File f    = File::open("dp.h5", ctx.vol);
                         auto vals = f.open_dataset("v").read_vector<std::uint64_t>();
                         if (vals[n / 2] != n / 2)
                             throw std::runtime_error("bench: wrong data");
                         f.close();
                     });
                     out.seconds.push_back(s);
                     if (t == trials - 1) out.metrics = ctx.vol->metrics().snapshot();
                 }},
            },
            {Link{0, 1, "*"}}, opts);
    }
    set_selection_kernel_mode(KernelMode::vectorized);
}

/// GB/s of the data phase: payload bytes over time_query_data_ns.
double data_GBps(const EteResult& r, std::size_t bytes) {
    const auto ns = r.counter("time_query_data_ns");
    return ns ? static_cast<double>(bytes) / static_cast<double>(ns) : 0.0;
}

obs::json::Value ete_scenario(const std::string& label, std::size_t bytes, const EteResult& r) {
    auto sc = benchcommon::scenario_json(label, 2, 1, 1, r.seconds, &r.metrics);
    sc.set("payload_bytes", static_cast<std::uint64_t>(bytes));
    sc.set("data_GBps", data_GBps(r, bytes));
    return sc;
}

} // namespace

int main() {
    const auto params = benchcommon::Params::from_env();
    const int  trials = params.trials;

    const std::size_t        max_bytes = max_payload_bytes();
    std::vector<std::size_t> sizes;
    for (std::size_t b = max_bytes; b > (1u << 20) && sizes.size() < 3; b /= 8)
        sizes.push_back(b);
    std::reverse(sizes.begin(), sizes.end()); // ascending, largest last

    std::printf("datapath bench: payload sweep up to %zu MiB, %d trials, %d pool workers (%s)\n",
                max_bytes >> 20, trials, par::workers(), kern::dispatch_name());

    auto env = benchcommon::bench_envelope("datapath", max_bytes, trials);
    env.set("kern_dispatch", std::string(kern::dispatch_name()));
    env.set("pool_workers", par::workers());

    // --- memcpy baseline -----------------------------------------------------
    obs::json::Value memcpy_tbl{obs::json::Object{}};
    double           memcpy_largest = 0;
    for (std::size_t b : sizes) {
        const double gbps = memcpy_GBps(b);
        std::printf("  memcpy  %6zu MiB  %7.2f GB/s\n", b >> 20, gbps);
        memcpy_tbl.set(std::to_string(b), gbps);
        if (b == sizes.back()) memcpy_largest = gbps;
    }
    env.set("memcpy_GBps", std::move(memcpy_tbl));

    // --- end-to-end payload sweep, vectorized kernels ------------------------
    double data_largest = 0;
    for (std::size_t b : sizes) {
        EteResult r;
        run_ete(b, KernelMode::vectorized, /*compress=*/false, trials, r);
        const double gbps = data_GBps(r, b);
        std::printf("  sweep   %6zu MiB  %7.2f GB/s data phase  (median wall %.4f s)\n", b >> 20,
                    gbps, r.median());
        benchcommon::add_scenario(
            env, ete_scenario("sweep_vectorized_" + std::to_string(b >> 20) + "mib", b, r));
        if (b == sizes.back()) data_largest = gbps;
    }
    const double ratio = data_largest > 0 ? memcpy_largest / data_largest : 0;
    std::printf("  largest payload: data phase at 1/%.2f of memcpy bandwidth (target <= 2)\n",
                ratio);
    env.set("uncompressed_data_vs_memcpy_ratio_largest", ratio);

    // --- kernel-mode ablation at the largest payload -------------------------
    for (auto [mode, name] : {std::pair{KernelMode::naive, "naive"},
                              std::pair{KernelMode::coalesced, "coalesced"}}) {
        EteResult r;
        run_ete(sizes.back(), mode, /*compress=*/false, trials, r);
        std::printf("  kernel  %-10s %7.2f GB/s data phase\n", name, data_GBps(r, sizes.back()));
        benchcommon::add_scenario(
            env, ete_scenario(std::string("kernel_") + name + "_largest", sizes.back(), r));
    }

    // --- compression ablation on a throttled wire ----------------------------
    const std::size_t wire_bytes = sizes.size() > 1 ? sizes[sizes.size() - 2] : sizes.back();
    const double      mbps       = wire_mbps();
    auto&             wm         = lowfive::codec::WireModel::instance();
    env.set("wire_MBps", mbps);
    double uncompressed_median = 0, compressed_median = 0;
    for (bool compress : {false, true}) {
        wm.configure(mbps);
        wm.reset_stats();
        EteResult r;
        run_ete(wire_bytes, KernelMode::vectorized, compress, trials, r);
        wm.configure(0);
        const char* label = compress ? "wire_throttled_compressed" : "wire_throttled_uncompressed";
        std::printf("  wire    %-28s median %.4f s  (%llu wire bytes last trial)\n", label,
                    r.median(),
                    static_cast<unsigned long long>(r.producer_metrics.counters.count("bytes_wire")
                                                        ? r.producer_metrics.counters.at("bytes_wire")
                                                        : 0));
        auto sc = ete_scenario(std::string(label) + "_" + std::to_string(wire_bytes >> 20) + "mib",
                               wire_bytes, r);
        benchcommon::add_scenario(env, std::move(sc));
        (compress ? compressed_median : uncompressed_median) = r.median();
    }
    const double wire_speedup =
        compressed_median > 0 ? uncompressed_median / compressed_median : 0;
    std::printf("  wire    compression speedup on throttled wire: %.2fx\n", wire_speedup);
    env.set("compression_wire_speedup", wire_speedup);

    benchcommon::write_bench_json(env);
    return 0;
}
