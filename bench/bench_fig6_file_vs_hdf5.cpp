/// Figure 6 of the paper: overhead of the LowFive layer when
/// communicating through a file, vs writing/reading the same file with
/// the plain (native) VOL — "Pure HDF5". The paper found at most ~2x
/// overhead at small scale, converging into run-to-run variance at scale.

#include "runners.hpp"

#include <benchmark/benchmark.h>

using namespace benchcommon;

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);

    h5::PfsModel::instance().configure(1000, 2, 5);
    h5::PfsModel::instance().configure_from_env();

    Params p     = Params::from_env();
    auto   sizes = world_sizes(p);

    for (int ws : sizes) {
        benchmark::RegisterBenchmark(
            ("Fig6/LowFiveFileMode/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_lowfive(ws, p, workflow::Mode::file());
                    st.SetIterationTime(t);
                    record_lowfive("LowFive File Mode", ws, t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
        benchmark::RegisterBenchmark(
            ("Fig6/PureHDF5/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_pure_hdf5(ws, p);
                    st.SetIterationTime(t);
                    record("Pure HDF5", ws, t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
    }

    benchmark::RunSpecifiedBenchmarks();
    print_recorded("Figure 6: Weak Scaling, LowFive File Mode vs Pure HDF5 "
                   "(completion time, seconds)",
                   p, sizes);
    std::printf("Expected shape (paper): LowFive file-mode overhead bounded (~2x worst case), "
                "within variance at scale.\n");
    write_recorded_json("fig6_file_vs_hdf5", p, sizes);
    benchmark::Shutdown();
    return 0;
}
