/// Data-plane benchmark for the pipelined, cached, zero-copy
/// index–serve–query path: m=4 consumers repeatedly read y-slabs of a
/// 256x512x64 uint64 grid (64 MiB) written as x-slabs by n=8 producers,
/// so producer and consumer decompositions cross and every read touches
/// every producer.
///
/// Scenarios (same run, same data):
///   serial_uncached_naive    the pre-optimization plane: one request in
///                            flight at a time, intersect round on every
///                            read, per-row binary-search kernels
///   pipelined_uncached       pipelining + vectorized kernels, cache off
///   pipelined_cached         the full plane; repeated reads skip the
///                            intersect round
///   pipelined_cached_compressed  the full plane with wire compression
///                            negotiated for every dataset (the CPU cost
///                            of the codec on an unthrottled wire; see
///                            bench_datapath for the throttled tradeoff)
///   concurrent_readers_during_publish  the MVCC serve plane: producers
///                            rewrite the file while consumers read
///                            concurrently (background serve); every
///                            read pins one snapshot version and must
///                            come back version-consistent
///
/// Emits BENCH_query_pipeline.json (median of L5_BENCH_TRIALS trials,
/// default 3) into the working directory.

#include "common.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace h5;
using workflow::Context;
using workflow::Link;
using workflow::Options;

namespace {

constexpr std::uint64_t dim_x = 256, dim_y = 512, dim_z = 64;
constexpr int           nprod = 8, ncons = 4;
constexpr int           reads_per_open = 4;

struct ScenarioResult {
    std::string             label;
    std::vector<double>     seconds; ///< one entry per trial
    obs::Registry::Snapshot metrics; ///< consumer rank 0, last trial
    double                  last_wall = 0; ///< wall of the trial `metrics` describes

    std::uint64_t counter(const char* name) const {
        auto it = metrics.counters.find(name);
        return it == metrics.counters.end() ? 0 : it->second;
    }

    double median() const {
        auto s = seconds;
        std::sort(s.begin(), s.end());
        return s[s.size() / 2];
    }
};

diy::Bounds producer_block(int r) {
    diy::Bounds b(3);
    b.min = {static_cast<std::int64_t>(dim_x) / nprod * r, 0, 0};
    b.max = {static_cast<std::int64_t>(dim_x) / nprod * (r + 1),
             static_cast<std::int64_t>(dim_y), static_cast<std::int64_t>(dim_z)};
    return b;
}

diy::Bounds consumer_block(int r) {
    diy::Bounds b(3);
    b.min = {0, static_cast<std::int64_t>(dim_y) / ncons * r, 0};
    b.max = {static_cast<std::int64_t>(dim_x),
             static_cast<std::int64_t>(dim_y) / ncons * (r + 1),
             static_cast<std::int64_t>(dim_z)};
    return b;
}

/// One trial: returns the barrier-bounded wall time of the consume phase
/// (open + reads_per_open reads + close, overlapped with producer serving).
double run_trial(bool pipelined, bool cached, KernelMode kernels, bool compress,
                 ScenarioResult* stats_sink) {
    set_selection_kernel_mode(kernels);

    double  seconds = 0.0;
    Options opts;
    opts.mode = workflow::Mode::in_situ();

    workflow::run(
        {
            {"producer", nprod,
             [&](Context& ctx) {
                 File f = File::create("qp.h5", ctx.vol);
                 auto d = f.create_dataset("grid", dt::uint64(), Dataspace({dim_x, dim_y, dim_z}));

                 const auto mine = producer_block(ctx.rank());
                 Dataspace  sel({dim_x, dim_y, dim_z});
                 sel.select_box(mine);
                 std::vector<std::uint64_t> vals(sel.npoints());
                 std::size_t                k = 0;
                 for (auto x = mine.min[0]; x < mine.max[0]; ++x)
                     for (auto y = mine.min[1]; y < mine.max[1]; ++y)
                         for (auto z = mine.min[2]; z < mine.max[2]; ++z)
                             vals[k++] = (static_cast<std::uint64_t>(x) * dim_y
                                          + static_cast<std::uint64_t>(y)) * dim_z
                                         + static_cast<std::uint64_t>(z);
                 d.write(vals.data(), sel);
                 // the close indexes the file and serves the whole round
                 double t = benchcommon::timed_section(ctx.world, [&] { f.close(); });
                 if (ctx.world.rank() == 0) seconds = t;
             }},
            {"consumer", ncons,
             [&](Context& ctx) {
                 ctx.vol->set_pipelining(pipelined);
                 ctx.vol->set_query_cache(cached);
                 if (compress) ctx.vol->set_compress("*", "*");

                 const auto mine = consumer_block(ctx.rank());
                 Dataspace  sel({dim_x, dim_y, dim_z});
                 sel.select_box(mine);

                 double t = benchcommon::timed_section(ctx.world, [&] {
                     File f = File::open("qp.h5", ctx.vol);
                     auto d = f.open_dataset("grid");
                     for (int r = 0; r < reads_per_open; ++r) {
                         auto vals = d.read_vector<std::uint64_t>(sel);
                         // spot-check so the reads cannot be elided
                         if (vals.front() != (static_cast<std::uint64_t>(mine.min[0]) * dim_y
                                              + static_cast<std::uint64_t>(mine.min[1])) * dim_z)
                             throw std::runtime_error("bench: wrong data");
                     }
                     f.close();
                 });
                 if (stats_sink && ctx.rank() == 0) {
                     stats_sink->metrics   = ctx.vol->metrics().snapshot();
                     stats_sink->last_wall = t;
                 }
             }},
        },
        {Link{0, 1, "*"}}, opts);

    set_selection_kernel_mode(KernelMode::vectorized);
    return seconds;
}

/// One MVCC-plane trial: producers rewrite qpc.h5 `rewrites` times while
/// consumers read concurrently under background serve; every consumer
/// round pins one snapshot version and the spot-check asserts the read
/// came back version-consistent (no torn cross-version reads). Returns
/// the barrier-bounded wall time of the consumer's read loop.
double run_concurrent_trial(ScenarioResult* stats_sink) {
    constexpr int rewrites = 4;

    double  seconds = 0.0;
    Options opts;
    opts.mode             = workflow::Mode::in_situ();
    opts.background_serve = true;

    workflow::run(
        {
            {"producer", nprod,
             [&](Context& ctx) {
                 const auto mine = producer_block(ctx.rank());
                 Dataspace  sel({dim_x, dim_y, dim_z});
                 sel.select_box(mine);
                 std::vector<std::uint64_t> vals(sel.npoints());

                 for (int k = 0; k < rewrites; ++k) {
                     File f = File::create("qpc.h5", ctx.vol);
                     auto d = f.create_dataset("grid", dt::uint64(),
                                               Dataspace({dim_x, dim_y, dim_z}));
                     std::size_t j = 0;
                     for (auto x = mine.min[0]; x < mine.max[0]; ++x)
                         for (auto y = mine.min[1]; y < mine.max[1]; ++y)
                             for (auto z = mine.min[2]; z < mine.max[2]; ++z)
                                 vals[j++] = (static_cast<std::uint64_t>(x) * dim_y
                                              + static_cast<std::uint64_t>(y)) * dim_z
                                             + static_cast<std::uint64_t>(z)
                                             + static_cast<std::uint64_t>(k);
                     d.write(vals.data(), sel);
                     f.close(); // publishes snapshot version k+1
                 }
                 ctx.vol->finish_serving();
             }},
            {"consumer", ncons,
             [&](Context& ctx) {
                 ctx.vol->set_pipelining(true);
                 ctx.vol->set_query_cache(true);

                 const auto mine = consumer_block(ctx.rank());
                 Dataspace  sel({dim_x, dim_y, dim_z});
                 sel.select_box(mine);
                 const std::uint64_t front_base =
                     (static_cast<std::uint64_t>(mine.min[0]) * dim_y
                      + static_cast<std::uint64_t>(mine.min[1])) * dim_z;

                 // time over the consumer sub-world only: producers are
                 // still publishing and never enter this collective
                 double t = benchcommon::timed_section(ctx.local, [&] {
                     for (int r = 0; r < rewrites; ++r) {
                         File f    = File::open("qpc.h5", ctx.vol);
                         auto d    = f.open_dataset("grid");
                         auto vals = d.read_vector<std::uint64_t>(sel);
                         // version-consistency check: front and back of the
                         // slab must carry the same rewrite offset k
                         const std::uint64_t k = vals.front() - front_base;
                         const std::uint64_t back_base =
                             (static_cast<std::uint64_t>(mine.max[0] - 1) * dim_y
                              + static_cast<std::uint64_t>(mine.max[1] - 1)) * dim_z
                             + (dim_z - 1);
                         if (k >= rewrites || vals.back() - back_base != k)
                             throw std::runtime_error("bench: torn concurrent read");
                         f.close();
                     }
                 });
                 if (ctx.rank() == 0) {
                     seconds = t;
                     if (stats_sink) {
                         stats_sink->metrics   = ctx.vol->metrics().snapshot();
                         stats_sink->last_wall = t;
                     }
                 }
             }},
        },
        {Link{0, 1, "*"}}, opts);

    return seconds;
}

ScenarioResult run_scenario(const std::string& label, int trials, bool pipelined, bool cached,
                            KernelMode kernels = KernelMode::vectorized,
                            bool compress = false) {
    ScenarioResult res;
    res.label = label;
    for (int t = 0; t < trials; ++t)
        res.seconds.push_back(run_trial(pipelined, cached, kernels, compress, &res));
    std::printf("  %-24s median %.4f s  (intersects/rank %llu, cache hits %llu)\n", label.c_str(),
                res.median(),
                static_cast<unsigned long long>(res.counter("n_intersect_queries")),
                static_cast<unsigned long long>(res.counter("n_intersect_cache_hits")));
    return res;
}

ScenarioResult run_concurrent_scenario(int trials) {
    ScenarioResult res;
    res.label = "concurrent_readers_during_publish";
    for (int t = 0; t < trials; ++t)
        res.seconds.push_back(run_concurrent_trial(&res));
    std::printf("  %-24s median %.4f s  (intersects/rank %llu, cache hits %llu)\n",
                res.label.c_str(), res.median(),
                static_cast<unsigned long long>(res.counter("n_intersect_queries")),
                static_cast<unsigned long long>(res.counter("n_intersect_cache_hits")));
    return res;
}

void emit_json(const std::vector<ScenarioResult>& results, double speedup, int trials) {
    auto env = benchcommon::bench_envelope("query_pipeline", dim_x * dim_y * dim_z * 8 / nprod,
                                           trials);
    env.set("grid", obs::json::Value{obs::json::Array{
                        obs::json::Value{dim_x}, obs::json::Value{dim_y}, obs::json::Value{dim_z}}});
    env.set("dataset_bytes", dim_x * dim_y * dim_z * 8);
    env.set("reads_per_open", reads_per_open);
    for (const auto& r : results) {
        auto sc = benchcommon::scenario_json(r.label, nprod + ncons, nprod, ncons, r.seconds,
                                             &r.metrics);
        sc.set("wall_last_trial_seconds", r.last_wall);
        benchcommon::add_scenario(env, std::move(sc));
    }
    env.set("speedup_pipelined_cached_vs_serial_uncached_naive", speedup);
    benchcommon::write_bench_json(env);
}

} // namespace

int main() {
    const auto params = benchcommon::Params::from_env();
    const int  trials = params.trials;

    std::printf("query-pipeline bench: %dx%d ranks, %llux%llux%llu uint64 grid (%llu MiB), "
                "%d reads per open, %d trials\n",
                nprod, ncons, static_cast<unsigned long long>(dim_x),
                static_cast<unsigned long long>(dim_y), static_cast<unsigned long long>(dim_z),
                static_cast<unsigned long long>(dim_x * dim_y * dim_z * 8 >> 20), reads_per_open,
                trials);

    std::vector<ScenarioResult> results;
    results.push_back(run_scenario("serial_uncached_naive", trials,
                                   /*pipelined=*/false, /*cached=*/false, KernelMode::naive));
    results.push_back(run_scenario("pipelined_uncached", trials,
                                   /*pipelined=*/true, /*cached=*/false));
    results.push_back(run_scenario("pipelined_cached", trials,
                                   /*pipelined=*/true, /*cached=*/true));
    results.push_back(run_scenario("pipelined_cached_compressed", trials,
                                   /*pipelined=*/true, /*cached=*/true, KernelMode::vectorized,
                                   /*compress=*/true));
    results.push_back(run_concurrent_scenario(trials));

    const double speedup = results.front().median() / results[2].median();
    std::printf("speedup (pipelined_cached vs serial_uncached_naive): %.2fx\n", speedup);
    emit_json(results, speedup, trials);
    return 0;
}
