#pragma once

/// One-shot exchange runners shared by the figure benchmarks: each runs
/// a complete producer→consumer exchange of the synthetic workload at a
/// given world size through one transport and returns the barrier-bounded
/// completion time in seconds (what the paper's y-axes plot).

#include "common.hpp"

namespace benchcommon {

/// LowFive in the given mode (memory = Figs. 5/7/8/9/11, file = Figs. 5/6).
double run_lowfive(int world_size, const Params& p, workflow::Mode mode, bool zerocopy = false);

/// Metrics registry snapshot of consumer rank 0 from the most recent
/// run_lowfive (per-phase time_*_ns breakdown, transfer counters).
obs::Registry::Snapshot last_lowfive_metrics();

/// record() with the last lowfive run's metrics attached, so the
/// BENCH_*.json scenario gains its per-phase breakdown.
void record_lowfive(const std::string& label, int world_size, double seconds);

/// Writing and reading the shared file directly through the native VOL,
/// without the LowFive layer ("Pure HDF5", Fig. 6).
double run_pure_hdf5(int world_size, const Params& p);

/// The hand-written point-to-point redistribution ("Pure MPI", Figs. 7/11).
double run_pure_mpi(int world_size, const Params& p);

/// DataSpaces-like staging (Figs. 8/11). `extra_servers` receives the
/// number of additional server ranks used (the paper reports these as
/// extra resources).
double run_dataspaces(int world_size, const Params& p, int* extra_servers = nullptr);

/// Bredala-like container transport (Fig. 9). Per-dataset times (the
/// decomposition plotted in Fig. 9) are returned through the out params.
double run_bredala(int world_size, const Params& p, double* grid_seconds = nullptr,
                   double* particle_seconds = nullptr);

} // namespace benchcommon
