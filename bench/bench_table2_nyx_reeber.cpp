/// Table II of the paper: the Nyx–Reeber cosmology use case. A MiniNyx
/// simulation (stand-in for Nyx/AMReX) runs two timesteps and writes two
/// snapshots; MiniReeber (stand-in for the Reeber halo finder) reads each
/// snapshot's density field — with a different decomposition — and finds
/// halos. Three scenarios, as in the paper:
///
///   Baseline HDF5 — snapshots go to a single shared file on the
///       modelled PFS; the reader opens it afterwards.
///   Plotfiles    — AMReX-style per-rank files (no shared-file lock
///       contention); the paper omits plotfile *read* time as
///       unrepresentative, and so does our speedup column.
///   LowFive      — the tasks are coupled in situ; no change to the
///       simulation or analysis code, only the plugged-in VOL differs.
///
/// Grid sizes default to 32^3..96^3 (L5_TABLE2_GRIDS=comma-list to
/// change); ranks are 12 simulation + 4 analysis (the paper used
/// 4096 + 1024 — same 4:1 ratio).

#include "common.hpp"

#include <apps/nyx/nyx.hpp>
#include <apps/nyx/plotfile.hpp>
#include <apps/reeber/reeber.hpp>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <vector>

using workflow::Context;
using workflow::Link;

namespace {

constexpr int n_sim_ranks = 12;
constexpr int n_ana_ranks = 4;
constexpr int n_snapshots = 2; // "only the first two time steps", §IV-C

enum class Scenario { LowFive, Hdf5, Plotfiles };

struct Times {
    double write = 0, read = 0;
    std::size_t halos = 0;
};

double now_minus(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

nyx::Config config_for(std::int64_t grid) {
    nyx::Config cfg;
    cfg.grid_size = grid;
    // mean density 2: total particles = 2 * grid^3
    cfg.particles_per_rank =
        static_cast<std::uint64_t>(2 * grid * grid * grid / n_sim_ranks);
    cfg.refine_threshold = 8.0;
    return cfg;
}

std::string snap_name(const std::string& stem, int step) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%05d", step);
    return stem + buf;
}

Times run_scenario(Scenario sc, std::int64_t grid) {
    Times      result;
    std::mutex mutex;

    const std::string stem =
        (std::filesystem::temp_directory_path() / ("nyx_t2_" + std::to_string(grid) + "_plt"))
            .string();

    auto sim_task = [&](Context& ctx) {
        nyx::Simulation sim(ctx.local, config_for(grid));
        double          write_s = 0;
        for (int s = 0; s < n_snapshots; ++s) {
            sim.step();
            auto t0 = std::chrono::steady_clock::now();
            if (sc == Scenario::Plotfiles) {
                sim.write_snapshot_plotfile(snap_name(stem, s));
                write_s += now_minus(t0);
                ctx.world.barrier(); // snapshot visible to the analysis
                ctx.world.barrier(); // analysis done with it
            } else {
                sim.write_snapshot_h5(snap_name(stem, s) + ".mh5", ctx.vol);
                write_s += now_minus(t0);
                ctx.vol->drop_file(snap_name(stem, s) + ".mh5");
            }
        }
        double w = ctx.local.allreduce(write_s, [](double a, double b) { return std::max(a, b); });
        if (ctx.rank() == 0) {
            std::lock_guard<std::mutex> lock(mutex);
            result.write = w;
        }
    };

    auto ana_task = [&](Context& ctx) {
        double      read_s = 0;
        std::size_t halos  = 0;
        for (int s = 0; s < n_snapshots; ++s) {
            reeber::HaloFinder hf(ctx.local, 3.0);
            if (sc == Scenario::Plotfiles) {
                ctx.world.barrier(); // wait for the snapshot
                auto t0 = std::chrono::steady_clock::now();
                nyx::PlotfileReader reader(snap_name(stem, s));
                diy::Bounds         dom(3);
                dom.max = {grid, grid, grid};
                diy::RegularDecomposer dec(dom, ctx.size());
                auto                   block = dec.block_bounds(ctx.rank());
                std::vector<double>    rho;
                reader.read_region(block, rho);
                read_s += now_minus(t0);
                halos = hf.find_halos(grid, block, rho).size();
                ctx.world.barrier();
            } else {
                auto found = hf.run(snap_name(stem, s) + ".mh5", "native_fields/baryon_density",
                                    ctx.vol);
                read_s += hf.last_read_seconds();
                halos = found.size();
            }
        }
        double r = ctx.local.allreduce(read_s, [](double a, double b) { return std::max(a, b); });
        if (ctx.rank() == 0) {
            std::lock_guard<std::mutex> lock(mutex);
            result.read  = r;
            result.halos = halos;
        }
    };

    workflow::Options opts;
    opts.mode = sc == Scenario::Hdf5 ? workflow::Mode::file() : workflow::Mode::in_situ();

    std::vector<Link> links;
    if (sc != Scenario::Plotfiles) links.push_back(Link{0, 1, "*"});

    workflow::run(
        {
            {"nyx", n_sim_ranks, sim_task},
            {"reeber", n_ana_ranks, ana_task},
        },
        links, opts);

    // clean up snapshot files/directories
    for (int s = 0; s < n_snapshots; ++s) {
        std::filesystem::remove(snap_name(stem, s) + ".mh5");
        std::filesystem::remove_all(snap_name(stem, s));
    }
    return result;
}

} // namespace

int main() {
    // PFS calibration for the use case: a per-job share of a busy Lustre
    // system (the synthetic-benchmark binaries use a more generous share;
    // both are overridable through L5_PFS_* env vars). The *ratios* in
    // the table, not the absolute seconds, are what reproduce the paper.
    h5::PfsModel::instance().configure(200, 4, 5);
    h5::PfsModel::instance().configure_from_env();

    std::vector<std::int64_t> grids{32, 48, 64, 96};
    if (const char* s = std::getenv("L5_TABLE2_GRIDS")) {
        grids.clear();
        std::string list(s);
        std::size_t pos = 0;
        while (pos < list.size()) {
            auto end = list.find(',', pos);
            grids.push_back(std::atoll(list.substr(pos, end - pos).c_str()));
            pos = end == std::string::npos ? list.size() : end + 1;
        }
    }

    std::printf("=== Table II: MiniNyx-MiniReeber use case (%d sim ranks, %d analysis ranks, "
                "%d snapshots; seconds) ===\n",
                n_sim_ranks, n_ana_ranks, n_snapshots);
    std::printf("(PFS model: %.0f MB/s, %.1f ms open latency, %.1f us shared-file lock cost; "
                "plotfile read time measured but excluded from speedups, as in the paper)\n\n",
                h5::PfsModel::instance().bandwidth_MBps(), h5::PfsModel::instance().latency_ms(),
                h5::PfsModel::instance().lock_us());
    std::printf("%-10s %-10s %-10s %-10s %-10s %-10s %-10s %-12s %-12s %-8s\n", "Data size",
                "L5 write", "L5 read", "H5 write", "H5 read", "Plt write", "Plt read",
                "L5 vs HDF5", "L5 vs Plt", "halos");

    for (auto g : grids) {
        Times l5  = run_scenario(Scenario::LowFive, g);
        Times h5t = run_scenario(Scenario::Hdf5, g);
        Times plt = run_scenario(Scenario::Plotfiles, g);

        double l5_total = l5.write + l5.read;
        double vs_hdf5  = (h5t.write + h5t.read) / l5_total;
        double vs_plt   = plt.write / l5_total; // read excluded: lower bound, as in the paper

        char label[16];
        std::snprintf(label, sizeof(label), "%lld^3", static_cast<long long>(g));
        std::printf("%-10s %-10.3f %-10.3f %-10.3f %-10.3f %-10.3f %-10.3f %-12.2f %-12.2f %-8zu\n",
                    label, l5.write, l5.read, h5t.write, h5t.read, plt.write, plt.read, vs_hdf5,
                    vs_plt, l5.halos);
        std::fflush(stdout);
    }

    std::printf("\nExpected shape (paper): LowFive write roughly flat with size; HDF5 shared-file "
                "write growing drastically; speedup factors increasing with data size.\n");
    return 0;
}
