/// Figure 9 of the paper: LowFive memory mode vs Bredala (the Decaf
/// transport), with Bredala's time decomposed per dataset. The particle
/// list uses Bredala's contiguous redistribution (reasonable); the grid
/// uses its bounding-box redistribution, whose published implementation
/// computes and communicates the global box index redundantly and
/// serializes per point with coordinates — which is why the grid curve
/// blows up.

#include "runners.hpp"

#include <benchmark/benchmark.h>

using namespace benchcommon;

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);

    Params p     = Params::from_env();
    auto   sizes = world_sizes(p);

    for (int ws : sizes) {
        benchmark::RegisterBenchmark(
            ("Fig9/LowFiveMemoryMode/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    double t = run_lowfive(ws, p, workflow::Mode::in_situ(), /*zerocopy=*/true);
                    st.SetIterationTime(t);
                    record_lowfive("LowFive Memory Mode", ws, t);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
        benchmark::RegisterBenchmark(
            ("Fig9/Bredala/procs:" + std::to_string(ws)).c_str(),
            [ws, p](benchmark::State& st) {
                for (auto _ : st) {
                    double grid = 0, particles = 0;
                    double t = run_bredala(ws, p, &grid, &particles);
                    st.SetIterationTime(t);
                    record("Bredala total", ws, t);
                    record("Bredala grid", ws, grid);
                    record("Bredala particles", ws, particles);
                }
            })
            ->UseManualTime()
            ->Iterations(p.trials);
    }

    benchmark::RunSpecifiedBenchmarks();
    print_recorded("Figure 9: Weak Scaling, LowFive Memory Mode vs Bredala "
                   "(completion time, seconds; Bredala decomposed per dataset)",
                   p, sizes);
    std::printf("Expected shape (paper): LowFive much faster overall; Bredala's particle "
                "(contiguous) time reasonable, grid (bounding-box) time dominating and scaling "
                "poorly.\n");
    write_recorded_json("fig9_memory_vs_bredala", p, sizes);
    benchmark::Shutdown();
    return 0;
}
