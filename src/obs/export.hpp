#pragma once

/// Exporters over a trace snapshot: Chrome trace-event JSON (one timeline
/// lane per simulated rank; loadable in chrome://tracing or Perfetto), a
/// plain-text per-phase summary, and the per-phase aggregation the bench
/// envelopes embed.

#include "trace.hpp"

#include <iosfwd>
#include <map>
#include <string>

namespace obs {

/// Write events as a Chrome trace-event JSON object
/// ({"traceEvents": [...]}) with thread-name metadata per rank lane.
void write_chrome_trace(std::ostream& os, const std::vector<Event>& events);

/// Snapshot the global tracer and write it to `path`; returns false when
/// the file cannot be opened.
bool write_chrome_trace_file(const std::string& path);

/// Aggregate per span name: how often it ran, total time inside it, and
/// the sum of its "bytes" arguments (Begin or End). Spans are paired per
/// rank in LIFO order; unmatched events are ignored. Instants contribute
/// count/bytes only.
struct PhaseStat {
    std::uint64_t count    = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t bytes    = 0;
};
std::map<std::string, PhaseStat> phase_totals(const std::vector<Event>& events);

/// Per-phase text table (name, count, total ms, mean us, MiB).
void write_summary(std::ostream& os, const std::map<std::string, PhaseStat>& phases);

} // namespace obs
