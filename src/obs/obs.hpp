#pragma once

/// Umbrella header for the telemetry subsystem: span tracing (trace.hpp),
/// always-on metrics (metrics.hpp), exporters (export.hpp), and the JSON
/// value model they emit (json.hpp).

#include "export.hpp"
#include "json.hpp"
#include "metrics.hpp"
#include "trace.hpp"
