#pragma once

/// Always-on metrics: named counters, gauges, and log-scale latency
/// histograms backed by atomics. Unlike tracing (trace.hpp), metrics are
/// never switched off — increments are single relaxed atomic RMWs, cheap
/// enough to leave in production paths — and reads take a consistent-ish
/// snapshot by value, so concurrent writers (e.g. a background serve
/// thread) never race with readers.
///
/// A Registry is a named collection owned by a component (each
/// DistMetadataVol instance has one); Registry::global() is the
/// process-wide registry for code without a natural owner.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace obs {

class Counter {
public:
    void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
    void inc() { add(1); }
    std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> v_{0};
};

class Gauge {
public:
    void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
    std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram for latencies in nanoseconds: bucket k counts
/// observations in [2^k, 2^(k+1)) (bucket 0 also takes 0). Covers 1 ns to
/// ~18 s in 64 buckets with one relaxed RMW per observation.
class Histogram {
public:
    static constexpr int n_buckets = 64;

    void observe(std::uint64_t ns) {
        buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(ns, std::memory_order_relaxed);
    }

    struct Snapshot {
        std::array<std::uint64_t, n_buckets> buckets{};
        std::uint64_t                        count = 0;
        std::uint64_t                        sum   = 0;
        /// Upper bound of the bucket holding quantile q (0 < q <= 1).
        std::uint64_t quantile(double q) const;
        double        mean() const { return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0; }
    };
    Snapshot snapshot() const;

    static int bucket_of(std::uint64_t ns) {
        return ns ? 63 - __builtin_clzll(ns) : 0;
    }

private:
    std::array<std::atomic<std::uint64_t>, n_buckets> buckets_{};
    std::atomic<std::uint64_t>                        sum_{0};
};

/// Named collection of metrics. Lookup interns the instrument on first
/// use and returns a stable reference — resolve once, then update
/// lock-free. Snapshots read every instrument with relaxed loads.
class Registry {
public:
    Counter&   counter(std::string_view name);
    Gauge&     gauge(std::string_view name);
    Histogram& histogram(std::string_view name);

    struct Snapshot {
        std::map<std::string, std::uint64_t>       counters;
        std::map<std::string, std::int64_t>        gauges;
        std::map<std::string, Histogram::Snapshot> histograms;
    };
    Snapshot snapshot() const;

    /// The process-wide registry.
    static Registry& global();

private:
    mutable std::mutex                                mutex_; ///< name maps only
    std::map<std::string, std::unique_ptr<Counter>>   counters_;
    std::map<std::string, std::unique_ptr<Gauge>>     gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII phase timer: adds the elapsed nanoseconds to a counter (and
/// optionally observes a histogram) at scope exit. Always on — two
/// steady-clock reads per phase, negligible against the ms-scale phases
/// it wraps — so per-phase breakdowns are available without tracing.
class ScopedTimerNs {
public:
    explicit ScopedTimerNs(Counter& total_ns, Histogram* hist = nullptr);
    ~ScopedTimerNs();

    ScopedTimerNs(const ScopedTimerNs&)            = delete;
    ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

private:
    Counter&      total_;
    Histogram*    hist_;
    std::uint64_t t0_;
};

} // namespace obs
