#pragma once

/// Span tracing for the transport stack: per-rank lock-free ring buffers
/// of fixed-size trace events, filled through RAII spans, instant events,
/// and counter samples. Recording is off by default; when disabled every
/// instrumentation point costs one relaxed atomic load. When enabled,
/// each rank-thread appends to its own single-writer ring buffer (no
/// locks on the hot path); a full buffer drops further events and counts
/// the drops rather than blocking or overwriting.
///
/// Rank lanes: simmpi::Runtime tags each rank-thread with its world rank
/// (set_thread_rank), so every event lands in that rank's timeline lane.
/// Threads outside a runtime (e.g. the driver) record under rank -1.
///
/// Exporters (export.hpp) turn a snapshot into Chrome trace-event JSON
/// (loadable in chrome://tracing or Perfetto) or a per-phase text summary.

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace obs {

/// Nanoseconds on the steady clock since the process-wide trace epoch
/// (the first call in the process).
std::uint64_t now_ns();

enum class EventType : std::uint8_t {
    Begin,   ///< span opened
    End,     ///< span closed (innermost open span of the rank)
    Instant, ///< point event
    Counter, ///< sampled value (args[0] holds the sample)
};

/// One fixed-size trace record. Strings are not owned: `name`, `cat`,
/// and arg keys/strings must be literals or interned (see intern()).
///
/// Well-known categories: "simmpi" (point-to-point and collective spans),
/// "vol" (metadata/dist VOL operations), "fault" (injected faults), and
/// "sched" (deterministic-scheduler decisions: sched.pick,
/// sched.change_point, sched.timeout, sched.deadlock — the pick sequence
/// is the replayable schedule; filter with `mh5trace -c sched`).
struct Event {
    struct Arg {
        const char*   key = nullptr;
        std::uint64_t num = 0;
        const char*   str = nullptr; ///< when non-null, exported instead of num
    };
    static constexpr int max_args = 4;

    const char*   name  = nullptr;
    const char*   cat   = nullptr;
    std::uint64_t ts_ns = 0;
    EventType     type  = EventType::Instant;
    std::int32_t  rank  = -1;
    std::uint8_t  nargs = 0;
    Arg           args[max_args];
};

/// Intern a dynamic string so its pointer stays valid for the lifetime of
/// the process (idempotent: equal contents return the same pointer).
const char* intern(std::string_view s);

class Tracer;

/// intern() only when tracing is enabled — keeps dynamic-string args off
/// the hot path in the (default) disabled state. Declared here, defined
/// after Tracer below.
inline const char* intern_if_enabled(std::string_view s);

/// Tag the calling thread with a rank lane; -1 untags.
void set_thread_rank(int rank);
int  thread_rank();

namespace detail {

/// Single-writer ring with drop-when-full semantics: the owning thread
/// appends and release-publishes the count; any thread may read the
/// published prefix concurrently, race-free, because published slots are
/// never rewritten.
class EventBuffer {
public:
    explicit EventBuffer(std::size_t capacity, int rank)
        : slots_(capacity), rank_(rank) {}

    int rank() const { return rank_; }

    bool push(const Event& e) {
        const std::size_t n = size_.load(std::memory_order_relaxed);
        if (n >= slots_.size()) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        slots_[n] = e;
        size_.store(n + 1, std::memory_order_release);
        return true;
    }

    std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

    /// Append the published prefix to `out`.
    void read(std::vector<Event>& out) const {
        const std::size_t n = size_.load(std::memory_order_acquire);
        out.insert(out.end(), slots_.begin(),
                   slots_.begin() + static_cast<std::ptrdiff_t>(n));
    }

private:
    std::vector<Event>         slots_;
    std::atomic<std::size_t>   size_{0};
    std::atomic<std::uint64_t> dropped_{0};
    int                        rank_;
};

} // namespace detail

/// Process-wide trace collector. All methods are thread-safe; emit() and
/// the Span/instant/counter helpers are lock-free after a thread's first
/// event (which registers its buffer).
class Tracer {
public:
    static Tracer& instance();

    /// Recording switch. Disabled is the default and the near-zero-cost
    /// state: instrumentation points check this and return.
    static bool enabled() {
        return instance().enabled_.load(std::memory_order_relaxed);
    }
    void set_enabled(bool v) { enabled_.store(v, std::memory_order_relaxed); }

    /// Capacity (events) of buffers created after the call; default 1<<15.
    void        set_capacity(std::size_t events);
    std::size_t capacity() const;

    /// Drop every completed buffer and detach live threads from theirs
    /// (they re-register on their next event). Events recorded so far are
    /// discarded.
    void clear();

    /// Copy of all published events, stably sorted by (rank, timestamp).
    std::vector<Event> snapshot() const;

    /// Total events dropped across all buffers since the last clear().
    std::uint64_t dropped() const;

    /// Append `e` (timestamp/rank filled in) to this thread's buffer.
    /// No-op when disabled.
    static void emit(Event&& e);

private:
    Tracer() = default;

    detail::EventBuffer* thread_buffer();

    std::atomic<bool>        enabled_{false};
    std::atomic<std::size_t> capacity_{1u << 15};
    std::atomic<std::uint64_t> epoch_{0}; ///< bumped by clear(); stale TLS detection

    mutable std::mutex mutex_; ///< guards buffers_ (registration + snapshot)
    std::vector<std::shared_ptr<detail::EventBuffer>> buffers_;

    friend class Span;
};

inline const char* intern_if_enabled(std::string_view s) {
    return Tracer::enabled() ? intern(s) : "";
}

// --- emission helpers ---------------------------------------------------------

inline void instant(const char* name, const char* cat,
                    std::initializer_list<Event::Arg> args = {}) {
    if (!Tracer::enabled()) return;
    Event e;
    e.name = name;
    e.cat  = cat;
    e.type = EventType::Instant;
    for (const auto& a : args)
        if (e.nargs < Event::max_args) e.args[e.nargs++] = a;
    Tracer::emit(std::move(e));
}

inline void counter(const char* name, const char* cat, std::uint64_t value) {
    if (!Tracer::enabled()) return;
    Event e;
    e.name    = name;
    e.cat     = cat;
    e.type    = EventType::Counter;
    e.nargs   = 1;
    e.args[0] = {"value", value, nullptr};
    Tracer::emit(std::move(e));
}

/// RAII span: emits Begin at construction and End at destruction. When
/// tracing is disabled at construction the span is inert (one relaxed
/// load, nothing else — the End is suppressed even if tracing turns on
/// mid-span, keeping every rank's Begin/End stream balanced).
class Span {
public:
    Span(const char* name, const char* cat,
         std::initializer_list<Event::Arg> args = {}) {
        if (!Tracer::enabled()) return;
        name_ = name;
        cat_  = cat;
        Event e;
        e.name = name;
        e.cat  = cat;
        e.type = EventType::Begin;
        for (const auto& a : args)
            if (e.nargs < Event::max_args) e.args[e.nargs++] = a;
        Tracer::emit(std::move(e));
    }

    Span(const Span&)            = delete;
    Span& operator=(const Span&) = delete;

    /// Attach an argument to the closing End event (e.g. a byte count
    /// known only at completion).
    void end_arg(const char* key, std::uint64_t num) {
        if (!name_ || end_nargs_ >= Event::max_args) return;
        end_args_[end_nargs_++] = {key, num, nullptr};
    }

    ~Span() {
        if (!name_) return;
        Event e;
        e.name  = name_;
        e.cat   = cat_;
        e.type  = EventType::End;
        e.nargs = end_nargs_;
        for (int i = 0; i < end_nargs_; ++i) e.args[i] = end_args_[i];
        Tracer::emit(std::move(e));
    }

private:
    const char* name_ = nullptr; ///< null = inert
    const char* cat_  = nullptr;
    std::uint8_t end_nargs_ = 0;
    Event::Arg   end_args_[Event::max_args];
};

} // namespace obs
