#include "trace.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_set>

namespace obs {

std::uint64_t now_ns() {
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch).count());
}

const char* intern(std::string_view s) {
    static std::mutex                      mutex;
    static std::unordered_set<std::string> pool;
    std::lock_guard<std::mutex>            lock(mutex);
    return pool.emplace(s).first->c_str();
}

namespace {

struct ThreadState {
    int                                  rank = -1;
    std::shared_ptr<detail::EventBuffer> buffer;   ///< shared with the registry
    std::uint64_t                        epoch = 0; ///< Tracer epoch the buffer belongs to
};

thread_local ThreadState tls;

} // namespace

void set_thread_rank(int rank) {
    tls.rank = rank;
    // a lane change invalidates the buffer (events carry the buffer's rank)
    tls.buffer.reset();
}

int thread_rank() { return tls.rank; }

Tracer& Tracer::instance() {
    static Tracer tracer;
    return tracer;
}

void Tracer::set_capacity(std::size_t events) {
    capacity_.store(events ? events : 1, std::memory_order_relaxed);
}

std::size_t Tracer::capacity() const { return capacity_.load(std::memory_order_relaxed); }

void Tracer::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.clear();
    // live threads notice the epoch bump and re-register on their next event
    epoch_.fetch_add(1, std::memory_order_relaxed);
}

detail::EventBuffer* Tracer::thread_buffer() {
    const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
    if (!tls.buffer || tls.epoch != epoch) {
        tls.buffer = std::make_shared<detail::EventBuffer>(capacity(), tls.rank);
        tls.epoch  = epoch;
        std::lock_guard<std::mutex> lock(mutex_);
        buffers_.push_back(tls.buffer);
    }
    return tls.buffer.get();
}

void Tracer::emit(Event&& e) {
    Tracer& t = instance();
    if (!t.enabled_.load(std::memory_order_relaxed)) return;
    auto* buf = t.thread_buffer();
    e.ts_ns   = now_ns();
    e.rank    = buf->rank();
    buf->push(e);
}

std::vector<Event> Tracer::snapshot() const {
    std::vector<std::shared_ptr<detail::EventBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        buffers = buffers_;
    }
    std::vector<Event> out;
    for (const auto& b : buffers) b->read(out);
    std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
        return a.rank != b.rank ? a.rank < b.rank : a.ts_ns < b.ts_ns;
    });
    return out;
}

std::uint64_t Tracer::dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t               n = 0;
    for (const auto& b : buffers_) n += b->dropped();
    return n;
}

} // namespace obs
