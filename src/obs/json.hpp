#pragma once

/// Minimal JSON value model: enough to write the Chrome trace-event files
/// the exporter produces and to parse them back (mh5trace, tests, and the
/// bench envelopes). Numbers are doubles; object key order is preserved.
/// Not a general-purpose JSON library — no \u escapes beyond pass-through,
/// no streaming — but it round-trips everything this repo emits.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace obs::json {

class Value;
using Array  = std::vector<Value>;
using Member = std::pair<std::string, Value>;
using Object = std::vector<Member>;

class Value {
public:
    // -Wshadow false positive: scoped enumerators cannot be confused with
    // the namespace-level Array/Object aliases they nominally shadow
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wshadow"
    enum class Kind { Null, Bool, Number, String, Array, Object };
#pragma GCC diagnostic pop

    Value() = default;
    Value(std::nullptr_t) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double n) : kind_(Kind::Number), num_(n) {}
    Value(int n) : kind_(Kind::Number), num_(n) {}
    Value(std::uint64_t n) : kind_(Kind::Number), num_(static_cast<double>(n)) {}
    Value(std::int64_t n) : kind_(Kind::Number), num_(static_cast<double>(n)) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(const char* s) : kind_(Kind::String), str_(s) {}
    Value(Array a) : kind_(Kind::Array), arr_(std::move(a)) {}
    Value(Object o) : kind_(Kind::Object), obj_(std::move(o)) {}

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::Null; }
    bool is_number() const { return kind_ == Kind::Number; }
    bool is_string() const { return kind_ == Kind::String; }
    bool is_array() const { return kind_ == Kind::Array; }
    bool is_object() const { return kind_ == Kind::Object; }

    bool               boolean() const { return bool_; }
    double             number() const { return num_; }
    const std::string& str() const { return str_; }
    const Array&       array() const { return arr_; }
    Array&             array() { return arr_; }
    const Object&      object() const { return obj_; }
    Object&            object() { return obj_; }

    /// Object member lookup; nullptr when absent or not an object.
    const Value* find(std::string_view key) const;
    Value*       find(std::string_view key);

    /// Append/overwrite an object member.
    void set(std::string key, Value v);

    /// Serialize. `indent` > 0 pretty-prints with that many spaces.
    std::string dump(int indent = 0) const;

    /// Parse a complete JSON document; throws std::runtime_error with a
    /// byte offset on malformed input.
    static Value parse(std::string_view text);

private:
    void write(std::string& out, int indent, int depth) const;

    Kind        kind_ = Kind::Null;
    bool        bool_ = false;
    double      num_  = 0;
    std::string str_;
    Array       arr_;
    Object      obj_;
};

/// Quote and escape a string for direct JSON emission.
std::string escape(std::string_view s);

} // namespace obs::json
