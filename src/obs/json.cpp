#include "json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace obs::json {

const Value* Value::find(std::string_view key) const {
    if (kind_ != Kind::Object) return nullptr;
    for (const auto& [k, v] : obj_)
        if (k == key) return &v;
    return nullptr;
}

Value* Value::find(std::string_view key) {
    return const_cast<Value*>(static_cast<const Value*>(this)->find(key));
}

void Value::set(std::string key, Value v) {
    if (kind_ == Kind::Null) kind_ = Kind::Object;
    for (auto& [k, old] : obj_)
        if (k == key) {
            old = std::move(v);
            return;
        }
    obj_.emplace_back(std::move(key), std::move(v));
}

std::string escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

namespace {

void write_number(std::string& out, double n) {
    if (std::floor(n) == n && std::fabs(n) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(n));
        out += buf;
    } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.9g", n);
        out += buf;
    }
}

void newline_indent(std::string& out, int indent, int depth) {
    if (!indent) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

} // namespace

void Value::write(std::string& out, int indent, int depth) const {
    switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: write_number(out, num_); break;
    case Kind::String: out += escape(str_); break;
    case Kind::Array:
        out.push_back('[');
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i) out.push_back(',');
            newline_indent(out, indent, depth + 1);
            arr_[i].write(out, indent, depth + 1);
        }
        if (!arr_.empty()) newline_indent(out, indent, depth);
        out.push_back(']');
        break;
    case Kind::Object:
        out.push_back('{');
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i) out.push_back(',');
            newline_indent(out, indent, depth + 1);
            out += escape(obj_[i].first);
            out += indent ? ": " : ":";
            obj_[i].second.write(out, indent, depth + 1);
        }
        if (!obj_.empty()) newline_indent(out, indent, depth);
        out.push_back('}');
        break;
    }
}

std::string Value::dump(int indent) const {
    std::string out;
    write(out, indent, 0);
    return out;
}

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value parse_document() {
        Value v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing content");
        return v;
    }

private:
    [[noreturn]] void fail(const char* what) {
        throw std::runtime_error("json: " + std::string(what) + " at byte "
                                 + std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n'
                   || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    bool consume(char c) {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void expect(char c) {
        if (!consume(c)) fail("unexpected character");
    }

    bool consume_word(std::string_view w) {
        if (text_.substr(pos_, w.size()) == w) {
            pos_ += w.size();
            return true;
        }
        return false;
    }

    Value parse_value() {
        skip_ws();
        char c = peek();
        if (c == '{') return parse_object();
        if (c == '[') return parse_array();
        if (c == '"') return Value(parse_string());
        if (consume_word("true")) return Value(true);
        if (consume_word("false")) return Value(false);
        if (consume_word("null")) return Value(nullptr);
        return parse_number();
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                if (pos_ + 4 > text_.size()) fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
                    else fail("bad \\u escape");
                }
                // minimal UTF-8 encoding (surrogate pairs unsupported)
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
            }
            default: fail("unknown escape");
            }
        }
    }

    Value parse_number() {
        const std::size_t start = pos_;
        if (consume('-')) {}
        while (pos_ < text_.size()
               && (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.'
                   || text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+'
                   || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) fail("expected a value");
        return Value(std::stod(std::string(text_.substr(start, pos_ - start))));
    }

    Value parse_array() {
        expect('[');
        Array out;
        skip_ws();
        if (consume(']')) return Value(std::move(out));
        for (;;) {
            out.push_back(parse_value());
            skip_ws();
            if (consume(']')) return Value(std::move(out));
            expect(',');
        }
    }

    Value parse_object() {
        expect('{');
        Object out;
        skip_ws();
        if (consume('}')) return Value(std::move(out));
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            out.emplace_back(std::move(key), parse_value());
            skip_ws();
            if (consume('}')) return Value(std::move(out));
            expect(',');
        }
    }

    std::string_view text_;
    std::size_t      pos_ = 0;
};

} // namespace

Value Value::parse(std::string_view text) { return Parser(text).parse_document(); }

} // namespace obs::json
