#include "metrics.hpp"

#include "trace.hpp"

namespace obs {

std::uint64_t Histogram::Snapshot::quantile(double q) const {
    if (!count) return 0;
    auto target = static_cast<std::uint64_t>(q * static_cast<double>(count));
    if (target >= count) target = count - 1;
    std::uint64_t seen = 0;
    for (int k = 0; k < n_buckets; ++k) {
        seen += buckets[static_cast<std::size_t>(k)];
        if (seen > target) return k >= 63 ? ~0ull : (2ull << k);
    }
    return ~0ull;
}

Histogram::Snapshot Histogram::snapshot() const {
    Snapshot s;
    for (int k = 0; k < n_buckets; ++k) {
        s.buckets[static_cast<std::size_t>(k)] =
            buckets_[static_cast<std::size_t>(k)].load(std::memory_order_relaxed);
        s.count += s.buckets[static_cast<std::size_t>(k)];
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
}

Counter& Registry::counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto&                       slot = counters_[std::string(name)];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& Registry::gauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto&                       slot = gauges_[std::string(name)];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& Registry::histogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto&                       slot = histograms_[std::string(name)];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
}

Registry::Snapshot Registry::snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot                    s;
    for (const auto& [name, c] : counters_) s.counters[name] = c->value();
    for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
    for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
    return s;
}

Registry& Registry::global() {
    static Registry registry;
    return registry;
}

ScopedTimerNs::ScopedTimerNs(Counter& total_ns, Histogram* hist)
    : total_(total_ns), hist_(hist), t0_(now_ns()) {}

ScopedTimerNs::~ScopedTimerNs() {
    const std::uint64_t dt = now_ns() - t0_;
    total_.add(dt);
    if (hist_) hist_->observe(dt);
}

} // namespace obs
