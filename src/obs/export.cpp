#include "export.hpp"

#include "json.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <set>
#include <vector>

namespace obs {

namespace {

const char* phase_letter(EventType t) {
    switch (t) {
    case EventType::Begin: return "B";
    case EventType::End: return "E";
    case EventType::Instant: return "i";
    case EventType::Counter: return "C";
    }
    return "i";
}

json::Value args_object(const Event& e) {
    json::Object args;
    for (int i = 0; i < e.nargs; ++i) {
        const auto& a = e.args[i];
        if (!a.key) continue;
        if (a.str)
            args.emplace_back(a.key, json::Value(std::string(a.str)));
        else
            args.emplace_back(a.key, json::Value(a.num));
    }
    return json::Value(std::move(args));
}

} // namespace

void write_chrome_trace(std::ostream& os, const std::vector<Event>& events) {
    // lane metadata: name + sort order per rank seen in the stream
    std::set<std::int32_t> ranks;
    for (const auto& e : events) ranks.insert(e.rank);

    // stream the array instead of building one json::Value for the whole
    // trace (traces can hold hundreds of thousands of events)
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    auto emit  = [&](const json::Value& v) {
        os << (first ? "\n" : ",\n") << v.dump();
        first = false;
    };

    for (std::int32_t r : ranks) {
        const std::string lane = r < 0 ? "driver" : "rank " + std::to_string(r);
        json::Value       meta;
        meta.set("name", "thread_name");
        meta.set("ph", "M");
        meta.set("pid", 0);
        meta.set("tid", r);
        json::Value args;
        args.set("name", lane);
        meta.set("args", std::move(args));
        emit(meta);

        json::Value sort;
        sort.set("name", "thread_sort_index");
        sort.set("ph", "M");
        sort.set("pid", 0);
        sort.set("tid", r);
        json::Value sargs;
        sargs.set("sort_index", r);
        sort.set("args", std::move(sargs));
        emit(sort);
    }

    for (const auto& e : events) {
        json::Value v;
        v.set("name", std::string(e.name ? e.name : "?"));
        if (e.cat) v.set("cat", std::string(e.cat));
        v.set("ph", phase_letter(e.type));
        v.set("ts", static_cast<double>(e.ts_ns) / 1000.0); // microseconds
        v.set("pid", 0);
        v.set("tid", e.rank);
        if (e.type == EventType::Instant) v.set("s", "t");
        if (e.nargs) v.set("args", args_object(e));
        emit(v);
    }
    os << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path) {
    std::ofstream os(path);
    if (!os) return false;
    write_chrome_trace(os, Tracer::instance().snapshot());
    return bool(os);
}

std::map<std::string, PhaseStat> phase_totals(const std::vector<Event>& events) {
    std::map<std::string, PhaseStat> out;

    auto bytes_of = [](const Event& e) {
        std::uint64_t b = 0;
        for (int i = 0; i < e.nargs; ++i)
            if (e.args[i].key && std::strcmp(e.args[i].key, "bytes") == 0 && !e.args[i].str)
                b += e.args[i].num;
        return b;
    };

    struct Open {
        const char*   name;
        std::uint64_t ts;
    };
    std::map<std::int32_t, std::vector<Open>> stacks; // per rank (events are rank-sorted)

    for (const auto& e : events) {
        const std::string name = e.name ? e.name : "?";
        switch (e.type) {
        case EventType::Begin: {
            auto& s = out[name];
            ++s.count;
            s.bytes += bytes_of(e);
            stacks[e.rank].push_back({e.name, e.ts_ns});
            break;
        }
        case EventType::End: {
            auto& stack = stacks[e.rank];
            // pop to the matching open span (tolerates truncated streams:
            // drops from a full ring can orphan opens)
            while (!stack.empty()) {
                Open open = stack.back();
                stack.pop_back();
                if (open.name && e.name && std::strcmp(open.name, e.name) == 0) {
                    out[name].total_ns += e.ts_ns - open.ts;
                    break;
                }
            }
            out[name].bytes += bytes_of(e);
            break;
        }
        case EventType::Instant: {
            auto& s = out[name];
            ++s.count;
            s.bytes += bytes_of(e);
            break;
        }
        case EventType::Counter: break;
        }
    }
    return out;
}

void write_summary(std::ostream& os, const std::map<std::string, PhaseStat>& phases) {
    char line[192];
    std::snprintf(line, sizeof line, "%-28s %10s %12s %12s %10s\n", "phase", "count",
                  "total(ms)", "mean(us)", "MiB");
    os << line;
    for (const auto& [name, s] : phases) {
        const double total_ms = static_cast<double>(s.total_ns) / 1e6;
        const double mean_us =
            s.count ? static_cast<double>(s.total_ns) / 1e3 / static_cast<double>(s.count) : 0.0;
        const double mib = static_cast<double>(s.bytes) / (1024.0 * 1024.0);
        std::snprintf(line, sizeof line, "%-28s %10llu %12.3f %12.3f %10.2f\n", name.c_str(),
                      static_cast<unsigned long long>(s.count), total_ms, mean_us, mib);
        os << line;
    }
}

} // namespace obs
