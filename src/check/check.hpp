#pragma once

/// mh5check: an MPI-semantics correctness checker for the simmpi runtime.
///
/// The Checker is an always-compiled, off-by-default analysis layer hooked
/// into simmpi's communication entry points (one pointer check per op when
/// disabled — the same pattern as fault injection and the deterministic
/// scheduler). When armed (`L5_CHECK=1` or Runtime::RunOptions::check) it
/// maintains one vector clock per world rank, with happens-before edges
/// contributed by every matched send→recv pair (collectives synchronize
/// through their underlying point-to-point traffic, so their edges follow
/// the actual implementation: a barrier orders everyone through rank 0, a
/// bcast orders root before every receiver, a gather orders every sender
/// before the root), and diagnoses:
///
///  - **wildcard-race**: an any-source receive (or probe) matched a send
///    while a *concurrent* matching send from a different rank was also
///    pending — the match is schedule-dependent. The diagnostic names both
///    candidate (rank, tag) pairs and carries a copy-pasteable `L5_SCHED`
///    repro line when a deterministic schedule is active.
///  - **collective-mismatch**: the k-th collective on a communicator was
///    entered with a different operation, root, or element size on
///    different ranks — caught at entry, before the mismatch corrupts data
///    or deadlocks.
///  - **tag-collision**: traffic on an unclaimed communicator used a tag
///    inside a range a component reserved for its control protocol (e.g.
///    dist_vol's 901–904).
///  - **count-mismatch**: a typed receive's buffer contract (element size
///    or capacity) disagreed with the arriving envelope.
///  - finalize-time resource lints: **leaked-request** (a nonblocking
///    receive never completed by wait()/test()), **unmatched-send** (a
///    message probed but never received), **never-probed** (a message no
///    receiver ever looked at).
///
/// Diagnostics are recorded, exported through obs ("check" trace category,
/// `check_*` metric counters in the global registry), and — in the default
/// `raise` mode — escalated to a CheckError at the offending call (or from
/// Runtime::run at finalize, for the resource lints).
///
/// This header depends only on header-only parts of simmpi (error.hpp) so
/// the `check` library can sit *below* libsimmpi in the link order.

#include <simmpi/error.hpp>

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace l5check {

/// A correctness diagnosis escalated as an exception (`raise` mode). Flows
/// through the ordinary simmpi failure containment: thrown inside a rank
/// thread it aborts the world and surfaces as RankFailure's cause.
class CheckError : public simmpi::Error {
public:
    CheckError(std::string kind, const std::string& message)
        : simmpi::Error("l5check: [" + kind + "] " + message), kind_(std::move(kind)) {}

    /// Stable diagnostic kind ("wildcard-race", "collective-mismatch", ...).
    const std::string& kind() const { return kind_; }

private:
    std::string kind_;
};

/// One recorded finding.
struct Diagnostic {
    std::string kind;    ///< "wildcard-race", "collective-mismatch", ...
    std::string message; ///< human-readable, names ranks/tags/sizes
    std::string repro;   ///< "L5_SCHED='...'" line when a schedule is active

    /// "[kind] message (repro: ...)" — the text CheckError carries.
    std::string text() const;
};

/// Checker configuration, parsed from `L5_CHECK` (or passed via
/// Runtime::RunOptions::check). `L5_CHECK=1` (or `throw`/`raise`) arms the
/// checker in raise mode; `L5_CHECK=report` collects diagnostics without
/// throwing; unset/`0` leaves it off.
struct CheckConfig {
    enum class Action {
        report, ///< record + trace + count, never throw
        raise,  ///< additionally throw CheckError at the offending call
    };
    Action action = Action::raise;

    /// Config from `L5_CHECK`, or nullopt when unset/`0`/empty. Throws
    /// simmpi::Error on an unrecognized value.
    static std::optional<CheckConfig> from_env();
};

/// Per-world checker instance, installed by Runtime::run before any rank
/// thread starts. All hooks are thread-safe (one mutex; the checker is an
/// analysis tool, not a hot-path component). Rank arguments are world
/// ranks; `context` is the communicator context id the envelope travels
/// under (point-to-point or collective).
class Checker {
public:
    Checker(const CheckConfig& cfg, int world_size);

    const CheckConfig& config() const { return cfg_; }

    /// Install the schedule-repro hook (wired by Runtime when a
    /// deterministic scheduler is active): returns the copy-pasteable
    /// `L5_SCHED='...'` line attached to schedule-dependent diagnostics.
    void set_repro_hook(std::function<std::string()> fn);

    // --- communication hooks ----------------------------------------------

    /// A message is about to be enqueued; returns its tracking id (stored
    /// in the envelope). Also runs the tag-collision check — except for
    /// `collective` traffic, whose tags are internal sequence numbers on a
    /// context user code cannot address.
    std::uint64_t on_send(int src, int dest, std::uint64_t context, int tag, std::size_t bytes,
                          bool collective = false);

    /// A receive matched envelope `seq`. `recv_src`/`recv_tag` are the
    /// receive's arguments (may be wildcards); `env_src`/`env_tag` the
    /// matched envelope's. Runs the wildcard-race check, joins the
    /// sender's clock into the receiver's, and retires the send record.
    void on_recv(int rank, std::uint64_t context, int recv_src, int recv_tag, int env_src,
                 int env_tag, std::uint64_t seq);

    /// A probe matched envelope `seq` without consuming it: marks the
    /// message probed and runs the wildcard-race check.
    void on_probe(int rank, std::uint64_t context, int probe_src, int probe_tag, int env_src,
                  int env_tag, std::uint64_t seq);

    /// A collective entered on `context`; `kind` is a literal ("barrier",
    /// "bcast", ...), `root` is -1 for rootless collectives, `elem_size`
    /// is the caller's element size when statically known (typed
    /// convenience wrappers) and 0 otherwise. Runs the per-communicator
    /// sequence check.
    void on_collective(int rank, std::uint64_t context, const char* kind, int root,
                       std::size_t elem_size);

    /// A nonblocking receive was created / completed.
    std::uint64_t on_irecv(int rank, int src, int tag);
    void          on_request_done(std::uint64_t request_id);

    /// A typed receive's buffer contract failed against the arriving
    /// envelope (recv_value / recv_vector / recv_into). Raises in raise
    /// mode; otherwise records and returns (the caller then throws its
    /// usual simmpi::Error).
    void on_count_mismatch(int rank, int src, int tag, const char* what, std::size_t expected,
                           std::size_t got);

    /// A component detected a leaked resource it owns at a finalize-like
    /// point (e.g. dist_vol's `finish_serving` finding outstanding MVCC
    /// snapshot pins). Records a diagnostic of `kind` (raising in raise
    /// mode, like every other finding); `message` names the counts.
    void on_leak(int rank, const char* kind, const std::string& message);

    /// A stream step lifecycle event ("publish", "acquire", "release")
    /// on `rank` for step `step` of `stream`. Runs the **step-order**
    /// lint: publishes must be strictly increasing per (rank, stream)
    /// (a producer re-publishing or reordering step versions), acquires
    /// must be strictly increasing per (rank, stream) (a consumer going
    /// backwards — even under latest_only steps only ever move forward),
    /// and a release must name the step the rank last acquired.
    void on_step(int rank, const char* event, const std::string& stream, std::uint64_t step);

    // --- protocol annotations ---------------------------------------------

    /// Reserve [lo, hi] as `owner`'s control-tag range: traffic using
    /// these tags on communicators `owner` did not claim is flagged as a
    /// tag collision, and any-source receives of these tags on claimed
    /// communicators are treated as an intentionally order-insensitive
    /// service drain (exempt from the wildcard-race check).
    void reserve_tags(std::uint64_t context, int lo, int hi, const char* owner);

    /// Declare any-source receives of `tag` (simmpi::any_tag = every tag)
    /// on communicator `context` intentionally order-insensitive; `why`
    /// documents the audit decision.
    void allow_wildcard(std::uint64_t context, int tag, const char* why);

    // --- end of run --------------------------------------------------------

    /// Run the resource lints (skipped when the world already failed —
    /// in-flight messages are expected after an abort) and publish the
    /// diagnostics via last_check_diagnostics(). In raise mode, throws a
    /// CheckError describing the first lint when any fired.
    void finalize(bool world_failed);

    /// Copy of everything recorded so far.
    std::vector<Diagnostic> diagnostics() const;

private:
    using Clock = std::vector<std::uint64_t>;

    struct PendingSend {
        std::uint64_t context = 0;
        int           src     = -1;
        int           dest    = -1;
        int           tag     = 0;
        std::size_t   bytes   = 0;
        Clock         vc;
        bool          probed = false;
    };

    struct Reservation {
        int                      lo = 0, hi = 0;
        std::string              owner;
        std::vector<std::uint64_t> contexts; ///< claimed communicators
    };

    struct CollRecord {
        std::string kind;
        int         root       = -1;
        std::size_t elem       = 0;
        int         first_rank = -1;
    };

    // all require mutex_ held
    void        record(std::string kind, std::string message, bool with_repro);
    bool        commutative(std::uint64_t context, int tag) const;
    void        wildcard_check(int rank, std::uint64_t context, int recv_tag, int env_src,
                               int env_tag, const PendingSend& matched, const char* site);
    std::string current_repro() const;
    static bool leq(const Clock& a, const Clock& b);

    CheckConfig cfg_;
    int         nranks_;

    mutable std::mutex           mutex_;
    std::vector<Clock>           clock_;    ///< one vector clock per world rank
    std::map<std::uint64_t, PendingSend> pending_; ///< in-flight sends by seq
    std::uint64_t                next_seq_ = 1;

    std::vector<Reservation>     reservations_;
    std::map<std::uint64_t, std::vector<int>> commutative_; ///< context → tags (any_tag = all)

    std::map<std::uint64_t, std::vector<CollRecord>> coll_seq_;  ///< per-communicator history
    std::map<std::pair<std::uint64_t, int>, std::size_t> coll_pos_; ///< (context, rank) → next index

    struct PendingIrecv {
        int rank = -1, src = -1, tag = -1;
    };
    std::map<std::uint64_t, PendingIrecv> irecvs_;
    std::uint64_t                         next_irecv_ = 1;

    // step-order lint state: last step + 1 per (rank, stream) so 0 means
    // "none seen yet" (step versions themselves start at 0)
    std::map<std::pair<int, std::string>, std::uint64_t> last_publish_;
    std::map<std::pair<int, std::string>, std::uint64_t> last_acquire_;

    std::vector<Diagnostic>      diags_;
    std::function<std::string()> repro_fn_;
};

/// Diagnostics of the most recently finalized checked run (process-wide,
/// like simmpi::last_schedule_hash) — empty when the last run was clean or
/// unchecked. Lets tests assert on findings in `report` mode.
std::vector<Diagnostic> last_check_diagnostics();

namespace detail {
void set_last_check_diagnostics(std::vector<Diagnostic> d);
} // namespace detail

} // namespace l5check
