#include "check.hpp"

#include <obs/metrics.hpp>
#include <obs/trace.hpp>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace l5check {

namespace {

// negative values below mirror simmpi::any_source / any_tag without
// linking against libsimmpi (check sits below it in the link order)
constexpr int wild = -1;

std::string rank_str(int r) { return r < 0 ? std::string("any") : std::to_string(r); }

/// Count + trace one finding; `kind` must outlive the call (it is interned
/// for the trace event and copied for the metric name).
void export_finding(const std::string& kind) {
    obs::Registry::global().counter("check_" + kind).inc();
    obs::Registry::global().counter("check_diagnostics").inc();
    obs::instant(obs::intern_if_enabled("check." + kind), "check");
}

} // namespace

std::string Diagnostic::text() const {
    std::string s = "[" + kind + "] " + message;
    if (!repro.empty()) s += " (repro: " + repro + ")";
    return s;
}

std::optional<CheckConfig> CheckConfig::from_env() {
    const char* s = std::getenv("L5_CHECK");
    if (!s || !*s) return std::nullopt;
    const std::string v(s);
    if (v == "0" || v == "off") return std::nullopt;
    CheckConfig cfg;
    if (v == "1" || v == "throw" || v == "raise") {
        cfg.action = Action::raise;
    } else if (v == "report") {
        cfg.action = Action::report;
    } else {
        throw simmpi::Error("l5check: bad L5_CHECK '" + v
                            + "' (expected 0, 1, raise, or report)");
    }
    return cfg;
}

Checker::Checker(const CheckConfig& cfg, int world_size)
    : cfg_(cfg), nranks_(world_size),
      clock_(static_cast<std::size_t>(world_size),
             Clock(static_cast<std::size_t>(world_size), 0)) {}

void Checker::set_repro_hook(std::function<std::string()> fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    repro_fn_ = std::move(fn);
}

std::string Checker::current_repro() const {
    return repro_fn_ ? repro_fn_() : std::string();
}

void Checker::record(std::string kind, std::string message, bool with_repro) {
    export_finding(kind);
    Diagnostic d{std::move(kind), std::move(message),
                 with_repro ? current_repro() : std::string()};
    // identical findings (e.g. the same race seen by a probe and then the
    // following receive) are reported once
    for (const auto& prev : diags_)
        if (prev.kind == d.kind && prev.message == d.message) return;
    diags_.push_back(d);
    if (cfg_.action == CheckConfig::Action::raise) {
        std::string what = d.message;
        if (!d.repro.empty()) what += " (repro: " + d.repro + ")";
        throw CheckError(d.kind, what);
    }
}

bool Checker::leq(const Clock& a, const Clock& b) {
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i] > b[i]) return false;
    return true;
}

bool Checker::commutative(std::uint64_t context, int tag) const {
    auto it = commutative_.find(context);
    if (it == commutative_.end()) return false;
    for (int t : it->second)
        if (t == wild || t == tag) return true;
    return false;
}

std::uint64_t Checker::on_send(int src, int dest, std::uint64_t context, int tag,
                               std::size_t bytes, bool collective) {
    std::lock_guard<std::mutex> lock(mutex_);

    // tag-collision lint: a reserved control tag used on a communicator
    // its owner never claimed is user traffic that can steal (or be
    // stolen by) the owner's protocol messages
    if (!collective) {
        for (const auto& res : reservations_) {
            if (tag < res.lo || tag > res.hi) continue;
            if (std::find(res.contexts.begin(), res.contexts.end(), context)
                != res.contexts.end())
                continue;
            record("tag-collision",
                   "rank " + std::to_string(src) + " sent tag " + std::to_string(tag)
                       + " to rank " + std::to_string(dest) + " on comm "
                       + std::to_string(context)
                       + ", which collides with the reserved control-tag range ["
                       + std::to_string(res.lo) + ", " + std::to_string(res.hi) + "] of "
                       + res.owner,
                   false);
        }
    }

    auto& vc = clock_[static_cast<std::size_t>(src)];
    ++vc[static_cast<std::size_t>(src)];

    const std::uint64_t seq = next_seq_++;
    pending_.emplace(seq, PendingSend{context, src, dest, tag, bytes, vc, false});
    return seq;
}

void Checker::wildcard_check(int rank, std::uint64_t context, int recv_tag, int env_src,
                             int env_tag, const PendingSend& matched, const char* site) {
    if (commutative(context, env_tag)) return;
    for (const auto& [oseq, other] : pending_) {
        if (other.context != context || other.dest != rank) continue;
        if (other.src == env_src) continue; // same-source: FIFO, deterministic
        if (recv_tag != wild && other.tag != recv_tag) continue;
        if (leq(matched.vc, other.vc) || leq(other.vc, matched.vc))
            continue; // ordered by happens-before: arrival order is fixed
        record("wildcard-race",
               std::string(site) + " on rank " + std::to_string(rank)
                   + " (src=any, tag=" + rank_str(recv_tag) + ", comm "
                   + std::to_string(context) + ") matched the send from rank "
                   + std::to_string(env_src) + " (tag " + std::to_string(env_tag)
                   + ") while a concurrent matching send from rank "
                   + std::to_string(other.src) + " (tag " + std::to_string(other.tag)
                   + ") was also pending; the match is schedule-dependent",
               true);
        return; // one report per match; further candidates add nothing
    }
}

void Checker::on_recv(int rank, std::uint64_t context, int recv_src, int recv_tag, int env_src,
                      int env_tag, std::uint64_t seq) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto&                       vc = clock_[static_cast<std::size_t>(rank)];

    auto it = pending_.find(seq);
    if (it != pending_.end()) {
        if (recv_src == wild)
            wildcard_check(rank, context, recv_tag, env_src, env_tag, it->second, "recv");
        // happens-before edge: everything the sender knew at the send is
        // now ordered before this receive
        const Clock& svc = it->second.vc;
        for (std::size_t i = 0; i < vc.size(); ++i) vc[i] = std::max(vc[i], svc[i]);
        pending_.erase(it);
    }
    ++vc[static_cast<std::size_t>(rank)];
}

void Checker::on_probe(int rank, std::uint64_t context, int probe_src, int probe_tag,
                       int env_src, int env_tag, std::uint64_t seq) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto                        it = pending_.find(seq);
    if (it == pending_.end()) return;
    if (probe_src == wild)
        wildcard_check(rank, context, probe_tag, env_src, env_tag, it->second, "probe");
    it->second.probed = true;
}

void Checker::on_collective(int rank, std::uint64_t context, const char* kind, int root,
                            std::size_t elem_size) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto&       history = coll_seq_[context];
    std::size_t pos     = coll_pos_[{context, rank}]++;

    if (pos >= history.size()) {
        history.push_back(CollRecord{kind, root, elem_size, rank});
        return;
    }
    CollRecord& rec = history[pos];
    auto        describe = [&](const std::string& k, int r, std::size_t e, int who) {
        std::string s = "rank " + std::to_string(who) + " called " + k;
        if (r >= 0) s += " (root " + std::to_string(r) + ")";
        if (e > 0) s += " (element size " + std::to_string(e) + ")";
        return s;
    };
    const std::string mine = describe(kind, root, elem_size, rank);
    const std::string first = describe(rec.kind, rec.root, rec.elem, rec.first_rank);
    const std::string where =
        " as collective #" + std::to_string(pos) + " on comm " + std::to_string(context);
    if (rec.kind != kind) {
        record("collective-mismatch", mine + where + ", but " + first, false);
    } else if (rec.root != root) {
        record("collective-mismatch",
               mine + where + " with a different root: " + first, false);
    } else if (rec.elem != 0 && elem_size != 0 && rec.elem != elem_size) {
        record("collective-mismatch",
               mine + where + " with a different element size: " + first, false);
    }
    if (rec.elem == 0) rec.elem = elem_size; // adopt the first known size
}

std::uint64_t Checker::on_irecv(int rank, int src, int tag) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t         id = next_irecv_++;
    irecvs_.emplace(id, PendingIrecv{rank, src, tag});
    return id;
}

void Checker::on_request_done(std::uint64_t request_id) {
    std::lock_guard<std::mutex> lock(mutex_);
    irecvs_.erase(request_id);
}

void Checker::on_count_mismatch(int rank, int src, int tag, const char* what,
                                std::size_t expected, std::size_t got) {
    std::lock_guard<std::mutex> lock(mutex_);
    record("count-mismatch",
           std::string(what) + " on rank " + std::to_string(rank) + " (src="
               + rank_str(src) + ", tag=" + rank_str(tag) + ") expected "
               + std::to_string(expected) + " bytes but the arriving envelope carries "
               + std::to_string(got),
           false);
}

void Checker::on_leak(int rank, const char* kind, const std::string& message) {
    std::lock_guard<std::mutex> lock(mutex_);
    record(kind, "rank " + std::to_string(rank) + ": " + message, true);
}

void Checker::on_step(int rank, const char* event, const std::string& stream,
                      std::uint64_t step) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto                  key = std::make_pair(rank, stream);
    const std::string           ev(event);
    if (ev == "publish") {
        auto& last = last_publish_[key];
        if (last > step)
            record("step-order",
                   "rank " + std::to_string(rank) + " published step " + std::to_string(step)
                       + " of stream '" + stream + "' after step " + std::to_string(last - 1)
                       + " — step versions must be strictly increasing per rank",
                   true);
        else
            last = step + 1;
    } else if (ev == "acquire") {
        auto& last = last_acquire_[key];
        if (last > step)
            record("step-order",
                   "rank " + std::to_string(rank) + " acquired step " + std::to_string(step)
                       + " of stream '" + stream + "' after step " + std::to_string(last - 1)
                       + " — a consumer's steps must move strictly forward",
                   true);
        else
            last = step + 1;
    } else if (ev == "release") {
        const auto it = last_acquire_.find(key);
        if (it == last_acquire_.end() || it->second != step + 1)
            record("step-order",
                   "rank " + std::to_string(rank) + " released step " + std::to_string(step)
                       + " of stream '" + stream + "' which it does not hold"
                       + (it == last_acquire_.end()
                              ? std::string(" (nothing acquired)")
                              : " (holds step " + std::to_string(it->second - 1) + ")"),
                   true);
    }
}

void Checker::reserve_tags(std::uint64_t context, int lo, int hi, const char* owner) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& res : reservations_) {
        if (res.lo != lo || res.hi != hi) continue;
        if (res.owner != owner) {
            record("tag-collision",
                   std::string(owner) + " reserved tag range [" + std::to_string(lo) + ", "
                       + std::to_string(hi) + "] already claimed by " + res.owner,
                   false);
            return;
        }
        if (std::find(res.contexts.begin(), res.contexts.end(), context) == res.contexts.end())
            res.contexts.push_back(context);
        auto& tags = commutative_[context];
        for (int t = lo; t <= hi; ++t)
            if (std::find(tags.begin(), tags.end(), t) == tags.end()) tags.push_back(t);
        return;
    }
    reservations_.push_back(Reservation{lo, hi, owner, {context}});
    auto& tags = commutative_[context];
    for (int t = lo; t <= hi; ++t)
        if (std::find(tags.begin(), tags.end(), t) == tags.end()) tags.push_back(t);
}

void Checker::allow_wildcard(std::uint64_t context, int tag, const char* /*why*/) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& tags = commutative_[context];
    if (std::find(tags.begin(), tags.end(), tag) == tags.end()) tags.push_back(tag);
}

void Checker::finalize(bool world_failed) {
    std::vector<Diagnostic> snapshot;
    std::optional<CheckError> lint_error;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!world_failed) {
            // resource lints: raise mode must not throw out of the loop
            // before every lint is recorded, so collect and rethrow after
            const auto prev_action = cfg_.action;
            cfg_.action            = CheckConfig::Action::report;
            for (const auto& [seq, s] : pending_) {
                if (s.probed)
                    record("unmatched-send",
                           "rank " + std::to_string(s.src) + " sent " + std::to_string(s.bytes)
                               + " bytes to rank " + std::to_string(s.dest) + " (tag "
                               + std::to_string(s.tag) + ", comm " + std::to_string(s.context)
                               + ") that was probed but never received",
                           false);
                else
                    record("never-probed",
                           "rank " + std::to_string(s.src) + " sent " + std::to_string(s.bytes)
                               + " bytes to rank " + std::to_string(s.dest) + " (tag "
                               + std::to_string(s.tag) + ", comm " + std::to_string(s.context)
                               + ") that no receiver ever probed or received",
                           false);
            }
            for (const auto& [id, r] : irecvs_)
                record("leaked-request",
                       "rank " + std::to_string(r.rank)
                           + " leaked a nonblocking receive (src=" + rank_str(r.src)
                           + ", tag=" + rank_str(r.tag)
                           + "): created by irecv but never completed by wait() or test()",
                       false);
            cfg_.action = prev_action;
            if (cfg_.action == CheckConfig::Action::raise && !diags_.empty())
                lint_error.emplace(diags_.front().kind,
                                   diags_.front().message + " [" + std::to_string(diags_.size())
                                       + " diagnostic(s) total]");
        }
        snapshot = diags_;
    }
    if (cfg_.action == CheckConfig::Action::report)
        for (const auto& d : snapshot) std::fprintf(stderr, "l5check: %s\n", d.text().c_str());
    detail::set_last_check_diagnostics(std::move(snapshot));
    if (lint_error) throw *lint_error;
}

std::vector<Diagnostic> Checker::diagnostics() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return diags_;
}

// --- process-wide last-run diagnostics ---------------------------------------

namespace {
std::mutex              g_last_mutex;
std::vector<Diagnostic> g_last;
} // namespace

std::vector<Diagnostic> last_check_diagnostics() {
    std::lock_guard<std::mutex> lock(g_last_mutex);
    return g_last;
}

namespace detail {
void set_last_check_diagnostics(std::vector<Diagnostic> d) {
    std::lock_guard<std::mutex> lock(g_last_mutex);
    g_last = std::move(d);
}
} // namespace detail

} // namespace l5check
