#include "race.hpp"

#include <obs/metrics.hpp>
#include <obs/trace.hpp>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>

namespace l5race {

namespace detail {
std::atomic<int> g_armed{0};
} // namespace detail

namespace {

using VC = std::vector<std::uint64_t>;

std::uint64_t vc_at(const VC& v, int t) {
    return t >= 0 && static_cast<std::size_t>(t) < v.size() ? v[static_cast<std::size_t>(t)] : 0;
}

void vc_join(VC& dst, const VC& src) {
    if (src.size() > dst.size()) dst.resize(src.size(), 0);
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = std::max(dst[i], src[i]);
}

/// One lock the calling thread currently holds (recursion folds into
/// `depth`). `cls` is the lockdep class; `site` the outermost acquire.
struct HeldLock {
    const void* addr;
    int         depth;
    bool        pseudo;
    std::string cls;
    const char* site;
};

/// Per-thread detector state. Owned thread-locally; re-registered (fresh
/// tid + clock) whenever the global generation moves past `gen`, so
/// threads that outlive a finalize (the main thread, worker pools) start
/// clean in the next armed run.
struct ThreadState {
    int                   tid = -1;
    VC                    vc;
    std::vector<HeldLock> held;
};

thread_local ThreadState   t_state;
thread_local std::uint64_t t_state_gen = ~std::uint64_t{0};

/// One recorded access to a shared cell: the accessor's epoch
/// (clock@tid), its non-pseudo lockset, and the site. `a happened-before
/// the current thread` iff a.clock <= current.vc[a.tid].
struct Access {
    int                      tid = -1;
    std::uint64_t            clock = 0;
    std::vector<const void*> locks;
    std::string              locks_desc;
    std::string              site;
};

struct CellState {
    std::optional<Access> write;
    std::map<int, Access> reads; ///< last read per thread since the last write
};

/// A finding assembled under the state mutex but reported (repro hook,
/// obs export, possible throw) only after it is released: the repro hook
/// reads the scheduler (its own mutex), and scheduler code calls back
/// into l5race while holding that mutex, so reporting under ours would
/// be an ABBA deadlock.
struct Pending {
    std::string kind;
    std::string site_a;
    std::string site_b;
    std::string message;
};

struct Rule {
    std::string holder;
    std::string acquired;
    std::string why;
};

struct Global {
    std::mutex mu;
    bool       armed = false;
    RaceConfig cfg;
    std::function<std::string()> repro;
    std::uint64_t gen      = 0;
    int           next_tid = 0;

    // happens-before channels
    std::uint64_t                              next_token = 1;
    std::unordered_map<std::uint64_t, VC>      tokens;  ///< one-shot handoffs
    std::map<const void*, VC>                  chans;   ///< accumulating (atomics)
    std::map<std::thread::id, VC>              exited;  ///< thread-exit -> join

    // lockdep
    std::map<const void*, std::string>              lock_class;
    std::set<std::pair<std::string, std::string>>   edges;
    std::map<std::string, std::set<std::string>>    adj;
    std::vector<Rule>                               rules;

    // race cells
    std::map<std::pair<const void*, std::string>, CellState> cells;

    // findings
    std::set<std::string>   seen; ///< dedupe key kind|site_a|site_b
    std::vector<Diagnostic> diags;
};

Global& G() {
    static Global* g = new Global; // leaked: hooks may run during static teardown
    return *g;
}

std::mutex              g_last_mutex;
std::vector<Diagnostic> g_last;

/// Register (or re-register after a generation bump) the calling thread.
/// Requires G().mu held.
ThreadState& self_locked(Global& g) {
    if (t_state.tid < 0 || t_state_gen != g.gen) {
        t_state     = ThreadState{};
        t_state.tid = g.next_tid++;
        t_state.vc.assign(static_cast<std::size_t>(t_state.tid) + 1, 0);
        t_state.vc[static_cast<std::size_t>(t_state.tid)] = 1;
        t_state_gen = g.gen;
    }
    return t_state;
}

void bump(ThreadState& ts) { ++ts.vc[static_cast<std::size_t>(ts.tid)]; }

std::uint64_t epoch(const ThreadState& ts) {
    return ts.vc[static_cast<std::size_t>(ts.tid)];
}

std::string describe_locks(const ThreadState& ts) {
    std::string s;
    for (const auto& h : ts.held) {
        if (h.pseudo) continue;
        if (!s.empty()) s += ", ";
        s += "'" + h.cls + "'";
        if (h.depth > 1) s += " x" + std::to_string(h.depth);
    }
    return s.empty() ? std::string("none") : s;
}

bool locksets_disjoint(const std::vector<const void*>& a, const std::vector<const void*>& b) {
    for (const void* x : a)
        for (const void* y : b)
            if (x == y) return false;
    return true;
}

/// Shortest class path from `from` to `to` in the order graph, or empty.
std::vector<std::string> find_path(const std::map<std::string, std::set<std::string>>& adj,
                                   const std::string& from, const std::string& to) {
    std::map<std::string, std::string> parent;
    std::deque<std::string>            q{from};
    parent[from] = from;
    while (!q.empty()) {
        std::string n = q.front();
        q.pop_front();
        if (n == to) {
            std::vector<std::string> path{to};
            while (path.back() != from) path.push_back(parent[path.back()]);
            std::reverse(path.begin(), path.end());
            return path;
        }
        auto it = adj.find(n);
        if (it == adj.end()) continue;
        for (const auto& nxt : it->second)
            if (parent.emplace(nxt, n).second) q.push_back(nxt);
    }
    return {};
}

void export_finding(const std::string& kind) {
    const bool lockdep = kind.rfind("lockdep", 0) == 0;
    obs::Registry::global().counter(lockdep ? "n_lockdep_cycles" : "n_race_reports").inc();
    obs::instant(obs::intern_if_enabled(lockdep ? "lockdep.cycle" : "race.report"), "race");
}

/// Report pending findings with the state mutex released (see Pending).
/// In raise mode the first non-duplicate finding throws RaceError.
void flush(std::vector<Pending>&& pend) {
    if (pend.empty()) return;
    Global& g = G();
    std::function<std::string()>  repro_hook;
    RaceConfig::Action            action;
    {
        std::lock_guard<std::mutex> lock(g.mu);
        repro_hook = g.repro;
        action     = g.cfg.action;
    }
    for (auto& p : pend) {
        const std::string repro = repro_hook ? repro_hook() : std::string();
        {
            std::lock_guard<std::mutex> lock(g.mu);
            if (!g.armed) return;
            if (!g.seen.insert(p.kind + "\x1f" + p.site_a + "\x1f" + p.site_b).second) continue;
            g.diags.push_back(Diagnostic{p.kind, p.site_a, p.site_b, p.message, repro});
        }
        export_finding(p.kind);
        if (action == RaceConfig::Action::raise) {
            std::string what = "[" + p.kind + "] " + p.message;
            if (!repro.empty()) what += " (repro: " + repro + ")";
            throw RaceError(p.kind, what);
        }
    }
}

} // namespace

std::string Diagnostic::text() const {
    std::string s = "[" + kind + "] " + message;
    if (!repro.empty()) s += " (repro: " + repro + ")";
    return s;
}

std::optional<RaceConfig> RaceConfig::from_env() {
    const char* s = std::getenv("L5_RACE");
    if (!s || !*s) return std::nullopt;
    const std::string v(s);
    if (v == "0" || v == "off") return std::nullopt;
    RaceConfig cfg;
    if (v == "1" || v == "throw" || v == "raise") {
        cfg.action = Action::raise;
    } else if (v == "report") {
        cfg.action = Action::report;
    } else {
        throw simmpi::Error("l5race: bad L5_RACE '" + v + "' (expected 0, 1, raise, or report)");
    }
    if (const char* out = std::getenv("L5_RACE_OUT"); out && *out) cfg.out_path = out;
    return cfg;
}

bool arm(const RaceConfig& cfg) {
    Global&                     g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    if (g.armed) return false;
    g.armed = true;
    g.cfg   = cfg;
    detail::g_armed.store(1, std::memory_order_relaxed);
    return true;
}

void set_repro_hook(std::function<std::string()> hook) {
    Global&                     g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    g.repro = std::move(hook);
}

void finalize() {
    Global&                 g = G();
    RaceConfig              cfg;
    std::vector<Diagnostic> diags;
    {
        std::lock_guard<std::mutex> lock(g.mu);
        if (!g.armed) return;
        detail::g_armed.store(0, std::memory_order_relaxed);
        g.armed = false;
        cfg     = g.cfg;
        diags   = std::move(g.diags);
        g.diags.clear();
        g.seen.clear();
        g.tokens.clear();
        g.chans.clear();
        g.exited.clear();
        g.lock_class.clear();
        g.edges.clear();
        g.adj.clear();
        g.rules.clear();
        g.cells.clear();
        g.repro    = nullptr;
        g.next_tid = 0;
        g.next_token = 1;
        ++g.gen; // invalidate every thread's cached tid/clock
    }
    if (cfg.action == RaceConfig::Action::report) {
        for (const auto& d : diags) std::fprintf(stderr, "l5race: %s\n", d.text().c_str());
    }
    if (!cfg.out_path.empty()) {
        // written even when empty so sweep drivers can tell "armed and
        // clean" from "never ran"
        std::ofstream out(cfg.out_path, std::ios::trunc);
        for (const auto& d : diags)
            out << d.kind << '\t' << d.site_a << '\t' << d.site_b << '\t' << d.message << '\t'
                << d.repro << '\n';
    }
    {
        std::lock_guard<std::mutex> lock(g_last_mutex);
        g_last = std::move(diags);
    }
}

std::vector<Diagnostic> last_race_diagnostics() {
    std::lock_guard<std::mutex> lock(g_last_mutex);
    return g_last;
}

namespace detail {

void lock_acquired_impl(const void* m, const char* site, const char* lock_class, bool pseudo) {
    Global&              g = G();
    std::vector<Pending> pend;
    {
        std::lock_guard<std::mutex> lock(g.mu);
        if (!g.armed) return;
        ThreadState& ts = self_locked(g);
        for (auto& h : ts.held) {
            if (h.addr == m) {
                ++h.depth;
                return;
            }
        }
        auto        it  = g.lock_class.find(m);
        std::string cls = lock_class      ? std::string(lock_class)
                          : it != g.lock_class.end() ? it->second
                                                     : std::string(site);
        if (it == g.lock_class.end()) g.lock_class.emplace(m, cls);
        for (const auto& h : ts.held) {
            if (h.cls == cls) continue; // same-class pairs (instances sharing a
                                        // fallback class) carry no order info
            for (const auto& r : g.rules) {
                if (r.holder == h.cls && r.acquired == cls) {
                    pend.push_back(
                        {"lockdep-rule", h.site, site,
                         "acquiring '" + cls + "' at '" + site + "' while holding '" + h.cls
                             + "' (acquired at '" + std::string(h.site)
                             + "') violates a declared lock-order rule: " + r.why});
                }
            }
            if (g.edges.emplace(h.cls, cls).second) {
                g.adj[h.cls].insert(cls);
                auto path = find_path(g.adj, cls, h.cls);
                if (!path.empty()) {
                    std::string chain = h.cls;
                    for (const auto& n : path) chain += " -> " + n;
                    pend.push_back(
                        {"lockdep-cycle", h.site, site,
                         "acquiring '" + cls + "' at '" + site + "' while holding '" + h.cls
                             + "' (acquired at '" + std::string(h.site)
                             + "') closes a lock-order cycle: " + chain
                             + " — a schedule interleaving these chains deadlocks"});
                }
            }
        }
        ts.held.push_back(HeldLock{m, 1, pseudo, std::move(cls), site});
    }
    flush(std::move(pend));
}

void lock_released_impl(const void* m) {
    Global&                     g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    if (!g.armed) return;
    ThreadState& ts = self_locked(g);
    for (auto it = ts.held.begin(); it != ts.held.end(); ++it) {
        if (it->addr == m) {
            if (--it->depth == 0) ts.held.erase(it);
            return;
        }
    }
    // tolerated: the matching acquire may have thrown before registering
}

void declare_lock_impl(const void* m, const char* lock_class) {
    Global&                     g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    if (!g.armed) return;
    g.lock_class[m] = lock_class;
}

void forbid_edge_impl(const char* holder_class, const char* acquired_class, const char* why) {
    Global&                     g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    if (!g.armed) return;
    for (const auto& r : g.rules)
        if (r.holder == holder_class && r.acquired == acquired_class) return;
    g.rules.push_back(Rule{holder_class, acquired_class, why});
}

void on_access_impl(const void* obj, const char* cell, bool is_write, const char* site) {
    Global&              g = G();
    std::vector<Pending> pend;
    {
        std::lock_guard<std::mutex> lock(g.mu);
        if (!g.armed) return;
        ThreadState& ts = self_locked(g);

        std::vector<const void*> locks;
        for (const auto& h : ts.held)
            if (!h.pseudo) locks.push_back(h.addr);
        const std::string locks_desc = describe_locks(ts);

        CellState& cs = g.cells[{obj, std::string(cell)}];

        // `a` is concurrent with the current access iff it is by another
        // thread, not happens-before-ordered (epoch check), and no common
        // lock covers both
        auto concurrent = [&](const Access& a) {
            return a.tid != ts.tid && a.clock > vc_at(ts.vc, a.tid)
                   && locksets_disjoint(a.locks, locks);
        };
        auto report = [&](const Access& prev, const char* prev_kind, const char* cur_kind) {
            pend.push_back(
                {"predicted-race", prev.site, site,
                 "predicted data race on '" + std::string(cell) + "': " + prev_kind + " at '"
                     + prev.site + "' (locks held: " + prev.locks_desc + ") vs " + cur_kind
                     + " at '" + site + "' (locks held: " + locks_desc
                     + ") — no common lock and no happens-before edge orders them, so another "
                       "feasible schedule interleaves them"});
        };

        if (cs.write && concurrent(*cs.write))
            report(*cs.write, "write", is_write ? "write" : "read");
        if (is_write) {
            for (const auto& [tid, r] : cs.reads)
                if (concurrent(r)) report(r, "read", "write");
            cs.reads.clear();
            cs.write = Access{ts.tid, epoch(ts), std::move(locks), locks_desc, site};
        } else {
            cs.reads[ts.tid] = Access{ts.tid, epoch(ts), std::move(locks), locks_desc, site};
        }
    }
    flush(std::move(pend));
}

void on_cv_block_impl(const void* wait_mutex, const char* site) {
    Global&              g = G();
    std::vector<Pending> pend;
    {
        std::lock_guard<std::mutex> lock(g.mu);
        if (!g.armed) return;
        ThreadState& ts = self_locked(g);
        const char*  offender = nullptr;
        for (const auto& h : ts.held) {
            if (h.pseudo) continue;
            if (h.addr != wait_mutex || h.depth != 1) {
                offender = h.site;
                break;
            }
        }
        if (offender) {
            pend.push_back(
                {"lock-across-wait", offender, site,
                 "cv wait at '" + std::string(site) + "' blocks while holding "
                     + describe_locks(ts)
                     + " — a waiter must hold exactly one level of the wait's own mutex (the cv "
                       "releases only that level, so anything extra deadlocks the waker)"});
        }
    }
    flush(std::move(pend));
}

std::uint64_t publish_token_impl() {
    Global&                     g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    if (!g.armed) return 0;
    ThreadState&        ts  = self_locked(g);
    const std::uint64_t tok = g.next_token++;
    g.tokens.emplace(tok, ts.vc);
    bump(ts);
    return tok;
}

void consume_token_impl(std::uint64_t token) {
    Global&                     g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    if (!g.armed) return;
    ThreadState& ts = self_locked(g);
    auto         it = g.tokens.find(token);
    if (it == g.tokens.end()) return; // stale generation or double-consume
    vc_join(ts.vc, it->second);
    g.tokens.erase(it);
}

void atomic_publish_impl(const void* chan) {
    Global&                     g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    if (!g.armed) return;
    ThreadState& ts = self_locked(g);
    vc_join(g.chans[chan], ts.vc);
    bump(ts);
}

void atomic_consume_impl(const void* chan) {
    Global&                     g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    if (!g.armed) return;
    ThreadState& ts = self_locked(g);
    auto         it = g.chans.find(chan);
    if (it != g.chans.end()) vc_join(ts.vc, it->second);
}

void thread_exit_impl() {
    Global&                     g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    if (!g.armed) return;
    ThreadState& ts = self_locked(g);
    vc_join(g.exited[std::this_thread::get_id()], ts.vc);
    bump(ts);
}

void thread_joined_impl(std::thread::id id) {
    Global&                     g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    if (!g.armed) return;
    ThreadState& ts = self_locked(g);
    auto         it = g.exited.find(id);
    if (it == g.exited.end()) return;
    vc_join(ts.vc, it->second);
    g.exited.erase(it);
}

} // namespace detail
} // namespace l5race
