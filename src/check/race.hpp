#pragma once

// l5race: predictive concurrency analysis for the coop-scheduled runtime.
//
// Two analyses share one instrumentation layer, armed via L5_RACE (or
// programmatically through simmpi::RunOptions::race):
//
//  1. A hybrid lockset + vector-clock race detector over explicitly
//     annotated shared cells (L5_SHARED_READ / L5_SHARED_WRITE). The
//     happens-before relation is deliberately *strong*: only thread
//     spawn/join, seq_cst atomic publish/consume pairs, and mailbox
//     envelope handoffs create edges. Lock release->acquire and cv
//     notify->wake do NOT — instead, locks enter per-thread locksets and
//     a pair of conflicting accesses is excused only when a common lock
//     covers both. A race found this way is *predicted*: it holds in
//     every feasible schedule, not just the one that ran, which is what
//     lets one seeded run generalize over the swept schedule space (and
//     what TSan cannot do under L5_SCHED, where the coop scheduler
//     serializes threads).
//
//  2. A lockdep-style lock-order analysis over CoopLock/Guard (and
//     pseudo-lock, e.g. mvcc::ReadSection) acquisitions: a global graph
//     of lock-class order edges, cycle detection ("this run never
//     deadlocked, but these two sites can"), declared forbidden edges
//     (the serve-lock-after-pin invariant as a graph rule), and a
//     lock-across-wait lint for cv-style waits that hold anything beyond
//     exactly one level of the wait's own mutex (the dones_cv_ hang
//     shape: the cv releases one level, so anything extra can deadlock
//     the waker).
//
// Every hook costs one relaxed atomic load when disarmed, mirroring
// l5check. This header depends only on simmpi/error.hpp so the check
// library stays below libsimmpi in the layering.

#include <simmpi/error.hpp>

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace l5race {

/// A predicted race / lock-order violation escalated to an error
/// (Action::raise). `kind()` is the machine-readable category:
/// "predicted-race", "lockdep-cycle", "lockdep-rule", "lock-across-wait".
class RaceError : public simmpi::Error {
public:
    RaceError(std::string kind, const std::string& text)
        : simmpi::Error("l5race: " + text), kind_(std::move(kind)) {}

    const std::string& kind() const { return kind_; }

private:
    std::string kind_;
};

/// One finding. `site_a` is the earlier/holding site, `site_b` the
/// access/acquisition that completed the pattern; findings are deduped
/// process-wide by (kind, site_a, site_b).
struct Diagnostic {
    std::string kind;
    std::string site_a;
    std::string site_b;
    std::string message;
    std::string repro; ///< copy-pasteable L5_SCHED line when a deterministic schedule is active

    std::string text() const;
};

/// Detector configuration, from RunOptions::race or the environment:
///
///   L5_RACE=0|off      — disarmed (default)
///   L5_RACE=1|raise    — first finding throws RaceError at the site
///   L5_RACE=report     — findings collect; printed + exported at finalize
///   L5_RACE_OUT=<path> — additionally write a machine-readable report
///                        (one tab-separated finding per line) at
///                        finalize; mh5sched --race aggregates these
struct RaceConfig {
    enum class Action {
        report, ///< collect diagnostics, never throw
        raise,  ///< throw RaceError at the first finding
    };

    Action      action = Action::raise;
    std::string out_path; ///< empty = no report file

    static std::optional<RaceConfig> from_env();
};

namespace detail {
extern std::atomic<int> g_armed;

void lock_acquired_impl(const void* m, const char* site, const char* lock_class, bool pseudo);
void lock_released_impl(const void* m);
void declare_lock_impl(const void* m, const char* lock_class);
void forbid_edge_impl(const char* holder_class, const char* acquired_class, const char* why);
void on_access_impl(const void* obj, const char* cell, bool is_write, const char* site);
void on_cv_block_impl(const void* wait_mutex, const char* site);
std::uint64_t publish_token_impl();
void consume_token_impl(std::uint64_t token);
void atomic_publish_impl(const void* chan);
void atomic_consume_impl(const void* chan);
void thread_exit_impl();
void thread_joined_impl(std::thread::id id);
} // namespace detail

/// One relaxed load: is any detector state being collected?
inline bool armed() { return detail::g_armed.load(std::memory_order_relaxed) != 0; }

// --- lock instrumentation (CoopLock, Guard, explicit holds) -----------------

/// The calling thread acquired mutex `m` at `site`. `lock_class` names
/// the lockdep class on first sight (defaults to the first-acquire site
/// string). Recursive re-acquisition nests. May throw RaceError (raise
/// mode) on a lock-order violation — call it *after* the physical lock
/// so unwinding stays consistent.
inline void lock_acquired(const void* m, const char* site, const char* lock_class = nullptr) {
    if (armed()) detail::lock_acquired_impl(m, site, lock_class, false);
}
inline void lock_released(const void* m) {
    if (armed()) detail::lock_released_impl(m);
}

/// A pseudo-lock (e.g. mvcc::ReadSection): participates in the lockdep
/// graph and forbidden-edge rules but is excluded from race-excusing
/// locksets (many threads may "hold" it at once) and from the
/// lock-across-wait lint.
inline void pseudo_lock_acquired(const void* m, const char* site, const char* lock_class) {
    if (armed()) detail::lock_acquired_impl(m, site, lock_class, true);
}
inline void pseudo_lock_released(const void* m) {
    if (armed()) detail::lock_released_impl(m);
}

/// Name `m`'s lockdep class explicitly (e.g. "dist_vol.mutex").
inline void declare_lock(const void* m, const char* lock_class) {
    if (armed()) detail::declare_lock_impl(m, lock_class);
}

/// Declare that acquiring a lock of class `acquired_class` while holding
/// one of `holder_class` is always a bug, even before any cycle exists
/// (the serve-lock-after-pin invariant as a graph edge rule).
inline void forbid_edge(const char* holder_class, const char* acquired_class, const char* why) {
    if (armed()) detail::forbid_edge_impl(holder_class, acquired_class, why);
}

/// RAII lockset bookkeeping for a mutex scoped by std::lock_guard /
/// std::unique_lock at the call site (e.g. Mailbox's):
///
///   std::lock_guard<std::mutex> lock(mutex_);
///   l5race::LockHold rh(&mutex_, "Mailbox::push");
class LockHold {
public:
    LockHold(const void* m, const char* site, const char* lock_class = nullptr) {
        if (armed()) {
            m_ = m;
            detail::lock_acquired_impl(m, site, lock_class, false);
        }
    }
    ~LockHold() {
        if (m_) lock_released(m_);
    }
    LockHold(const LockHold&)            = delete;
    LockHold& operator=(const LockHold&) = delete;

private:
    const void* m_ = nullptr;
};

// --- shared-cell access hooks -----------------------------------------------

inline void on_read(const void* obj, const char* cell, const char* site) {
    if (armed()) detail::on_access_impl(obj, cell, false, site);
}
inline void on_write(const void* obj, const char* cell, const char* site) {
    if (armed()) detail::on_access_impl(obj, cell, true, site);
}

/// Annotate an access to a shared cell: `obj` scopes the instance, `cell`
/// names the field, `site` the access point. One relaxed load when
/// disarmed.
#define L5_SHARED_READ(obj, cell, site) ::l5race::on_read((obj), (cell), (site))
#define L5_SHARED_WRITE(obj, cell, site) ::l5race::on_write((obj), (cell), (site))

// --- happens-before edges ---------------------------------------------------

/// One-shot handoff channel (mailbox envelope, thread spawn): the sender
/// publishes its clock under a fresh token, the receiver consumes it.
/// Returns 0 when disarmed; consume of 0 (or an already-consumed token)
/// is a no-op.
inline std::uint64_t publish_token() {
    return armed() ? detail::publish_token_impl() : 0;
}
inline void consume_token(std::uint64_t token) {
    if (token != 0 && armed()) detail::consume_token_impl(token);
}

/// Accumulating channel keyed by object address (a seq_cst atomic):
/// store/RMW publishes, load/RMW consumes.
inline void atomic_publish(const void* chan) {
    if (armed()) detail::atomic_publish_impl(chan);
}
inline void atomic_consume(const void* chan) {
    if (armed()) detail::atomic_consume_impl(chan);
}
inline void atomic_rmw(const void* chan) {
    if (armed()) {
        detail::atomic_consume_impl(chan);
        detail::atomic_publish_impl(chan);
    }
}

/// Thread termination/join edges: the dying thread publishes on a channel
/// keyed by its std::thread::id; the joiner consumes it after join().
inline void thread_exit() {
    if (armed()) detail::thread_exit_impl();
}
inline void thread_joined(std::thread::id id) {
    if (armed()) detail::thread_joined_impl(id);
}

// --- cv-wait lint -----------------------------------------------------------

/// Called at every coop_wait/coop_wait_deadline site with the address of
/// the wait's own mutex. Reports "lock-across-wait" when the calling
/// thread holds any instrumented lock beyond exactly one level of that
/// mutex. Mailbox message waits are deliberately exempt (sync serve
/// legitimately blocks on a mailbox holding the serve mutex).
inline void on_cv_block(const void* wait_mutex, const char* site) {
    if (armed()) detail::on_cv_block_impl(wait_mutex, site);
}

// --- lifecycle --------------------------------------------------------------

/// Arm the process-wide detector; returns false (and changes nothing)
/// when already armed, so nested Runtime::runs share the outer arming.
bool arm(const RaceConfig& cfg);

/// Install the repro-line hook (Runtime wires the active L5_SCHED spec).
void set_repro_hook(std::function<std::string()> hook);

/// Report + export collected findings, write the L5_RACE_OUT file, then
/// reset all detector state and disarm. Never throws: in raise mode the
/// first finding already threw at its site.
void finalize();

/// Findings of the most recently finalized armed run (process-wide, for
/// tests — mirrors l5check::last_check_diagnostics).
std::vector<Diagnostic> last_race_diagnostics();

} // namespace l5race
