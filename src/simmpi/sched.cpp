#include "sched.hpp"

#include <obs/trace.hpp>

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace simmpi {

// --- SchedConfig -------------------------------------------------------------

namespace {

std::uint64_t parse_u64(const std::string& field, const std::string& value) {
    try {
        std::size_t pos = 0;
        auto        v   = std::stoull(value, &pos);
        if (pos != value.size()) throw std::invalid_argument("trailing");
        return v;
    } catch (const std::exception&) {
        throw Error("simmpi: bad L5_SCHED field '" + field + "=" + value
                    + "' (expected a non-negative integer)");
    }
}

std::atomic<std::uint64_t> g_last_schedule_hash{0};

thread_local detail::Scheduler* t_sched = nullptr;
thread_local int                t_task  = -1;
/// Set while this thread holds a Scheduler's mutex across user code (the
/// inner-lock release in block()); lets notify() re-enter without
/// self-deadlocking.
thread_local detail::Scheduler* t_m_owner = nullptr;

} // namespace

SchedConfig SchedConfig::parse(const std::string& spec) {
    SchedConfig        cfg;
    std::istringstream ss(spec);
    std::string        field;
    while (std::getline(ss, field, ',')) {
        if (field.empty())
            throw Error("simmpi: bad L5_SCHED spec '" + spec + "' (empty field)");
        auto eq = field.find('=');
        if (eq == std::string::npos)
            throw Error("simmpi: bad L5_SCHED field '" + field + "' (expected key=value)");
        std::string key   = field.substr(0, eq);
        std::string value = field.substr(eq + 1);
        if (key == "seed") {
            cfg.seed = parse_u64(key, value);
        } else if (key == "policy") {
            if (value == "random") cfg.policy = Policy::random;
            else if (value == "pct") cfg.policy = Policy::pct;
            else
                throw Error("simmpi: bad L5_SCHED policy '" + value
                            + "' (expected 'random' or 'pct')");
        } else if (key == "depth") {
            cfg.depth = static_cast<int>(parse_u64(key, value));
        } else if (key == "horizon") {
            cfg.horizon = parse_u64(key, value);
            if (cfg.horizon == 0)
                throw Error("simmpi: L5_SCHED horizon must be positive");
        } else {
            throw Error("simmpi: unknown L5_SCHED field '" + key + "'");
        }
    }
    return cfg;
}

std::optional<SchedConfig> SchedConfig::from_env() {
    const char* s = std::getenv("L5_SCHED");
    if (!s || !*s) return std::nullopt;
    return parse(s);
}

std::string SchedConfig::describe() const {
    return "seed=" + std::to_string(seed)
           + ",policy=" + (policy == Policy::pct ? "pct" : "random")
           + ",depth=" + std::to_string(depth) + ",horizon=" + std::to_string(horizon);
}

std::uint64_t last_schedule_hash() {
    return g_last_schedule_hash.load(std::memory_order_acquire);
}

namespace detail {

void set_last_schedule_hash(std::uint64_t h) {
    g_last_schedule_hash.store(h, std::memory_order_release);
}

Scheduler* this_thread_scheduler() { return t_sched; }

// --- Scheduler ---------------------------------------------------------------

Scheduler::Scheduler(const SchedConfig& cfg, int nranks)
    : cfg_(cfg), nranks_(nranks), rng_(cfg.seed) {
    tasks_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        auto t  = std::make_unique<Task>();
        t->name = "rank " + std::to_string(r);
        // PCT: distinct initial priorities well above any dropped one
        t->priority = (1ull << 32) + (rng_() & 0xffffffffu);
        tasks_.push_back(std::move(t));
    }
    if (cfg_.policy == SchedConfig::Policy::pct) {
        for (int i = 0; i < cfg_.depth; ++i)
            change_points_.push_back(1 + rng_() % cfg_.horizon);
        std::sort(change_points_.begin(), change_points_.end());
    }
}

bool Scheduler::attached_here() const { return t_sched == this; }

void Scheduler::attach_rank(int rank) {
    std::unique_lock<std::mutex> lk(m_);
    Task& me = *tasks_[static_cast<std::size_t>(rank)];
    me.state = Task::State::Ready;
    t_sched  = this;
    t_task   = rank;
    if (++attached_ranks_ == nranks_) {
        // start barrier passed: thread spawn order can no longer perturb
        // the schedule; make the first decision
        started_.store(true, std::memory_order_release);
        schedule_locked();
    }
    wait_until_running(lk, me);
}

void Scheduler::attach_aux(const std::string& role) {
    std::unique_lock<std::mutex> lk(m_);
    auto t      = std::make_unique<Task>();
    t->name     = role + "#" + std::to_string(tasks_.size());
    t->priority = (1ull << 32) + (rng_() & 0xffffffffu);
    t->tid      = std::this_thread::get_id();
    t->state    = Task::State::Ready;
    tasks_.push_back(std::move(t));
    t_sched = this;
    t_task  = static_cast<int>(tasks_.size()) - 1;
    ++spawn_attached_;
    spawn_cv_.notify_all();
    wait_until_running(lk, *tasks_.back());
}

void Scheduler::detach() {
    if (t_sched != this) return;
    std::unique_lock<std::mutex> lk(m_);
    Task& me = *tasks_[static_cast<std::size_t>(t_task)];
    bool  was_running = (running_ == t_task);
    me.state = Task::State::Done;
    // promote a task joining this one *before* the next decision: the
    // joiner becomes Ready at this deterministic point, not at the
    // real-time instant its join() happens to return (which would race
    // other tasks' scheduling points and perturb the replay)
    if (me.joiner >= 0) {
        Task& j = *tasks_[static_cast<std::size_t>(me.joiner)];
        if (j.state == Task::State::Away) j.state = Task::State::Ready;
        me.joiner = -1;
    }
    t_sched = nullptr;
    t_task  = -1;
    if (dead_.load(std::memory_order_relaxed)) return;
    if (was_running) running_ = -1;
    if (running_ == -1) schedule_locked();
}

void Scheduler::yield(const char* site) {
    if (t_sched != this || !usable()) return;
    std::unique_lock<std::mutex> lk(m_);
    if (dead_.load(std::memory_order_relaxed)) return;
    Task& me = *tasks_[static_cast<std::size_t>(t_task)];
    if (me.state != Task::State::Running) return; // e.g. unwinding after deadlock delivery
    me.state = Task::State::Ready;
    me.site  = site;
    running_ = -1;
    schedule_locked();
    wait_until_running(lk, me);
}

bool Scheduler::block_would_park() const {
    return t_sched == this && started_.load(std::memory_order_relaxed)
           && !dead_.load(std::memory_order_relaxed)
           && tasks_[static_cast<std::size_t>(t_task)]->state == Task::State::Running;
}

bool Scheduler::block_registered(
    std::unique_lock<std::mutex>& lk, const void* chan, const char* site, int src, int tag,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    std::int64_t deadline_ms) {
    Task& me         = *tasks_[static_cast<std::size_t>(t_task)];
    me.state         = Task::State::Blocked;
    me.chan          = chan;
    me.site          = site;
    me.src           = src;
    me.tag           = tag;
    me.deadline      = deadline;
    me.deadline_ms   = deadline_ms;
    me.timeout_fired = false;
    running_         = -1;
    schedule_locked();
    for (;;) {
        if (me.deadlocked) {
            me.deadlocked = false;
            throw DeadlockError(deadlock_msg_, deadlock_sites_);
        }
        if (me.state == Task::State::Running) break;
        me.cv.wait(lk); // lint: allow-bare-wait(scheduler internals: the controller IS the waker)
    }
    me.chan = nullptr;
    me.deadline.reset();
    if (me.timeout_fired) {
        me.timeout_fired = false;
        return false;
    }
    return true;
}

void Scheduler::notify(const void* chan) {
    if (t_m_owner == this) {
        // re-entered from user code run under our own mutex (the
        // inner-lock release inside block()): already locked
        bool any = false;
        for (auto& t : tasks_) {
            if (t->state != Task::State::Blocked || t->chan != chan) continue;
            t->state = Task::State::Ready;
            any      = true;
        }
        // the blocking task is still Running here, so no scheduling
        // decision is due
        (void)any;
        return;
    }
    std::lock_guard<std::mutex> lk(m_);
    if (dead_.load(std::memory_order_relaxed)) return;
    bool any = false;
    for (auto& t : tasks_) {
        if (t->state != Task::State::Blocked || t->chan != chan) continue;
        t->state = Task::State::Ready;
        any      = true;
    }
    if (any && running_ == -1 && started_.load(std::memory_order_relaxed)) schedule_locked();
}

std::uint64_t Scheduler::pre_spawn() {
    std::lock_guard<std::mutex> lk(m_);
    return ++spawn_expected_;
}

void Scheduler::wait_spawn(std::uint64_t token) {
    std::unique_lock<std::mutex> lk(m_);
    // lint: allow-bare-wait(scheduler internals: attach() notifies spawn_cv_ directly)
    spawn_cv_.wait(lk, [&] { return spawn_attached_ >= token; });
}

bool Scheduler::leave_for(std::thread::id target) {
    if (t_sched != this) return false;
    std::unique_lock<std::mutex> lk(m_);
    if (dead_.load(std::memory_order_relaxed)) return false;
    Task& me = *tasks_[static_cast<std::size_t>(t_task)];
    if (me.state != Task::State::Running) return false;
    int idx = -1;
    for (std::size_t i = 0; i < tasks_.size(); ++i)
        if (tasks_[i]->tid == target && tasks_[i]->state != Task::State::Done) {
            idx = static_cast<int>(i);
            break;
        }
    // target already detached (or never attached): stay Running — the
    // thread is exiting, join() returns promptly, and since we keep the
    // Running slot no scheduling decision can happen in between
    if (idx < 0) return false;
    tasks_[static_cast<std::size_t>(idx)]->joiner = t_task;
    me.state = Task::State::Away;
    running_ = -1;
    schedule_locked();
    return true;
}

void Scheduler::reenter() {
    if (t_sched != this) return;
    std::unique_lock<std::mutex> lk(m_);
    if (dead_.load(std::memory_order_relaxed)) return;
    Task& me = *tasks_[static_cast<std::size_t>(t_task)];
    // the joined task's detach may already have promoted us to Ready —
    // or the schedule may even have picked us before our join() returned
    if (me.state == Task::State::Running) return;
    if (me.state == Task::State::Away) me.state = Task::State::Ready;
    if (running_ == -1) schedule_locked();
    wait_until_running(lk, me);
}

std::uint64_t Scheduler::steps() const {
    std::lock_guard<std::mutex> lk(m_);
    return step_;
}

std::uint64_t Scheduler::schedule_hash() const {
    std::lock_guard<std::mutex> lk(m_);
    return hash_;
}

void Scheduler::wait_until_running(std::unique_lock<std::mutex>& lk, Task& me) {
    while (!dead_.load(std::memory_order_relaxed) && me.state != Task::State::Running
           && !me.deadlocked)
        me.cv.wait(lk); // lint: allow-bare-wait(scheduler internals: the controller IS the waker)
}

void Scheduler::schedule_locked() {
    std::vector<int> ready;
    for (std::size_t i = 0; i < tasks_.size(); ++i)
        if (tasks_[i]->state == Task::State::Ready) ready.push_back(static_cast<int>(i));
    if (ready.empty()) {
        handle_no_ready();
        return;
    }
    int chosen = pick(ready);
    record_decision(chosen);
    Task& t  = *tasks_[static_cast<std::size_t>(chosen)];
    t.state  = Task::State::Running;
    running_ = chosen;
    t.cv.notify_all();
}

int Scheduler::pick(const std::vector<int>& ready) {
    ++step_;
    if (cfg_.policy == SchedConfig::Policy::random)
        return ready[static_cast<std::size_t>(rng_() % ready.size())];

    // PCT: highest priority wins; at a change point (seeded, plus a
    // forced one every `horizon` decisions as an anti-starvation bound
    // for never-blocking spin loops) the would-be winner's priority
    // drops below everyone else's
    auto argmax = [&] {
        int best = ready.front();
        for (int i : ready)
            if (tasks_[static_cast<std::size_t>(i)]->priority
                > tasks_[static_cast<std::size_t>(best)]->priority)
                best = i;
        return best;
    };
    int  best       = argmax();
    bool seeded_cp  = next_change_ < change_points_.size() && step_ >= change_points_[next_change_];
    bool forced_cp  = step_ >= last_change_ + cfg_.horizon;
    if (seeded_cp || forced_cp) {
        if (seeded_cp) ++next_change_;
        last_change_ = step_;
        tasks_[static_cast<std::size_t>(best)]->priority = low_priority_--;
        obs::instant("sched.change_point", "sched",
                     {{"step", step_, nullptr},
                      {"task", static_cast<std::uint64_t>(best), nullptr}});
        best = argmax();
    }
    return best;
}

void Scheduler::handle_no_ready() {
    // an Away task (e.g. joining an auxiliary thread) may return and
    // unblock someone: make no decision until it reenters
    for (const auto& t : tasks_)
        if (t->state == Task::State::Away) return;

    std::vector<int> blocked;
    for (std::size_t i = 0; i < tasks_.size(); ++i)
        if (tasks_[i]->state == Task::State::Blocked) blocked.push_back(static_cast<int>(i));
    if (blocked.empty()) return; // world drained (all Done)

    // simulated time: with every task blocked, the earliest-deadline
    // wait is the next thing that can happen — fire it immediately
    int earliest = -1;
    for (int i : blocked) {
        const Task& t = *tasks_[static_cast<std::size_t>(i)];
        if (!t.deadline) continue;
        if (earliest < 0
            || *t.deadline < *tasks_[static_cast<std::size_t>(earliest)]->deadline)
            earliest = i;
    }
    if (earliest >= 0) {
        Task& t         = *tasks_[static_cast<std::size_t>(earliest)];
        t.timeout_fired = true;
        t.state         = Task::State::Running;
        running_        = earliest;
        record_decision(earliest);
        obs::instant("sched.timeout", "sched",
                     {{"task", static_cast<std::uint64_t>(earliest), nullptr},
                      {"ms", static_cast<std::uint64_t>(t.deadline_ms), nullptr}});
        t.cv.notify_all();
        return;
    }

    declare_deadlock();
}

void Scheduler::declare_deadlock() {
    deadlock_msg_ = "simmpi: deadlock detected: every task blocked:";
    for (const auto& t : tasks_) {
        if (t->state != Task::State::Blocked) continue;
        std::string s = describe_wait(*t);
        deadlock_msg_ += " [" + s + "]";
        deadlock_sites_.push_back(std::move(s));
    }
    dead_.store(true, std::memory_order_release);
    obs::instant("sched.deadlock", "sched", {{"step", step_, nullptr}});
    for (auto& t : tasks_) {
        if (t->state == Task::State::Blocked) t->deadlocked = true;
        t->cv.notify_all();
    }
}

void Scheduler::mark_m_owner() { t_m_owner = this; }
void Scheduler::clear_m_owner() { t_m_owner = nullptr; }

void Scheduler::record_decision(int chosen) {
    // FNV-1a over the (step, chosen) pairs: equal hashes <=> identical
    // decision sequences (task ids are deterministic: rank slots are
    // pre-created and auxiliary tasks attach at deterministic points)
    constexpr std::uint64_t prime = 1099511628211ull;
    hash_ = (hash_ ^ step_) * prime;
    hash_ = (hash_ ^ static_cast<std::uint64_t>(chosen)) * prime;
    obs::instant("sched.pick", "sched",
                 {{"step", step_, nullptr},
                  {"task", static_cast<std::uint64_t>(chosen), nullptr}});
}

std::string Scheduler::describe_wait(const Task& t) const {
    std::string s = t.name + " at " + (t.site && *t.site ? t.site : "unknown");
    if (t.src != -1 || t.tag != -1) {
        s += " (src=" + (t.src < 0 ? std::string("any") : std::to_string(t.src))
             + ", tag=" + (t.tag < 0 ? std::string("any") : std::to_string(t.tag)) + ")";
    }
    return s;
}

// --- helpers -----------------------------------------------------------------

std::thread spawn_participant(Scheduler* s, const char* role, std::function<void()> fn) {
    // l5race happens-before: the spawner publishes its clock before the
    // thread exists, the child consumes it first thing, and publishes on
    // its own thread-id channel at exit (consumed by coop_join)
    const std::uint64_t hb = l5race::publish_token();
    if (!s || !s->attached_here() || !s->usable()) {
        return std::thread([hb, fn = std::move(fn)] {
            l5race::consume_token(hb);
            fn();
            l5race::thread_exit();
        });
    }
    std::uint64_t token = s->pre_spawn();
    std::thread   t([s, role, hb, fn = std::move(fn)] {
        l5race::consume_token(hb);
        s->attach_aux(role);
        try {
            fn();
        } catch (...) {
            s->detach();
            throw;
        }
        s->detach();
        l5race::thread_exit();
    });
    s->wait_spawn(token);
    return t;
}

void coop_join(Scheduler* s, std::thread& t) {
    const std::thread::id joined = t.get_id();
    if (s && s->attached_here() && s->usable()) {
        bool parked = s->leave_for(t.get_id());
        t.join();
        if (parked) s->reenter();
    } else {
        t.join();
    }
    l5race::thread_joined(joined);
}

} // namespace detail
} // namespace simmpi
