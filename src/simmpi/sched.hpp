#pragma once

#include "error.hpp"

#include <check/race.hpp>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace simmpi {

/// Every task of the world is blocked on something that no other task can
/// provide: a true deadlock, detected instantly by the deterministic
/// scheduler's blocked-rank accounting (instead of a watchdog timeout).
/// The message names each task's wait site; wait_sites() carries them
/// individually for tooling.
class DeadlockError : public Error {
public:
    DeadlockError(const std::string& what, std::vector<std::string> sites)
        : Error(what), sites_(std::move(sites)) {}

    /// One "task at site (src=…, tag=…)" entry per blocked task.
    const std::vector<std::string>& wait_sites() const { return sites_; }

private:
    std::vector<std::string> sites_;
};

/// Configuration of the deterministic cooperative scheduler, parsed from
/// `L5_SCHED` (or passed programmatically via Runtime::RunOptions::sched).
///
/// Spec grammar, fields separated by ',':
///
///   seed=42             — PRNG seed; same seed replays the same schedule
///   policy=random|pct   — uniform random walk (default) or PCT-style
///                         priority chaos
///   depth=3             — PCT only: number of seeded priority-change points
///   horizon=10000       — PCT only: change points are drawn in
///                         [1, horizon]; also the anti-starvation bound
///                         (a forced change point fires every `horizon`
///                         scheduling decisions without one)
///
/// Example: `L5_SCHED='seed=7,policy=pct,depth=3'`.
struct SchedConfig {
    enum class Policy { random, pct };

    std::uint64_t seed    = 0;
    Policy        policy  = Policy::random;
    int           depth   = 3;
    std::uint64_t horizon = 10000;

    /// Parse a spec string; throws simmpi::Error on malformed input.
    static SchedConfig parse(const std::string& spec);

    /// Config from `L5_SCHED`, or nullopt when unset/empty.
    static std::optional<SchedConfig> from_env();

    /// Canonical spec string ("seed=7,policy=pct,depth=3,horizon=10000").
    std::string describe() const;
};

namespace detail {

/// Deterministic cooperative scheduler: when installed on a World, every
/// participating thread (one per rank, plus auxiliary threads such as
/// DistMetadataVol's background server) serializes through this
/// controller — exactly one task runs at a time, and at every scheduling
/// point (send, recv, probe, collective entry, mailbox wait, serve-loop
/// wait) the controller picks the next runnable task with a seeded PRNG.
/// The same seed therefore replays the identical interleaving, and a
/// seed sweep explores schedules that wall-clock timing would never hit.
///
/// Blocked-task accounting replaces timing heuristics:
///  - all tasks blocked, at least one with a deadline → simulated time:
///    the earliest deadline fires immediately as TimeoutError;
///  - all tasks blocked, none with a deadline → DeadlockError thrown at
///    every blocked task's wait site, naming all of them.
///
/// Locking protocol (lost-wakeup freedom): a task blocks by acquiring
/// the scheduler mutex *before* releasing the inner lock that protects
/// its predicate (Mailbox queue, dist_vol state). Wakers notify the
/// scheduler after publishing under the inner lock, so they either see
/// the predicate before the waiter re-checks it or rendezvous on the
/// scheduler mutex after the waiter is registered. The scheduler never
/// acquires any inner lock.
class Scheduler {
public:
    Scheduler(const SchedConfig& cfg, int nranks);

    const SchedConfig& config() const { return cfg_; }

    /// True when scheduling decisions are being made: the start barrier
    /// has been passed and no deadlock has been declared. After a
    /// deadlock the scheduler turns inert so the normal abort/poison
    /// unwinding machinery (real CV waits) can drain the world.
    bool usable() const {
        return started_.load(std::memory_order_relaxed)
               && !dead_.load(std::memory_order_relaxed);
    }

    /// Is the calling thread one of this scheduler's tasks?
    bool attached_here() const;

    // --- thread binding ---------------------------------------------------

    /// Bind the calling thread to rank slot `rank`. Blocks until every
    /// rank has attached (the start barrier — thread spawn order cannot
    /// perturb the schedule), then until this task is scheduled.
    void attach_rank(int rank);

    /// Bind the calling thread as an auxiliary task (use through
    /// spawn_participant, which makes the spawn a deterministic point).
    void attach_aux(const std::string& role);

    /// Unbind the calling thread; its slot becomes Done and the next
    /// runnable task is scheduled. Safe to call when never/no longer
    /// attached.
    void detach();

    // --- scheduling points ------------------------------------------------

    /// Non-blocking scheduling point: offer the controller a chance to
    /// switch tasks. No-op for unattached threads and inert schedulers.
    void yield(const char* site);

    /// Deschedule the calling task because its predicate (protected by
    /// `inner`) does not hold. `inner` is released only after this task
    /// is registered under the scheduler mutex and reacquired before a
    /// normal return. Returns false when the task's simulated deadline
    /// fired (caller throws TimeoutError); throws DeadlockError when the
    /// whole world is blocked; returns true otherwise — spuriously if
    /// the scheduler is inert, so callers must loop on their predicate.
    template <class Lock>
    bool block(Lock& inner, const void* chan, const char* site, int src, int tag,
               const std::optional<std::chrono::steady_clock::time_point>& deadline = {},
               std::int64_t deadline_ms = 0) {
        std::unique_lock<std::mutex> lk(m_);
        if (!block_would_park()) return true;
        // inner.unlock() may re-enter notify() (CoopLock wakes waiters of
        // its mutex); mark ownership so that runs inline instead of
        // self-deadlocking on m_
        mark_m_owner();
        inner.unlock();
        clear_m_owner();
        // DeadlockError propagates with `inner` unlocked: the caller is
        // unwinding and must not re-enter the cooperative machinery
        bool ok = block_registered(lk, chan, site, src, tag, deadline, deadline_ms);
        lk.unlock();
        inner.lock();
        return ok;
    }

    /// Mark every task blocked on `chan` runnable (they re-check their
    /// predicates and may block again) — the scheduler-side half of a
    /// cv.notify_all(). Callable from any thread, including unattached
    /// ones (e.g. World::abort poisoning mailboxes).
    void notify(const void* chan);

    /// Cooperatively acquire `m` (a mutex shared between tasks, e.g.
    /// dist_vol's): on contention the caller blocks on channel &m so the
    /// descheduled holder can run to release it; the holder's unlock
    /// notifies &m. Never holds the scheduler mutex across a blocking
    /// mutex acquisition.
    template <class Mutex>
    void coop_lock(Mutex& m, const char* site) {
        std::unique_lock<std::mutex> lk(m_);
        while (!m.try_lock()) {
            if (!block_would_park()) {
                // inert: fall back to a real blocking acquire
                lk.unlock();
                m.lock();
                return;
            }
            block_registered(lk, &m, site, -1, -1, {}, 0);
        }
    }

    // --- auxiliary-thread rendezvous -------------------------------------

    /// Announce an auxiliary thread about to be spawned; pair with
    /// wait_spawn so its attachment is a deterministic point in the
    /// spawner's execution.
    std::uint64_t pre_spawn();
    void          wait_spawn(std::uint64_t token);

    /// Step out of the schedule to join the task running on thread
    /// `target` (use through coop_join): other tasks keep running while
    /// this one is away, and the *joined task's detach* promotes this
    /// one back to Ready — a deterministic point, unlike the real-time
    /// instant join() happens to return. Returns false (caller stays
    /// Running, no reenter needed) when the target already detached or
    /// never attached: join() then returns promptly and no scheduling
    /// decision can occur in between. While any task is away, deadlock
    /// and timeout delivery are suppressed (the away task may unblock
    /// them).
    bool leave_for(std::thread::id target);
    void reenter();

    // --- replay identity --------------------------------------------------

    /// Number of scheduling decisions taken so far.
    std::uint64_t steps() const;

    /// FNV-1a hash over the full (step, chosen-task) decision sequence:
    /// two runs replayed the same schedule iff their hashes agree.
    std::uint64_t schedule_hash() const;

private:
    struct Task {
        enum class State {
            Unborn,  ///< slot exists, thread not yet attached
            Ready,   ///< runnable, waiting to be scheduled
            Running, ///< the single executing task
            Blocked, ///< descheduled on a channel
            Away,    ///< out of the schedule (external blocking op)
            Done,    ///< detached
        };
        State         state = State::Unborn;
        std::string   name;
        const char*   site = "";
        int           src  = -1;
        int           tag  = -1;
        const void*   chan = nullptr;
        std::optional<std::chrono::steady_clock::time_point> deadline;
        std::int64_t  deadline_ms   = 0;
        bool          timeout_fired = false;
        bool          deadlocked    = false;
        std::uint64_t priority      = 0;  ///< PCT: higher runs first
        std::thread::id tid{};            ///< backing thread (aux tasks; for leave_for)
        int             joiner = -1;      ///< Away task joining this one, promoted at detach
        std::condition_variable cv;
    };

    // All private helpers require m_ held (except the TLS reads).
    bool block_would_park() const;
    bool block_registered(std::unique_lock<std::mutex>& lk, const void* chan, const char* site,
                          int src, int tag,
                          const std::optional<std::chrono::steady_clock::time_point>& deadline,
                          std::int64_t deadline_ms);
    void mark_m_owner();
    void clear_m_owner();
    void wait_until_running(std::unique_lock<std::mutex>& lk, Task& me);
    void schedule_locked();
    int  pick(const std::vector<int>& ready);
    void handle_no_ready();
    void declare_deadlock();
    void record_decision(int chosen);
    std::string describe_wait(const Task& t) const;

    SchedConfig cfg_;
    int         nranks_;

    mutable std::mutex m_;
    std::vector<std::unique_ptr<Task>> tasks_;
    int               attached_ranks_ = 0;
    int               running_        = -1; ///< index of the Running task, -1 = none
    std::atomic<bool> started_{false};
    std::atomic<bool> dead_{false};

    std::mt19937_64 rng_;
    std::uint64_t   step_ = 0;
    std::uint64_t   hash_ = 1469598103934665603ull; // FNV-1a offset basis

    // PCT state
    std::vector<std::uint64_t> change_points_;     ///< sorted ascending
    std::size_t                next_change_   = 0;
    std::uint64_t              last_change_   = 0; ///< step of the last change point
    std::uint64_t              low_priority_  = 1u << 16;

    // precomputed at declare_deadlock so every thrower reports the same
    // complete site list
    std::string              deadlock_msg_;
    std::vector<std::string> deadlock_sites_;

    // spawn rendezvous
    std::uint64_t           spawn_expected_ = 0;
    std::uint64_t           spawn_attached_ = 0;
    std::condition_variable spawn_cv_;
};

/// Spawn `fn` on a new thread that participates in the deterministic
/// schedule when `s` is active and the calling thread is one of its
/// tasks; a plain std::thread otherwise. The spawner blocks until the
/// new task has attached, making the spawn itself deterministic.
std::thread spawn_participant(Scheduler* s, const char* role, std::function<void()> fn);

/// The scheduler the calling thread is attached to, or nullptr when the
/// thread is free-running. Lets layers below simmpi (e.g. the h5::par
/// data-plane pool) route their helper threads through the deterministic
/// schedule instead of bypassing it.
Scheduler* this_thread_scheduler();

/// Scheduler-aware guard for a mutex shared between tasks (e.g.
/// DistMetadataVol's serve-state mutex): under an active scheduler,
/// contention blocks through the controller so the descheduled holder
/// can be scheduled to release it; otherwise it is a plain lock. Also a
/// BasicLockable, so it can back a condition_variable_any wait.
template <class Mutex>
class CoopLock {
public:
    CoopLock(Scheduler* s, Mutex& m, const char* site) : s_(s), m_(m), site_(site) { lock(); }
    ~CoopLock() {
        if (held_) unlock();
    }
    CoopLock(const CoopLock&)            = delete;
    CoopLock& operator=(const CoopLock&) = delete;

    void lock() {
        if (s_ && s_->attached_here() && s_->usable()) s_->coop_lock(m_, site_);
        else m_.lock();
        held_ = true;
        // after the physical lock and held_, so a raise-mode lockdep
        // throw unwinds through ~CoopLock and still releases the mutex
        l5race::lock_acquired(static_cast<const void*>(&m_), site_);
    }

    void unlock() {
        l5race::lock_released(static_cast<const void*>(&m_));
        held_ = false;
        m_.unlock();
        if (s_) s_->notify(&m_);
    }

    /// Address identity of the backing mutex (l5race wait-lint channel).
    Mutex& mutex() const { return m_; }

private:
    Scheduler*  s_;
    Mutex&      m_;
    const char* site_;
    bool        held_ = false;
};

/// Scheduler-aware condition wait: equivalent to cv.wait(lk, pred), but
/// under an active scheduler the wait is a scheduling point on channel
/// &cv. Wakers must pair cv.notify_all() with s->notify(&cv).
template <class Mutex, class Pred>
void coop_wait(Scheduler* s, std::condition_variable_any& cv, CoopLock<Mutex>& lk,
               const char* site, Pred pred) {
    l5race::on_cv_block(static_cast<const void*>(&lk.mutex()), site);
    while (s && s->attached_here() && s->usable() && !pred())
        s->block(lk, &cv, site, -1, -1);
    cv.wait(lk, pred); // lint: allow-bare-wait(free-running fallback of coop_wait itself)
}

/// Deadline-aware coop_wait: waits for `pred` like coop_wait, but gives
/// up after `timeout_ms` (<= 0 means no deadline — plain coop_wait).
/// Returns the final pred() value: false means the deadline fired first
/// (the caller turns that into a TimeoutError). Under a deterministic
/// scheduler the deadline fires in simulated time (instantly, when the
/// whole world is otherwise blocked); a deadline-free wait that blocks
/// the whole world still throws DeadlockError naming `site`.
template <class Mutex, class Pred>
bool coop_wait_deadline(Scheduler* s, std::condition_variable_any& cv, CoopLock<Mutex>& lk,
                        const char* site, std::int64_t timeout_ms, Pred pred) {
    if (timeout_ms <= 0) {
        coop_wait(s, cv, lk, site, pred);
        return true;
    }
    l5race::on_cv_block(static_cast<const void*>(&lk.mutex()), site);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (s && s->attached_here() && s->usable()) {
        if (pred()) return true;
        if (!s->block(lk, &cv, site, -1, -1, deadline, timeout_ms)) return pred();
    }
    // lint: allow-bare-wait(free-running fallback of coop_wait_deadline itself)
    return cv.wait_until(lk, deadline, pred);
}

/// Join `t` without monopolizing the schedule: the calling task steps
/// away so the joined task can be scheduled to completion.
void coop_join(Scheduler* s, std::thread& t);

void set_last_schedule_hash(std::uint64_t h);

} // namespace detail

/// Process-wide schedule hash of the most recently completed
/// deterministic run, set by Runtime::run after joining a scheduled
/// world (0 until then). Replay-determinism checks compare it across
/// runs with equal seeds.
std::uint64_t last_schedule_hash();

} // namespace simmpi
