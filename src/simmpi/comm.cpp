#include "comm.hpp"

#include <obs/trace.hpp>

#include <algorithm>
#include <map>

namespace simmpi {

namespace {

void append_bytes(std::vector<std::byte>& out, const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    out.insert(out.end(), p, p + n);
}

} // namespace

void Comm::set_default_deadline(std::int64_t ms) const {
    if (!world_) throw Error("simmpi: operation on an invalid communicator");
    world_->set_default_timeout_ms(ms);
}

std::int64_t Comm::effective_deadline_ms() const {
    if (!world_) return -1;
    std::int64_t ms = timeout_ms_ >= 0 ? timeout_ms_ : world_->default_timeout_ms();
    return ms > 0 ? ms : -1;
}

detail::Deadline Comm::deadline() const {
    std::int64_t ms = effective_deadline_ms();
    if (ms <= 0) return {};
    return {std::chrono::steady_clock::now() + std::chrono::milliseconds(ms), ms};
}

detail::Mailbox& Comm::peer_mailbox(int dest) const {
    if (!world_) throw Error("simmpi: operation on an invalid communicator");
    if (dest < 0 || dest >= peer_size())
        throw Error("simmpi: destination rank " + std::to_string(dest) + " out of range (peer size "
                    + std::to_string(peer_size()) + ")");
    return world_->mailbox(peer_group_[static_cast<std::size_t>(dest)]);
}

void Comm::send(int dest, int tag, const void* data, std::size_t bytes) const {
    std::vector<std::byte> payload(bytes);
    if (bytes) std::memcpy(payload.data(), data, bytes);
    send(dest, tag, std::move(payload));
}

void Comm::send(int dest, int tag, std::vector<std::byte>&& payload) const {
    send_shared(dest, tag, make_shared_payload(std::move(payload)));
}

void Comm::send_shared(int dest, int tag, SharedPayload payload) const {
    if (tag < 0) throw Error("simmpi: user tags must be non-negative");
    if (!world_) throw Error("simmpi: operation on an invalid communicator");
    sched_point("send");
    world_->check_abort();
    fault_op(tag, true);
    obs::instant("pt2pt.send", "simmpi",
                 {{"comm", context_, nullptr},
                  {"peer", static_cast<std::uint64_t>(dest), nullptr},
                  {"tag", static_cast<std::uint64_t>(tag), nullptr},
                  {"bytes", payload ? payload->size() : 0, nullptr}});
    detail::Envelope env;
    env.context = context_;
    env.src     = rank_;
    env.tag     = tag;
    env.payload = std::move(payload);
    if (auto* ck = checker())
        env.check_seq = ck->on_send(world_rank(), peer_world_rank(dest), context_, tag,
                                    env.size());
    peer_mailbox(dest).push(std::move(env));
}

Status Comm::recv(int src, int tag, std::vector<std::byte>& out) const {
    if (!world_) throw Error("simmpi: operation on an invalid communicator");
    sched_point("recv");
    obs::Span span("pt2pt.recv", "simmpi",
                   {{"comm", context_, nullptr},
                    {"peer", static_cast<std::uint64_t>(src), nullptr},
                    {"tag", static_cast<std::uint64_t>(tag), nullptr}});
    fault_op(tag, false);
    detail::Envelope env = my_mailbox().pop(context_, src, tag, deadline());
    Status           st{env.src, env.tag, env.size(), env.check_seq};
    if (auto* ck = checker())
        ck->on_recv(world_rank(), context_, peer_world_rank(src), tag,
                    peer_world_rank(env.src), env.tag, env.check_seq);
    span.end_arg("bytes", st.count);
    out = detail::take_payload(std::move(env.payload));
    return st;
}

Status Comm::recv_shared(int src, int tag, SharedPayload& out) const {
    if (!world_) throw Error("simmpi: operation on an invalid communicator");
    sched_point("recv");
    obs::Span span("pt2pt.recv_shared", "simmpi",
                   {{"comm", context_, nullptr},
                    {"peer", static_cast<std::uint64_t>(src), nullptr},
                    {"tag", static_cast<std::uint64_t>(tag), nullptr}});
    fault_op(tag, false);
    detail::Envelope env = my_mailbox().pop(context_, src, tag, deadline());
    Status           st{env.src, env.tag, env.size(), env.check_seq};
    if (auto* ck = checker())
        ck->on_recv(world_rank(), context_, peer_world_rank(src), tag,
                    peer_world_rank(env.src), env.tag, env.check_seq);
    span.end_arg("bytes", st.count);
    out = std::move(env.payload);
    return st;
}

Status Comm::recv_into(int src, int tag, void* buf, std::size_t capacity) const {
    std::vector<std::byte> raw;
    Status                 st = recv(src, tag, raw);
    if (st.count > capacity) {
        check_count(src, tag, "recv_into", capacity, st.count);
        throw Error("simmpi: recv_into buffer too small (" + std::to_string(capacity)
                    + " < " + std::to_string(st.count) + ")");
    }
    if (st.count) std::memcpy(buf, raw.data(), st.count);
    return st;
}

Status Comm::probe(int src, int tag) const {
    if (!world_) throw Error("simmpi: operation on an invalid communicator");
    sched_point("probe");
    obs::Span span("pt2pt.probe", "simmpi",
                   {{"comm", context_, nullptr},
                    {"tag", static_cast<std::uint64_t>(tag), nullptr}});
    fault_op(tag, false);
    Status st = my_mailbox().probe_wait(context_, src, tag, deadline());
    if (auto* ck = checker())
        ck->on_probe(world_rank(), context_, peer_world_rank(src), tag,
                     peer_world_rank(st.source), st.tag, st.check_seq);
    return st;
}

std::optional<Status> Comm::iprobe(int src, int tag) const {
    if (!world_) throw Error("simmpi: operation on an invalid communicator");
    sched_point("iprobe");
    std::optional<Status> st = my_mailbox().probe(context_, src, tag);
    if (st)
        if (auto* ck = checker())
            ck->on_probe(world_rank(), context_, peer_world_rank(src), tag,
                         peer_world_rank(st->source), st->tag, st->check_seq);
    return st;
}

Status Comm::probe_any(std::span<const Comm* const> comms, int src, int tag, std::size_t* which) {
    if (comms.empty()) throw Error("simmpi: probe_any needs at least one communicator");
    const Comm& first = *comms.front();
    if (!first.world_) throw Error("simmpi: probe_any on an invalid communicator");

    std::vector<std::uint64_t> contexts;
    contexts.reserve(comms.size());
    for (const Comm* c : comms) {
        if (!c->world_ || c->world_ != first.world_
            || c->group_[static_cast<std::size_t>(c->rank_)]
                   != first.group_[static_cast<std::size_t>(first.rank_)])
            throw Error("simmpi: probe_any communicators must share this rank's mailbox");
        contexts.push_back(c->context_);
    }
    obs::Span span("pt2pt.probe_any", "simmpi",
                   {{"comms", contexts.size(), nullptr},
                    {"tag", static_cast<std::uint64_t>(tag), nullptr}});
    first.sched_point("probe_any");
    first.fault_op(tag, false);
    std::size_t k  = 0;
    Status      st = first.my_mailbox().probe_wait_any(contexts, src, tag, &k, first.deadline());
    const Comm& hit = *comms[k];
    if (auto* ck = hit.checker())
        ck->on_probe(hit.world_rank(), hit.context_, hit.peer_world_rank(src), tag,
                     hit.peer_world_rank(st.source), st.tag, st.check_seq);
    if (which) *which = k;
    return st;
}

Request Comm::isend(int dest, int tag, const void* data, std::size_t bytes) const {
    send(dest, tag, data, bytes); // buffered: completes immediately
    return Request::completed_send(bytes);
}

Request Comm::irecv(int src, int tag, std::vector<std::byte>& out) const {
    Request r = Request::pending_recv(*this, src, tag, &out);
    if (auto* ck = checker()) r.check_id_ = ck->on_irecv(world_rank(), peer_world_rank(src), tag);
    return r;
}

void Comm::check_count(int src, int tag, const char* what, std::size_t expected,
                       std::size_t got) const {
    if (auto* ck = checker())
        ck->on_count_mismatch(world_rank(), peer_world_rank(src), tag, what, expected, got);
}

void Comm::coll_check(const char* kind, int root, std::size_t elem) const {
    if (auto* ck = checker()) ck->on_collective(world_rank(), context_, kind, root, elem);
}

// --- internal collective plumbing -----------------------------------------

void Comm::coll_send(int dest, int tag, std::span<const std::byte> data) const {
    coll_send(dest, tag, std::vector<std::byte>(data.begin(), data.end()));
}

void Comm::coll_send(int dest, int tag, std::vector<std::byte>&& data) const {
    coll_send_shared(dest, tag, make_shared_payload(std::move(data)));
}

void Comm::coll_send_shared(int dest, int tag, SharedPayload data) const {
    sched_point("coll_send");
    world_->check_abort();
    fault_op(tag, true);
    detail::Envelope env;
    env.context = coll_context();
    env.src     = rank_;
    env.tag     = tag;
    env.payload = std::move(data);
    if (auto* ck = checker())
        env.check_seq = ck->on_send(world_rank(), peer_world_rank(dest), coll_context(), tag,
                                    env.size(), /*collective=*/true);
    peer_mailbox(dest).push(std::move(env));
}

std::vector<std::byte> Comm::coll_recv(int src, int tag) const {
    sched_point("coll_recv");
    fault_op(tag, false);
    detail::Envelope env = my_mailbox().pop(coll_context(), src, tag, deadline());
    if (auto* ck = checker())
        ck->on_recv(world_rank(), coll_context(), peer_world_rank(src), tag,
                    peer_world_rank(env.src), env.tag, env.check_seq);
    return detail::take_payload(std::move(env.payload));
}

// --- collectives ------------------------------------------------------------

void Comm::barrier() const {
    check_intra("barrier");
    coll_check("barrier", -1, 0);
    obs::Span span("coll.barrier", "simmpi",
                   {{"comm", context_, nullptr},
                    {"size", static_cast<std::uint64_t>(size()), nullptr}});
    const int tag = static_cast<int>((*coll_seq_)++ % (1u << 28)) * 4;
    if (rank_ == 0) {
        for (int r = 1; r < size(); ++r) (void)coll_recv(r, tag);
        for (int r = 1; r < size(); ++r) coll_send(r, tag + 1, std::vector<std::byte>{});
    } else {
        coll_send(0, tag, std::vector<std::byte>{});
        (void)coll_recv(0, tag + 1);
    }
}

void Comm::bcast(std::vector<std::byte>& data, int root) const { bcast_n(data, root, 0); }

void Comm::bcast_n(std::vector<std::byte>& data, int root, std::size_t elem) const {
    check_intra("bcast");
    coll_check("bcast", root, elem);
    obs::Span span("coll.bcast", "simmpi",
                   {{"comm", context_, nullptr},
                    {"root", static_cast<std::uint64_t>(root), nullptr},
                    {"bytes", data.size(), nullptr}});
    const int tag = static_cast<int>((*coll_seq_)++ % (1u << 28)) * 4;
    if (rank_ == root) {
        // one refcounted buffer fanned out to the whole group (the root
        // keeps `data`, so a single copy replaces the former N-1)
        auto shared = make_shared_payload(std::vector<std::byte>(data.begin(), data.end()));
        for (int r = 0; r < size(); ++r)
            if (r != root) coll_send_shared(r, tag, shared);
    } else {
        data = coll_recv(root, tag);
    }
}

std::vector<std::vector<std::byte>> Comm::gather(std::span<const std::byte> mine, int root) const {
    return gather_n(mine, root, 0);
}

std::vector<std::vector<std::byte>> Comm::gather_n(std::span<const std::byte> mine, int root,
                                                   std::size_t elem) const {
    check_intra("gather");
    coll_check("gather", root, elem);
    obs::Span span("coll.gather", "simmpi",
                   {{"comm", context_, nullptr},
                    {"root", static_cast<std::uint64_t>(root), nullptr},
                    {"bytes", mine.size(), nullptr}});
    const int tag = static_cast<int>((*coll_seq_)++ % (1u << 28)) * 4;
    std::vector<std::vector<std::byte>> out;
    if (rank_ == root) {
        out.resize(static_cast<std::size_t>(size()));
        out[static_cast<std::size_t>(root)].assign(mine.begin(), mine.end());
        for (int r = 0; r < size(); ++r)
            if (r != root) out[static_cast<std::size_t>(r)] = coll_recv(r, tag);
    } else {
        coll_send(root, tag, mine);
    }
    return out;
}

std::vector<std::vector<std::byte>> Comm::allgather(std::span<const std::byte> mine) const {
    return allgather_n(mine, 0);
}

std::vector<std::vector<std::byte>> Comm::allgather_n(std::span<const std::byte> mine,
                                                      std::size_t elem) const {
    check_intra("allgather");
    coll_check("allgather", -1, elem);
    obs::Span span("coll.allgather", "simmpi",
                   {{"comm", context_, nullptr}, {"bytes", mine.size(), nullptr}});
    // gather at rank 0, then broadcast the concatenation (2N messages, not N^2)
    auto gathered = gather_n(mine, 0, elem);

    std::vector<std::byte> packed;
    if (rank_ == 0) {
        for (auto& part : gathered) {
            std::uint64_t n = part.size();
            append_bytes(packed, &n, sizeof(n));
            append_bytes(packed, part.data(), part.size());
        }
    }
    bcast(packed, 0);

    std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(size()));
    std::size_t                         off = 0;
    for (auto& part : out) {
        std::uint64_t n = 0;
        std::memcpy(&n, packed.data() + off, sizeof(n));
        off += sizeof(n);
        part.assign(packed.begin() + static_cast<std::ptrdiff_t>(off),
                    packed.begin() + static_cast<std::ptrdiff_t>(off + n));
        off += n;
    }
    return out;
}

std::vector<std::vector<std::byte>> Comm::alltoall(std::vector<std::vector<std::byte>>&& outgoing) const {
    check_intra("alltoall");
    if (outgoing.size() != static_cast<std::size_t>(size()))
        throw Error("simmpi: alltoall requires one payload per rank");
    coll_check("alltoall", -1, 0);
    std::size_t out_bytes = 0;
    for (const auto& p : outgoing) out_bytes += p.size();
    obs::Span span("coll.alltoall", "simmpi",
                   {{"comm", context_, nullptr}, {"bytes", out_bytes, nullptr}});
    const int tag = static_cast<int>((*coll_seq_)++ % (1u << 28)) * 4;
    for (int r = 0; r < size(); ++r)
        coll_send(r, tag, std::move(outgoing[static_cast<std::size_t>(r)]));
    std::vector<std::vector<std::byte>> incoming(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r)
        incoming[static_cast<std::size_t>(r)] = coll_recv(r, tag);
    return incoming;
}

std::vector<std::byte> Comm::scatter(std::vector<std::vector<std::byte>>&& parts, int root) const {
    return scatter_n(std::move(parts), root, 0);
}

std::vector<std::byte> Comm::scatter_n(std::vector<std::vector<std::byte>>&& parts, int root,
                                       std::size_t elem) const {
    check_intra("scatter");
    coll_check("scatter", root, elem);
    obs::Span span("coll.scatter", "simmpi",
                   {{"comm", context_, nullptr},
                    {"root", static_cast<std::uint64_t>(root), nullptr}});
    const int tag = static_cast<int>((*coll_seq_)++ % (1u << 28)) * 4;
    if (rank_ == root) {
        if (parts.size() != static_cast<std::size_t>(size()))
            throw Error("simmpi: scatter requires one part per rank");
        for (int r = 0; r < size(); ++r) {
            if (r == root) continue;
            coll_send(r, tag, std::move(parts[static_cast<std::size_t>(r)]));
        }
        return std::move(parts[static_cast<std::size_t>(root)]);
    }
    return coll_recv(root, tag);
}

// --- communicator management -------------------------------------------------

Comm Comm::split(int color, int key) const {
    check_intra("split");

    struct Entry {
        int color, key, rank;
    };
    auto entries = allgather_value(Entry{color, key, rank_});

    // distinct colors, sorted, determine context assignment
    std::vector<int> colors;
    for (const auto& e : entries) colors.push_back(e.color);
    std::sort(colors.begin(), colors.end());
    colors.erase(std::unique(colors.begin(), colors.end()), colors.end());

    std::uint64_t base = 0;
    if (rank_ == 0) base = world_->reserve_contexts(2 * colors.size());
    base = bcast_value(base, 0);

    const auto color_idx = static_cast<std::size_t>(
        std::lower_bound(colors.begin(), colors.end(), color) - colors.begin());

    // my subgroup, ordered by (key, parent rank)
    std::vector<Entry> mine;
    for (const auto& e : entries)
        if (e.color == color) mine.push_back(e);
    std::stable_sort(mine.begin(), mine.end(), [](const Entry& a, const Entry& b) {
        return a.key != b.key ? a.key < b.key : a.rank < b.rank;
    });

    std::vector<int> group;
    int              new_rank = -1;
    for (const auto& e : mine) {
        if (e.rank == rank_) new_rank = static_cast<int>(group.size());
        group.push_back(group_[static_cast<std::size_t>(e.rank)]);
    }
    return Comm(world_, base + 2 * color_idx, group, group, new_rank, false);
}

Comm Comm::dup() const {
    check_intra("dup");
    std::uint64_t base = 0;
    if (rank_ == 0) base = world_->reserve_contexts(2);
    base = bcast_value(base, 0);
    return Comm(world_, base, group_, peer_group_, rank_, inter_);
}

Comm Comm::create_intercomm(const Comm& parent, std::span<const int> group_a,
                            std::span<const int> group_b) {
    parent.check_intra("create_intercomm");
    std::uint64_t base = 0;
    if (parent.rank_ == 0) base = parent.world_->reserve_contexts(2);
    base = parent.bcast_value(base, 0);

    auto to_world = [&](std::span<const int> parent_ranks) {
        std::vector<int> world_ranks;
        world_ranks.reserve(parent_ranks.size());
        for (int pr : parent_ranks) {
            if (pr < 0 || pr >= parent.size())
                throw Error("simmpi: create_intercomm rank out of range");
            world_ranks.push_back(parent.group_[static_cast<std::size_t>(pr)]);
        }
        return world_ranks;
    };
    std::vector<int> wa = to_world(group_a);
    std::vector<int> wb = to_world(group_b);

    auto find_in = [&](std::span<const int> parent_ranks) {
        for (std::size_t i = 0; i < parent_ranks.size(); ++i)
            if (parent_ranks[i] == parent.rank_) return static_cast<int>(i);
        return -1;
    };
    int ia = find_in(group_a);
    int ib = find_in(group_b);
    if (ia >= 0 && ib >= 0)
        throw Error("simmpi: create_intercomm groups must be disjoint");

    if (ia >= 0) return Comm(parent.world_, base, wa, wb, ia, true);
    if (ib >= 0) return Comm(parent.world_, base, wb, wa, ib, true);
    return Comm{}; // not a member of either group
}

// --- Request -----------------------------------------------------------------

Status Request::wait() {
    if (!done_) {
        status_ = comm_.recv(src_, tag_, *out_);
        done_   = true;
        if (check_id_)
            if (auto* ck = comm_.checker()) ck->on_request_done(check_id_);
    }
    return status_;
}

bool Request::test(Status* status) {
    if (!done_) {
        if (!comm_.iprobe(src_, tag_)) return false;
        status_ = comm_.recv(src_, tag_, *out_);
        done_   = true;
        if (check_id_)
            if (auto* ck = comm_.checker()) ck->on_request_done(check_id_);
    }
    if (status) *status = status_;
    return true;
}

void wait_all(std::span<Request> requests) {
    for (auto& r : requests) r.wait();
}

} // namespace simmpi
