#include "runtime.hpp"

#include <obs/trace.hpp>

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace simmpi {

void Runtime::run(int world_size, const TaskFn& fn) {
    run(world_size, [&](Comm& c, int) { fn(c); });
}

void Runtime::run(int world_size, const std::function<void(Comm&, int)>& fn) {
    if (world_size <= 0) throw Error("simmpi: world size must be positive");

    auto          world = std::make_shared<detail::World>(world_size);
    std::uint64_t base  = world->reserve_contexts(2);

    std::vector<int> identity(static_cast<std::size_t>(world_size));
    for (int r = 0; r < world_size; ++r) identity[static_cast<std::size_t>(r)] = r;

    std::mutex         err_mutex;
    std::exception_ptr first_error;

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(world_size));
    for (int r = 0; r < world_size; ++r) {
        threads.emplace_back([&, r] {
            try {
                obs::set_thread_rank(r); // telemetry lane of this rank-thread
                Comm comm(world, base, identity, identity, r, false);
                fn(comm, r);
            } catch (...) {
                std::lock_guard<std::mutex> lock(err_mutex);
                if (!first_error) first_error = std::current_exception();
            }
        });
    }
    for (auto& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
}

} // namespace simmpi
