#include "runtime.hpp"

#include <obs/trace.hpp>

#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace simmpi {

namespace {

std::int64_t timeout_ms_from_env() {
    const char* s = std::getenv("L5_TIMEOUT_MS");
    if (!s || !*s) return 0;
    try {
        std::size_t  pos = 0;
        std::int64_t v   = std::stoll(s, &pos);
        if (pos != std::string(s).size() || v < 0) throw std::invalid_argument("bad");
        return v;
    } catch (const std::exception&) {
        throw Error(std::string("simmpi: bad L5_TIMEOUT_MS '") + s
                    + "' (expected a non-negative integer)");
    }
}

struct Failure {
    int                rank;
    std::exception_ptr error;
    std::string        what;
    bool               aborted; ///< secondary: unblocked by another rank's abort
};

} // namespace

void Runtime::run(int world_size, const TaskFn& fn) {
    run(world_size, [&](Comm& c, int) { fn(c); });
}

void Runtime::run(int world_size, const std::function<void(Comm&, int)>& fn) {
    run(world_size, fn, RunOptions{});
}

void Runtime::run(int world_size, const std::function<void(Comm&, int)>& fn,
                  const RunOptions& opts) {
    if (world_size <= 0) throw Error("simmpi: world size must be positive");

    auto          world = std::make_shared<detail::World>(world_size);
    std::uint64_t base  = world->reserve_contexts(2);

    world->set_default_timeout_ms(opts.default_timeout_ms >= 0 ? opts.default_timeout_ms
                                                               : timeout_ms_from_env());
    if (opts.faults) {
        if (!opts.faults->empty()) world->set_faults(*opts.faults);
    } else if (auto env_plan = FaultPlan::from_env()) {
        world->set_faults(std::move(*env_plan));
    }

    std::optional<SchedConfig> sched_cfg = opts.sched;
    if (!sched_cfg) sched_cfg = SchedConfig::from_env();
    if (sched_cfg) world->set_scheduler(*sched_cfg);
    detail::Scheduler* sched = world->sched();

    std::optional<l5check::CheckConfig> check_cfg = opts.check;
    if (!check_cfg) check_cfg = l5check::CheckConfig::from_env();
    if (check_cfg) {
        world->set_checker(*check_cfg);
        if (sched_cfg) {
            // schedule-dependent diagnostics carry a copy-pasteable repro:
            // the exact L5_SCHED config plus the schedule position reached
            std::string cfg_line = sched_cfg->describe();
            world->checker()->set_repro_hook([cfg_line, sched] {
                return "L5_SCHED='" + cfg_line + "' reproduces this schedule (hash "
                       + std::to_string(sched->schedule_hash()) + " at step "
                       + std::to_string(sched->steps()) + ")";
            });
        } else {
            world->checker()->set_repro_hook([] {
                return std::string("no deterministic schedule active; rerun under "
                                   "mh5sched --check (or set L5_SCHED=seed=N,policy=random) "
                                   "for a replayable interleaving");
            });
        }
    }

    std::optional<l5race::RaceConfig> race_cfg = opts.race;
    if (!race_cfg) race_cfg = l5race::RaceConfig::from_env();
    // process-wide arming: a nested run inside an already-armed one keeps
    // the outer detector (arm() returns false) and the outer finalizes
    const bool race_owner = race_cfg && l5race::arm(*race_cfg);
    if (race_owner) {
        if (sched_cfg) {
            std::string cfg_line = sched_cfg->describe();
            l5race::set_repro_hook([cfg_line, sched] {
                return "L5_SCHED='" + cfg_line + "' reproduces this schedule (hash "
                       + std::to_string(sched->schedule_hash()) + " at step "
                       + std::to_string(sched->steps()) + ")";
            });
        } else {
            l5race::set_repro_hook([] {
                return std::string("no deterministic schedule active; rerun under "
                                   "mh5sched --race (or set L5_SCHED=seed=N,policy=random) "
                                   "for a replayable interleaving");
            });
        }
    }

    std::vector<int> identity(static_cast<std::size_t>(world_size));
    for (int r = 0; r < world_size; ++r) identity[static_cast<std::size_t>(r)] = r;

    std::mutex           err_mutex;
    std::vector<Failure> failures;

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(world_size));
    for (int r = 0; r < world_size; ++r) {
        // l5race: driver-thread clock flows into each rank-thread (spawn
        // edge); the rank publishes at exit, consumed after the joins
        const std::uint64_t race_hb = l5race::publish_token();
        threads.emplace_back([&, r, race_hb] {
            l5race::consume_token(race_hb);
            obs::set_thread_rank(r); // telemetry lane of this rank-thread
            // bind to the scheduler before running; unbind only after the
            // catch handler so abort/poison happens while still scheduled
            if (sched) sched->attach_rank(r);
            struct DetachGuard {
                detail::Scheduler* s;
                ~DetachGuard() {
                    if (s) s->detach();
                }
            } guard{sched};
            try {
                Comm comm(world, base, identity, identity, r, false);
                fn(comm, r);
            } catch (...) {
                Failure f{r, std::current_exception(), "unknown exception", false};
                try {
                    throw;
                } catch (const AbortedError& e) {
                    f.what    = e.what();
                    f.aborted = true;
                } catch (const std::exception& e) {
                    f.what = e.what();
                } catch (...) {
                }
                std::string cause = f.what;
                {
                    std::lock_guard<std::mutex> lock(err_mutex);
                    failures.push_back(std::move(f));
                }
                // poison the world so no peer is left blocked on this rank
                world->abort(r, cause);
            }
            l5race::thread_exit();
        });
    }
    std::vector<std::thread::id> thread_ids;
    thread_ids.reserve(threads.size());
    for (const auto& t : threads) thread_ids.push_back(t.get_id());
    for (auto& t : threads) t.join();
    for (const auto& id : thread_ids) l5race::thread_joined(id);
    if (race_owner) l5race::finalize();
    if (sched) detail::set_last_schedule_hash(sched->schedule_hash());
    if (auto* ck = world->checker())
        // finalize lints (leaked requests, unmatched sends) run on the
        // driver thread; in raise mode this throws CheckError directly
        ck->finalize(/*world_failed=*/!failures.empty());
    if (failures.empty()) return;

    // rethrow-first: the primary cause is the first failure that is not a
    // secondary abort (every rank unblocked by the poison reports one)
    const Failure* primary = &failures.front();
    for (const auto& f : failures)
        if (!f.aborted) {
            primary = &f;
            break;
        }

    std::string msg = "simmpi: rank " + std::to_string(primary->rank) + " failed: " + primary->what;
    std::vector<int> failed_ranks;
    failed_ranks.reserve(failures.size());
    for (const auto& f : failures) failed_ranks.push_back(f.rank);
    if (failures.size() > 1) {
        msg += " [" + std::to_string(failures.size()) + " ranks failed:";
        for (const auto& f : failures)
            msg += " " + std::to_string(f.rank) + (f.aborted ? "(aborted)" : "");
        msg += "]";
    }
    throw RankFailure(msg, primary->rank, primary->error, std::move(failed_ranks));
}

} // namespace simmpi
