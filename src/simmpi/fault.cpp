#include "fault.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

namespace simmpi {

namespace {

/// splitmix64: cheap, stateless, high-quality mixing — the probabilistic
/// draw for op n depends only on (seed, rank, n), never on shared RNG
/// state, so delays are reproducible per op index.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

double u01(std::uint64_t seed, int rank, std::uint64_t op) {
    std::uint64_t h = mix64(seed ^ mix64(static_cast<std::uint64_t>(rank) + 1) ^ mix64(op));
    return static_cast<double>(h >> 11) * 0x1.0p-53; // 53 high bits -> [0,1)
}

struct Field {
    std::string key, value;
};

std::vector<std::string> split(const std::string& s, char sep) {
    std::vector<std::string> out;
    std::size_t              start = 0;
    for (;;) {
        std::size_t pos = s.find(sep, start);
        out.push_back(s.substr(start, pos - start));
        if (pos == std::string::npos) break;
        start = pos + 1;
    }
    return out;
}

Field parse_field(const std::string& spec, const std::string& part) {
    std::size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0)
        throw Error("simmpi: bad fault spec field '" + part + "' in '" + spec
                    + "' (expected key=value)");
    return {part.substr(0, eq), part.substr(eq + 1)};
}

std::int64_t parse_int(const std::string& spec, const Field& f) {
    try {
        std::size_t  pos = 0;
        std::int64_t v   = std::stoll(f.value, &pos);
        if (pos != f.value.size()) throw std::invalid_argument("trailing");
        return v;
    } catch (const std::exception&) {
        throw Error("simmpi: bad integer '" + f.value + "' for fault field '" + f.key + "' in '"
                    + spec + "'");
    }
}

double parse_double(const std::string& spec, const Field& f) {
    try {
        std::size_t pos = 0;
        double      v   = std::stod(f.value, &pos);
        if (pos != f.value.size()) throw std::invalid_argument("trailing");
        return v;
    } catch (const std::exception&) {
        throw Error("simmpi: bad number '" + f.value + "' for fault field '" + f.key + "' in '"
                    + spec + "'");
    }
}

} // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
    FaultPlan plan;
    for (const std::string& rule : split(spec, ';')) {
        if (rule.empty()) continue;

        std::size_t colon = rule.find(':');
        std::string head  = rule.substr(0, colon);
        std::string body  = colon == std::string::npos ? std::string() : rule.substr(colon + 1);

        if (head.rfind("seed=", 0) == 0) {
            plan.seed = static_cast<std::uint64_t>(parse_int(spec, parse_field(spec, head)));
            continue;
        }
        if (head == "kill") {
            Kill k;
            for (const std::string& part : split(body, ',')) {
                Field f = parse_field(spec, part);
                if (f.key == "rank") k.rank = static_cast<int>(parse_int(spec, f));
                else if (f.key == "after_ops") k.after_ops = static_cast<std::uint64_t>(parse_int(spec, f));
                else throw Error("simmpi: unknown kill field '" + f.key + "' in '" + spec + "'");
            }
            if (k.rank < 0 || k.after_ops == 0)
                throw Error("simmpi: kill rule needs rank>=0 and after_ops>=1 in '" + spec + "'");
            plan.kills.push_back(k);
            continue;
        }
        if (head == "delay") {
            Delay d;
            for (const std::string& part : split(body, ',')) {
                Field f = parse_field(spec, part);
                if (f.key == "tag") d.tag = static_cast<int>(parse_int(spec, f));
                else if (f.key == "rank") d.rank = static_cast<int>(parse_int(spec, f));
                else if (f.key == "ms") d.ms = parse_int(spec, f);
                else if (f.key == "prob") d.prob = parse_double(spec, f);
                else throw Error("simmpi: unknown delay field '" + f.key + "' in '" + spec + "'");
            }
            if (d.ms < 0 || d.prob < 0.0 || d.prob > 1.0)
                throw Error("simmpi: delay rule needs ms>=0 and prob in [0,1] in '" + spec + "'");
            plan.delays.push_back(d);
            continue;
        }
        throw Error("simmpi: unknown fault rule '" + head + "' in '" + spec
                    + "' (expected seed=/kill:/delay:)");
    }
    return plan;
}

std::optional<FaultPlan> FaultPlan::from_env() {
    const char* s = std::getenv("L5_FAULTS");
    if (!s || !*s) return std::nullopt;
    FaultPlan plan = parse(s);
    if (plan.empty()) return std::nullopt;
    return plan;
}

namespace detail {

FaultState::FaultState(FaultPlan plan, int world_size)
    : plan_(std::move(plan)),
      ops_(new std::atomic<std::uint64_t>[static_cast<std::size_t>(world_size)]) {
    for (int r = 0; r < world_size; ++r) ops_[static_cast<std::size_t>(r)].store(0);
}

void FaultState::on_op(int world_rank, int tag, bool is_send) {
    const std::uint64_t n =
        ops_[static_cast<std::size_t>(world_rank)].fetch_add(1, std::memory_order_relaxed) + 1;

    for (const auto& k : plan_.kills)
        if (k.rank == world_rank && n == k.after_ops) throw FaultError(world_rank, n);

    if (!is_send) return;
    for (const auto& d : plan_.delays) {
        if (d.tag >= 0 && d.tag != tag) continue;
        if (d.rank >= 0 && d.rank != world_rank) continue;
        if (d.prob < 1.0 && u01(plan_.seed, world_rank, n) >= d.prob) continue;
        // lint: allow-raw-sleep(the injected delay IS the fault being modelled)
        if (d.ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(d.ms));
    }
}

} // namespace detail
} // namespace simmpi
