#pragma once

#include "error.hpp"
#include "fault.hpp"
#include "message.hpp"
#include "sched.hpp"

#include <check/check.hpp>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

namespace simmpi::detail {

/// Who aborted the world and why; shared with every mailbox so waiters
/// can throw a structured AbortedError instead of blocking forever.
struct AbortInfo {
    int         rank;
    std::string cause;
};

/// Deadline of one blocking wait: absent means wait forever. `ms` keeps
/// the configured duration for diagnostics in TimeoutError.
struct Deadline {
    std::optional<std::chrono::steady_clock::time_point> at;
    std::int64_t                                         ms = 0;
};

/// Per-rank incoming-message queue. Senders push envelopes; the owning
/// rank blocks until an envelope matching (context, src, tag) arrives.
/// Matching scans front-to-back, which preserves MPI's non-overtaking
/// guarantee per (context, src, tag) stream.
///
/// Every blocking wait also watches for two unblocking events: the world
/// being aborted (poison(): the wait throws AbortedError) and the
/// caller's deadline expiring (throws TimeoutError). Both checks happen
/// under the mailbox mutex, so a poison can never race past a waiter.
class Mailbox {
public:
    /// Deterministic-scheduler hookup (installed before rank-threads
    /// start): waits become scheduling points on this mailbox's channel,
    /// and push/poison notify the controller.
    void set_scheduler(Scheduler* s) { sched_ = s; }

    void push(Envelope&& env) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            l5race::LockHold rh(&mutex_, "Mailbox::push", "mailbox.mutex");
            // the envelope carries the sender's clock: matching it in pop
            // is a happens-before edge from everything before this send
            env.race_seq = l5race::publish_token();
            L5_SHARED_WRITE(this, "queue_", "Mailbox::push");
            queue_.push_back(std::move(env));
        }
        cv_.notify_all();
        if (sched_) sched_->notify(this);
    }

    /// Wake every waiter with an abort error; subsequent waits throw too.
    void poison(std::shared_ptr<const AbortInfo> info) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            l5race::LockHold rh(&mutex_, "Mailbox::poison", "mailbox.mutex");
            L5_SHARED_WRITE(this, "poison_", "Mailbox::poison");
            if (!poison_) poison_ = std::move(info);
        }
        cv_.notify_all();
        if (sched_) sched_->notify(this);
    }

    /// Blocks until a matching envelope is available, removes and returns it.
    Envelope pop(std::uint64_t context, int src, int tag, const Deadline& dl = {}) {
        std::unique_lock<std::mutex> lock(mutex_);
        l5race::LockHold rh(&mutex_, "Mailbox::pop", "mailbox.mutex");
        for (;;) {
            check_poison();
            if (auto it = find(context, src, tag); it != queue_.end()) {
                Envelope env = std::move(*it);
                queue_.erase(it);
                L5_SHARED_WRITE(this, "queue_", "Mailbox::pop");
                l5race::consume_token(env.race_seq);
                return env;
            }
            wait(lock, dl, "recv", src, tag);
        }
    }

    /// Non-destructive probe; nullopt when no matching envelope is queued.
    std::optional<Status> probe(std::uint64_t context, int src, int tag) {
        std::lock_guard<std::mutex> lock(mutex_);
        l5race::LockHold rh(&mutex_, "Mailbox::probe", "mailbox.mutex");
        check_poison();
        L5_SHARED_READ(this, "queue_", "Mailbox::probe");
        if (auto it = find(context, src, tag); it != queue_.end())
            return Status{it->src, it->tag, it->size(), it->check_seq};
        return std::nullopt;
    }

    /// Blocking probe: waits until a matching envelope is queued.
    Status probe_wait(std::uint64_t context, int src, int tag, const Deadline& dl = {}) {
        std::unique_lock<std::mutex> lock(mutex_);
        l5race::LockHold rh(&mutex_, "Mailbox::probe_wait", "mailbox.mutex");
        for (;;) {
            check_poison();
            L5_SHARED_READ(this, "queue_", "Mailbox::probe_wait");
            if (auto it = find(context, src, tag); it != queue_.end())
                return Status{it->src, it->tag, it->size(), it->check_seq};
            wait(lock, dl, "probe", src, tag);
        }
    }

    /// Blocking probe across several contexts (e.g., all the
    /// intercommunicators a server rank serves): waits until a matching
    /// envelope arrives on any of them; `which` receives its index.
    /// Blocks on the condition variable — no spinning.
    Status probe_wait_any(std::span<const std::uint64_t> contexts, int src, int tag,
                          std::size_t* which, const Deadline& dl = {}) {
        std::unique_lock<std::mutex> lock(mutex_);
        l5race::LockHold rh(&mutex_, "Mailbox::probe_wait_any", "mailbox.mutex");
        for (;;) {
            check_poison();
            L5_SHARED_READ(this, "queue_", "Mailbox::probe_wait_any");
            for (std::size_t k = 0; k < contexts.size(); ++k) {
                if (auto it = find(contexts[k], src, tag); it != queue_.end()) {
                    if (which) *which = k;
                    return Status{it->src, it->tag, it->size(), it->check_seq};
                }
            }
            wait(lock, dl, "probe_any", src, tag);
        }
    }

private:
    void check_poison() const {
        L5_SHARED_READ(this, "poison_", "Mailbox::check_poison");
        if (poison_) throw AbortedError(poison_->rank, poison_->cause);
    }

    void wait(std::unique_lock<std::mutex>& lock, const Deadline& dl, const char* where, int src,
              int tag) {
        if (sched_ && sched_->attached_here() && sched_->usable()) {
            // deterministic mode: descheduled through the controller;
            // deadlines run on simulated time (they fire, deterministically,
            // only when the whole world is otherwise blocked)
            if (!sched_->block(lock, this, where, src, tag, dl.at, dl.ms))
                throw TimeoutError(dl.ms, where, src, tag);
            return; // spurious returns fall out to the caller's re-check loop
        }
        if (!dl.at) {
            cv_.wait(lock); // lint: allow-bare-wait(free-running path; sched_->block above covers deterministic mode)
            return;
        }
        if (std::chrono::steady_clock::now() >= *dl.at)
            throw TimeoutError(dl.ms, where, src, tag);
        cv_.wait_until(lock, *dl.at); // lint: allow-bare-wait(free-running path; sched_->block above covers deterministic mode)
    }

    std::deque<Envelope>::iterator find(std::uint64_t context, int src, int tag) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->context != context) continue;
            if (src != any_source && it->src != src) continue;
            if (tag != any_tag && it->tag != tag) continue;
            return it;
        }
        return queue_.end();
    }

    std::mutex                       mutex_;
    std::condition_variable          cv_;
    std::deque<Envelope>             queue_;
    std::shared_ptr<const AbortInfo> poison_;
    Scheduler*                       sched_ = nullptr;
};

/// Shared state of one "MPI world": a mailbox per rank plus a counter
/// used to allocate communicator context ids collectively, the abort
/// state that poisons every mailbox when a rank-thread fails, the
/// world-default deadline, and the optional fault-injection plan.
class World {
public:
    explicit World(int size) : mailboxes_(static_cast<std::size_t>(size)) {
        for (auto& mb : mailboxes_)
            mb = std::make_unique<Mailbox>();
    }

    int size() const { return static_cast<int>(mailboxes_.size()); }

    Mailbox& mailbox(int world_rank) {
        if (world_rank < 0 || world_rank >= size())
            throw Error("simmpi: world rank " + std::to_string(world_rank) + " out of range");
        return *mailboxes_[static_cast<std::size_t>(world_rank)];
    }

    /// Reserve `count` fresh context ids; returns the first. Call from a
    /// single rank and broadcast the result — context ids must be agreed
    /// upon by every member of the new communicator.
    std::uint64_t reserve_contexts(std::uint64_t count) {
        return next_context_.fetch_add(count, std::memory_order_relaxed);
    }

    // --- failure containment ---------------------------------------------

    /// Mark the world aborted (first caller wins) and wake every blocked
    /// waiter; all further communication ops throw AbortedError.
    void abort(int rank, const std::string& cause) {
        std::lock_guard<std::mutex> lock(abort_mutex_);
        if (abort_info_) return;
        abort_info_ = std::make_shared<const AbortInfo>(AbortInfo{rank, cause});
        aborted_.store(true, std::memory_order_release);
        for (auto& mb : mailboxes_) mb->poison(abort_info_);
    }

    bool aborted() const { return aborted_.load(std::memory_order_acquire); }

    /// Throw AbortedError when the world has been aborted (send-side
    /// check: sends never block, so they consult the flag directly).
    void check_abort() const {
        if (!aborted()) return;
        std::lock_guard<std::mutex> lock(abort_mutex_);
        throw AbortedError(abort_info_->rank, abort_info_->cause);
    }

    // --- deadlines --------------------------------------------------------

    /// World-default timeout for blocking waits; <= 0 disables.
    void set_default_timeout_ms(std::int64_t ms) {
        default_timeout_ms_.store(ms, std::memory_order_relaxed);
    }
    std::int64_t default_timeout_ms() const {
        return default_timeout_ms_.load(std::memory_order_relaxed);
    }

    // --- fault injection --------------------------------------------------

    /// Install the plan before rank-threads start (not thread-safe later).
    void set_faults(FaultPlan plan) {
        faults_ = std::make_unique<FaultState>(std::move(plan), size());
    }
    FaultState* faults() const { return faults_.get(); }

    // --- deterministic scheduling ----------------------------------------

    /// Install the cooperative scheduler before rank-threads start (not
    /// thread-safe later); every mailbox wait becomes a scheduling point.
    void set_scheduler(const SchedConfig& cfg) {
        sched_ = std::make_unique<Scheduler>(cfg, size());
        for (auto& mb : mailboxes_) mb->set_scheduler(sched_.get());
    }
    Scheduler* sched() const { return sched_.get(); }

    // --- correctness checking ---------------------------------------------

    /// Install the MPI-semantics checker before rank-threads start (not
    /// thread-safe later); every comm op gains a checker hook.
    void set_checker(const l5check::CheckConfig& cfg) {
        checker_ = std::make_unique<l5check::Checker>(cfg, size());
    }
    l5check::Checker* checker() const { return checker_.get(); }

private:
    std::vector<std::unique_ptr<Mailbox>> mailboxes_;
    std::atomic<std::uint64_t>            next_context_{1}; // 0 = world communicator
    mutable std::mutex                    abort_mutex_;
    std::shared_ptr<const AbortInfo>      abort_info_;
    std::atomic<bool>                     aborted_{false};
    std::atomic<std::int64_t>             default_timeout_ms_{-1};
    std::unique_ptr<FaultState>           faults_;
    std::unique_ptr<Scheduler>            sched_;
    std::unique_ptr<l5check::Checker>     checker_;
};

} // namespace simmpi::detail
