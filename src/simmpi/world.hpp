#pragma once

#include "error.hpp"
#include "message.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

namespace simmpi::detail {

/// Per-rank incoming-message queue. Senders push envelopes; the owning
/// rank blocks until an envelope matching (context, src, tag) arrives.
/// Matching scans front-to-back, which preserves MPI's non-overtaking
/// guarantee per (context, src, tag) stream.
class Mailbox {
public:
    void push(Envelope&& env) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.push_back(std::move(env));
        }
        cv_.notify_all();
    }

    /// Blocks until a matching envelope is available, removes and returns it.
    Envelope pop(std::uint64_t context, int src, int tag) {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            if (auto it = find(context, src, tag); it != queue_.end()) {
                Envelope env = std::move(*it);
                queue_.erase(it);
                return env;
            }
            cv_.wait(lock);
        }
    }

    /// Non-destructive probe; nullopt when no matching envelope is queued.
    std::optional<Status> probe(std::uint64_t context, int src, int tag) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (auto it = find(context, src, tag); it != queue_.end())
            return Status{it->src, it->tag, it->size()};
        return std::nullopt;
    }

    /// Blocking probe: waits until a matching envelope is queued.
    Status probe_wait(std::uint64_t context, int src, int tag) {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            if (auto it = find(context, src, tag); it != queue_.end())
                return Status{it->src, it->tag, it->size()};
            cv_.wait(lock);
        }
    }

    /// Blocking probe across several contexts (e.g., all the
    /// intercommunicators a server rank serves): waits until a matching
    /// envelope arrives on any of them; `which` receives its index.
    /// Blocks on the condition variable — no spinning.
    Status probe_wait_any(std::span<const std::uint64_t> contexts, int src, int tag,
                          std::size_t* which) {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            for (std::size_t k = 0; k < contexts.size(); ++k) {
                if (auto it = find(contexts[k], src, tag); it != queue_.end()) {
                    if (which) *which = k;
                    return Status{it->src, it->tag, it->size()};
                }
            }
            cv_.wait(lock);
        }
    }

private:
    std::deque<Envelope>::iterator find(std::uint64_t context, int src, int tag) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->context != context) continue;
            if (src != any_source && it->src != src) continue;
            if (tag != any_tag && it->tag != tag) continue;
            return it;
        }
        return queue_.end();
    }

    std::mutex              mutex_;
    std::condition_variable cv_;
    std::deque<Envelope>    queue_;
};

/// Shared state of one "MPI world": a mailbox per rank plus a counter
/// used to allocate communicator context ids collectively.
class World {
public:
    explicit World(int size) : mailboxes_(static_cast<std::size_t>(size)) {
        for (auto& mb : mailboxes_)
            mb = std::make_unique<Mailbox>();
    }

    int size() const { return static_cast<int>(mailboxes_.size()); }

    Mailbox& mailbox(int world_rank) {
        if (world_rank < 0 || world_rank >= size())
            throw Error("simmpi: world rank " + std::to_string(world_rank) + " out of range");
        return *mailboxes_[static_cast<std::size_t>(world_rank)];
    }

    /// Reserve `count` fresh context ids; returns the first. Call from a
    /// single rank and broadcast the result — context ids must be agreed
    /// upon by every member of the new communicator.
    std::uint64_t reserve_contexts(std::uint64_t count) {
        return next_context_.fetch_add(count, std::memory_order_relaxed);
    }

private:
    std::vector<std::unique_ptr<Mailbox>> mailboxes_;
    std::atomic<std::uint64_t>            next_context_{1}; // 0 = world communicator
};

} // namespace simmpi::detail
