#pragma once

/// Umbrella header for the simmpi message-passing runtime: an MPI-like
/// interface (communicators, tagged point-to-point messaging, collectives,
/// intercommunicators) backed by rank-threads within one process. It stands
/// in for real MPI in this reproduction; see DESIGN.md.

#include "error.hpp"   // IWYU pragma: export
#include "fault.hpp"   // IWYU pragma: export
#include "sched.hpp"   // IWYU pragma: export
#include "message.hpp" // IWYU pragma: export
#include "comm.hpp"    // IWYU pragma: export
#include "runtime.hpp" // IWYU pragma: export
