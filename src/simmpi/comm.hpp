#pragma once

#include "error.hpp"
#include "message.hpp"
#include "world.hpp"

#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace simmpi {

class Request;

/// A communicator handle, modelled on MPI. Intracommunicators connect a
/// group of ranks to itself; intercommunicators connect a local group to
/// a disjoint remote (peer) group — sends and receives then address peer
/// ranks, exactly as in MPI intercommunicators.
///
/// Handles are cheap to copy; copies refer to the same communicator.
/// Collectives must be called by every member of the (local) group in the
/// same order, as in MPI.
class Comm {
public:
    Comm() = default;

    int  rank() const { return rank_; }
    int  size() const { return static_cast<int>(group_.size()); }

    // --- deadlines --------------------------------------------------------

    /// Copy of this handle whose blocking waits (recv/probe/collectives)
    /// time out after `ms` milliseconds with TimeoutError. `ms == 0`
    /// disables any deadline (overriding the world default); `ms < 0`
    /// restores inheritance of the world default.
    Comm with_deadline(std::int64_t ms) const {
        Comm c       = *this;
        c.timeout_ms_ = ms;
        return c;
    }

    /// World-default deadline applied to every blocking wait of every
    /// communicator of this world that has no per-handle override;
    /// `ms <= 0` disables. Seeded from `L5_TIMEOUT_MS` by Runtime::run.
    void set_default_deadline(std::int64_t ms) const;

    /// The deadline this handle's blocking waits run under (-1 = none).
    std::int64_t effective_deadline_ms() const;

    /// The deterministic cooperative scheduler of this world, or nullptr
    /// in normal (free-running) mode. Code that spawns helper threads or
    /// shares locks across rank-threads uses this to participate in the
    /// schedule (spawn_participant / CoopLock / coop_wait).
    detail::Scheduler* scheduler() const { return world_ ? world_->sched() : nullptr; }

    // --- correctness-checker annotations ---------------------------------

    /// Declare [lo, hi] a control-tag range owned by `owner` and claim
    /// this communicator for it: traffic using these tags on *unclaimed*
    /// communicators is diagnosed as a tag collision, and any-source
    /// receives of these tags here are treated as an order-insensitive
    /// service drain (exempt from the wildcard-race check). No-op when
    /// the checker is off.
    void check_reserve_tags(int lo, int hi, const char* owner) const {
        if (!world_) throw Error("simmpi: operation on an invalid communicator");
        if (auto* ck = world_->checker()) ck->reserve_tags(context_, lo, hi, owner);
    }

    /// Declare any-source receives of `tag` (any_tag = every tag) on this
    /// communicator intentionally order-insensitive — the program's result
    /// does not depend on the match order. `why` documents the audit
    /// decision. No-op when the checker is off.
    void check_commutative(int tag, const char* why) const {
        if (!world_) throw Error("simmpi: operation on an invalid communicator");
        if (auto* ck = world_->checker()) ck->allow_wildcard(context_, tag, why);
    }

    /// Feed a stream step lifecycle event ("publish", "acquire",
    /// "release") to the checker's step-order lint (step versions must
    /// move strictly forward per rank and stream; see
    /// l5check::Checker::on_step). No-op when the checker is off.
    /// Report a component-owned resource leak found at a finalize-like
    /// point (l5check::Checker::on_leak); `kind` is the diagnostic kind
    /// (e.g. "leaked-snapshot-pin"). No-op when the checker is off.
    void check_leak(const char* kind, const std::string& message) const {
        if (!world_) throw Error("simmpi: operation on an invalid communicator");
        if (auto* ck = world_->checker()) ck->on_leak(world_rank(), kind, message);
    }

    void check_step(const char* event, const std::string& stream, std::uint64_t step) const {
        if (!world_) throw Error("simmpi: operation on an invalid communicator");
        if (auto* ck = world_->checker()) ck->on_step(world_rank(), event, stream, step);
    }
    /// Number of ranks messages can be addressed to (remote group size for
    /// intercommunicators, local size otherwise).
    int  peer_size() const { return static_cast<int>(peer_group_.size()); }
    bool is_inter() const { return inter_; }
    bool valid() const { return world_ != nullptr; }

    // --- point-to-point -------------------------------------------------

    /// Buffered send: returns as soon as the payload is enqueued at `dest`.
    void send(int dest, int tag, const void* data, std::size_t bytes) const;
    void send(int dest, int tag, std::vector<std::byte>&& payload) const;

    /// Zero-copy fan-out send: enqueue a refcounted payload without
    /// copying. Sending the same SharedPayload to N destinations shares
    /// one buffer instead of making N copies (used by serve notifications
    /// and collective roots).
    void send_shared(int dest, int tag, SharedPayload payload) const;

    /// Receive into a freshly sized vector. `src` may be any_source, `tag`
    /// may be any_tag.
    Status recv(int src, int tag, std::vector<std::byte>& out) const;

    /// Receive into caller storage; throws if the message exceeds `capacity`.
    Status recv_into(int src, int tag, void* buf, std::size_t capacity) const;

    /// Receive a message as its refcounted payload, without copying even
    /// when the sender retains the buffer (unlike recv, which copies
    /// whenever it is not the sole owner). The bytes stay valid and
    /// immutable for the payload's lifetime; used by the zero-copy data
    /// plane to scatter straight out of a producer's dataset buffer.
    Status recv_shared(int src, int tag, SharedPayload& out) const;

    /// Blocking probe: waits for a matching message without consuming it.
    Status probe(int src, int tag) const;
    /// Nonblocking probe.
    std::optional<Status> iprobe(int src, int tag) const;

    /// Blocking probe across several communicators that share this rank's
    /// mailbox (e.g., the intercommunicators a server rank serves).
    /// Returns when a matching message is queued on any of them; `which`
    /// receives the index into `comms`. Blocks without spinning.
    static Status probe_any(std::span<const Comm* const> comms, int src, int tag,
                            std::size_t* which);

    Request isend(int dest, int tag, const void* data, std::size_t bytes) const;
    Request irecv(int src, int tag, std::vector<std::byte>& out) const;

    // --- typed convenience ----------------------------------------------

    template <typename T>
    void send_value(int dest, int tag, const T& value) const {
        static_assert(std::is_trivially_copyable_v<T>);
        send(dest, tag, &value, sizeof(T));
    }

    template <typename T>
    T recv_value(int src, int tag, Status* status = nullptr) const {
        static_assert(std::is_trivially_copyable_v<T>);
        T value{};
        Status st = recv_into(src, tag, &value, sizeof(T));
        if (st.count != sizeof(T)) {
            check_count(src, tag, "recv_value", sizeof(T), st.count);
            throw Error("simmpi: recv_value size mismatch");
        }
        if (status) *status = st;
        return value;
    }

    template <typename T>
    void send_span(int dest, int tag, std::span<const T> data) const {
        static_assert(std::is_trivially_copyable_v<T>);
        send(dest, tag, data.data(), data.size_bytes());
    }

    template <typename T>
    std::vector<T> recv_vector(int src, int tag, Status* status = nullptr) const {
        static_assert(std::is_trivially_copyable_v<T>);
        std::vector<std::byte> raw;
        Status st = recv(src, tag, raw);
        if (st.count % sizeof(T) != 0) {
            check_count(src, tag, "recv_vector", sizeof(T), st.count);
            throw Error("simmpi: recv_vector size not a multiple of element size");
        }
        std::vector<T> out(st.count / sizeof(T));
        std::memcpy(out.data(), raw.data(), st.count);
        if (status) *status = st;
        return out;
    }

    // --- collectives (intracommunicators only) ---------------------------

    void barrier() const;

    /// Broadcast `data` from `root` to every rank; non-roots receive into
    /// `data` (resized as needed).
    void bcast(std::vector<std::byte>& data, int root) const;

    template <typename T>
    T bcast_value(T value, int root) const {
        static_assert(std::is_trivially_copyable_v<T>);
        std::vector<std::byte> buf(sizeof(T));
        if (rank_ == root) std::memcpy(buf.data(), &value, sizeof(T));
        bcast_n(buf, root, sizeof(T));
        std::memcpy(&value, buf.data(), sizeof(T));
        return value;
    }

    /// Gather every rank's payload at `root`; result indexed by rank
    /// (empty elsewhere).
    std::vector<std::vector<std::byte>> gather(std::span<const std::byte> mine, int root) const;

    /// Allgather: every rank receives every rank's payload, indexed by rank.
    std::vector<std::vector<std::byte>> allgather(std::span<const std::byte> mine) const;

    template <typename T>
    std::vector<T> allgather_value(const T& value) const {
        static_assert(std::is_trivially_copyable_v<T>);
        auto raw = allgather_n(std::span<const std::byte>(
                                   reinterpret_cast<const std::byte*>(&value), sizeof(T)),
                               sizeof(T));
        std::vector<T> out(raw.size());
        for (std::size_t i = 0; i < raw.size(); ++i)
            std::memcpy(&out[i], raw[i].data(), sizeof(T));
        return out;
    }

    /// Elementwise reduction with a binary op; every rank gets the result.
    template <typename T, typename Op = std::plus<T>>
    T allreduce(T value, Op op = Op{}) const {
        auto all = allgather_value(value);
        T acc = all[0];
        for (std::size_t i = 1; i < all.size(); ++i)
            acc = op(acc, all[i]);
        return acc;
    }

    /// Personalized all-to-all: `outgoing[r]` goes to rank r; returns the
    /// payloads received, indexed by source rank.
    std::vector<std::vector<std::byte>> alltoall(std::vector<std::vector<std::byte>>&& outgoing) const;

    /// Scatter: root's `parts[r]` goes to rank r; every rank returns its
    /// part (`parts` ignored on non-roots).
    std::vector<std::byte> scatter(std::vector<std::vector<std::byte>>&& parts, int root) const;

    template <typename T>
    T scatter_value(const std::vector<T>& values, int root) const {
        static_assert(std::is_trivially_copyable_v<T>);
        std::vector<std::vector<std::byte>> parts;
        if (rank() == root) {
            if (static_cast<int>(values.size()) != size())
                throw Error("simmpi: scatter_value needs one value per rank");
            parts.resize(values.size());
            for (std::size_t r = 0; r < values.size(); ++r) {
                parts[r].resize(sizeof(T));
                std::memcpy(parts[r].data(), &values[r], sizeof(T));
            }
        }
        auto mine = scatter_n(std::move(parts), root, sizeof(T));
        T    out{};
        std::memcpy(&out, mine.data(), sizeof(T));
        return out;
    }

    /// Rooted reduction: result valid on `root` only.
    template <typename T, typename Op = std::plus<T>>
    T reduce(T value, int root, Op op = Op{}) const {
        auto parts = gather_n(std::span<const std::byte>(
                                  reinterpret_cast<const std::byte*>(&value), sizeof(T)),
                              root, sizeof(T));
        if (rank() != root) return T{};
        T acc{};
        bool first = true;
        for (const auto& p : parts) {
            T v{};
            std::memcpy(&v, p.data(), sizeof(T));
            acc   = first ? v : op(acc, v);
            first = false;
        }
        return acc;
    }

    /// Typed gather of one value per rank; result valid on root only.
    template <typename T>
    std::vector<T> gather_values(const T& value, int root) const {
        static_assert(std::is_trivially_copyable_v<T>);
        auto parts = gather_n(std::span<const std::byte>(
                                  reinterpret_cast<const std::byte*>(&value), sizeof(T)),
                              root, sizeof(T));
        std::vector<T> out;
        if (rank() == root) {
            out.resize(parts.size());
            for (std::size_t r = 0; r < parts.size(); ++r) std::memcpy(&out[r], parts[r].data(), sizeof(T));
        }
        return out;
    }

    /// Combined send+receive (deadlock-free: the send is buffered).
    Status sendrecv(int dest, int sendtag, const void* sendbuf, std::size_t sendbytes, int src,
                    int recvtag, std::vector<std::byte>& out) const {
        send(dest, sendtag, sendbuf, sendbytes);
        return recv(src, recvtag, out);
    }

    /// Exclusive prefix sum over one value per rank (rank 0 gets T{}).
    template <typename T>
    T exscan(const T& value) const {
        auto all = allgather_value(value);
        T    acc{};
        for (int r = 0; r < rank(); ++r) acc = acc + all[static_cast<std::size_t>(r)];
        return acc;
    }

    // --- communicator management -----------------------------------------

    /// Split into disjoint subcommunicators by color; ranks ordered by
    /// (key, parent rank). Collective over this communicator.
    Comm split(int color, int key = 0) const;

    Comm dup() const;

    /// Build an intercommunicator between two disjoint rank subsets of
    /// `parent`. Collective over the whole parent communicator; ranks not
    /// in either group receive an invalid Comm. Rank lists are parent ranks.
    static Comm create_intercomm(const Comm&             parent,
                                 std::span<const int>    group_a,
                                 std::span<const int>    group_b);

private:
    friend class Runtime;
    friend class Request;

    Comm(std::shared_ptr<detail::World> world, std::uint64_t context,
         std::vector<int> group, std::vector<int> peer_group, int rank, bool inter)
        : world_(std::move(world)), context_(context), group_(std::move(group)),
          peer_group_(std::move(peer_group)), rank_(rank), inter_(inter),
          coll_seq_(std::make_shared<std::uint32_t>(0)) {}

    detail::Mailbox& my_mailbox() const {
        return world_->mailbox(group_[static_cast<std::size_t>(rank_)]);
    }
    detail::Mailbox& peer_mailbox(int dest) const;

    int world_rank() const { return group_[static_cast<std::size_t>(rank_)]; }

    /// Resolve this handle's timeout (per-handle override or world
    /// default) into an absolute deadline for one blocking wait.
    detail::Deadline deadline() const;

    /// Fault-injection hook: one pointer check when no plan is installed.
    void fault_op(int tag, bool is_send) const {
        if (auto* f = world_->faults()) f->on_op(world_rank(), tag, is_send);
    }

    /// Deterministic-scheduler hook at the entry of every communication
    /// op: one pointer check when no scheduler is installed.
    void sched_point(const char* site) const {
        if (auto* s = world_->sched()) s->yield(site);
    }

    std::uint64_t coll_context() const { return context_ + 1; }

    void check_intra(const char* what) const {
        if (inter_) throw Error(std::string("simmpi: ") + what + " requires an intracommunicator");
    }

    /// Correctness-checker hooks: one pointer check when no checker is
    /// installed. `check_count` feeds a typed receive's failed buffer
    /// contract to the checker (which throws first in raise mode).
    l5check::Checker* checker() const { return world_->checker(); }
    void check_count(int src, int tag, const char* what, std::size_t expected,
                     std::size_t got) const;
    void coll_check(const char* kind, int root, std::size_t elem) const;

    /// World rank of peer `dest`, or the wildcard unchanged.
    int peer_world_rank(int dest) const {
        return dest < 0 ? dest : peer_group_[static_cast<std::size_t>(dest)];
    }

    // Collective bodies with the caller's element size threaded through
    // (sizeof(T) from the typed wrappers, 0 = unknown from the raw byte
    // entry points) so the checker can flag ranks entering the same
    // collective with different element types.
    void bcast_n(std::vector<std::byte>& data, int root, std::size_t elem) const;
    std::vector<std::vector<std::byte>> gather_n(std::span<const std::byte> mine, int root,
                                                 std::size_t elem) const;
    std::vector<std::vector<std::byte>> allgather_n(std::span<const std::byte> mine,
                                                    std::size_t elem) const;
    std::vector<std::byte> scatter_n(std::vector<std::vector<std::byte>>&& parts, int root,
                                     std::size_t elem) const;

    // Internal collective helpers using the collective context. The move
    // and shared overloads avoid per-destination copies when the caller
    // already owns the bytes (alltoall/scatter) or fans one buffer out to
    // the whole group (bcast).
    void coll_send(int dest, int tag, std::span<const std::byte> data) const;
    void coll_send(int dest, int tag, std::vector<std::byte>&& data) const;
    void coll_send_shared(int dest, int tag, SharedPayload data) const;
    std::vector<std::byte> coll_recv(int src, int tag) const;

    std::shared_ptr<detail::World> world_;
    std::uint64_t                  context_ = 0; ///< pt2pt context; +1 = collective context
    std::vector<int>               group_;       ///< my group, comm rank -> world rank
    std::vector<int>               peer_group_;  ///< destination group (== group_ unless inter)
    int                            rank_  = -1;
    bool                           inter_ = false;
    std::int64_t                   timeout_ms_ = -1; ///< per-handle deadline (-1 = world default)
    std::shared_ptr<std::uint32_t> coll_seq_;    ///< ordered-collective sequence number
};

/// Handle for a nonblocking operation. Buffered sends complete immediately;
/// pending receives complete in wait()/test().
class Request {
public:
    Request() = default;

    /// Block until the operation completes. Honors the communicator's
    /// deadline and the world abort: a dead peer yields AbortedError /
    /// TimeoutError here instead of an indefinite block.
    Status wait();
    /// Nonblocking completion check; fills `status` when done.
    bool test(Status* status = nullptr);
    bool done() const { return done_; }

private:
    friend class Comm;

    static Request completed_send(std::size_t bytes) {
        Request r;
        r.done_         = true;
        r.status_.count = bytes;
        return r;
    }
    static Request pending_recv(const Comm& comm, int src, int tag, std::vector<std::byte>* out) {
        Request r;
        r.comm_ = comm;
        r.src_  = src;
        r.tag_  = tag;
        r.out_  = out;
        return r;
    }

    Comm                    comm_;
    int                     src_ = -1;
    int                     tag_ = -1;
    std::vector<std::byte>* out_ = nullptr;
    bool                    done_ = false;
    Status                  status_;
    std::uint64_t           check_id_ = 0; ///< checker request id (0 = untracked)
};

/// Wait on a batch of requests.
void wait_all(std::span<Request> requests);

} // namespace simmpi
