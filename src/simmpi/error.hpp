#pragma once

#include <stdexcept>
#include <string>

namespace simmpi {

/// Exception type for all message-passing runtime failures (bad ranks,
/// mismatched collectives, use of a finalized world, ...).
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

} // namespace simmpi
