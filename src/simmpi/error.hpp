#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace simmpi {

/// Exception type for all message-passing runtime failures (bad ranks,
/// mismatched collectives, use of a finalized world, ...).
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by every blocked or subsequent communication operation once the
/// world has been aborted (a rank-thread exited with an exception). Turns
/// what used to be a whole-workflow deadlock into a structured error that
/// names the rank whose failure poisoned the world.
class AbortedError : public Error {
public:
    AbortedError(int origin_rank, const std::string& cause)
        : Error("simmpi: world aborted by rank " + std::to_string(origin_rank) + ": " + cause),
          origin_rank_(origin_rank), cause_(cause) {}

    /// World rank whose failure aborted the world.
    int origin_rank() const { return origin_rank_; }
    /// what() of the originating exception.
    const std::string& cause() const { return cause_; }

private:
    int         origin_rank_;
    std::string cause_;
};

/// A blocking probe/recv/collective wait exceeded its deadline (per-call
/// `Comm::with_deadline` or the world default from `set_default_deadline` /
/// `L5_TIMEOUT_MS`). Carries the peer/tag/context the waiter was matching,
/// so a silent protocol bug reports where the protocol stalled.
class TimeoutError : public Error {
public:
    TimeoutError(std::int64_t ms, const std::string& where, int src, int tag)
        : Error("simmpi: timeout after " + std::to_string(ms) + " ms waiting on " + where
                + " (src=" + (src < 0 ? std::string("any") : std::to_string(src))
                + ", tag=" + (tag < 0 ? std::string("any") : std::to_string(tag)) + ")"),
          ms_(ms), src_(src), tag_(tag) {}

    std::int64_t timeout_ms() const { return ms_; }
    int          src() const { return src_; }
    int          tag() const { return tag_; }

private:
    std::int64_t ms_;
    int          src_;
    int          tag_;
};

/// An injected fault (FaultPlan / `L5_FAULTS`) killed this rank. The op
/// index is part of the message so determinism of the kill point can be
/// asserted across runs.
class FaultError : public Error {
public:
    FaultError(int rank, std::uint64_t op)
        : Error("simmpi: injected fault: rank " + std::to_string(rank) + " killed at op "
                + std::to_string(op)),
          rank_(rank), op_(op) {}

    int           rank() const { return rank_; }
    std::uint64_t op() const { return op_; }

private:
    int           rank_;
    std::uint64_t op_;
};

/// Thrown by Runtime::run when one or more rank-threads failed. The first
/// non-Aborted failure is the primary cause (rethrow-first semantics); the
/// message lists every failed rank, and the original exception remains
/// reachable through cause().
class RankFailure : public Error {
public:
    RankFailure(const std::string& what, int rank, std::exception_ptr cause,
                std::vector<int> failed_ranks)
        : Error(what), rank_(rank), cause_(std::move(cause)),
          failed_ranks_(std::move(failed_ranks)) {}

    /// World rank of the primary (first recorded, non-aborted) failure.
    int rank() const { return rank_; }
    /// The primary rank's original exception.
    std::exception_ptr cause() const { return cause_; }
    /// Every rank that exited with an exception, in capture order.
    const std::vector<int>& failed_ranks() const { return failed_ranks_; }

private:
    int                rank_;
    std::exception_ptr cause_;
    std::vector<int>   failed_ranks_;
};

} // namespace simmpi
