#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace simmpi {

/// Wildcards accepted by recv/probe in place of a concrete source or tag.
inline constexpr int any_source = -1;
inline constexpr int any_tag    = -1;

/// Result of a completed receive or probe: who sent, with what tag, how big.
struct Status {
    int         source = -1;   ///< sender's rank in the receiving communicator's peer group
    int         tag    = -1;
    std::size_t count  = 0;    ///< payload size in bytes
};

namespace detail {

/// A message in flight. `context` identifies the communicator (so that
/// traffic on different communicators can never match each other), `src`
/// is the sender's rank in the receiver's peer group.
struct Envelope {
    std::uint64_t          context = 0;
    int                    src     = -1;
    int                    tag     = 0;
    std::vector<std::byte> payload;
};

} // namespace detail
} // namespace simmpi
