#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace simmpi {

/// Wildcards accepted by recv/probe in place of a concrete source or tag.
inline constexpr int any_source = -1;
inline constexpr int any_tag    = -1;

/// Result of a completed receive or probe: who sent, with what tag, how big.
struct Status {
    int         source = -1;   ///< sender's rank in the receiving communicator's peer group
    int         tag    = -1;
    std::size_t count  = 0;    ///< payload size in bytes
    std::uint64_t check_seq = 0; ///< checker tracking id of the matched envelope (0 = unchecked)
};

/// Immutable, refcounted message payload. Fan-out operations (bcast,
/// file-ready/done notifications, serve replies to several consumers)
/// enqueue the same buffer at every destination instead of copying it
/// per destination; the last receiver frees it.
using SharedPayload = std::shared_ptr<const std::vector<std::byte>>;

/// Wrap owned bytes as a shared payload without copying.
inline SharedPayload make_shared_payload(std::vector<std::byte>&& bytes) {
    // created non-const so a sole owner may legally move the bytes back out
    return std::make_shared<std::vector<std::byte>>(std::move(bytes));
}

namespace detail {

/// A message in flight. `context` identifies the communicator (so that
/// traffic on different communicators can never match each other), `src`
/// is the sender's rank in the receiver's peer group.
struct Envelope {
    std::uint64_t context = 0;
    int           src     = -1;
    int           tag     = 0;
    SharedPayload payload;
    std::uint64_t check_seq = 0; ///< checker tracking id (0 when the checker is off)
    std::uint64_t race_seq  = 0; ///< l5race happens-before token (0 when disarmed)

    std::size_t size() const { return payload ? payload->size() : 0; }
};

/// Claim an envelope's bytes: moved out when this is the sole reference
/// (the common point-to-point case — zero copy), copied when the buffer
/// is shared with other destinations still waiting to receive it.
inline std::vector<std::byte> take_payload(SharedPayload&& p) {
    if (!p) return {};
    if (p.use_count() == 1)
        return std::move(*std::const_pointer_cast<std::vector<std::byte>>(p));
    return *p;
}

} // namespace detail
} // namespace simmpi
