#pragma once

#include "comm.hpp"
#include "fault.hpp"
#include "sched.hpp"

#include <check/check.hpp>
#include <check/race.hpp>

#include <functional>
#include <optional>

namespace simmpi {

/// Entry point of the message-passing runtime. `run` spawns `world_size`
/// rank-threads, hands each its world communicator, and joins them all.
/// This stands in for `mpirun -np N`: every "MPI process" of the paper is
/// one rank-thread here, exercising identical communication code paths.
///
/// Failure containment: the first rank-thread to exit with an exception
/// aborts the world — every peer blocked in (or subsequently entering) a
/// send/recv/probe/collective throws AbortedError instead of hanging.
/// After all ranks are joined, run throws a RankFailure whose message
/// names every failed rank and whose cause() is the first non-aborted
/// exception (rethrow-first semantics).
class Runtime {
public:
    using TaskFn = std::function<void(Comm&)>;

    /// Per-run knobs; the defaults read the environment.
    struct RunOptions {
        /// Fault-injection plan; when unset, `L5_FAULTS` is consulted.
        std::optional<FaultPlan> faults;
        /// World-default blocking-wait timeout in ms; < 0 means consult
        /// `L5_TIMEOUT_MS` (0 there or here disables deadlines).
        std::int64_t default_timeout_ms = -1;
        /// Deterministic cooperative scheduler; when unset, `L5_SCHED`
        /// is consulted (unset there leaves scheduling to the OS).
        std::optional<SchedConfig> sched;
        /// MPI-semantics correctness checker; when unset, `L5_CHECK` is
        /// consulted (unset there leaves the checker off).
        std::optional<l5check::CheckConfig> check;
        /// Predictive race/lock-order detector (l5race); when unset,
        /// `L5_RACE` is consulted (unset there leaves it disarmed).
        std::optional<l5race::RaceConfig> race;
    };

    /// Run `fn` on `world_size` ranks and block until all complete.
    static void run(int world_size, const TaskFn& fn);

    /// Run with per-rank functions (fn receives the world comm; rank
    /// selection is up to the callable), same join/exception semantics.
    static void run(int world_size, const std::function<void(Comm&, int)>& fn);

    static void run(int world_size, const std::function<void(Comm&, int)>& fn,
                    const RunOptions& opts);
};

} // namespace simmpi
