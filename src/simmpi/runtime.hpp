#pragma once

#include "comm.hpp"

#include <functional>

namespace simmpi {

/// Entry point of the message-passing runtime. `run` spawns `world_size`
/// rank-threads, hands each its world communicator, and joins them all.
/// This stands in for `mpirun -np N`: every "MPI process" of the paper is
/// one rank-thread here, exercising identical communication code paths.
///
/// Exceptions thrown by any rank are captured; after all ranks finish (or
/// are unblocked), the first exception is rethrown to the caller.
class Runtime {
public:
    using TaskFn = std::function<void(Comm&)>;

    /// Run `fn` on `world_size` ranks and block until all complete.
    static void run(int world_size, const TaskFn& fn);

    /// Run with per-rank functions (fn receives the world comm; rank
    /// selection is up to the callable), same join/exception semantics.
    static void run(int world_size, const std::function<void(Comm&, int)>& fn);
};

} // namespace simmpi
