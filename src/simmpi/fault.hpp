#pragma once

#include "error.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace simmpi {

/// Deterministic fault plan for what-if studies of the protocol under
/// perturbation (SIM-SITU-style reproducible injection). A plan is a set
/// of rules applied at communication ops; with the same spec and seed the
/// same ops are hit in the same way on every run (absent extra threads
/// racing on one rank's op counter).
///
/// Spec grammar (also accepted from the `L5_FAULTS` environment variable),
/// rules separated by ';', fields by ',':
///
///   seed=42                          — seed for probabilistic rules
///   kill:rank=2,after_ops=50         — rank 2 throws FaultError at its 50th op
///   delay:tag=904,ms=20,prob=0.3     — sends with tag 904 sleep 20 ms with p=0.3
///   delay:tag=904,ms=5[,rank=1]      — optional rank restricts the sender
///
/// Example: `L5_FAULTS="seed=7;kill:rank=2,after_ops=50;delay:tag=904,ms=20,prob=0.3"`.
struct FaultPlan {
    struct Kill {
        int           rank      = -1;
        std::uint64_t after_ops = 0; ///< fires exactly at the Nth op (1-based)
    };
    struct Delay {
        int          tag  = -1; ///< user tag of the send to delay (-1 = any)
        int          rank = -1; ///< sending world rank (-1 = any)
        std::int64_t ms   = 0;
        double       prob = 1.0;
    };

    std::uint64_t      seed = 0;
    std::vector<Kill>  kills;
    std::vector<Delay> delays;

    bool empty() const { return kills.empty() && delays.empty(); }

    /// Parse a spec string; throws simmpi::Error on malformed input.
    static FaultPlan parse(const std::string& spec);

    /// Plan from `L5_FAULTS`, or nullopt when unset/empty.
    static std::optional<FaultPlan> from_env();
};

namespace detail {

/// Per-run fault state: the plan plus one op counter per world rank.
/// on_op is called from the communication hot path only when a plan is
/// installed (the unconfigured cost is a single null-pointer check in
/// Comm). Counters are atomic so a rank whose mailbox is shared between
/// its app thread and a background serve thread stays safe; determinism
/// of the kill point is guaranteed when each rank's ops are sequential.
class FaultState {
public:
    FaultState(FaultPlan plan, int world_size);

    /// Account one communication op by `world_rank`. May throw FaultError
    /// (kill rule) or sleep (delay rule matching a send's tag).
    void on_op(int world_rank, int tag, bool is_send);

    std::uint64_t ops(int world_rank) const {
        return ops_[static_cast<std::size_t>(world_rank)].load(std::memory_order_relaxed);
    }

    const FaultPlan& plan() const { return plan_; }

private:
    FaultPlan                                 plan_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> ops_;
};

} // namespace detail
} // namespace simmpi
