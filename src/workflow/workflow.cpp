#include "workflow.hpp"

#include <h5/native_vol.hpp>
#include <obs/obs.hpp>

#include <cstdlib>
#include <cstring>
#include <numeric>

namespace workflow {

namespace {

/// L5_TRACE= controls workflow-level tracing: unset/empty/"0" leaves it
/// off, "1" records and writes l5_trace.json, any other value is the
/// output path for the Chrome trace JSON.
const char* trace_env_path() {
    const char* s = std::getenv("L5_TRACE");
    if (!s || !*s || std::strcmp(s, "0") == 0) return nullptr;
    return std::strcmp(s, "1") == 0 ? "l5_trace.json" : s;
}

} // namespace

Mode Mode::from_env() {
    const char* s = std::getenv("L5_MODE");
    if (!s || std::strcmp(s, "memory") == 0) return in_situ();
    if (std::strcmp(s, "file") == 0) return file();
    if (std::strcmp(s, "both") == 0) return both();
    throw std::runtime_error(std::string("workflow: unknown L5_MODE '") + s
                             + "' (expected memory|file|both)");
}

void run(const std::vector<TaskSpec>& tasks, const std::vector<Link>& links,
         const Options& opts) {
    if (tasks.empty()) return;

    int total = 0;
    std::vector<int> first_rank(tasks.size());
    for (std::size_t t = 0; t < tasks.size(); ++t) {
        if (tasks[t].nprocs <= 0)
            throw std::runtime_error("workflow: task '" + tasks[t].name + "' needs nprocs > 0");
        first_rank[t] = total;
        total += tasks[t].nprocs;
    }
    for (const auto& l : links)
        if (l.producer < 0 || l.consumer < 0 || l.producer >= static_cast<int>(tasks.size())
            || l.consumer >= static_cast<int>(tasks.size()) || l.producer == l.consumer)
            throw std::runtime_error("workflow: bad link");

    const char* trace_path = trace_env_path();
    if (trace_path) obs::Tracer::instance().set_enabled(true);

    simmpi::Runtime::run(total, [&](simmpi::Comm& world, int) {
        // which task does this rank belong to?
        int task_index = 0;
        while (task_index + 1 < static_cast<int>(tasks.size())
               && world.rank() >= first_rank[static_cast<std::size_t>(task_index + 1)])
            ++task_index;
        const TaskSpec& spec = tasks[static_cast<std::size_t>(task_index)];

        Context ctx;
        ctx.task_name  = spec.name;
        ctx.task_index = task_index;
        ctx.world      = world;
        ctx.local      = world.split(task_index);

        // one intercommunicator per link, built collectively over the world
        std::vector<simmpi::Comm> link_comms;
        link_comms.reserve(links.size());
        for (const auto& l : links) {
            std::vector<int> prod(static_cast<std::size_t>(tasks[static_cast<std::size_t>(l.producer)].nprocs));
            std::iota(prod.begin(), prod.end(), first_rank[static_cast<std::size_t>(l.producer)]);
            std::vector<int> cons(static_cast<std::size_t>(tasks[static_cast<std::size_t>(l.consumer)].nprocs));
            std::iota(cons.begin(), cons.end(), first_rank[static_cast<std::size_t>(l.consumer)]);
            link_comms.push_back(simmpi::Comm::create_intercomm(world, prod, cons));
        }

        // terminal VOL: collective over the task's ranks (shared-file I/O)
        h5::VolPtr native;
        if (opts.mode.passthru) native = std::make_shared<h5::NativeVol>(ctx.local);

        ctx.vol = std::make_shared<lowfive::DistMetadataVol>(ctx.local, native);
        if (!opts.mode.memory) ctx.vol->clear_memory();
        if (opts.mode.passthru) ctx.vol->set_passthru("*", "*");
        for (const auto& z : opts.zerocopy) ctx.vol->set_zerocopy(z.file_pattern, z.dset_pattern);
        ctx.vol->set_serve_on_close(opts.serve_on_close);
        ctx.vol->set_serve_in_background(opts.background_serve);

        for (std::size_t i = 0; i < links.size(); ++i) {
            const Link& l = links[i];
            if (l.producer == task_index) ctx.vol->serve_to(link_comms[i], l.pattern);
            if (l.consumer == task_index) ctx.vol->consume_from(link_comms[i], l.pattern);
            // streamed edge: register the same window/policy on both
            // ends so Writer and Reader resolve matching configs
            if (!l.stream.empty() && (l.producer == task_index || l.consumer == task_index)) {
                auto policy = lowfive::stream::parse_policy(l.stream);
                if (!policy)
                    throw std::runtime_error("workflow: link stream policy '" + l.stream
                                             + "' must be block|drop|latest_only");
                lowfive::stream::StreamConfig cfg;
                cfg.policy = *policy;
                if (l.stream_window > 0)
                    cfg.window = static_cast<std::size_t>(l.stream_window);
                ctx.vol->set_stream(l.pattern, cfg);
            }
        }

        {
            obs::Span task_span(obs::intern_if_enabled("task:" + spec.name), "workflow",
                                {{"nprocs", static_cast<std::uint64_t>(spec.nprocs), nullptr},
                                 {"local_rank", static_cast<std::uint64_t>(ctx.rank()), nullptr}});
            int attempt = 0;
            for (;;) {
                try {
                    spec.fn(ctx);
                    break;
                } catch (...) {
                    std::exception_ptr error = std::current_exception();
                    std::string        cause = "unknown exception";
                    try {
                        throw;
                    } catch (const simmpi::AbortedError&) {
                        throw; // a peer's failure poisoned the world, not this task's fault
                    } catch (const std::exception& e) {
                        cause = e.what();
                    } catch (...) {
                    }
                    if (attempt >= spec.max_restarts)
                        throw TaskError(spec.name, ctx.rank(), cause, error);
                    ++attempt;
                    obs::instant("task.restart", "workflow",
                                 {{"attempt", static_cast<std::uint64_t>(attempt), nullptr}});
                }
            }
        }
        obs::Span drain_span("task.drain", "workflow");
        ctx.vol->finish_serving(); // drain any background serving
    }, opts.runtime);

    if (trace_path) obs::write_chrome_trace_file(trace_path);
}

} // namespace workflow
