#pragma once

#include <lowfive/dist_vol.hpp>
#include <simmpi/simmpi.hpp>

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace workflow {

/// Data transport mode for a run, switchable without touching task code —
/// the paper's "seamlessly switch between storage and in situ".
struct Mode {
    bool memory   = true;  ///< keep data in memory / transport in situ
    bool passthru = false; ///< write/read physical files through the native VOL

    static Mode in_situ() { return {true, false}; }
    static Mode file() { return {false, true}; }
    static Mode both() { return {true, true}; }

    /// Parse `L5_MODE` = "memory" | "file" | "both" (default memory).
    static Mode from_env();
};

/// Everything a task body receives: its communicators and a fully wired
/// LowFive VOL (connections, mode, zero-copy patterns already applied).
struct Context {
    std::string                               task_name;
    int                                       task_index = 0;
    simmpi::Comm                              world; ///< all ranks of the workflow
    simmpi::Comm                              local; ///< this task's ranks
    std::shared_ptr<lowfive::DistMetadataVol> vol;

    int rank() const { return local.rank(); }
    int size() const { return local.size(); }
};

/// One task (separate "executable") of the workflow graph.
struct TaskSpec {
    std::string                   name;
    int                           nprocs = 1;
    std::function<void(Context&)> fn;
    /// Retry budget for transient failures: a rank whose task body throws
    /// reruns it up to this many times before the failure is final. Only
    /// sound for idempotent bodies (reruns reuse the same Context and
    /// VOL); a world abort caused by *another* rank is never retried.
    int max_restarts = 0;
};

/// A task body failed (restarts exhausted): names the task and its local
/// rank, keeps the original exception reachable. workflow::run surfaces
/// this wrapped in simmpi::RankFailure, whose message embeds this one.
class TaskError : public std::runtime_error {
public:
    TaskError(std::string task, int rank, const std::string& cause, std::exception_ptr error)
        : std::runtime_error("workflow: task '" + task + "' rank " + std::to_string(rank)
                             + " failed: " + cause),
          task_(std::move(task)), rank_(rank), error_(std::move(error)) {}

    const std::string& task() const { return task_; }
    int                rank() const { return rank_; } ///< rank within the task
    std::exception_ptr cause() const { return error_; }

private:
    std::string        task_;
    int                rank_;
    std::exception_ptr error_;
};

/// A producer→consumer edge in the task graph; `pattern` routes files by
/// name, enabling fan-in and fan-out.
struct Link {
    int         producer = 0; ///< index into the task list
    int         consumer = 1;
    std::string pattern = "*";
    /// Step-versioned streaming for files matching `pattern`: empty = off;
    /// otherwise the backpressure policy ("block" | "drop" | "latest_only")
    /// registered on both ends via DistMetadataVol::set_stream. Config
    /// files spell this `stream:` (and `window:`) on a link.
    std::string stream;
    /// Staging-window size for the streamed files; 0 = the default (4,
    /// or L5_STEP_WINDOW). latest_only always runs with a window of 1.
    int stream_window = 0;

    // not an aggregate: the constructor keeps pre-streaming three-field
    // Link{p, c, pattern} call sites warning-free under
    // -Wmissing-field-initializers
    Link() = default;
    Link(int producer_, int consumer_, std::string pattern_ = "*", std::string stream_ = {},
         int stream_window_ = 0)
        : producer(producer_), consumer(consumer_), pattern(std::move(pattern_)),
          stream(std::move(stream_)), stream_window(stream_window_) {}
};

struct Options {
    Mode                              mode = Mode::from_env();
    std::vector<lowfive::PatternPair> zerocopy; ///< datasets stored as shallow references
    bool                              serve_on_close = true;
    /// Serve consumers from a background thread so producers overlap
    /// computation with data delivery (the paper's §V-C future work).
    /// The runner calls finish_serving() after each task body returns.
    bool background_serve = false;
    /// Runtime knobs: fault-injection plan and world-default deadline
    /// (defaults read `L5_FAULTS` / `L5_TIMEOUT_MS`).
    simmpi::Runtime::RunOptions runtime;
};

/// Run a workflow: spawns the sum of all task process counts as ranks,
/// splits a communicator per task, builds an intercommunicator per link,
/// and hands each rank its Context. Blocks until every task finishes.
///
/// Failure containment: a rank whose task body throws (after exhausting
/// its max_restarts budget) aborts the world — peers blocked on it get
/// simmpi::AbortedError instead of hanging — and run rethrows a
/// simmpi::RankFailure naming the failed task and rank.
void run(const std::vector<TaskSpec>& tasks, const std::vector<Link>& links,
         const Options& opts = Options{});

} // namespace workflow
