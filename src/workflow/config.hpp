#pragma once

#include "workflow.hpp"

#include <map>
#include <stdexcept>
#include <string>

namespace workflow {

/// Error in a declarative workflow description.
class ConfigError : public std::runtime_error {
public:
    explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// The paper's future work §V-C mentions "a higher-level workflow system
/// that uses LowFive as its transport layer" (what later became Wilkins,
/// which describes workflows declaratively in YAML). This is that layer
/// in miniature: a task graph described in a small YAML-like text format,
/// with task bodies looked up in a function registry.
///
/// ```yaml
/// mode: memory            # memory | file | both     (optional)
/// background_serve: true  # optional
/// zerocopy: "*.h5 : particles*"   # optional, repeatable
/// tasks:
///   - name: sim
///     ranks: 8
///     func: nyx           # registry key
///     restarts: 1         # optional retry budget for idempotent bodies
///   - name: ana
///     ranks: 4
///     func: reeber
/// links:
///   - from: sim
///     to: ana
///     pattern: "*.h5"     # optional, default "*"
/// ```
///
/// Supported syntax: two-space indentation, `key: value` pairs, `- ` list
/// items, `#` comments, optional double quotes around values. This is a
/// deliberate subset, not a YAML implementation.
struct ParsedWorkflow {
    struct TaskDecl {
        std::string name;
        int         ranks = 0;
        std::string func;
        int         restarts = 0; ///< max_restarts retry budget
    };
    std::vector<TaskDecl> tasks;
    std::vector<Link>     links;
    Options               options;
};

/// Parse a declarative workflow description; throws ConfigError with a
/// line number on malformed input.
ParsedWorkflow parse_workflow(const std::string& text);

/// Task-body registry: config `func:` keys to callables.
using Registry = std::map<std::string, std::function<void(Context&)>>;

/// Parse and run: the whole orchestration the paper's Henson/Python
/// script performed, driven from a config string.
void run_workflow(const std::string& config_text, const Registry& registry);

} // namespace workflow
