#include "config.hpp"

#include <algorithm>
#include <sstream>

namespace workflow {

namespace {

struct Line {
    int         number = 0;
    int         indent = 0;
    bool        item   = false; ///< starts with "- "
    std::string key, value;     ///< key may be empty for bare list items
};

std::string strip(const std::string& s) {
    auto b = s.find_first_not_of(" \t");
    if (b == std::string::npos) return "";
    auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::string unquote(std::string v) {
    if (v.size() >= 2 && v.front() == '"' && v.back() == '"') return v.substr(1, v.size() - 2);
    return v;
}

[[noreturn]] void fail(int line, const std::string& what) {
    throw ConfigError("workflow config, line " + std::to_string(line) + ": " + what);
}

std::vector<Line> tokenize(const std::string& text) {
    std::vector<Line>  lines;
    std::istringstream in(text);
    std::string        raw;
    int                number = 0;
    while (std::getline(in, raw)) {
        ++number;
        // strip comments (a '#' not inside quotes)
        bool        quoted = false;
        std::string body;
        for (char c : raw) {
            if (c == '"') quoted = !quoted;
            if (c == '#' && !quoted) break;
            body.push_back(c);
        }
        std::string content = strip(body);
        if (content.empty()) continue;

        Line l;
        l.number = number;
        l.indent = static_cast<int>(body.find_first_not_of(' '));
        if (content.rfind("- ", 0) == 0) {
            l.item  = true;
            content = strip(content.substr(2));
        } else if (content == "-") {
            l.item  = true;
            content = "";
        }
        if (!content.empty()) {
            auto colon = content.find(':');
            if (colon == std::string::npos) fail(number, "expected 'key: value'");
            l.key   = strip(content.substr(0, colon));
            l.value = unquote(strip(content.substr(colon + 1)));
        }
        lines.push_back(l);
    }
    return lines;
}

int parse_int(const Line& l) {
    try {
        std::size_t used = 0;
        int         v    = std::stoi(l.value, &used);
        if (used != l.value.size()) throw std::invalid_argument("");
        return v;
    } catch (const std::exception&) {
        fail(l.number, "'" + l.key + "' needs an integer, got '" + l.value + "'");
    }
}

bool parse_bool(const Line& l) {
    if (l.value == "true" || l.value == "yes") return true;
    if (l.value == "false" || l.value == "no") return false;
    fail(l.number, "'" + l.key + "' needs true/false, got '" + l.value + "'");
}

} // namespace

ParsedWorkflow parse_workflow(const std::string& text) {
    ParsedWorkflow out;
    out.options.mode = Mode::in_situ(); // config files default to in situ

    auto lines = tokenize(text);

    enum class Section { None, Tasks, Links };
    Section                    section = Section::None;
    ParsedWorkflow::TaskDecl*  task    = nullptr;
    struct LinkDecl {
        std::string from, to, pattern = "*";
        std::string stream;     ///< backpressure policy name; empty = not streamed
        int         window = 0; ///< staging window; 0 = default
        int         line   = 0;
    };
    std::vector<LinkDecl> link_decls;
    LinkDecl*             link = nullptr;

    for (const auto& l : lines) {
        if (l.indent == 0 && !l.item) {
            task = nullptr;
            link = nullptr;
            if (l.key == "tasks" && l.value.empty()) {
                section = Section::Tasks;
            } else if (l.key == "links" && l.value.empty()) {
                section = Section::Links;
            } else if (l.key == "mode") {
                section = Section::None;
                if (l.value == "memory")
                    out.options.mode = Mode::in_situ();
                else if (l.value == "file")
                    out.options.mode = Mode::file();
                else if (l.value == "both")
                    out.options.mode = Mode::both();
                else
                    fail(l.number, "mode must be memory|file|both");
            } else if (l.key == "background_serve") {
                section                      = Section::None;
                out.options.background_serve = parse_bool(l);
            } else if (l.key == "serve_on_close") {
                section                    = Section::None;
                out.options.serve_on_close = parse_bool(l);
            } else if (l.key == "zerocopy") {
                section  = Section::None;
                auto sep = l.value.find(':');
                if (sep == std::string::npos) {
                    out.options.zerocopy.push_back({strip(l.value), "*"});
                } else {
                    out.options.zerocopy.push_back(
                        {strip(l.value.substr(0, sep)), strip(l.value.substr(sep + 1))});
                }
            } else {
                fail(l.number, "unknown top-level key '" + l.key + "'");
            }
            continue;
        }

        if (section == Section::Tasks) {
            if (l.item) {
                out.tasks.emplace_back();
                task = &out.tasks.back();
            }
            if (!task) fail(l.number, "task fields outside a '- ' item");
            if (l.key == "name")
                task->name = l.value;
            else if (l.key == "ranks")
                task->ranks = parse_int(l);
            else if (l.key == "func")
                task->func = l.value;
            else if (l.key == "restarts")
                task->restarts = parse_int(l);
            else if (!l.key.empty())
                fail(l.number, "unknown task key '" + l.key + "'");
        } else if (section == Section::Links) {
            if (l.item) {
                link_decls.push_back({});
                link       = &link_decls.back();
                link->line = l.number;
            }
            if (!link) fail(l.number, "link fields outside a '- ' item");
            if (l.key == "from")
                link->from = l.value;
            else if (l.key == "to")
                link->to = l.value;
            else if (l.key == "pattern")
                link->pattern = l.value;
            else if (l.key == "stream") {
                if (!lowfive::stream::parse_policy(l.value))
                    fail(l.number, "'stream' must be block|drop|latest_only, got '" + l.value + "'");
                link->stream = l.value;
            } else if (l.key == "window") {
                link->window = parse_int(l);
                if (link->window <= 0) fail(l.number, "'window' needs a positive integer");
            } else if (!l.key.empty())
                fail(l.number, "unknown link key '" + l.key + "'");
        } else if (!l.key.empty()) {
            fail(l.number, "indented '" + l.key + "' outside tasks/links");
        }
    }

    if (out.tasks.empty()) throw ConfigError("workflow config: no tasks declared");
    for (const auto& t : out.tasks) {
        if (t.name.empty()) throw ConfigError("workflow config: task without a name");
        if (t.ranks <= 0)
            throw ConfigError("workflow config: task '" + t.name + "' needs ranks > 0");
        if (t.func.empty())
            throw ConfigError("workflow config: task '" + t.name + "' needs a func");
        if (t.restarts < 0)
            throw ConfigError("workflow config: task '" + t.name + "' needs restarts >= 0");
    }

    auto index_of = [&](const std::string& name, int line) {
        for (std::size_t i = 0; i < out.tasks.size(); ++i)
            if (out.tasks[i].name == name) return static_cast<int>(i);
        fail(line, "link references unknown task '" + name + "'");
    };
    for (const auto& ld : link_decls) {
        if (ld.window > 0 && ld.stream.empty())
            fail(ld.line, "'window' is only meaningful on a streamed link (add 'stream:')");
        out.links.push_back({index_of(ld.from, ld.line), index_of(ld.to, ld.line), ld.pattern,
                             ld.stream, ld.window});
    }

    return out;
}

void run_workflow(const std::string& config_text, const Registry& registry) {
    auto parsed = parse_workflow(config_text);

    std::vector<TaskSpec> specs;
    specs.reserve(parsed.tasks.size());
    for (const auto& t : parsed.tasks) {
        auto it = registry.find(t.func);
        if (it == registry.end())
            throw ConfigError("workflow config: no registered function '" + t.func + "' for task '"
                              + t.name + "'");
        specs.push_back({t.name, t.ranks, it->second, t.restarts});
    }
    run(specs, parsed.links, parsed.options);
}

} // namespace workflow
