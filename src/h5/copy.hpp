#pragma once

#include "api.hpp"

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace h5 {

/// Deep-copy an object (group subtree or dataset) from one location to
/// another, possibly across files and across VOLs — the H5Ocopy
/// analogue, and the engine of the mh5copy tool. Attributes and dataset
/// contents are copied; `dst_name` must not already exist under `dst`.
///
/// Because it is written purely against the public API, it also moves
/// data between *transports*: copying from a LowFive in-memory file into
/// a native file checkpoints it, and vice versa.
void copy_object(const NodeRef& src, const std::string& src_path, const NodeRef& dst,
                 const std::string& dst_name);

/// Width-specialized byte-moving kernels for the selection data plane.
///
/// Selection transfers decompose into runs whose lengths cluster around
/// the element size times a row length — anywhere from a single odd-width
/// element (1–7 bytes) up to a full contiguous slab. `kern::copy` handles
/// that distribution with three regimes: an inline overlapping head/tail
/// small copy (≤ 64 B, no branches on exact width), a runtime-dispatched
/// wide loop (AVX2 where the CPU has it, an unrolled 64-bit word loop
/// otherwise), and a streaming (non-temporal) path for very large runs
/// that would otherwise evict the cache.
namespace kern {

/// One byte-moving segment of a selection transfer: `len` bytes from
/// `src_base + src` to `dst_base + dst`. Vectorized kernels materialize
/// a flat list of these from the two-pointer run merge, then hand the
/// list to `copy_segments` (or split it across the h5::par pool).
struct Seg {
    std::uint64_t dst = 0;
    std::uint64_t src = 0;
    std::uint64_t len = 0;
};

/// Name of the resolved wide-copy implementation ("avx2" or "word");
/// decided once per process from CPU features.
const char* dispatch_name();

namespace detail {
/// Out-of-line copy for n > 64: the dispatched wide loop, switching to
/// streaming stores above the cache-evasion threshold.
void copy_wide(std::byte* dst, const std::byte* src, std::size_t n);
} // namespace detail

/// Copy `n` bytes between non-overlapping buffers. The ≤ 64 B path is
/// inline and uses the overlapping head/tail trick: two fixed-size
/// copies cover any length in a power-of-two bracket without a
/// per-length branch ladder, and fixed-size memcpy compiles to plain
/// register moves.
inline void copy(std::byte* dst, const std::byte* src, std::size_t n) {
    if (n > 64) {
        detail::copy_wide(dst, src, n);
        return;
    }
    if (n >= 32) {
        std::memcpy(dst, src, 32);
        std::memcpy(dst + n - 32, src + n - 32, 32);
    } else if (n >= 16) {
        std::memcpy(dst, src, 16);
        std::memcpy(dst + n - 16, src + n - 16, 16);
    } else if (n >= 8) {
        std::memcpy(dst, src, 8);
        std::memcpy(dst + n - 8, src + n - 8, 8);
    } else if (n >= 4) {
        std::memcpy(dst, src, 4);
        std::memcpy(dst + n - 4, src + n - 4, 4);
    } else if (n >= 2) {
        std::memcpy(dst, src, 2);
        std::memcpy(dst + n - 2, src + n - 2, 2);
    } else if (n == 1) {
        *dst = *src;
    }
}

/// Apply a batch of segments against a (dst, src) buffer pair. Segments
/// must reference disjoint destination ranges (selection runs are
/// disjoint by construction), so batches may be applied concurrently.
void copy_segments(std::byte* dst_base, const std::byte* src_base, const Seg* segs,
                   std::size_t n);

} // namespace kern
} // namespace h5
