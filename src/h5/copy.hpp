#pragma once

#include "api.hpp"

namespace h5 {

/// Deep-copy an object (group subtree or dataset) from one location to
/// another, possibly across files and across VOLs — the H5Ocopy
/// analogue, and the engine of the mh5copy tool. Attributes and dataset
/// contents are copied; `dst_name` must not already exist under `dst`.
///
/// Because it is written purely against the public API, it also moves
/// data between *transports*: copying from a LowFive in-memory file into
/// a native file checkpoints it, and vice versa.
void copy_object(const NodeRef& src, const std::string& src_path, const NodeRef& dst,
                 const std::string& dst_name);

} // namespace h5
