#include "types.hpp"

namespace h5 {

std::string Datatype::str() const {
    switch (class_) {
    case TypeClass::Int:   return "int" + std::to_string(size_ * 8);
    case TypeClass::UInt:  return "uint" + std::to_string(size_ * 8);
    case TypeClass::Float: return "float" + std::to_string(size_ * 8);
    case TypeClass::Compound: {
        std::string s = "compound" + std::to_string(size_ * 8) + "{";
        for (std::size_t i = 0; i < member_names_.size(); ++i) {
            s += member_names_[i] + ":" + member_types_[i].str();
            if (i + 1 < member_names_.size()) s += ",";
        }
        return s + "}";
    }
    }
    return "?";
}

} // namespace h5
