#pragma once

#include <diy/serialization.hpp>

#include <cstdint>
#include <string>
#include <vector>

namespace h5 {

/// Class of an atomic datatype, mirroring HDF5's type classes that the
/// paper's workloads use (integers, floats) plus compound types for
/// records such as 3-d particles.
enum class TypeClass : std::uint8_t {
    Int,      ///< signed integer
    UInt,     ///< unsigned integer
    Float,    ///< IEEE float
    Compound, ///< record of named members at byte offsets
};

/// A datatype: either atomic (class + size) or compound (members with
/// names, offsets and their own datatypes). Sizes are in bytes.
class Datatype {
public:
    struct Member {
        std::string name;
        std::size_t offset = 0;
        // members of a compound are atomic or compound; stored flattened
        // via an index into the parent's member_types_ to keep the type
        // trivially serializable
    };

    Datatype() = default;

    static Datatype atomic(TypeClass cls, std::size_t size) {
        Datatype t;
        t.class_ = cls;
        t.size_  = size;
        return t;
    }

    /// Build a compound type; `total_size` allows trailing padding.
    static Datatype compound(std::size_t total_size) {
        Datatype t;
        t.class_ = TypeClass::Compound;
        t.size_  = total_size;
        return t;
    }

    Datatype& insert(const std::string& name, std::size_t offset, const Datatype& member) {
        member_names_.push_back(name);
        member_offsets_.push_back(offset);
        member_types_.push_back(member);
        return *this;
    }

    TypeClass   type_class() const { return class_; }
    std::size_t size() const { return size_; }
    bool        is_compound() const { return class_ == TypeClass::Compound; }

    std::size_t        n_members() const { return member_names_.size(); }
    const std::string& member_name(std::size_t i) const { return member_names_[i]; }
    std::size_t        member_offset(std::size_t i) const { return member_offsets_[i]; }
    const Datatype&    member_type(std::size_t i) const { return member_types_[i]; }

    bool operator==(const Datatype& o) const {
        if (class_ != o.class_ || size_ != o.size_) return false;
        if (member_names_ != o.member_names_ || member_offsets_ != o.member_offsets_) return false;
        return member_types_ == o.member_types_;
    }

    void save(diy::BinaryBuffer& bb) const {
        bb.save(static_cast<std::uint8_t>(class_));
        bb.save<std::uint64_t>(size_);
        bb.save<std::uint64_t>(member_names_.size());
        for (std::size_t i = 0; i < member_names_.size(); ++i) {
            bb.save(member_names_[i]);
            bb.save<std::uint64_t>(member_offsets_[i]);
            member_types_[i].save(bb);
        }
    }

    static Datatype load(diy::BinaryBuffer& bb) {
        Datatype t;
        t.class_ = static_cast<TypeClass>(bb.load<std::uint8_t>());
        t.size_  = bb.load<std::uint64_t>();
        auto n   = bb.load<std::uint64_t>();
        for (std::uint64_t i = 0; i < n; ++i) {
            std::string name;
            bb.load(name);
            auto off = bb.load<std::uint64_t>();
            t.insert(name, off, Datatype::load(bb));
        }
        return t;
    }

    std::string str() const;

private:
    TypeClass                class_ = TypeClass::Int;
    std::size_t              size_  = 0;
    std::vector<std::string> member_names_;
    std::vector<std::size_t> member_offsets_;
    std::vector<Datatype>    member_types_;
};

/// Predefined datatypes, the analogues of H5T_NATIVE_*.
namespace dt {
inline Datatype int8() { return Datatype::atomic(TypeClass::Int, 1); }
inline Datatype int16() { return Datatype::atomic(TypeClass::Int, 2); }
inline Datatype int32() { return Datatype::atomic(TypeClass::Int, 4); }
inline Datatype int64() { return Datatype::atomic(TypeClass::Int, 8); }
inline Datatype uint8() { return Datatype::atomic(TypeClass::UInt, 1); }
inline Datatype uint16() { return Datatype::atomic(TypeClass::UInt, 2); }
inline Datatype uint32() { return Datatype::atomic(TypeClass::UInt, 4); }
inline Datatype uint64() { return Datatype::atomic(TypeClass::UInt, 8); }
inline Datatype float32() { return Datatype::atomic(TypeClass::Float, 4); }
inline Datatype float64() { return Datatype::atomic(TypeClass::Float, 8); }
} // namespace dt

} // namespace h5
