#include "convert.hpp"

#include <cstring>

namespace h5 {

namespace {

/// Widest intermediates: every atomic value round-trips through one of
/// these according to its class.
union Intermediate {
    std::int64_t  i;
    std::uint64_t u;
    double        f;
};

Intermediate load_value(const Datatype& t, const std::byte* p) {
    Intermediate v{};
    switch (t.type_class()) {
    case TypeClass::Int:
        switch (t.size()) {
        case 1: v.i = *reinterpret_cast<const std::int8_t*>(p); break;
        case 2: v.i = *reinterpret_cast<const std::int16_t*>(p); break;
        case 4: v.i = *reinterpret_cast<const std::int32_t*>(p); break;
        case 8: v.i = *reinterpret_cast<const std::int64_t*>(p); break;
        default: throw Error("h5: unsupported integer width " + std::to_string(t.size()));
        }
        break;
    case TypeClass::UInt:
        switch (t.size()) {
        case 1: v.u = *reinterpret_cast<const std::uint8_t*>(p); break;
        case 2: v.u = *reinterpret_cast<const std::uint16_t*>(p); break;
        case 4: v.u = *reinterpret_cast<const std::uint32_t*>(p); break;
        case 8: v.u = *reinterpret_cast<const std::uint64_t*>(p); break;
        default: throw Error("h5: unsupported integer width " + std::to_string(t.size()));
        }
        break;
    case TypeClass::Float:
        switch (t.size()) {
        case 4: v.f = static_cast<double>(*reinterpret_cast<const float*>(p)); break;
        case 8: v.f = *reinterpret_cast<const double*>(p); break;
        default: throw Error("h5: unsupported float width " + std::to_string(t.size()));
        }
        break;
    case TypeClass::Compound:
        throw Error("h5: load_value on a compound type");
    }
    return v;
}

/// Convert the intermediate between class representations.
Intermediate reclass(Intermediate v, TypeClass from, TypeClass to) {
    if (from == to) return v;
    Intermediate out{};
    double       d = from == TypeClass::Float ? v.f
                     : from == TypeClass::Int ? static_cast<double>(v.i)
                                              : static_cast<double>(v.u);
    switch (to) {
    case TypeClass::Int:
        out.i = from == TypeClass::Float ? static_cast<std::int64_t>(v.f)
                : from == TypeClass::UInt ? static_cast<std::int64_t>(v.u)
                                          : v.i;
        break;
    case TypeClass::UInt:
        out.u = from == TypeClass::Float ? static_cast<std::uint64_t>(v.f)
                : from == TypeClass::Int ? static_cast<std::uint64_t>(v.i)
                                         : v.u;
        break;
    case TypeClass::Float:
        out.f = d;
        break;
    case TypeClass::Compound:
        throw Error("h5: reclass to compound");
    }
    return out;
}

void store_value(const Datatype& t, Intermediate v, std::byte* p) {
    switch (t.type_class()) {
    case TypeClass::Int:
        switch (t.size()) {
        case 1: *reinterpret_cast<std::int8_t*>(p) = static_cast<std::int8_t>(v.i); break;
        case 2: *reinterpret_cast<std::int16_t*>(p) = static_cast<std::int16_t>(v.i); break;
        case 4: *reinterpret_cast<std::int32_t*>(p) = static_cast<std::int32_t>(v.i); break;
        case 8: *reinterpret_cast<std::int64_t*>(p) = v.i; break;
        default: throw Error("h5: unsupported integer width");
        }
        break;
    case TypeClass::UInt:
        switch (t.size()) {
        case 1: *reinterpret_cast<std::uint8_t*>(p) = static_cast<std::uint8_t>(v.u); break;
        case 2: *reinterpret_cast<std::uint16_t*>(p) = static_cast<std::uint16_t>(v.u); break;
        case 4: *reinterpret_cast<std::uint32_t*>(p) = static_cast<std::uint32_t>(v.u); break;
        case 8: *reinterpret_cast<std::uint64_t*>(p) = v.u; break;
        default: throw Error("h5: unsupported integer width");
        }
        break;
    case TypeClass::Float:
        switch (t.size()) {
        case 4: *reinterpret_cast<float*>(p) = static_cast<float>(v.f); break;
        case 8: *reinterpret_cast<double*>(p) = v.f; break;
        default: throw Error("h5: unsupported float width");
        }
        break;
    case TypeClass::Compound:
        throw Error("h5: store_value on a compound type");
    }
}

bool atomic_supported(const Datatype& t) {
    switch (t.type_class()) {
    case TypeClass::Int:
    case TypeClass::UInt: return t.size() == 1 || t.size() == 2 || t.size() == 4 || t.size() == 8;
    case TypeClass::Float: return t.size() == 4 || t.size() == 8;
    case TypeClass::Compound: return false;
    }
    return false;
}

} // namespace

bool convertible(const Datatype& from, const Datatype& to) {
    if (from.is_compound() != to.is_compound()) return false;
    if (from.is_compound()) {
        for (std::size_t m = 0; m < to.n_members(); ++m) {
            // each destination member either matches a source member by
            // name (and is itself convertible) or is zero-filled
            for (std::size_t s = 0; s < from.n_members(); ++s)
                if (from.member_name(s) == to.member_name(m)
                    && !convertible(from.member_type(s), to.member_type(m)))
                    return false;
        }
        return true;
    }
    return atomic_supported(from) && atomic_supported(to);
}

void convert_values(const Datatype& from, const void* src, const Datatype& to, void* dst,
                    std::uint64_t n) {
    if (from == to) {
        std::memcpy(dst, src, n * from.size());
        return;
    }
    if (!convertible(from, to))
        throw Error("h5: cannot convert " + from.str() + " to " + to.str());

    const auto* s = static_cast<const std::byte*>(src);
    auto*       d = static_cast<std::byte*>(dst);

    if (from.is_compound()) {
        for (std::uint64_t k = 0; k < n; ++k) {
            const std::byte* se = s + k * from.size();
            std::byte*       de = d + k * to.size();
            std::memset(de, 0, to.size());
            for (std::size_t m = 0; m < to.n_members(); ++m) {
                for (std::size_t sm = 0; sm < from.n_members(); ++sm) {
                    if (from.member_name(sm) != to.member_name(m)) continue;
                    convert_values(from.member_type(sm), se + from.member_offset(sm),
                                   to.member_type(m), de + to.member_offset(m), 1);
                    break;
                }
            }
        }
        return;
    }

    for (std::uint64_t k = 0; k < n; ++k) {
        auto v = load_value(from, s + k * from.size());
        store_value(to, reclass(v, from.type_class(), to.type_class()), d + k * to.size());
    }
}

} // namespace h5
