#pragma once

#include "storage.hpp"
#include "tree.hpp"
#include "vol.hpp"

#include <simmpi/comm.hpp>

#include <unordered_map>

namespace h5 {

/// The terminal VOL: implements the data model against a real on-disk
/// binary file format (the stand-in for native HDF5 file I/O). Two modes:
///
/// - serial: one rank per file.
/// - collective: constructed with a communicator; all ranks of the
///   communicator open/create/close each file together and write their
///   own pieces into a single shared file (the analogue of the paper's
///   "all processes write collectively to a single HDF5 file ... using
///   MPI-IO"). Object/dataset creation must be performed identically on
///   every rank (HDF5's collective-metadata requirement).
///
/// File format (little-endian, version 1):
///   [0..8)   magic "MINIH5F\0"
///   [8..12)  u32 version
///   [12..20) u64 metadata offset
///   [20..28) u64 metadata size
///   [28..)   dataset payloads (row-major, full extent, at offsets
///            recorded in the metadata), then the metadata blob
///            (serialized object tree skeleton).
class NativeVol : public Vol {
public:
    /// Serial VOL.
    NativeVol() = default;
    /// Collective VOL over `comm` (shared-file parallel I/O).
    explicit NativeVol(simmpi::Comm comm) : comm_(std::move(comm)) {}

    void* file_create(const std::string& name) override;
    void* file_open(const std::string& name) override;
    void  file_close(void* file) override;
    void  file_flush(void* file) override;

    void* group_create(void* parent, const std::string& name) override;
    void* group_open(void* parent, const std::string& path) override;

    void* dataset_create(void* parent, const std::string& name, const Datatype& type,
                         const Dataspace& space) override;
    void*     dataset_open(void* parent, const std::string& path) override;
    Datatype  dataset_type(void* dset) override;
    Dataspace dataset_space(void* dset) override;
    void dataset_write(void* dset, const Dataspace& memspace, const Dataspace& filespace,
                       const void* buf) override;
    void dataset_read(void* dset, const Dataspace& memspace, const Dataspace& filespace,
                      void* buf) override;
    void dataset_set_extent(void* dset, const Extent& new_dims) override;

    void attribute_write(void* obj, const std::string& name, const Datatype& type,
                         const Dataspace& space, const void* buf) override;
    std::optional<AttrInfo> attribute_info(void* obj, const std::string& name) override;
    void attribute_read(void* obj, const std::string& name, void* buf) override;

    std::vector<std::string> list_attributes(void* obj) override;
    void                     unlink(void* parent, const std::string& path) override;

    std::vector<std::string> list_children(void* obj) override;
    bool                     exists(void* obj, const std::string& path) override;

private:
    struct OpenFile {
        std::unique_ptr<Object> root;
        std::string             path;
        bool                    writable = false;
        FileIO                  io; ///< valid for reading opened files
    };

    bool      collective() const { return comm_.valid() && comm_.size() > 1; }
    OpenFile& owner_of(Object* obj);
    static Object* node(void* h) { return static_cast<Object*>(h); }

    /// DFS layout: assign file_data_offset to every dataset; returns the
    /// offset of the metadata blob (end of payload region).
    static std::uint64_t assign_layout(Object& root);

    void write_created_file(OpenFile& f);

    simmpi::Comm                                         comm_;
    std::unordered_map<Object*, std::unique_ptr<OpenFile>> files_;
};

} // namespace h5
