#include "storage.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace h5 {

PfsModel& PfsModel::instance() {
    static PfsModel model;
    return model;
}

void PfsModel::configure(double bw_MBps, double latency_ms, double lock_us) {
    std::lock_guard<std::mutex> lock(mutex_);
    bw_MBps_    = bw_MBps;
    latency_ms_ = latency_ms;
    lock_us_    = lock_us;
}

void PfsModel::configure_from_env() {
    double bw   = bw_MBps_;
    double lat  = latency_ms_;
    double lock = lock_us_;
    if (const char* s = std::getenv("L5_PFS_BW_MBPS")) bw = std::atof(s);
    if (const char* s = std::getenv("L5_PFS_LAT_MS")) lat = std::atof(s);
    if (const char* s = std::getenv("L5_PFS_LOCK_US")) lock = std::atof(s);
    configure(bw, lat, lock);
}

void PfsModel::charge_open() {
    double lat;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        lat = latency_ms_;
    }
    if (lat > 0)
        // lint: allow-raw-sleep(modelled PFS open latency; configured, off by default)
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(lat));
}

void PfsModel::charge_io(std::uint64_t bytes, int shared_writers) {
    std::chrono::steady_clock::time_point finish;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        bytes_charged_ += bytes;
        if (bw_MBps_ <= 0) return;
        double seconds = static_cast<double>(bytes) / (bw_MBps_ * 1e6);
        if (shared_writers > 1 && lock_us_ > 0)
            seconds += lock_us_ * 1e-6 * shared_writers; // stripe-lock ping-pong
        auto now   = std::chrono::steady_clock::now();
        auto start = std::max(now, available_at_);
        auto dur   = std::chrono::duration<double>(seconds);
        finish     = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(dur);
        available_at_ = finish;
    }
    // lint: allow-raw-sleep(modelled PFS bandwidth; charges simulated transfer time)
    std::this_thread::sleep_until(finish);
}

// --- FileIO --------------------------------------------------------------

namespace {
[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
    throw Error("h5: " + what + " '" + path + "': " + std::strerror(errno));
}
} // namespace

FileIO::~FileIO() { close(); }

FileIO& FileIO::operator=(FileIO&& o) noexcept {
    if (this != &o) {
        close();
        fd_   = o.fd_;
        path_ = std::move(o.path_);
        o.fd_ = -1;
    }
    return *this;
}

FileIO FileIO::create(const std::string& path) {
    PfsModel::instance().charge_open();
    int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
    if (fd < 0) throw_errno("cannot create", path);
    return FileIO(fd, path);
}

FileIO FileIO::open_rw(const std::string& path) {
    PfsModel::instance().charge_open();
    int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0) throw_errno("cannot open (rw)", path);
    return FileIO(fd, path);
}

FileIO FileIO::open_ro(const std::string& path) {
    PfsModel::instance().charge_open();
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw_errno("cannot open (ro)", path);
    return FileIO(fd, path);
}

void FileIO::pwrite(const void* buf, std::size_t n, std::uint64_t offset) {
    PfsModel::instance().charge_io(n, shared_writers_);
    const auto* p = static_cast<const char*>(buf);
    while (n > 0) {
        ssize_t w = ::pwrite(fd_, p, n, static_cast<off_t>(offset));
        if (w < 0) throw_errno("write failed", path_);
        p += w;
        n -= static_cast<std::size_t>(w);
        offset += static_cast<std::uint64_t>(w);
    }
}

void FileIO::pread(void* buf, std::size_t n, std::uint64_t offset) const {
    PfsModel::instance().charge_io(n);
    auto* p = static_cast<char*>(buf);
    while (n > 0) {
        ssize_t r = ::pread(fd_, p, n, static_cast<off_t>(offset));
        if (r < 0) throw_errno("read failed", path_);
        if (r == 0) throw Error("h5: unexpected EOF reading '" + path_ + "'");
        p += r;
        n -= static_cast<std::size_t>(r);
        offset += static_cast<std::uint64_t>(r);
    }
}

std::uint64_t FileIO::size() const {
    struct stat st{};
    if (::fstat(fd_, &st) != 0) throw_errno("stat failed", path_);
    return static_cast<std::uint64_t>(st.st_size);
}

void FileIO::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace h5
