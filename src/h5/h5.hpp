#pragma once

/// Umbrella header for MiniH5: an HDF5-like hierarchical data model
/// (files, groups, datasets, attributes; atomic and compound datatypes;
/// N-d dataspaces with hyperslab selections) whose every API call routes
/// through a Virtual Object Layer — the interception point LowFive plugs
/// into. The native VOL implements a real on-disk format with serial and
/// collective (shared-file) parallel I/O.

#include "types.hpp"      // IWYU pragma: export
#include "dataspace.hpp"  // IWYU pragma: export
#include "tree.hpp"       // IWYU pragma: export
#include "vol.hpp"        // IWYU pragma: export
#include "storage.hpp"    // IWYU pragma: export
#include "convert.hpp"    // IWYU pragma: export
#include "native_vol.hpp" // IWYU pragma: export
#include "api.hpp"        // IWYU pragma: export
#include "copy.hpp"       // IWYU pragma: export
