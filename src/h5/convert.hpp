#pragma once

#include "types.hpp"
#include "dataspace.hpp"

#include <cstdint>

namespace h5 {

/// Convert `n` values between atomic datatypes — HDF5's automatic type
/// conversion (H5Dread with a memory type differing from the file type):
/// any width of signed/unsigned integer and IEEE float converts to any
/// other, with the usual C semantics for narrowing and int<->float.
/// Compound types are converted member-by-member matched *by name*
/// (members missing from `to` are dropped; members missing from `from`
/// are zero-filled). Throws on unsupported combinations.
void convert_values(const Datatype& from, const void* src, const Datatype& to, void* dst,
                    std::uint64_t n);

/// True when conversion between the two types is supported.
bool convertible(const Datatype& from, const Datatype& to);

} // namespace h5
