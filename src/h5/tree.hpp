#pragma once

#include "dataspace.hpp"
#include "types.hpp"

#include <memory>
#include <string>
#include <vector>

namespace h5 {

/// Kinds of nodes in the object tree — the paper's Figure 1 hierarchy.
enum class ObjectKind : std::uint8_t { File, Group, Dataset };

/// Who owns the bytes a dataset piece refers to — the paper's
/// deep-copy ("lowfive") vs shallow-reference ("user") ownership choice,
/// configurable per dataset.
enum class Ownership : std::uint8_t {
    Deep,    ///< the tree owns a packed copy; user may modify their buffer
    Shallow, ///< zero-copy reference into the user's buffer
};

/// One write operation recorded against a dataset: which file-space
/// elements it covers, how the source buffer was laid out, and the data
/// (owned packed copy, or a reference into user memory).
struct DataPiece {
    Dataspace filespace; ///< selection in dataset coordinates
    Dataspace memspace;  ///< layout of the source buffer (used for Shallow)
    Ownership ownership = Ownership::Deep;

    std::vector<std::byte> owned; ///< packed in filespace iteration order (Deep)
    const void*            ref = nullptr; ///< user buffer (Shallow)

    /// The piece's full payload as a stable packed buffer (filespace
    /// iteration order), when one exists: Deep pieces own such a copy,
    /// valid as long as the piece itself. Shallow pieces reference user
    /// memory with no vector to share — returns nullptr. The zero-copy
    /// serve path aliases this buffer on the wire instead of extracting.
    const std::vector<std::byte>* packed_bytes() const {
        return ownership == Ownership::Deep ? &owned : nullptr;
    }

    /// Extract `want` (file coordinates, subset of filespace) into `out`,
    /// in want's iteration order, regardless of ownership mode.
    void extract(const Dataspace& want, std::size_t elem, std::vector<std::byte>& out) const {
        if (ownership == Ownership::Deep)
            extract_from_packed(filespace, owned.data(), want, elem, out);
        else
            extract_via_mapping(filespace, memspace, ref, want, elem, out);
    }
};

/// A node of the in-memory metadata hierarchy (file, group, or dataset),
/// with HDF5-style attributes on any node. This tree is what the paper's
/// metadata VOL builds to replicate the user's HDF5 data model; our native
/// VOL reuses the same structure as its staging area.
struct Object {
    ObjectKind  kind = ObjectKind::Group;
    std::string name;
    Object*     parent = nullptr;

    std::vector<std::unique_ptr<Object>> children;

    struct Attribute {
        std::string            name;
        Datatype               type;
        Dataspace              space;
        std::vector<std::byte> data;
    };
    std::vector<Attribute> attributes;

    // dataset-only state
    Datatype               type;
    Dataspace              space;
    std::vector<DataPiece> pieces;
    std::uint64_t          file_data_offset = 0; ///< used by the native file format

    Object(ObjectKind k, std::string n) : kind(k), name(std::move(n)) {}

    Object* find_child(const std::string& child_name) {
        for (auto& c : children)
            if (c->name == child_name) return c.get();
        return nullptr;
    }
    const Object* find_child(const std::string& child_name) const {
        for (const auto& c : children)
            if (c->name == child_name) return c.get();
        return nullptr;
    }

    Object* add_child(std::unique_ptr<Object> child) {
        child->parent = this;
        children.push_back(std::move(child));
        return children.back().get();
    }

    Attribute* find_attribute(const std::string& attr_name) {
        for (auto& a : attributes)
            if (a.name == attr_name) return &a;
        return nullptr;
    }

    /// Slash-separated path from the file root ("/" for the file itself).
    std::string path() const {
        if (!parent) return "/";
        std::string p = parent->path();
        if (p.back() != '/') p += '/';
        return p + name;
    }

    /// Resolve a possibly multi-component path relative to this node;
    /// nullptr when any component is missing.
    Object* resolve(const std::string& rel_path);

    /// Serialize the subtree's *metadata* (names, kinds, types, spaces,
    /// attributes — not dataset payloads, but including each dataset's
    /// file_data_offset). Used both by the native file format and by the
    /// distributed VOL's metadata exchange.
    void           save_skeleton(diy::BinaryBuffer& bb) const;
    static std::unique_ptr<Object> load_skeleton(diy::BinaryBuffer& bb);
};

/// Assemble the elements selected by `want` from a dataset node's recorded
/// pieces into a packed buffer (want's iteration order). Regions no piece
/// covers are left as they are in `packed` (zero-fill by the caller gives
/// HDF5's default fill value). Returns the number of elements found.
std::uint64_t read_from_pieces(const Object& dset, const Dataspace& want, std::byte* packed);

} // namespace h5
