#pragma once

#include "dataspace.hpp"

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace h5 {

/// Process-wide model of a shared parallel file system. Real reads and
/// writes go to local disk; when a bandwidth is configured, I/O time is
/// additionally charged against a single token bucket shared by every
/// rank-thread, which serializes the configured aggregate bandwidth and
/// so models PFS contention (all ranks of all tasks share one Lustre in
/// the paper). An open latency models metadata-server round-trips.
///
/// A third term models shared-file lock contention: when several ranks
/// write interleaved extents of one file (MPI-IO style), each write call
/// additionally charges `lock_us × nwriters` of serialized time — the
/// stripe-lock ping-pong that makes single-shared-file HDF5 output
/// collapse at scale on Lustre (the effect behind the paper's Table II),
/// while per-rank plotfiles avoid it.
///
/// Configuration: programmatic, or environment variables
/// `L5_PFS_BW_MBPS` (0 disables throttling), `L5_PFS_LAT_MS`, and
/// `L5_PFS_LOCK_US`.
class PfsModel {
public:
    static PfsModel& instance();

    /// bw_MBps <= 0 disables throttling; latency in milliseconds;
    /// lock_us is the per-write shared-file lock cost in microseconds.
    void configure(double bw_MBps, double latency_ms, double lock_us = 0);
    /// Read `L5_PFS_BW_MBPS` / `L5_PFS_LAT_MS` / `L5_PFS_LOCK_US`;
    /// absent vars leave current values.
    void configure_from_env();

    double bandwidth_MBps() const { return bw_MBps_; }
    double latency_ms() const { return latency_ms_; }
    double lock_us() const { return lock_us_; }

    /// Charge one open/create (sleeps the configured latency).
    void charge_open();
    /// Charge a transfer of `bytes` against the shared token bucket; when
    /// `shared_writers > 1`, also charge the lock-contention term.
    void charge_io(std::uint64_t bytes, int shared_writers = 1);

    /// Statistics (bytes actually charged), for tests and reporting.
    std::uint64_t bytes_charged() const { return bytes_charged_; }
    void          reset_stats() { bytes_charged_ = 0; }

private:
    PfsModel() = default;

    std::mutex                            mutex_;
    std::chrono::steady_clock::time_point available_at_{};
    double                                bw_MBps_    = 0.0;
    double                                latency_ms_ = 0.0;
    double                                lock_us_    = 0.0;
    std::uint64_t                         bytes_charged_ = 0;
};

/// RAII pread/pwrite file handle; all transfers are charged to PfsModel.
/// Multiple rank-threads may hold handles on the same path (shared-file
/// parallel I/O, as with MPI-IO in the paper).
class FileIO {
public:
    FileIO() = default;
    ~FileIO();
    FileIO(FileIO&& o) noexcept : fd_(o.fd_), path_(std::move(o.path_)) { o.fd_ = -1; }
    FileIO& operator=(FileIO&& o) noexcept;
    FileIO(const FileIO&)            = delete;
    FileIO& operator=(const FileIO&) = delete;

    /// Create/truncate for writing (and reading back).
    static FileIO create(const std::string& path);
    /// Open an existing file for reading and writing.
    static FileIO open_rw(const std::string& path);
    /// Open an existing file read-only.
    static FileIO open_ro(const std::string& path);

    bool is_open() const { return fd_ >= 0; }
    const std::string& path() const { return path_; }

    /// Declare how many ranks concurrently write interleaved extents of
    /// this file (MPI-IO shared-file mode); writes then pay the modelled
    /// lock-contention cost. Default 1 (no contention).
    void set_shared_writers(int n) { shared_writers_ = n; }

    void          pwrite(const void* buf, std::size_t n, std::uint64_t offset);
    void          pread(void* buf, std::size_t n, std::uint64_t offset) const;
    std::uint64_t size() const;
    void          close();

private:
    FileIO(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

    int         fd_ = -1;
    std::string path_;
    int         shared_writers_ = 1;
};

} // namespace h5
