#include "par.hpp"

#include "obs/metrics.hpp"
#include "simmpi/sched.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace h5 {
namespace par {
namespace {

struct Metrics {
    obs::Counter& jobs;        ///< free-running pool jobs
    obs::Counter& chunks;      ///< chunks executed across all jobs
    obs::Counter& steals;      ///< range steals between participants
    obs::Counter& sched_jobs;  ///< jobs routed through scheduler participants
    obs::Counter& inline_runs; ///< parallel_for calls that ran inline

    static Metrics& get() {
        static Metrics m{
            obs::Registry::global().counter("par.jobs"),
            obs::Registry::global().counter("par.chunks"),
            obs::Registry::global().counter("par.steals"),
            obs::Registry::global().counter("par.sched_jobs"),
            obs::Registry::global().counter("par.inline"),
        };
        return m;
    }
};

int resolve_workers() {
    if (const char* e = std::getenv("L5_DATA_THREADS"); e && *e) {
        int v = std::atoi(e);
        return std::clamp(v, 0, 64);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 2 ? static_cast<int>(std::min(4u, hw - 1)) : 0;
}

std::size_t resolve_threshold() {
    if (const char* e = std::getenv("L5_PAR_THRESHOLD"); e && *e) {
        const long long v = std::atoll(e);
        return v > 0 ? static_cast<std::size_t>(v) : 0;
    }
    return std::size_t(4) << 20;
}

int configured_workers() {
    static const int w = resolve_workers();
    return w;
}

std::atomic<bool>& enabled_flag() {
    static std::atomic<bool> on{configured_workers() > 0};
    return on;
}

std::atomic<std::size_t>& threshold_state() {
    static std::atomic<std::size_t> t{resolve_threshold()};
    return t;
}

/// Persistent free-running pool. One job at a time (jobs from different
/// threads serialize on job_mutex_); within a job, every participant
/// (workers + the calling thread) owns a contiguous chunk range and
/// steals the upper half of the largest remaining range when its own
/// drains. Chunks are coarse (≥ ~256 KiB of bytes moved), so the shared
/// mutex around range bookkeeping is uncontended noise next to the
/// copies themselves.
class Pool {
public:
    static Pool& instance() {
        static Pool p;
        return p;
    }

    void run(std::size_t n, const std::function<void(std::size_t)>& fn) {
        std::lock_guard<std::mutex> job(job_mutex_);
        std::unique_lock<std::mutex> lk(m_);
        const std::size_t P = threads_.size() + 1;
        ranges_.assign(P, {0, 0});
        for (std::size_t p = 0; p < P; ++p)
            ranges_[p] = {n * p / P, n * (p + 1) / P};
        fn_         = &fn;
        unfinished_ = n;
        err_        = nullptr;
        ++gen_;
        lk.unlock();
        wake_cv_.notify_all();
        lk.lock();
        participate(lk, P - 1); // the caller claims the last slot
        // stragglers may still be inside their final chunk
        done_cv_.wait(lk, [&] { return unfinished_ == 0; }); // lint: allow-bare-wait(free-running pool only; deterministic runs bypass Pool via scheduler participants)
        fn_      = nullptr;
        auto err = std::exchange(err_, nullptr);
        lk.unlock();
        if (err) std::rethrow_exception(err);
    }

private:
    Pool() {
        const int w = configured_workers();
        threads_.reserve(static_cast<std::size_t>(w));
        for (int i = 0; i < w; ++i)
            threads_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
    }

    ~Pool() {
        {
            std::lock_guard<std::mutex> lk(m_);
            stop_ = true;
        }
        wake_cv_.notify_all();
        for (auto& t : threads_) t.join();
    }

    void worker_loop(std::size_t me) {
        std::unique_lock<std::mutex> lk(m_);
        std::uint64_t seen = 0;
        for (;;) {
            wake_cv_.wait(lk, [&] { return stop_ || gen_ != seen; }); // lint: allow-bare-wait(free-running pool only; deterministic runs bypass Pool via scheduler participants)
            if (stop_) return;
            seen = gen_;
            participate(lk, me);
        }
    }

    /// Claim and execute chunks until none are left anywhere. `lk` held
    /// on entry and exit, released across each fn call.
    void participate(std::unique_lock<std::mutex>& lk, std::size_t me) {
        Metrics& metrics = Metrics::get();
        for (;;) {
            if (fn_ == nullptr) return; // job already torn down
            std::size_t chunk;
            if (ranges_[me].first < ranges_[me].second) {
                chunk = ranges_[me].first++;
            } else {
                std::size_t victim = me, best = 0;
                for (std::size_t p = 0; p < ranges_.size(); ++p) {
                    if (p == me) continue;
                    const std::size_t rem = ranges_[p].second - ranges_[p].first;
                    if (rem > best) {
                        best   = rem;
                        victim = p;
                    }
                }
                if (best == 0) return; // nothing left to claim
                const std::size_t take = (best + 1) / 2;
                ranges_[me]            = {ranges_[victim].second - take, ranges_[victim].second};
                ranges_[victim].second -= take;
                chunk = ranges_[me].first++;
                metrics.steals.inc();
            }
            const auto* fn = fn_;
            lk.unlock();
            std::exception_ptr err;
            try {
                (*fn)(chunk);
            } catch (...) {
                err = std::current_exception();
            }
            lk.lock();
            if (err && !err_) err_ = err;
            if (--unfinished_ == 0) done_cv_.notify_all();
        }
    }

    std::mutex job_mutex_; ///< serializes whole jobs across calling threads

    std::mutex              m_; ///< job state below
    std::condition_variable wake_cv_;
    std::condition_variable done_cv_;
    bool                    stop_ = false;
    std::uint64_t           gen_  = 0;

    const std::function<void(std::size_t)>*          fn_ = nullptr;
    std::vector<std::pair<std::size_t, std::size_t>> ranges_;
    std::size_t                                      unfinished_ = 0;
    std::exception_ptr                               err_;

    std::vector<std::thread> threads_;
};

/// Deterministic path: statically partition the chunks across freshly
/// spawned scheduler participants. Spawn, attach, and join are
/// deterministic points; the workers themselves are pure compute, so
/// the same seed replays the same schedule hash with the pool enabled.
void run_scheduled(simmpi::detail::Scheduler* s, std::size_t n,
                   const std::function<void(std::size_t)>& fn) {
    const std::size_t P =
        std::min<std::size_t>(static_cast<std::size_t>(configured_workers()) + 1, n);
    std::vector<std::exception_ptr> errs(P);
    std::vector<std::thread>        threads;
    threads.reserve(P - 1);
    for (std::size_t p = 1; p < P; ++p) {
        const std::size_t b = n * p / P, e = n * (p + 1) / P;
        threads.push_back(simmpi::detail::spawn_participant(s, "par.worker", [&errs, &fn, b, e, p] {
            try {
                for (std::size_t i = b; i < e; ++i) fn(i);
            } catch (...) {
                errs[p] = std::current_exception();
            }
        }));
    }
    const std::size_t e0 = n * 1 / P;
    try {
        for (std::size_t i = 0; i < e0; ++i) fn(i);
    } catch (...) {
        errs[0] = std::current_exception();
    }
    for (auto& t : threads) simmpi::detail::coop_join(s, t);
    for (auto& err : errs)
        if (err) std::rethrow_exception(err);
}

} // namespace

int workers() { return configured_workers(); }

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }

std::size_t parallel_threshold_bytes() {
    return threshold_state().load(std::memory_order_relaxed);
}
void set_parallel_threshold_bytes(std::size_t bytes) {
    threshold_state().store(bytes, std::memory_order_relaxed);
}

bool should_parallelize(std::size_t bytes) {
    return enabled() && configured_workers() > 0 && bytes >= parallel_threshold_bytes();
}

std::size_t chunk_count(std::size_t bytes) {
    constexpr std::size_t grain = 256u << 10;
    const std::size_t     P     = static_cast<std::size_t>(configured_workers()) + 1;
    return std::clamp<std::size_t>(bytes / grain, 2, 4 * P);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    Metrics& metrics = Metrics::get();
    if (n < 2 || !enabled() || configured_workers() < 1) {
        metrics.inline_runs.inc();
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    if (auto* s = simmpi::detail::this_thread_scheduler()) {
        metrics.sched_jobs.inc();
        metrics.chunks.add(n);
        run_scheduled(s, n, fn);
        return;
    }
    metrics.jobs.inc();
    metrics.chunks.add(n);
    Pool::instance().run(n, fn);
}

} // namespace par
} // namespace h5
