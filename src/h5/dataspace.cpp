#include "dataspace.hpp"

#include "copy.hpp"
#include "par.hpp"

#include <obs/metrics.hpp>
#include <obs/trace.hpp>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>

namespace h5 {

namespace {

using Run = SelRun;

/// Raw (uncoalesced) runs straight from for_each_run: one per selected
/// row. The naive reference kernels build these on every call, exactly as
/// the kernels did before run coalescing/memoization.
std::vector<Run> collect_runs_uncoalesced(const Dataspace& space) {
    std::vector<Run> runs;
    space.for_each_run([&](std::uint64_t fo, std::uint64_t n, std::uint64_t po) {
        runs.push_back({fo, n, po});
    });
    return runs;
}

// process-wide toggle: one atomic, never a bare global (see scripts/lint.py)
std::atomic<int> g_kernel_mode{static_cast<int>(KernelMode::vectorized)};

} // namespace

void set_selection_kernel_mode(KernelMode mode) {
    g_kernel_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

KernelMode selection_kernel_mode() {
    return static_cast<KernelMode>(g_kernel_mode.load(std::memory_order_relaxed));
}

const char* kernel_mode_name(KernelMode mode) {
    switch (mode) {
        case KernelMode::naive: return "naive";
        case KernelMode::coalesced: return "coalesced";
        case KernelMode::vectorized: return "vectorized";
    }
    return "?";
}

void set_naive_selection_kernels(bool enable) {
    set_selection_kernel_mode(enable ? KernelMode::naive : KernelMode::vectorized);
}

bool naive_selection_kernels() {
    return selection_kernel_mode() == KernelMode::naive;
}

std::vector<SelRun> selection_runs(const Dataspace& space) {
    return space.runs();
}

Dataspace::Dataspace(Extent dims) : dims_(std::move(dims)) {
    if (dims_.empty() || dims_.size() > static_cast<std::size_t>(diy::max_dim))
        throw Error("h5: dataspace rank must be in [1, " + std::to_string(diy::max_dim) + "]");
}

std::uint64_t Dataspace::extent_npoints() const {
    std::uint64_t n = 1;
    for (auto d : dims_) n *= d;
    return n;
}

diy::Bounds Dataspace::extent_bounds() const {
    diy::Bounds b(dim());
    for (int i = 0; i < dim(); ++i) {
        b.min[static_cast<std::size_t>(i)] = 0;
        b.max[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(dims_[static_cast<std::size_t>(i)]);
    }
    return b;
}

Dataspace& Dataspace::select_all() {
    all_ = true;
    boxes_.clear();
    runs_.reset();
    return *this;
}

Dataspace& Dataspace::select_none() {
    all_ = false;
    boxes_.clear();
    runs_.reset();
    return *this;
}

Dataspace& Dataspace::select_box(std::span<const std::uint64_t> start,
                                 std::span<const std::uint64_t> count) {
    if (static_cast<int>(start.size()) != dim() || static_cast<int>(count.size()) != dim())
        throw Error("h5: select_box rank mismatch");
    diy::Bounds b(dim());
    for (int i = 0; i < dim(); ++i) {
        auto u   = static_cast<std::size_t>(i);
        b.min[u] = static_cast<std::int64_t>(start[u]);
        b.max[u] = static_cast<std::int64_t>(start[u] + count[u]);
    }
    return select_box(b);
}

Dataspace& Dataspace::select_box(const diy::Bounds& b) {
    select_none();
    return add_box(b);
}

Dataspace& Dataspace::add_box_unchecked(const diy::Bounds& b) {
    if (b.dim != dim()) throw Error("h5: add_box rank mismatch");
    for (int i = 0; i < dim(); ++i) {
        auto u = static_cast<std::size_t>(i);
        if (b.min[u] < 0 || b.max[u] > static_cast<std::int64_t>(dims_[u]))
            throw Error("h5: selection box " + b.str() + " outside extent");
    }
    if (all_) throw Error("h5: add_box on an all-selection; call select_none first");
    if (!b.empty()) boxes_.push_back(b);
    runs_.reset();
    return *this;
}

Dataspace& Dataspace::add_box(const diy::Bounds& b) {
    for (const auto& existing : boxes_)
        if (diy::intersects(existing, b))
            throw Error("h5: selection boxes must be disjoint (" + existing.str() + " vs " + b.str() + ")");
    return add_box_unchecked(b);
}

Dataspace& Dataspace::select_hyperslab(std::span<const std::uint64_t> start,
                                       std::span<const std::uint64_t> stride,
                                       std::span<const std::uint64_t> count,
                                       std::span<const std::uint64_t> block) {
    const auto d = static_cast<std::size_t>(dim());
    if (start.size() != d || stride.size() != d || count.size() != d || block.size() != d)
        throw Error("h5: select_hyperslab rank mismatch");

    std::uint64_t nblocks = 1;
    for (std::size_t i = 0; i < d; ++i) nblocks *= count[i];
    if (nblocks > 1'000'000)
        throw Error("h5: hyperslab expands to too many blocks (" + std::to_string(nblocks) + ")");

    for (std::size_t i = 0; i < d; ++i) {
        std::uint64_t st = stride[i] ? stride[i] : block[i];
        if (count[i] > 1 && st < block[i])
            throw Error("h5: hyperslab stride smaller than block (overlapping blocks)");
    }

    select_none();
    if (nblocks == 0) return *this;
    boxes_.reserve(static_cast<std::size_t>(nblocks));
    std::vector<std::uint64_t> idx(d, 0);
    for (;;) {
        diy::Bounds b(dim());
        for (std::size_t i = 0; i < d; ++i) {
            std::uint64_t st = stride[i] ? stride[i] : block[i];
            std::uint64_t lo = start[i] + idx[i] * st;
            b.min[i]         = static_cast<std::int64_t>(lo);
            b.max[i]         = static_cast<std::int64_t>(lo + block[i]);
        }
        // blocks of a regular hyperslab are disjoint by construction
        // (stride >= block, checked above), so skip the pairwise scan
        add_box_unchecked(b);

        std::size_t i = d;
        while (i > 0) {
            --i;
            if (++idx[i] < count[i]) break;
            idx[i] = 0;
            if (i == 0) return *this;
        }
    }
}

Dataspace& Dataspace::select_elements(
    std::span<const std::array<std::int64_t, diy::max_dim>> points) {
    // duplicate detection in O(n log n) via linearized indices, then the
    // boxes are inserted without the pairwise disjointness scan
    std::vector<std::uint64_t> linear;
    linear.reserve(points.size());
    for (const auto& pt : points) {
        std::uint64_t off = 0;
        for (int i = 0; i < dim(); ++i) {
            auto u = static_cast<std::size_t>(i);
            if (pt[u] < 0 || pt[u] >= static_cast<std::int64_t>(dims_[u]))
                throw Error("h5: select_elements point outside extent");
            off = off * dims_[u] + static_cast<std::uint64_t>(pt[u]);
        }
        linear.push_back(off);
    }
    auto sorted = linear;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
        throw Error("h5: select_elements points must be distinct");

    select_none();
    all_ = false;
    boxes_.reserve(points.size());
    for (const auto& pt : points) {
        diy::Bounds b(dim());
        for (int i = 0; i < dim(); ++i) {
            auto u   = static_cast<std::size_t>(i);
            b.min[u] = pt[u];
            b.max[u] = pt[u] + 1;
        }
        boxes_.push_back(b); // disjoint by the uniqueness check above
    }
    runs_.reset();
    return *this;
}

Dataspace& Dataspace::grow_extent(const Extent& new_dims) {
    if (new_dims.size() != dims_.size())
        throw Error("h5: grow_extent cannot change the rank");
    for (std::size_t i = 0; i < dims_.size(); ++i)
        if (new_dims[i] < dims_[i])
            throw Error("h5: grow_extent cannot shrink dimension " + std::to_string(i));
    dims_ = new_dims;
    return select_all();
}

Dataspace Dataspace::with_dims(const Extent& new_dims) const {
    Dataspace out(new_dims);
    if (out.dim() != dim()) throw Error("h5: with_dims cannot change the rank");
    if (all_) {
        // "all" of the old extent becomes an explicit box selection
        out.select_none();
        resolve();
    } else {
        out.select_none();
    }
    // boxes of a valid selection are already disjoint
    for (const auto& b : boxes_) out.add_box_unchecked(b);
    return out;
}

void Dataspace::resolve() const {
    if (all_ && boxes_.empty() && extent_npoints() > 0) {
        diy::Bounds b(dim());
        for (int i = 0; i < dim(); ++i) {
            auto u   = static_cast<std::size_t>(i);
            b.min[u] = 0;
            b.max[u] = static_cast<std::int64_t>(dims_[u]);
        }
        boxes_.push_back(b);
    }
}

const std::vector<diy::Bounds>& Dataspace::boxes() const {
    resolve();
    return boxes_;
}

std::uint64_t Dataspace::npoints() const {
    if (all_) return extent_npoints();
    std::uint64_t n = 0;
    for (const auto& b : boxes_) n += b.size();
    return n;
}

diy::Bounds Dataspace::bounding_box() const {
    resolve();
    if (boxes_.empty()) return diy::Bounds(dim());
    diy::Bounds bb = boxes_.front();
    for (const auto& b : boxes_) {
        for (int i = 0; i < dim(); ++i) {
            auto u    = static_cast<std::size_t>(i);
            bb.min[u] = std::min(bb.min[u], b.min[u]);
            bb.max[u] = std::max(bb.max[u], b.max[u]);
        }
    }
    return bb;
}

void Dataspace::for_each_run(
    const std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>& fn) const {
    resolve();
    const int d = dim();

    // row-major strides of the full extent
    std::array<std::uint64_t, diy::max_dim> stride{};
    stride[static_cast<std::size_t>(d - 1)] = 1;
    for (int i = d - 2; i >= 0; --i)
        stride[static_cast<std::size_t>(i)] =
            stride[static_cast<std::size_t>(i + 1)] * dims_[static_cast<std::size_t>(i + 1)];

    std::uint64_t packed = 0;
    for (const auto& b : boxes_) {
        if (b.empty()) continue;
        const auto last    = static_cast<std::size_t>(d - 1);
        const auto row_len = static_cast<std::uint64_t>(b.max[last] - b.min[last]);

        // iterate over all rows (multi-index over dims 0..d-2)
        std::array<std::int64_t, diy::max_dim> coord{};
        for (int i = 0; i < d; ++i) coord[static_cast<std::size_t>(i)] = b.min[static_cast<std::size_t>(i)];
        for (;;) {
            std::uint64_t off = 0;
            for (int i = 0; i < d; ++i)
                off += static_cast<std::uint64_t>(coord[static_cast<std::size_t>(i)]) * stride[static_cast<std::size_t>(i)];
            fn(off, row_len, packed);
            packed += row_len;

            int i = d - 2;
            for (; i >= 0; --i) {
                auto u = static_cast<std::size_t>(i);
                if (++coord[u] < b.max[u]) break;
                coord[u] = b.min[u];
            }
            if (i < 0) break;
        }
    }
}

const Dataspace::RunsCache& Dataspace::run_cache() const {
    if (!runs_) {
        auto cache = std::make_shared<RunsCache>();
        auto& iter = cache->iter;
        // coalesce emissions that are contiguous in both the file
        // linearization and the packed buffer (e.g. full rows of a slab
        // merge into one run spanning the slab)
        for_each_run([&](std::uint64_t fo, std::uint64_t n, std::uint64_t po) {
            if (!iter.empty() && iter.back().file_off + iter.back().len == fo &&
                iter.back().packed_off + iter.back().len == po)
                iter.back().len += n;
            else
                iter.push_back({fo, n, po});
        });
        cache->by_file = iter;
        std::sort(cache->by_file.begin(), cache->by_file.end(),
                  [](const Run& a, const Run& b) { return a.file_off < b.file_off; });
        runs_ = std::move(cache);
    }
    return *runs_;
}

const std::vector<SelRun>& Dataspace::runs() const { return run_cache().iter; }

const std::vector<SelRun>& Dataspace::runs_by_file() const { return run_cache().by_file; }

void Dataspace::save(diy::BinaryBuffer& bb) const {
    bb.save(dims_);
    bb.save<std::uint8_t>(all_ ? 1 : 0);
    if (!all_) {
        bb.save<std::uint64_t>(boxes_.size());
        for (const auto& b : boxes_) {
            bb.save<std::int32_t>(b.dim);
            for (int i = 0; i < b.dim; ++i) {
                bb.save(b.min[static_cast<std::size_t>(i)]);
                bb.save(b.max[static_cast<std::size_t>(i)]);
            }
        }
    }
}

Dataspace Dataspace::load(diy::BinaryBuffer& bb) {
    Extent dims;
    bb.load(dims);
    Dataspace sp(std::move(dims));
    if (bb.load<std::uint8_t>() == 0) {
        sp.select_none();
        auto n = bb.load<std::uint64_t>();
        for (std::uint64_t k = 0; k < n; ++k) {
            diy::Bounds b(bb.load<std::int32_t>());
            for (int i = 0; i < b.dim; ++i) {
                bb.load(b.min[static_cast<std::size_t>(i)]);
                bb.load(b.max[static_cast<std::size_t>(i)]);
            }
            // saved selections were validated disjoint when constructed
            sp.add_box_unchecked(b);
        }
    }
    return sp;
}

std::string Dataspace::str() const {
    std::string s = "extent(";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        s += std::to_string(dims_[i]);
        if (i + 1 < dims_.size()) s += "x";
    }
    s += ")";
    if (all_) return s + " all";
    s += " sel{";
    for (const auto& b : boxes_) s += b.str();
    return s + "}";
}

// --- selection algebra -------------------------------------------------------

std::vector<diy::Bounds> intersect_selections(const Dataspace& a, const Dataspace& b) {
    if (a.dim() != b.dim()) throw Error("h5: intersecting selections of different rank");
    std::vector<diy::Bounds> out;
    for (const auto& ba : a.boxes())
        for (const auto& bb : b.boxes())
            if (auto r = diy::intersect(ba, bb)) out.push_back(*r);
    return out;
}

namespace {
// defined with the vectorized kernels below
void run_segments(std::byte* dst, const std::byte* src, const std::vector<kern::Seg>& segs,
                  std::uint64_t bytes);
} // namespace

// pack/unpack have no lookup side (one selection, both layouts known), so
// there is nothing to merge: emit one segment per coalesced run and let
// the segment runner pick the copy width and fan-out. Byte-identical to
// the old per-run memcpy loop in every kernel mode.

void pack_selection(const Dataspace& space, const void* full, std::size_t elem, void* packed) {
    const auto* src = static_cast<const std::byte*>(full);
    auto*       dst = static_cast<std::byte*>(packed);

    std::vector<kern::Seg> segs;
    const auto&            runs = space.runs();
    segs.reserve(runs.size());
    for (const auto& r : runs)
        segs.push_back({r.packed_off * elem, r.file_off * elem, r.len * elem});
    run_segments(dst, src, segs, space.npoints() * elem);
}

void unpack_selection(const Dataspace& space, const void* packed, std::size_t elem, void* full) {
    const auto* src = static_cast<const std::byte*>(packed);
    auto*       dst = static_cast<std::byte*>(full);

    std::vector<kern::Seg> segs;
    const auto&            runs = space.runs();
    segs.reserve(runs.size());
    for (const auto& r : runs)
        segs.push_back({r.file_off * elem, r.packed_off * elem, r.len * elem});
    run_segments(dst, src, segs, space.npoints() * elem);
}

void copy_selected(const Dataspace& src_space, const void* src, const Dataspace& dst_space,
                   void* dst, std::size_t elem) {
    if (src_space.npoints() != dst_space.npoints())
        throw Error("h5: copy_selected selection sizes differ (" + std::to_string(src_space.npoints())
                    + " vs " + std::to_string(dst_space.npoints()) + ")");

    const auto& sruns = src_space.runs();
    const auto& druns = dst_space.runs();

    const auto* sbuf = static_cast<const std::byte*>(src);
    auto*       dbuf = static_cast<std::byte*>(dst);

    std::size_t   si = 0, di = 0;
    std::uint64_t soff = 0, doff = 0; // consumed within current runs
    while (si < sruns.size() && di < druns.size()) {
        const auto&   sr = sruns[si];
        const auto&   dr = druns[di];
        std::uint64_t n  = std::min(sr.len - soff, dr.len - doff);
        std::memcpy(dbuf + (dr.file_off + doff) * elem, sbuf + (sr.file_off + soff) * elem, n * elem);
        soff += n;
        doff += n;
        if (soff == sr.len) { ++si; soff = 0; }
        if (doff == dr.len) { ++di; doff = 0; }
    }
}

// --- vectorized segment runner -----------------------------------------------
//
// The vectorized kernels run the same O(S + D) two-pointer merge as the
// coalesced ones, but instead of a memcpy per matched segment they
// materialize the flat segment list {dst, src, len} and hand it to the
// width-specialized kern:: copy kernels. Above the h5::par threshold the
// list is split into ~equal-byte chunks (cutting large segments, so a
// single slab-on-slab run still fans out) and executed across the pool —
// destinations are disjoint by construction, so chunks are independent.

namespace {

struct KernelMetrics {
    obs::Counter& bytes;    ///< kernel.bytes moved through run_segments
    obs::Counter& segments; ///< kernel.segments materialized
    obs::Counter& par_jobs; ///< kernel.parallel_jobs fanned out

    static KernelMetrics& get() {
        static KernelMetrics m{
            obs::Registry::global().counter("kernel.bytes"),
            obs::Registry::global().counter("kernel.segments"),
            obs::Registry::global().counter("kernel.parallel_jobs"),
        };
        return m;
    }
};

/// Split `segs` (totalling `bytes`) into up to `nchunks` lists of
/// ~equal byte weight, cutting segments that straddle a boundary.
std::vector<std::vector<kern::Seg>> split_segments(const std::vector<kern::Seg>& segs,
                                                   std::uint64_t bytes, std::size_t nchunks) {
    const std::uint64_t target = (bytes + nchunks - 1) / nchunks;
    std::vector<std::vector<kern::Seg>> out;
    out.emplace_back();
    std::uint64_t acc = 0;
    for (const auto& seg : segs) {
        std::uint64_t done = 0;
        while (done < seg.len) {
            if (acc >= target && out.size() < nchunks) {
                out.emplace_back();
                acc = 0;
            }
            std::uint64_t take = seg.len - done;
            if (out.size() < nchunks && acc + take > target) take = target - acc;
            out.back().push_back({seg.dst + done, seg.src + done, take});
            acc += take;
            done += take;
        }
    }
    return out;
}

void run_segments(std::byte* dst, const std::byte* src, const std::vector<kern::Seg>& segs,
                  std::uint64_t bytes) {
    KernelMetrics& m = KernelMetrics::get();
    m.bytes.add(bytes);
    m.segments.add(segs.size());
    if (!par::should_parallelize(bytes)) {
        kern::copy_segments(dst, src, segs.data(), segs.size());
        return;
    }
    m.par_jobs.inc();
    const auto chunks = split_segments(segs, bytes, par::chunk_count(bytes));
    par::parallel_for(chunks.size(), [&](std::size_t i) {
        kern::copy_segments(dst, src, chunks[i].data(), chunks[i].size());
    });
}

void extract_from_packed_vec(const Dataspace& piece_space, const void* piece_packed,
                             const Dataspace& want, std::size_t elem,
                             std::vector<std::byte>& out) {
    const auto& pruns = piece_space.runs_by_file();
    const auto& wruns = want.runs_by_file();

    const auto*         src   = static_cast<const std::byte*>(piece_packed);
    const auto          base  = out.size();
    const std::uint64_t bytes = want.npoints() * elem;
    out.resize(base + bytes);
    auto* dst = out.data() + base;

    std::vector<kern::Seg> segs;
    segs.reserve(wruns.size());
    std::size_t pi = 0;
    for (const auto& w : wruns) {
        std::uint64_t copied = 0;
        while (copied < w.len) {
            const std::uint64_t target = w.file_off + copied;
            while (pi < pruns.size() && pruns[pi].file_off + pruns[pi].len <= target) ++pi;
            if (pi == pruns.size() || pruns[pi].file_off > target)
                throw Error("h5: extract_from_packed: requested element not covered by piece");
            const std::uint64_t within = target - pruns[pi].file_off;
            const std::uint64_t take   = std::min(pruns[pi].len - within, w.len - copied);
            segs.push_back({(w.packed_off + copied) * elem,
                            (pruns[pi].packed_off + within) * elem, take * elem});
            copied += take;
        }
    }
    run_segments(dst, src, segs, bytes);
}

void scatter_into_packed_vec(const Dataspace& dest_space, void* dest_packed, const Dataspace& sub,
                             const void* sub_packed, std::size_t elem) {
    const auto& druns = dest_space.runs_by_file();
    const auto& sruns = sub.runs_by_file();

    auto*       dst = static_cast<std::byte*>(dest_packed);
    const auto* src = static_cast<const std::byte*>(sub_packed);

    std::vector<kern::Seg> segs;
    segs.reserve(sruns.size());
    std::size_t di = 0;
    for (const auto& s : sruns) {
        std::uint64_t copied = 0;
        while (copied < s.len) {
            const std::uint64_t target = s.file_off + copied;
            while (di < druns.size() && druns[di].file_off + druns[di].len <= target) ++di;
            if (di == druns.size() || druns[di].file_off > target)
                throw Error("h5: scatter_into_packed: element not covered by destination");
            const std::uint64_t within = target - druns[di].file_off;
            const std::uint64_t take   = std::min(druns[di].len - within, s.len - copied);
            segs.push_back({(druns[di].packed_off + within) * elem,
                            (s.packed_off + copied) * elem, take * elem});
            copied += take;
        }
    }
    run_segments(dst, src, segs, sub.npoints() * elem);
}

void extract_via_mapping_vec(const Dataspace& filespace, const Dataspace& memspace,
                             const void* membuf, const Dataspace& want, std::size_t elem,
                             std::vector<std::byte>& out) {
    if (filespace.npoints() != memspace.npoints())
        throw Error("h5: extract_via_mapping: filespace/memspace sizes differ");

    const auto& fruns = filespace.runs_by_file();
    const auto& mruns = memspace.runs(); // increasing packed_off by construction

    const auto*         src   = static_cast<const std::byte*>(membuf);
    const auto          base  = out.size();
    const std::uint64_t bytes = want.npoints() * elem;
    out.resize(base + bytes);
    auto* dst = out.data() + base;

    auto mem_locate = [&](std::uint64_t pos, std::uint64_t& buf_off, std::uint64_t& avail) {
        auto it = std::upper_bound(mruns.begin(), mruns.end(), pos,
                                   [](std::uint64_t v, const Run& r) { return v < r.packed_off; });
        if (it == mruns.begin()) throw Error("h5: extract_via_mapping: bad enumeration position");
        --it;
        std::uint64_t within = pos - it->packed_off;
        if (within >= it->len) throw Error("h5: extract_via_mapping: bad enumeration position");
        buf_off = it->file_off + within;
        avail   = it->len - within;
    };

    std::vector<kern::Seg> segs;
    segs.reserve(fruns.size());
    std::size_t fi = 0;
    for (const auto& w : want.runs_by_file()) {
        std::uint64_t copied = 0;
        while (copied < w.len) {
            const std::uint64_t target = w.file_off + copied;
            while (fi < fruns.size() && fruns[fi].file_off + fruns[fi].len <= target) ++fi;
            if (fi == fruns.size() || fruns[fi].file_off > target)
                throw Error("h5: extract_via_mapping: requested element not covered");
            const std::uint64_t within  = target - fruns[fi].file_off;
            const std::uint64_t avail_f = fruns[fi].len - within;
            const std::uint64_t pos     = fruns[fi].packed_off + within;

            std::uint64_t buf_off = 0, avail_m = 0;
            mem_locate(pos, buf_off, avail_m);

            const std::uint64_t take = std::min({avail_f, avail_m, w.len - copied});
            segs.push_back({(w.packed_off + copied) * elem, buf_off * elem, take * elem});
            copied += take;
        }
    }
    run_segments(dst, src, segs, bytes);
}

} // namespace

// --- coalesced two-pointer kernels -------------------------------------------
//
// Both the "moving" side (the selection being walked) and the "lookup"
// side (the space being addressed) are visited through their coalesced
// runs sorted by file offset. Because runs of one selection are disjoint,
// the lookup cursor only ever advances: a single O(S + D) forward merge
// replaces a binary search per walked row. A slab-on-slab transfer
// degenerates to one memcpy.

void extract_from_packed(const Dataspace& piece_space, const void* piece_packed,
                         const Dataspace& want, std::size_t elem, std::vector<std::byte>& out) {
    const KernelMode mode = selection_kernel_mode();
    obs::Span span("extract_from_packed", "h5.kernel",
                   {{"bytes", want.npoints() * elem, nullptr},
                    {"mode", 0, kernel_mode_name(mode)}});
    if (mode == KernelMode::naive)
        return extract_from_packed_naive(piece_space, piece_packed, want, elem, out);
    if (mode == KernelMode::vectorized)
        return extract_from_packed_vec(piece_space, piece_packed, want, elem, out);

    const auto& pruns = piece_space.runs_by_file();
    const auto& wruns = want.runs_by_file();

    const auto* src  = static_cast<const std::byte*>(piece_packed);
    const auto  base = out.size();
    out.resize(base + want.npoints() * elem);
    auto* dst = out.data() + base;

    std::size_t pi = 0;
    for (const auto& w : wruns) {
        std::uint64_t copied = 0;
        while (copied < w.len) {
            const std::uint64_t target = w.file_off + copied;
            while (pi < pruns.size() && pruns[pi].file_off + pruns[pi].len <= target) ++pi;
            if (pi == pruns.size() || pruns[pi].file_off > target)
                throw Error("h5: extract_from_packed: requested element not covered by piece");
            const std::uint64_t within = target - pruns[pi].file_off;
            const std::uint64_t take   = std::min(pruns[pi].len - within, w.len - copied);
            std::memcpy(dst + (w.packed_off + copied) * elem,
                        src + (pruns[pi].packed_off + within) * elem, take * elem);
            copied += take;
        }
    }
}

void scatter_into_packed(const Dataspace& dest_space, void* dest_packed, const Dataspace& sub,
                         const void* sub_packed, std::size_t elem) {
    const KernelMode mode = selection_kernel_mode();
    obs::Span span("scatter_into_packed", "h5.kernel",
                   {{"bytes", sub.npoints() * elem, nullptr},
                    {"mode", 0, kernel_mode_name(mode)}});
    if (mode == KernelMode::naive)
        return scatter_into_packed_naive(dest_space, dest_packed, sub, sub_packed, elem);
    if (mode == KernelMode::vectorized)
        return scatter_into_packed_vec(dest_space, dest_packed, sub, sub_packed, elem);

    const auto& druns = dest_space.runs_by_file();
    const auto& sruns = sub.runs_by_file();

    auto*       dst = static_cast<std::byte*>(dest_packed);
    const auto* src = static_cast<const std::byte*>(sub_packed);

    std::size_t di = 0;
    for (const auto& s : sruns) {
        std::uint64_t copied = 0;
        while (copied < s.len) {
            const std::uint64_t target = s.file_off + copied;
            while (di < druns.size() && druns[di].file_off + druns[di].len <= target) ++di;
            if (di == druns.size() || druns[di].file_off > target)
                throw Error("h5: scatter_into_packed: element not covered by destination");
            const std::uint64_t within = target - druns[di].file_off;
            const std::uint64_t take   = std::min(druns[di].len - within, s.len - copied);
            std::memcpy(dst + (druns[di].packed_off + within) * elem,
                        src + (s.packed_off + copied) * elem, take * elem);
            copied += take;
        }
    }
}

void extract_via_mapping(const Dataspace& filespace, const Dataspace& memspace,
                         const void* membuf, const Dataspace& want, std::size_t elem,
                         std::vector<std::byte>& out) {
    const KernelMode mode = selection_kernel_mode();
    obs::Span span("extract_via_mapping", "h5.kernel",
                   {{"bytes", want.npoints() * elem, nullptr},
                    {"mode", 0, kernel_mode_name(mode)}});
    if (mode == KernelMode::naive)
        return extract_via_mapping_naive(filespace, memspace, membuf, want, elem, out);
    if (mode == KernelMode::vectorized)
        return extract_via_mapping_vec(filespace, memspace, membuf, want, elem, out);

    if (filespace.npoints() != memspace.npoints())
        throw Error("h5: extract_via_mapping: filespace/memspace sizes differ");

    const auto& fruns = filespace.runs_by_file();
    const auto& mruns = memspace.runs(); // increasing packed_off by construction

    const auto* src  = static_cast<const std::byte*>(membuf);
    const auto  base = out.size();
    out.resize(base + want.npoints() * elem);
    auto* dst = out.data() + base;

    // enumeration position -> memory buffer offset; positions are not
    // monotonic across want runs, so the memory side keeps a binary search
    auto mem_locate = [&](std::uint64_t pos, std::uint64_t& buf_off, std::uint64_t& avail) {
        auto it = std::upper_bound(mruns.begin(), mruns.end(), pos,
                                   [](std::uint64_t v, const Run& r) { return v < r.packed_off; });
        if (it == mruns.begin()) throw Error("h5: extract_via_mapping: bad enumeration position");
        --it;
        std::uint64_t within = pos - it->packed_off;
        if (within >= it->len) throw Error("h5: extract_via_mapping: bad enumeration position");
        buf_off = it->file_off + within;
        avail   = it->len - within;
    };

    std::size_t fi = 0;
    for (const auto& w : want.runs_by_file()) {
        std::uint64_t copied = 0;
        while (copied < w.len) {
            const std::uint64_t target = w.file_off + copied;
            while (fi < fruns.size() && fruns[fi].file_off + fruns[fi].len <= target) ++fi;
            if (fi == fruns.size() || fruns[fi].file_off > target)
                throw Error("h5: extract_via_mapping: requested element not covered");
            const std::uint64_t within  = target - fruns[fi].file_off;
            const std::uint64_t avail_f = fruns[fi].len - within;
            const std::uint64_t pos     = fruns[fi].packed_off + within;

            std::uint64_t buf_off = 0, avail_m = 0;
            mem_locate(pos, buf_off, avail_m);

            const std::uint64_t take = std::min({avail_f, avail_m, w.len - copied});
            std::memcpy(dst + (w.packed_off + copied) * elem, src + buf_off * elem, take * elem);
            copied += take;
        }
    }
}

// --- naive reference kernels -------------------------------------------------
//
// The pre-coalescing implementations: rebuild the (uncoalesced) run list
// on every call and binary-search it per walked row. Kept byte-compatible
// as the property-test oracle and the benchmark baseline.

void extract_from_packed_naive(const Dataspace& piece_space, const void* piece_packed,
                               const Dataspace& want, std::size_t elem,
                               std::vector<std::byte>& out) {
    auto pruns = collect_runs_uncoalesced(piece_space);
    std::sort(pruns.begin(), pruns.end(), [](const Run& a, const Run& b) { return a.file_off < b.file_off; });

    const auto* src  = static_cast<const std::byte*>(piece_packed);
    const auto  base = out.size();
    out.resize(base + want.npoints() * elem);
    auto* dst = out.data() + base;

    want.for_each_run([&](std::uint64_t fo, std::uint64_t n, std::uint64_t po) {
        std::uint64_t copied = 0;
        while (copied < n) {
            std::uint64_t target = fo + copied;
            // last piece run with file_off <= target
            auto it = std::upper_bound(pruns.begin(), pruns.end(), target,
                                       [](std::uint64_t v, const Run& r) { return v < r.file_off; });
            if (it == pruns.begin())
                throw Error("h5: extract_from_packed: requested element not covered by piece");
            --it;
            if (target >= it->file_off + it->len)
                throw Error("h5: extract_from_packed: requested element not covered by piece");
            std::uint64_t within = target - it->file_off;
            std::uint64_t avail  = it->len - within;
            std::uint64_t take   = std::min(avail, n - copied);
            std::memcpy(dst + (po + copied) * elem, src + (it->packed_off + within) * elem, take * elem);
            copied += take;
        }
    });
}

void scatter_into_packed_naive(const Dataspace& dest_space, void* dest_packed,
                               const Dataspace& sub, const void* sub_packed, std::size_t elem) {
    auto druns = collect_runs_uncoalesced(dest_space);
    std::sort(druns.begin(), druns.end(),
              [](const Run& a, const Run& b) { return a.file_off < b.file_off; });

    auto*       dst = static_cast<std::byte*>(dest_packed);
    const auto* src = static_cast<const std::byte*>(sub_packed);

    sub.for_each_run([&](std::uint64_t fo, std::uint64_t n, std::uint64_t po) {
        std::uint64_t copied = 0;
        while (copied < n) {
            std::uint64_t target = fo + copied;
            auto it = std::upper_bound(druns.begin(), druns.end(), target,
                                       [](std::uint64_t v, const Run& r) { return v < r.file_off; });
            if (it == druns.begin())
                throw Error("h5: scatter_into_packed: element not covered by destination");
            --it;
            if (target >= it->file_off + it->len)
                throw Error("h5: scatter_into_packed: element not covered by destination");
            std::uint64_t within = target - it->file_off;
            std::uint64_t avail  = it->len - within;
            std::uint64_t take   = std::min(avail, n - copied);
            std::memcpy(dst + (it->packed_off + within) * elem, src + (po + copied) * elem, take * elem);
            copied += take;
        }
    });
}

void extract_via_mapping_naive(const Dataspace& filespace, const Dataspace& memspace,
                               const void* membuf, const Dataspace& want, std::size_t elem,
                               std::vector<std::byte>& out) {
    if (filespace.npoints() != memspace.npoints())
        throw Error("h5: extract_via_mapping: filespace/memspace sizes differ");

    auto fruns = collect_runs_uncoalesced(filespace);
    std::sort(fruns.begin(), fruns.end(),
              [](const Run& a, const Run& b) { return a.file_off < b.file_off; });
    auto mruns = collect_runs_uncoalesced(memspace); // increasing packed_off by construction

    const auto* src  = static_cast<const std::byte*>(membuf);
    const auto  base = out.size();
    out.resize(base + want.npoints() * elem);
    auto* dst = out.data() + base;

    // enumeration position -> memory buffer offset
    auto mem_locate = [&](std::uint64_t pos, std::uint64_t& buf_off, std::uint64_t& avail) {
        auto it = std::upper_bound(mruns.begin(), mruns.end(), pos,
                                   [](std::uint64_t v, const Run& r) { return v < r.packed_off; });
        if (it == mruns.begin()) throw Error("h5: extract_via_mapping: bad enumeration position");
        --it;
        std::uint64_t within = pos - it->packed_off;
        if (within >= it->len) throw Error("h5: extract_via_mapping: bad enumeration position");
        buf_off = it->file_off + within;
        avail   = it->len - within;
    };

    want.for_each_run([&](std::uint64_t fo, std::uint64_t n, std::uint64_t po) {
        std::uint64_t copied = 0;
        while (copied < n) {
            std::uint64_t target = fo + copied;
            auto it = std::upper_bound(fruns.begin(), fruns.end(), target,
                                       [](std::uint64_t v, const Run& r) { return v < r.file_off; });
            if (it == fruns.begin())
                throw Error("h5: extract_via_mapping: requested element not covered");
            --it;
            if (target >= it->file_off + it->len)
                throw Error("h5: extract_via_mapping: requested element not covered");
            std::uint64_t within  = target - it->file_off;
            std::uint64_t avail_f = it->len - within;
            std::uint64_t pos     = it->packed_off + within;

            std::uint64_t buf_off = 0, avail_m = 0;
            mem_locate(pos, buf_off, avail_m);

            std::uint64_t take = std::min({avail_f, avail_m, n - copied});
            std::memcpy(dst + (po + copied) * elem, src + buf_off * elem, take * elem);
            copied += take;
        }
    });
}

} // namespace h5
