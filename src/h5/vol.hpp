#pragma once

#include "dataspace.hpp"
#include "types.hpp"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace h5 {

/// The Virtual Object Layer interface: every public API call dispatches
/// through one of these callbacks, exactly as HDF5 ≥1.12 routes all
/// operations through its VOL. Plugins (LowFive's metadata and
/// distributed-metadata VOLs) implement or forward these callbacks.
///
/// Handles are opaque (`void*`), owned by the plugin that issued them; a
/// group/dataset handle is only valid while its file handle is open.
class Vol {
public:
    virtual ~Vol() = default;

    // --- files -----------------------------------------------------------
    virtual void* file_create(const std::string& name) = 0;
    virtual void* file_open(const std::string& name)   = 0;
    virtual void  file_close(void* file)               = 0;
    /// Push current contents to the terminal storage without closing
    /// (H5Fflush). No-op where there is nothing physical to flush to.
    virtual void file_flush(void* file) = 0;

    // --- groups ------------------------------------------------------------
    virtual void* group_create(void* parent, const std::string& name) = 0;
    /// `path` may contain multiple components ("g1/g2").
    virtual void* group_open(void* parent, const std::string& path) = 0;

    // --- datasets ----------------------------------------------------------
    virtual void* dataset_create(void* parent, const std::string& name, const Datatype& type,
                                 const Dataspace& space)            = 0;
    virtual void* dataset_open(void* parent, const std::string& path) = 0;
    virtual Datatype  dataset_type(void* dset)                        = 0;
    virtual Dataspace dataset_space(void* dset)                       = 0;

    /// Write the elements selected in `memspace` (from `buf`, a full
    /// memspace-extent buffer) to the elements selected in `filespace`,
    /// paired in iteration order (HDF5 semantics).
    virtual void dataset_write(void* dset, const Dataspace& memspace, const Dataspace& filespace,
                               const void* buf) = 0;
    virtual void dataset_read(void* dset, const Dataspace& memspace, const Dataspace& filespace,
                              void* buf)        = 0;
    /// Grow a dataset's extent (H5Dset_extent; growth only).
    virtual void dataset_set_extent(void* dset, const Extent& new_dims) = 0;

    // --- attributes (on files, groups, or datasets) --------------------------
    struct AttrInfo {
        Datatype  type;
        Dataspace space;
    };
    virtual void attribute_write(void* obj, const std::string& name, const Datatype& type,
                                 const Dataspace& space, const void* buf)       = 0;
    virtual std::optional<AttrInfo> attribute_info(void* obj, const std::string& name) = 0;
    virtual void attribute_read(void* obj, const std::string& name, void* buf)  = 0;

    virtual std::vector<std::string> list_attributes(void* obj) = 0;

    // --- links ----------------------------------------------------------------
    /// Remove a group or dataset (H5Ldelete); invalidates handles to it.
    virtual void unlink(void* parent, const std::string& path) = 0;

    // --- introspection -------------------------------------------------------
    virtual std::vector<std::string> list_children(void* obj)             = 0;
    virtual bool                     exists(void* obj, const std::string& path) = 0;
};

using VolPtr = std::shared_ptr<Vol>;

} // namespace h5
