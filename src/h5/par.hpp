#pragma once

/// Small work-stealing thread pool for the selection data plane.
///
/// Large scatter/gather transfers decompose into disjoint-destination
/// byte segments; the pool fans those out across a handful of worker
/// threads. Two execution regimes:
///
///  - Free-running (no deterministic scheduler on the calling thread):
///    persistent workers pull chunk ranges from a shared job, stealing
///    half of the largest remaining range when their own runs dry. The
///    caller participates, so `workers() + 1` threads move bytes.
///
///  - Deterministic (the caller is attached to the cooperative
///    scheduler, i.e. an `L5_SCHED`/`mh5sched`/`L5_CHECK` run): the
///    persistent pool is bypassed. Chunks are statically partitioned
///    across freshly spawned *scheduler participants*
///    (`simmpi::detail::spawn_participant`), whose spawn, attach, and
///    join are all deterministic scheduling points — so the schedule
///    hash replays exactly, pool or no pool. Workers are pure compute
///    (no scheduling points inside a chunk), which keeps the explored
///    schedule space identical to the single-threaded kernel modulo the
///    spawn/join brackets.
///
/// Knobs: `L5_DATA_THREADS` caps the worker count (0 disables the
/// pool), `L5_PAR_THRESHOLD` sets the minimum transfer size in bytes
/// that fans out (default 4 MiB) — below it every query stays on the
/// calling thread, so small-query latency and schedule determinism are
/// untouched by default.

#include <cstddef>
#include <cstdint>
#include <functional>

namespace h5 {
namespace par {

/// Worker threads the pool may use in addition to the calling thread
/// (0 = pool disabled, everything runs inline).
int workers();

/// Pool on/off toggle (process-wide, atomic). Defaults to on when the
/// machine has ≥ 2 hardware threads and `L5_DATA_THREADS` ≠ 0.
bool enabled();
void set_enabled(bool on);

/// Minimum transfer size, in bytes, that fans out across the pool.
std::size_t parallel_threshold_bytes();
void        set_parallel_threshold_bytes(std::size_t bytes);

/// Should a transfer of `bytes` fan out? (enabled, workers available,
/// and at least the threshold.)
bool should_parallelize(std::size_t bytes);

/// Target number of chunks for a transfer of `bytes`: enough to keep
/// every participant busy with some slack for stealing, bounded so each
/// chunk still moves a meaningful amount (≥ ~256 KiB).
std::size_t chunk_count(std::size_t bytes);

/// Execute `fn(i)` for every i in [0, n) across the pool workers plus
/// the calling thread; returns when all n calls have completed.
/// Rethrows the first chunk exception after the job drains. Chunks must
/// write disjoint data. Routes through deterministic scheduler
/// participants when the caller is attached to one (see file comment);
/// runs inline when the pool is disabled or n < 2.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

} // namespace par
} // namespace h5
