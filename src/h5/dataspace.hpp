#pragma once

#include <diy/bounds.hpp>
#include <diy/serialization.hpp>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace h5 {

/// Exception type for data-model errors.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

using Extent = std::vector<std::uint64_t>;

/// A contiguous run of a selection: position in the row-major
/// linearization of the full extent, length in elements, and position in
/// the packed (iteration-order) enumeration of the selection.
struct SelRun {
    std::uint64_t file_off;
    std::uint64_t len;
    std::uint64_t packed_off;
};

/// An N-dimensional dataspace with a selection, mirroring HDF5: the
/// extent describes the full array shape; the selection names the subset
/// of elements addressed by a read/write. Selections are unions of
/// disjoint axis-aligned boxes — HDF5's regular hyperslabs
/// (start/stride/count/block) expand into such unions.
///
/// Iteration order of a selection (used to pair memory-space elements
/// with file-space elements, and to define the layout of packed buffers)
/// is: boxes in stored order, row-major (C order) within each box.
class Dataspace {
public:
    Dataspace() = default;

    /// Scalar-free construction: an N-d extent with everything selected.
    explicit Dataspace(Extent dims);

    /// Convenience: 1-d dataspace of n elements, all selected.
    static Dataspace linear(std::uint64_t n) { return Dataspace(Extent{n}); }

    int           dim() const { return static_cast<int>(dims_.size()); }
    const Extent& dims() const { return dims_; }
    std::uint64_t extent_npoints() const;

    /// Bounds covering the full extent.
    diy::Bounds extent_bounds() const;

    // --- selection manipulation (return *this for chaining) ---------------

    Dataspace& select_all();
    Dataspace& select_none();
    /// Select one box: start/count per dimension.
    Dataspace& select_box(std::span<const std::uint64_t> start, std::span<const std::uint64_t> count);
    Dataspace& select_box(const diy::Bounds& b);
    /// General regular hyperslab; expands to count[0]*...*count[d-1] boxes
    /// (one per block). stride==0 is treated as stride==block.
    Dataspace& select_hyperslab(std::span<const std::uint64_t> start,
                                std::span<const std::uint64_t> stride,
                                std::span<const std::uint64_t> count,
                                std::span<const std::uint64_t> block);
    /// Add another box to the selection (boxes must stay disjoint; throws
    /// otherwise so packed-buffer semantics stay well defined).
    Dataspace& add_box(const diy::Bounds& b);

    /// Element (point) selection, the analogue of H5Sselect_elements:
    /// each point is one coordinate tuple; points must be distinct
    /// (checked in O(n log n)). Iteration order is the given order.
    Dataspace& select_elements(std::span<const std::array<std::int64_t, diy::max_dim>> points);

    /// Grow the extent (H5Dset_extent direction: never shrinks). The
    /// selection is reset to "all".
    Dataspace& grow_extent(const Extent& new_dims);

    /// A copy of this dataspace with a different extent but the same
    /// selection (boxes must fit in the new extent). Selection iteration
    /// order is extent-independent, so packed buffers stay valid; only
    /// the row-major linearization offsets change.
    Dataspace with_dims(const Extent& new_dims) const;

    // --- selection queries -------------------------------------------------

    bool                             all_selected() const { return all_; }
    bool                             none_selected() const { return !all_ && boxes_.empty(); }
    std::uint64_t                    npoints() const;
    /// Selection as a list of disjoint boxes ("all" resolves to one box).
    const std::vector<diy::Bounds>&  boxes() const;
    /// Smallest box covering the selection (the `bb` of Algorithms 1–3).
    diy::Bounds                      bounding_box() const;

    /// Visit the selection as contiguous runs of the row-major
    /// linearization of the extent. fn(file_offset_elems, nelems,
    /// packed_offset_elems): file_offset indexes the full extent,
    /// packed_offset indexes the packed (iteration-order) buffer.
    void for_each_run(const std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>& fn) const;

    /// The selection's runs in iteration order, with runs that are
    /// adjacent in both the file linearization and the packed buffer
    /// merged (a full-row slab becomes one run). Memoized per selection:
    /// the first call materializes, later calls (and copies of this
    /// dataspace) reuse the cached vector until the selection mutates.
    const std::vector<SelRun>& runs() const;
    /// The same coalesced runs sorted by file offset — the lookup side of
    /// the scatter/extract kernels. Memoized alongside runs().
    const std::vector<SelRun>& runs_by_file() const;

    bool operator==(const Dataspace& o) const {
        return dims_ == o.dims_ && all_ == o.all_ && boxes_ == o.boxes_;
    }

    void             save(diy::BinaryBuffer& bb) const;
    static Dataspace load(diy::BinaryBuffer& bb);

    std::string str() const;

private:
    void resolve() const; ///< materialize boxes for "all"

    /// add_box without the pairwise-disjointness scan, for callers that
    /// construct provably disjoint boxes (hyperslab expansion, copies of
    /// already-validated selections). Bounds checks still apply.
    Dataspace& add_box_unchecked(const diy::Bounds& b);

    struct RunsCache {
        std::vector<SelRun> iter;    ///< coalesced, iteration order
        std::vector<SelRun> by_file; ///< same runs sorted by file_off
    };
    const RunsCache& run_cache() const;

    Extent                           dims_;
    bool                             all_ = true;
    mutable std::vector<diy::Bounds> boxes_; // disjoint; cached resolution for "all"
    mutable std::shared_ptr<const RunsCache> runs_; // memoized runs; reset on mutation
};

// --- selection algebra -------------------------------------------------------

/// Intersection of two selections over the same extent: the disjoint
/// boxes common to both. Used by serve (Algorithm 2) and query (Algorithm 3).
std::vector<diy::Bounds> intersect_selections(const Dataspace& a, const Dataspace& b);

/// Pack the selected elements of a full-extent buffer into a dense buffer
/// in iteration order. `elem` is the element size in bytes.
void pack_selection(const Dataspace& space, const void* full, std::size_t elem,
                    void* packed);

/// Scatter a packed buffer back into a full-extent buffer.
void unpack_selection(const Dataspace& space, const void* packed, std::size_t elem,
                      void* full);

/// Copy between two buffers through their selections, pairing elements in
/// iteration order (HDF5 read/write semantics). Selections must have equal
/// npoints. `src` and `dst` are full-extent buffers of their dataspaces.
void copy_selected(const Dataspace& src_space, const void* src,
                   const Dataspace& dst_space, void* dst, std::size_t elem);

/// Extract a sub-selection from a *packed* piece. `piece_space` describes
/// how `piece_packed` is laid out (its selection, in iteration order);
/// `want` is a selection covered by piece_space's selection. The selected
/// elements are appended to `out` in `want`'s iteration order.
void extract_from_packed(const Dataspace& piece_space, const void* piece_packed,
                         const Dataspace& want, std::size_t elem,
                         std::vector<std::byte>& out);

/// Inverse of extract_from_packed: write `sub_packed` (the elements of
/// `sub`, in sub's iteration order) into `dest_packed`, which is laid out
/// in `dest_space`'s selection iteration order. `sub` must be covered by
/// dest_space's selection.
void scatter_into_packed(const Dataspace& dest_space, void* dest_packed, const Dataspace& sub,
                         const void* sub_packed, std::size_t elem);

/// Materialize the coalesced runs of a selection, in iteration order
/// (equivalent to `space.runs()` but returned by value).
std::vector<SelRun> selection_runs(const Dataspace& space);

/// Extract `want` (a sub-selection of `filespace`'s selection, in file
/// coordinates) directly from a user memory buffer described by
/// `memspace`, where the k-th element of filespace's enumeration lives at
/// the k-th element of memspace's enumeration (HDF5 write semantics).
/// Appends to `out` in `want`'s iteration order. This is the zero-copy
/// path: no intermediate packing of the producer's buffer is made.
void extract_via_mapping(const Dataspace& filespace, const Dataspace& memspace,
                         const void* membuf, const Dataspace& want, std::size_t elem,
                         std::vector<std::byte>& out);

// --- reference (uncoalesced) kernels ----------------------------------------
//
// The original per-run binary-search implementations, kept as the
// correctness reference for the property tests and as the "naive" side of
// the kernel benchmarks. Behaviour is byte-identical to the coalesced
// two-pointer kernels above.

void extract_from_packed_naive(const Dataspace& piece_space, const void* piece_packed,
                               const Dataspace& want, std::size_t elem,
                               std::vector<std::byte>& out);

void scatter_into_packed_naive(const Dataspace& dest_space, void* dest_packed,
                               const Dataspace& sub, const void* sub_packed,
                               std::size_t elem);

void extract_via_mapping_naive(const Dataspace& filespace, const Dataspace& memspace,
                               const void* membuf, const Dataspace& want, std::size_t elem,
                               std::vector<std::byte>& out);

/// Which implementation backs extract_from_packed / scatter_into_packed /
/// extract_via_mapping (process-wide, stored in one atomic so bench/test
/// threads may flip it without a data race):
///  - naive: per-row binary search, rebuilt run lists — the original
///    implementation, kept as the correctness oracle;
///  - coalesced: the O(S + D) two-pointer merge with one memcpy per
///    matched segment — the previous production path, now the second
///    oracle;
///  - vectorized: the same merge, but segments are materialized and
///    copied through the width-specialized kern:: kernels, fanning out
///    across the h5::par pool above its size threshold. The default.
enum class KernelMode { naive = 0, coalesced = 1, vectorized = 2 };

void        set_selection_kernel_mode(KernelMode mode);
KernelMode  selection_kernel_mode();
const char* kernel_mode_name(KernelMode mode);

/// Back-compat toggle: true routes through the naive reference kernels,
/// false restores the default (vectorized) path.
void set_naive_selection_kernels(bool enable);
bool naive_selection_kernels();

} // namespace h5
