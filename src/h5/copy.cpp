#include "copy.hpp"

namespace h5 {

namespace {

void copy_attributes(const NodeRef& from, const NodeRef& to) {
    for (const auto& name : from.attributes()) {
        auto info = from.vol().attribute_info(from.handle(), name);
        if (!info) continue;
        std::vector<std::byte> buf(info->space.npoints() * info->type.size());
        from.vol().attribute_read(from.handle(), name, buf.data());
        to.write_attribute(name, info->type, info->space, buf.data());
    }
}

void copy_dataset(const Dataset& src, const NodeRef& dst, const std::string& name) {
    auto type  = src.type();
    auto space = src.space();
    auto out   = dst.create_dataset(name, type, Dataspace(space.dims()));

    std::vector<std::byte> data(space.extent_npoints() * type.size());
    if (!data.empty()) {
        src.read(data.data());
        out.write(data.data());
    }
    copy_attributes(src, out);
}

void copy_group_tree(const Group& src, const NodeRef& dst, const std::string& name) {
    auto out = dst.create_group(name);
    copy_attributes(src, out);
    for (const auto& child : src.children()) {
        // dataset-or-group dispatch through the public API
        bool copied = false;
        try {
            auto d = src.open_dataset(child);
            copy_dataset(d, out, child);
            copied = true;
        } catch (const Error&) {
        }
        if (!copied) copy_group_tree(src.open_group(child), out, child);
    }
}

} // namespace

void copy_object(const NodeRef& src, const std::string& src_path, const NodeRef& dst,
                 const std::string& dst_name) {
    if (dst.exists(dst_name))
        throw Error("h5: copy destination '" + dst_name + "' already exists");

    // create intermediate groups for a multi-component destination
    NodeRef     parent = dst;
    std::string leaf   = dst_name;
    std::size_t pos;
    while ((pos = leaf.find('/')) != std::string::npos) {
        std::string head = leaf.substr(0, pos);
        leaf             = leaf.substr(pos + 1);
        parent = parent.exists(head) ? NodeRef(parent.open_group(head))
                                     : NodeRef(parent.create_group(head));
    }

    try {
        auto d = src.open_dataset(src_path);
        copy_dataset(d, parent, leaf);
        return;
    } catch (const Error&) {
    }
    copy_group_tree(src.open_group(src_path), parent, leaf);
}

} // namespace h5
