#include "copy.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define L5_KERN_X86 1
#endif

namespace h5 {
namespace kern {
namespace {

/// Above this size a copy is DRAM-bound and its destination will not be
/// re-read soon; streaming (non-temporal) stores avoid evicting the
/// working set through the cache hierarchy.
constexpr std::size_t stream_threshold = 4u << 20;

using WideFn = void (*)(std::byte*, const std::byte*, std::size_t);

/// Unrolled 64-bit word loop — the portable wide path. The fixed-size
/// memcpy calls compile to register moves; the 64 B unroll gives the
/// autovectorizer a clean shot on any target.
void wide_word(std::byte* dst, const std::byte* src, std::size_t n) {
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        std::uint64_t w0, w1, w2, w3, w4, w5, w6, w7;
        std::memcpy(&w0, src + i, 8);
        std::memcpy(&w1, src + i + 8, 8);
        std::memcpy(&w2, src + i + 16, 8);
        std::memcpy(&w3, src + i + 24, 8);
        std::memcpy(&w4, src + i + 32, 8);
        std::memcpy(&w5, src + i + 40, 8);
        std::memcpy(&w6, src + i + 48, 8);
        std::memcpy(&w7, src + i + 56, 8);
        std::memcpy(dst + i, &w0, 8);
        std::memcpy(dst + i + 8, &w1, 8);
        std::memcpy(dst + i + 16, &w2, 8);
        std::memcpy(dst + i + 24, &w3, 8);
        std::memcpy(dst + i + 32, &w4, 8);
        std::memcpy(dst + i + 40, &w5, 8);
        std::memcpy(dst + i + 48, &w6, 8);
        std::memcpy(dst + i + 56, &w7, 8);
    }
    if (i < n) copy(dst + i, src + i, n - i);
}

#if L5_KERN_X86

__attribute__((target("avx2"))) void wide_avx2(std::byte* dst, const std::byte* src,
                                               std::size_t n) {
    std::size_t i = 0;
    for (; i + 128 <= n; i += 128) {
        const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
        const __m256i v2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 64));
        const __m256i v3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 96));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), v1);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 64), v2);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 96), v3);
    }
    for (; i + 32 <= n; i += 32)
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
    if (i < n) {
        // callers guarantee n > 64, so an overlapping 32 B tail is in bounds
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + n - 32),
                            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + n - 32)));
    }
}

/// Streaming variant: align the destination, then non-temporal stores
/// that bypass the cache; the trailing sfence orders them before any
/// subsequent release operation (the pool's completion publish).
__attribute__((target("avx2"))) void stream_avx2(std::byte* dst, const std::byte* src,
                                                 std::size_t n) {
    const std::size_t mis  = reinterpret_cast<std::uintptr_t>(dst) & 31u;
    const std::size_t head = mis ? 32 - mis : 0;
    if (head) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src)));
    }
    std::size_t i = head;
    for (; i + 128 <= n; i += 128) {
        const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
        const __m256i v2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 64));
        const __m256i v3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 96));
        _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + i), v0);
        _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + i + 32), v1);
        _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + i + 64), v2);
        _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + i + 96), v3);
    }
    _mm_sfence();
    if (i < n) {
        const std::size_t rest = n - i;
        if (rest > 64) wide_avx2(dst + i, src + i, rest);
        else copy(dst + i, src + i, rest);
    }
}

bool have_avx2() { return __builtin_cpu_supports("avx2"); }

#endif // L5_KERN_X86

struct Dispatch {
    WideFn      wide;
    WideFn      stream;
    const char* name;
};

Dispatch resolve() {
#if L5_KERN_X86
    if (have_avx2()) return {&wide_avx2, &stream_avx2, "avx2"};
#endif
    return {&wide_word, &wide_word, "word"};
}

const Dispatch& dispatch() {
    static const Dispatch d = resolve();
    return d;
}

} // namespace

const char* dispatch_name() { return dispatch().name; }

namespace detail {

void copy_wide(std::byte* dst, const std::byte* src, std::size_t n) {
    const Dispatch& d = dispatch();
    if (n >= stream_threshold) d.stream(dst, src, n);
    else d.wide(dst, src, n);
}

} // namespace detail

void copy_segments(std::byte* dst_base, const std::byte* src_base, const Seg* segs,
                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i)
        copy(dst_base + segs[i].dst, src_base + segs[i].src, segs[i].len);
}

} // namespace kern

namespace {

void copy_attributes(const NodeRef& from, const NodeRef& to) {
    for (const auto& name : from.attributes()) {
        auto info = from.vol().attribute_info(from.handle(), name);
        if (!info) continue;
        std::vector<std::byte> buf(info->space.npoints() * info->type.size());
        from.vol().attribute_read(from.handle(), name, buf.data());
        to.write_attribute(name, info->type, info->space, buf.data());
    }
}

void copy_dataset(const Dataset& src, const NodeRef& dst, const std::string& name) {
    auto type  = src.type();
    auto space = src.space();
    auto out   = dst.create_dataset(name, type, Dataspace(space.dims()));

    std::vector<std::byte> data(space.extent_npoints() * type.size());
    if (!data.empty()) {
        src.read(data.data());
        out.write(data.data());
    }
    copy_attributes(src, out);
}

void copy_group_tree(const Group& src, const NodeRef& dst, const std::string& name) {
    auto out = dst.create_group(name);
    copy_attributes(src, out);
    for (const auto& child : src.children()) {
        // dataset-or-group dispatch through the public API
        bool copied = false;
        try {
            auto d = src.open_dataset(child);
            copy_dataset(d, out, child);
            copied = true;
        } catch (const Error&) {
        }
        if (!copied) copy_group_tree(src.open_group(child), out, child);
    }
}

} // namespace

void copy_object(const NodeRef& src, const std::string& src_path, const NodeRef& dst,
                 const std::string& dst_name) {
    if (dst.exists(dst_name))
        throw Error("h5: copy destination '" + dst_name + "' already exists");

    // create intermediate groups for a multi-component destination
    NodeRef     parent = dst;
    std::string leaf   = dst_name;
    std::size_t pos;
    while ((pos = leaf.find('/')) != std::string::npos) {
        std::string head = leaf.substr(0, pos);
        leaf             = leaf.substr(pos + 1);
        parent = parent.exists(head) ? NodeRef(parent.open_group(head))
                                     : NodeRef(parent.create_group(head));
    }

    try {
        auto d = src.open_dataset(src_path);
        copy_dataset(d, parent, leaf);
        return;
    } catch (const Error&) {
    }
    copy_group_tree(src.open_group(src_path), parent, leaf);
}

} // namespace h5
