#include "tree.hpp"

namespace h5 {

Object* Object::resolve(const std::string& rel_path) {
    Object*     cur = this;
    std::size_t pos = 0;
    while (pos < rel_path.size() && cur) {
        while (pos < rel_path.size() && rel_path[pos] == '/') ++pos;
        if (pos >= rel_path.size()) break;
        std::size_t end  = rel_path.find('/', pos);
        std::string comp = rel_path.substr(pos, end == std::string::npos ? std::string::npos : end - pos);
        cur              = cur->find_child(comp);
        pos              = end == std::string::npos ? rel_path.size() : end;
    }
    return cur;
}

void Object::save_skeleton(diy::BinaryBuffer& bb) const {
    bb.save(static_cast<std::uint8_t>(kind));
    bb.save(name);

    bb.save<std::uint64_t>(attributes.size());
    for (const auto& a : attributes) {
        bb.save(a.name);
        a.type.save(bb);
        a.space.save(bb);
        bb.save(a.data);
    }

    if (kind == ObjectKind::Dataset) {
        type.save(bb);
        space.save(bb);
        bb.save<std::uint64_t>(file_data_offset);
    }

    bb.save<std::uint64_t>(children.size());
    for (const auto& c : children) c->save_skeleton(bb);
}

std::unique_ptr<Object> Object::load_skeleton(diy::BinaryBuffer& bb) {
    auto        kind = static_cast<ObjectKind>(bb.load<std::uint8_t>());
    std::string name;
    bb.load(name);
    auto obj = std::make_unique<Object>(kind, name);

    auto nattrs = bb.load<std::uint64_t>();
    for (std::uint64_t i = 0; i < nattrs; ++i) {
        Object::Attribute a;
        bb.load(a.name);
        a.type  = Datatype::load(bb);
        a.space = Dataspace::load(bb);
        bb.load(a.data);
        obj->attributes.push_back(std::move(a));
    }

    if (kind == ObjectKind::Dataset) {
        obj->type             = Datatype::load(bb);
        obj->space            = Dataspace::load(bb);
        obj->file_data_offset = bb.load<std::uint64_t>();
    }

    auto nchildren = bb.load<std::uint64_t>();
    for (std::uint64_t i = 0; i < nchildren; ++i)
        obj->add_child(load_skeleton(bb));
    return obj;
}

std::uint64_t read_from_pieces(const Object& dset, const Dataspace& want, std::byte* packed) {
    const std::size_t elem  = dset.type.size();
    std::uint64_t     found = 0;

    for (const auto& piece : dset.pieces) {
        auto common = intersect_selections(piece.filespace, want);
        if (common.empty()) continue;

        Dataspace sub(dset.space.dims());
        sub.select_none();
        for (const auto& b : common) sub.add_box(b);

        std::vector<std::byte> sub_packed;
        piece.extract(sub, elem, sub_packed);
        scatter_into_packed(want, packed, sub, sub_packed.data(), elem);
        found += sub.npoints();
    }
    return found;
}

} // namespace h5
