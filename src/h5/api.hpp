#pragma once

#include "convert.hpp"
#include "vol.hpp"

#include <cstring>
#include <string>
#include <vector>

namespace h5 {

class Group;
class Dataset;

/// Map arithmetic C++ types to predefined datatypes.
template <typename T>
Datatype native_type() {
    static_assert(std::is_arithmetic_v<T>, "native_type requires an arithmetic type");
    if constexpr (std::is_floating_point_v<T>)
        return Datatype::atomic(TypeClass::Float, sizeof(T));
    else if constexpr (std::is_signed_v<T>)
        return Datatype::atomic(TypeClass::Int, sizeof(T));
    else
        return Datatype::atomic(TypeClass::UInt, sizeof(T));
}

/// Non-owning handle to an object that can hold children and attributes
/// (a file or a group). All operations dispatch through the VOL — this is
/// the API surface at which LowFive intercepts, so user code written
/// against it is oblivious to whether data goes to disk or in situ.
class NodeRef {
public:
    Group   create_group(const std::string& name) const;
    Group   open_group(const std::string& path) const;
    Dataset create_dataset(const std::string& name, const Datatype& type,
                           const Dataspace& space) const;
    Dataset open_dataset(const std::string& path) const;

    bool                     exists(const std::string& path) const { return vol_->exists(h_, path); }
    std::vector<std::string> children() const { return vol_->list_children(h_); }
    std::vector<std::string> attributes() const { return vol_->list_attributes(h_); }

    /// Remove a child group or dataset (H5Ldelete). Handles to the
    /// removed object become invalid.
    void unlink(const std::string& path) const { vol_->unlink(h_, path); }

    void write_attribute(const std::string& name, const Datatype& type, const Dataspace& space,
                         const void* buf) const {
        vol_->attribute_write(h_, name, type, space, buf);
    }
    template <typename T>
    void write_attribute(const std::string& name, const T& value) const {
        write_attribute(name, native_type<T>(), Dataspace::linear(1), &value);
    }
    bool has_attribute(const std::string& name) const {
        return vol_->attribute_info(h_, name).has_value();
    }
    template <typename T>
    T read_attribute(const std::string& name) const {
        T value{};
        vol_->attribute_read(h_, name, &value);
        return value;
    }

    Vol&  vol() const { return *vol_; }
    void* handle() const { return h_; }
    bool  valid() const { return h_ != nullptr; }

protected:
    NodeRef() = default;
    NodeRef(VolPtr vol, void* h) : vol_(std::move(vol)), h_(h) {}

    VolPtr vol_;
    void*  h_ = nullptr;
};

class Group : public NodeRef {
public:
    Group() = default;

private:
    friend class NodeRef;
    friend class File;
    Group(VolPtr vol, void* h) : NodeRef(std::move(vol), h) {}
};

/// Non-owning dataset handle. Write/read variants:
///  - whole extent (contiguous row-major buffer),
///  - packed buffer + file selection (buffer laid out in the selection's
///    iteration order),
///  - general memory space + file space (HDF5 semantics).
class Dataset : public NodeRef {
public:
    Dataset() = default;

    Datatype  type() const { return vol_->dataset_type(h_); }
    Dataspace space() const { return vol_->dataset_space(h_); }

    /// Grow the dataset extent (H5Dset_extent; growth only).
    void set_extent(const Extent& new_dims) const { vol_->dataset_set_extent(h_, new_dims); }

    void write(const void* buf) const {
        Dataspace all = space();
        vol_->dataset_write(h_, all, all, buf);
    }
    void write(const void* buf, const Dataspace& filespace) const {
        vol_->dataset_write(h_, Dataspace::linear(filespace.npoints()), filespace, buf);
    }
    void write(const void* buf, const Dataspace& memspace, const Dataspace& filespace) const {
        vol_->dataset_write(h_, memspace, filespace, buf);
    }

    void read(void* buf) const {
        Dataspace all = space();
        vol_->dataset_read(h_, all, all, buf);
    }
    void read(void* buf, const Dataspace& filespace) const {
        vol_->dataset_read(h_, Dataspace::linear(filespace.npoints()), filespace, buf);
    }
    void read(void* buf, const Dataspace& memspace, const Dataspace& filespace) const {
        vol_->dataset_read(h_, memspace, filespace, buf);
    }

    /// Read with HDF5-style automatic type conversion: the stored values
    /// are converted to T regardless of the dataset's on-file type.
    template <typename T>
    std::vector<T> read_as(const Dataspace& filespace) const {
        Datatype               stored = type();
        std::vector<std::byte> raw(filespace.npoints() * stored.size());
        read(raw.data(), filespace);
        std::vector<T> out(filespace.npoints());
        convert_values(stored, raw.data(), native_type<T>(), out.data(), out.size());
        return out;
    }
    template <typename T>
    std::vector<T> read_as() const {
        Dataspace all = space();
        return read_as<T>(all);
    }

    template <typename T>
    std::vector<T> read_vector(const Dataspace& filespace) const {
        std::vector<T> out(filespace.npoints());
        read(out.data(), filespace);
        return out;
    }
    template <typename T>
    std::vector<T> read_vector() const {
        std::vector<T> out(space().extent_npoints());
        read(out.data());
        return out;
    }

private:
    friend class NodeRef;
    Dataset(VolPtr vol, void* h) : NodeRef(std::move(vol), h) {}
};

/// Owning file handle: closes through the VOL on destruction (or via
/// close()). Move-only. Child handles are invalidated by close.
class File : public NodeRef {
public:
    File() = default;
    File(File&& o) noexcept : NodeRef(std::move(o)) { o.h_ = nullptr; }
    File& operator=(File&& o) noexcept {
        if (this != &o) {
            close_quiet();
            vol_ = std::move(o.vol_);
            h_   = o.h_;
            o.h_ = nullptr;
        }
        return *this;
    }
    File(const File&)            = delete;
    File& operator=(const File&) = delete;
    /// Implicit close must not throw: closing can involve communication
    /// (serving, done messages) that fails when a peer aborted the world,
    /// and this destructor typically runs during that very unwinding.
    /// Call close() explicitly to observe close-time errors.
    ~File() { close_quiet(); }

    static File create(const std::string& path, VolPtr vol) {
        void* h = vol->file_create(path);
        return File(std::move(vol), h);
    }
    static File open(const std::string& path, VolPtr vol) {
        void* h = vol->file_open(path);
        return File(std::move(vol), h);
    }

    void close() {
        if (h_) {
            vol_->file_close(h_);
            h_ = nullptr;
        }
    }

    /// Persist current contents without closing (H5Fflush).
    void flush() const {
        if (h_) vol_->file_flush(h_);
    }

    void close_quiet() noexcept {
        try {
            close();
        } catch (...) {
        }
    }

private:
    File(VolPtr vol, void* h) : NodeRef(std::move(vol), h) {}
};

inline Group NodeRef::create_group(const std::string& name) const {
    return Group(vol_, vol_->group_create(h_, name));
}
inline Group NodeRef::open_group(const std::string& path) const {
    return Group(vol_, vol_->group_open(h_, path));
}
inline Dataset NodeRef::create_dataset(const std::string& name, const Datatype& type,
                                       const Dataspace& space) const {
    return Dataset(vol_, vol_->dataset_create(h_, name, type, space));
}
inline Dataset NodeRef::open_dataset(const std::string& path) const {
    return Dataset(vol_, vol_->dataset_open(h_, path));
}

} // namespace h5
