#include "native_vol.hpp"

#include <cstring>

namespace h5 {

namespace {

constexpr char          magic[8]      = {'M', 'I', 'N', 'I', 'H', '5', 'F', '\0'};
constexpr std::uint32_t format_version = 1;
constexpr std::uint64_t header_size    = 28;

void check_spaces(const Dataspace& memspace, const Dataspace& filespace, const Object& dset,
                  const char* what) {
    if (memspace.npoints() != filespace.npoints())
        throw Error(std::string("h5: ") + what + ": memory selection (" + std::to_string(memspace.npoints())
                    + " elems) does not match file selection (" + std::to_string(filespace.npoints()) + ")");
    if (filespace.dims() != dset.space.dims())
        throw Error(std::string("h5: ") + what + ": file space extent does not match dataset "
                    + dset.path());
}

} // namespace

NativeVol::OpenFile& NativeVol::owner_of(Object* obj) {
    Object* root = obj;
    while (root->parent) root = root->parent;
    auto it = files_.find(root);
    if (it == files_.end()) throw Error("h5: object does not belong to an open file");
    return *it->second;
}

void* NativeVol::file_create(const std::string& name) {
    auto f      = std::make_unique<OpenFile>();
    f->root     = std::make_unique<Object>(ObjectKind::File, name);
    f->path     = name;
    f->writable = true;
    Object* h   = f->root.get();
    files_.emplace(h, std::move(f));
    return h;
}

void* NativeVol::file_open(const std::string& name) {
    auto f  = std::make_unique<OpenFile>();
    f->io   = FileIO::open_ro(name);
    f->path = name;

    std::byte header[header_size];
    f->io.pread(header, header_size, 0);
    if (std::memcmp(header, magic, sizeof(magic)) != 0)
        throw Error("h5: '" + name + "' is not a MiniH5 file");
    std::uint32_t ver = 0;
    std::memcpy(&ver, header + 8, 4);
    if (ver != format_version)
        throw Error("h5: '" + name + "' has unsupported format version " + std::to_string(ver));
    std::uint64_t meta_off = 0, meta_size = 0;
    std::memcpy(&meta_off, header + 12, 8);
    std::memcpy(&meta_size, header + 20, 8);

    std::vector<std::byte> blob(meta_size);
    f->io.pread(blob.data(), meta_size, meta_off);
    diy::BinaryBuffer bb(std::move(blob));
    f->root = Object::load_skeleton(bb);

    Object* h = f->root.get();
    files_.emplace(h, std::move(f));
    return h;
}

std::uint64_t NativeVol::assign_layout(Object& root) {
    std::uint64_t cursor = header_size;
    auto          visit  = [&](auto&& self, Object& obj) -> void {
        if (obj.kind == ObjectKind::Dataset) {
            obj.file_data_offset = cursor;
            cursor += obj.space.extent_npoints() * obj.type.size();
        }
        for (auto& c : obj.children) self(self, *c);
    };
    visit(visit, root);
    return cursor;
}

void NativeVol::write_created_file(OpenFile& f) {
    const std::uint64_t meta_off = assign_layout(*f.root);

    diy::BinaryBuffer meta;
    f.root->save_skeleton(meta);

    FileIO io;
    if (!collective()) {
        io = FileIO::create(f.path);
    } else {
        if (comm_.rank() == 0) io = FileIO::create(f.path);
        comm_.barrier();
        if (comm_.rank() != 0) io = FileIO::open_rw(f.path);
        io.set_shared_writers(comm_.size()); // MPI-IO-style shared-file writes
    }

    if (!collective() || comm_.rank() == 0) {
        io.pwrite(meta.data().data(), meta.size(), meta_off);
        std::byte header[header_size];
        std::memcpy(header, magic, sizeof(magic));
        std::memcpy(header + 8, &format_version, 4);
        std::memcpy(header + 12, &meta_off, 8);
        const std::uint64_t meta_size = meta.size();
        std::memcpy(header + 20, &meta_size, 8);
        io.pwrite(header, header_size, 0);
    }

    // every rank writes its own pieces into the shared layout
    auto visit = [&](auto&& self, Object& obj) -> void {
        if (obj.kind == ObjectKind::Dataset) {
            const std::size_t elem = obj.type.size();
            for (const auto& piece : obj.pieces) {
                for (const auto& run : piece.filespace.runs())
                    io.pwrite(piece.owned.data() + run.packed_off * elem, run.len * elem,
                              obj.file_data_offset + run.file_off * elem);
            }
        }
        for (auto& c : obj.children) self(self, *c);
    };
    visit(visit, *f.root);

    io.close();
    if (collective()) comm_.barrier(); // file complete only when all ranks wrote
}

void NativeVol::file_flush(void* file) {
    auto it = files_.find(node(file));
    if (it == files_.end()) throw Error("h5: file_flush on unknown handle");
    // created files: persist the current state, keep staging writable;
    // opened (read) files have nothing to flush
    if (it->second->writable) write_created_file(*it->second);
}

void NativeVol::file_close(void* file) {
    auto it = files_.find(node(file));
    if (it == files_.end()) throw Error("h5: file_close on unknown handle");
    if (it->second->writable) write_created_file(*it->second);
    files_.erase(it);
}

void* NativeVol::group_create(void* parent, const std::string& name) {
    Object* p = node(parent);
    if (p->find_child(name)) throw Error("h5: '" + name + "' already exists in " + p->path());
    return p->add_child(std::make_unique<Object>(ObjectKind::Group, name));
}

void* NativeVol::group_open(void* parent, const std::string& path) {
    Object* obj = node(parent)->resolve(path);
    if (!obj || obj->kind == ObjectKind::Dataset)
        throw Error("h5: group '" + path + "' not found under " + node(parent)->path());
    return obj;
}

void* NativeVol::dataset_create(void* parent, const std::string& name, const Datatype& type,
                                const Dataspace& space) {
    Object* p = node(parent);
    if (p->find_child(name)) throw Error("h5: '" + name + "' already exists in " + p->path());
    auto* d  = p->add_child(std::make_unique<Object>(ObjectKind::Dataset, name));
    d->type  = type;
    d->space = Dataspace(space.dims()); // extent only; selection stays "all"
    return d;
}

void* NativeVol::dataset_open(void* parent, const std::string& path) {
    Object* obj = node(parent)->resolve(path);
    if (!obj || obj->kind != ObjectKind::Dataset)
        throw Error("h5: dataset '" + path + "' not found under " + node(parent)->path());
    return obj;
}

Datatype NativeVol::dataset_type(void* dset) { return node(dset)->type; }

Dataspace NativeVol::dataset_space(void* dset) { return node(dset)->space; }

void NativeVol::dataset_write(void* dset, const Dataspace& memspace, const Dataspace& filespace,
                              const void* buf) {
    Object*   d = node(dset);
    OpenFile& f = owner_of(d);
    if (!f.writable) throw Error("h5: dataset_write on a read-only file");
    check_spaces(memspace, filespace, *d, "dataset_write");

    DataPiece piece;
    piece.filespace = filespace;
    piece.ownership = Ownership::Deep;
    piece.owned.resize(filespace.npoints() * d->type.size());
    pack_selection(memspace, buf, d->type.size(), piece.owned.data());
    d->pieces.push_back(std::move(piece));
}

void NativeVol::dataset_read(void* dset, const Dataspace& memspace, const Dataspace& filespace,
                             void* buf) {
    Object*   d = node(dset);
    OpenFile& f = owner_of(d);
    check_spaces(memspace, filespace, *d, "dataset_read");

    const std::size_t      elem = d->type.size();
    std::vector<std::byte> packed(filespace.npoints() * elem); // zero = fill value
    if (f.writable) {
        read_from_pieces(*d, filespace, packed.data());
    } else {
        for (const auto& run : filespace.runs())
            f.io.pread(packed.data() + run.packed_off * elem, run.len * elem,
                       d->file_data_offset + run.file_off * elem);
    }
    unpack_selection(memspace, packed.data(), elem, buf);
}

void NativeVol::dataset_set_extent(void* dset, const Extent& new_dims) {
    Object*   d = node(dset);
    OpenFile& f = owner_of(d);
    if (!f.writable) throw Error("h5: dataset_set_extent on a read-only file");
    d->space.grow_extent(new_dims);
    // rebase recorded pieces onto the new extent so their linearization
    // stays consistent with the grown dataset
    for (auto& piece : d->pieces) piece.filespace = piece.filespace.with_dims(new_dims);
}

std::vector<std::string> NativeVol::list_attributes(void* obj) {
    std::vector<std::string> names;
    for (const auto& a : node(obj)->attributes) names.push_back(a.name);
    return names;
}

void NativeVol::unlink(void* parent, const std::string& path) {
    Object* p = node(parent);
    if (!owner_of(p).writable) throw Error("h5: unlink on a read-only file");
    Object* target = p->resolve(path);
    if (!target || !target->parent)
        throw Error("h5: cannot unlink '" + path + "'");
    Object* holder = target->parent;
    for (auto it = holder->children.begin(); it != holder->children.end(); ++it)
        if (it->get() == target) {
            holder->children.erase(it);
            return;
        }
}

void NativeVol::attribute_write(void* obj, const std::string& name, const Datatype& type,
                                const Dataspace& space, const void* buf) {
    Object* o = node(obj);
    auto*   a = o->find_attribute(name);
    if (!a) {
        o->attributes.push_back({});
        a = &o->attributes.back();
    }
    a->name  = name;
    a->type  = type;
    a->space = space;
    a->data.resize(space.npoints() * type.size());
    std::memcpy(a->data.data(), buf, a->data.size());
}

std::optional<Vol::AttrInfo> NativeVol::attribute_info(void* obj, const std::string& name) {
    if (auto* a = node(obj)->find_attribute(name)) return AttrInfo{a->type, a->space};
    return std::nullopt;
}

void NativeVol::attribute_read(void* obj, const std::string& name, void* buf) {
    auto* a = node(obj)->find_attribute(name);
    if (!a) throw Error("h5: attribute '" + name + "' not found on " + node(obj)->path());
    std::memcpy(buf, a->data.data(), a->data.size());
}

std::vector<std::string> NativeVol::list_children(void* obj) {
    std::vector<std::string> names;
    for (const auto& c : node(obj)->children) names.push_back(c->name);
    return names;
}

bool NativeVol::exists(void* obj, const std::string& path) {
    return node(obj)->resolve(path) != nullptr;
}

} // namespace h5
