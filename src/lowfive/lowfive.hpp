#pragma once

/// Umbrella header for LowFive: an in situ data transport layer for HPC
/// workflows, implemented as a VOL plugin over the MiniH5 data model.
/// Reproduction of Peterka et al., "LowFive: In Situ Data Transport for
/// High-Performance Workflows", IPDPS 2023.

#include <h5/h5.hpp>        // IWYU pragma: export

#include "config.hpp"        // IWYU pragma: export
#include "metadata_vol.hpp"  // IWYU pragma: export
#include "dist_vol.hpp"      // IWYU pragma: export
#include "stream/stream.hpp" // IWYU pragma: export
