#pragma once

#include "config.hpp"

#include <h5/native_vol.hpp>
#include <h5/tree.hpp>
#include <h5/vol.hpp>

#include <cstdint>
#include <map>
#include <memory>

namespace lowfive {

/// LowFive's metadata VOL (paper §III-A, levels (a) base and (b) metadata):
/// intercepts every data-model call, replicates the user's HDF5 hierarchy
/// in an in-memory metadata tree, and — per user-configurable patterns —
/// keeps dataset data in memory (deep copies or zero-copy shallow
/// references) and/or passes calls through to the terminal (native) VOL
/// for physical file I/O.
///
/// Defaults: everything in memory ("*"/"*"), no passthru, deep copies.
/// In-memory files are retained after close so that they can be reopened
/// by a consumer or served remotely (see DistMetadataVol).
class MetadataVol : public h5::Vol {
public:
    /// `passthru_vol` is the terminal VOL used for physical storage; when
    /// null, a serial NativeVol is created on demand.
    explicit MetadataVol(h5::VolPtr passthru_vol = nullptr);

    // --- configuration, mirroring LowFive's set_memory/set_passthru/set_zerocopy
    void set_memory(const std::string& file_pattern, const std::string& dset_pattern);
    void set_passthru(const std::string& file_pattern, const std::string& dset_pattern);
    void set_zerocopy(const std::string& file_pattern, const std::string& dset_pattern);
    void clear_memory() { memory_.clear(); }
    void clear_passthru() { passthru_.clear(); }

    /// Retained in-memory tree of a closed (or open) file; nullptr if none.
    h5::Object* find_file(const std::string& name);
    /// Release a retained in-memory file.
    virtual void drop_file(const std::string& name);
    std::vector<std::string> retained_files() const;

    // --- Vol interface -----------------------------------------------------
    void* file_create(const std::string& name) override;
    void* file_open(const std::string& name) override;
    void  file_close(void* file) override;
    void  file_flush(void* file) override;

    void* group_create(void* parent, const std::string& name) override;
    void* group_open(void* parent, const std::string& path) override;

    void* dataset_create(void* parent, const std::string& name, const h5::Datatype& type,
                         const h5::Dataspace& space) override;
    void*         dataset_open(void* parent, const std::string& path) override;
    h5::Datatype  dataset_type(void* dset) override;
    h5::Dataspace dataset_space(void* dset) override;
    void dataset_write(void* dset, const h5::Dataspace& memspace, const h5::Dataspace& filespace,
                       const void* buf) override;
    void dataset_read(void* dset, const h5::Dataspace& memspace, const h5::Dataspace& filespace,
                      void* buf) override;
    void dataset_set_extent(void* dset, const h5::Extent& new_dims) override;

    void attribute_write(void* obj, const std::string& name, const h5::Datatype& type,
                         const h5::Dataspace& space, const void* buf) override;
    std::optional<AttrInfo> attribute_info(void* obj, const std::string& name) override;
    void attribute_read(void* obj, const std::string& name, void* buf) override;

    std::vector<std::string> list_attributes(void* obj) override;
    void                     unlink(void* parent, const std::string& path) override;

    std::vector<std::string> list_children(void* obj) override;
    bool                     exists(void* obj, const std::string& path) override;

protected:
    struct HandleBox;

    struct FileEntry {
        std::string                 name;
        /// In-memory replica (null for pure passthru). Shared: each MVCC
        /// snapshot of the file (DistMetadataVol) holds the tree of the
        /// version it published, so a rewrite or a streaming-window GC
        /// replacing/erasing the entry never frees a tree still being
        /// served. Frozen — never mutated — once the file is closed.
        std::shared_ptr<h5::Object> root;
        bool                        memory   = false;
        bool                        passthru = false;
        bool                        writable = false;
        void*                       native   = nullptr; ///< open native file handle
        bool                        remote   = false;   ///< consumer side of DistMetadataVol
        int                         conn     = -1;      ///< connection index when remote
        std::uint64_t               version  = 0;       ///< producer publish version (remote)

        std::vector<std::unique_ptr<HandleBox>> handles; ///< live object handles
    };

    /// An issued object handle, pairing the in-memory node with the
    /// corresponding native handle (either may be null).
    struct HandleBox {
        h5::Object* node   = nullptr;
        void*       native = nullptr;
        FileEntry*  file   = nullptr;
    };

    h5::Vol&   native();
    HandleBox* box(void* h) { return static_cast<HandleBox*>(h); }
    HandleBox* make_handle(FileEntry& f, h5::Object* node, void* nat);
    bool       zerocopy_for(const FileEntry& f, const std::string& dset_path) const;

    /// Hooks for DistMetadataVol.
    virtual void after_file_close(FileEntry& entry);
    virtual void remote_dataset_read(FileEntry& f, h5::Object* node, const h5::Dataspace& memspace,
                                     const h5::Dataspace& filespace, void* buf);

    h5::VolPtr               passthru_vol_;
    std::vector<PatternPair> memory_{{"*", "*"}};
    std::vector<PatternPair> passthru_;
    std::vector<PatternPair> zerocopy_;

    std::map<std::string, FileEntry> files_;
};

} // namespace lowfive
