#pragma once

/// The per-rank staging-window state machine of the streaming transport.
///
/// One StepWindow lives on every producer rank per stream, guarded by the
/// owning DistMetadataVol's serve mutex. It tracks, per published step,
/// the live consumer pins (refs) and the total number of acquires, and
/// implements the policy-dependent admission/eviction rules (see
/// DESIGN.md § Streaming transport for the full state machine):
///
///  - a step is *consumed* when no consumer holds it and every still-
///    active consumer rank has either acquired it or finished the stream;
///  - `block`: only consumed steps are evicted — when the window is full
///    of unconsumed steps the producer waits (can_admit() drives the
///    wait predicate);
///  - `drop` / `latest_only`: the oldest unheld step is evicted even if
///    unconsumed (counted as dropped); when *every* windowed step is
///    pinned the publish is admitted anyway (bounded overcommit — one
///    held step per consumer rank) so the producer never blocks.
///
/// Pure bookkeeping: no locking, no communication, no clocks — fully
/// unit-testable and deterministic under the cooperative scheduler.

#include "step.hpp"

#include <check/race.hpp>

#include <cstdint>
#include <map>
#include <vector>

namespace lowfive::stream {

class StepWindow {
public:
    explicit StepWindow(StreamConfig cfg) : cfg_(cfg.normalized()) {}

    const StreamConfig& config() const { return cfg_; }

    std::size_t occupancy() const { return steps_.size(); }
    bool        empty() const { return steps_.empty(); }

    /// End of stream: no further publishes; pending acquires past the
    /// last step answer "eos" instead of deferring.
    void set_eos() {
        L5_SHARED_WRITE(this, "window", "window/set_eos");
        eos_ = true;
    }
    bool eos() const { return eos_; }

    /// Consumer-population accounting: `expected` is the number of
    /// consumer tasks subscribed to this stream (set once at stream
    /// begin); consumer_done() retires one (its StreamDone arrived).
    void set_expected_consumers(std::uint64_t n) { expected_ = n; }
    std::uint64_t expected_consumers() const { return expected_; }
    void          consumer_done() {
        L5_SHARED_WRITE(this, "window", "window/consumer_done");
        ++dones_;
    }
    std::uint64_t done_consumers() const { return dones_; }

    /// Would publishing one more step succeed without evicting an
    /// unconsumed step? (The block-policy wait predicate.)
    bool can_admit() const;

    /// A step evicted from the window; `dropped` means no consumer ever
    /// read it although consumers were subscribed (drop/latest_only
    /// eviction or skip, or a premature stream end).
    struct Evicted {
        StepId step;
        bool   dropped = false;
    };

    /// Evict per policy until the window has room (or nothing more may
    /// be evicted — under drop/latest_only the caller admits anyway;
    /// under block the caller must have waited on can_admit() first).
    /// Returns the evicted steps for GC.
    std::vector<Evicted> make_room();

    /// Housekeeping after a release/done changed the window: GC every
    /// consumed step, then (drop/latest_only) drain overcommit back down
    /// to the window budget by evicting the oldest unheld steps.
    std::vector<Evicted> reap();

    /// Admit a published step. Steps must be strictly increasing.
    /// `publish_ns` is an opaque timestamp echoed back at first drain
    /// (end-to-end latency accounting).
    void publish(StepId step, std::uint64_t publish_ns);

    /// Most recently published step (none before the first publish).
    StepId last_published() const { return last_published_; }

    /// Coordinator-side acquire: grant the oldest windowed step >= `min`
    /// (the newest instead when `latest`), pinning it. `retry_later`
    /// means nothing is available yet and the stream is still open — the
    /// caller defers the request until the next publish or eos.
    struct Acquire {
        enum class Status { granted, eos, retry_later };
        Status status = Status::retry_later;
        StepId step;
    };
    Acquire acquire(StepId min, bool latest);

    /// Non-coordinator pin; false when the step is gone (this rank's
    /// window raced ahead — the consumer releases and retries higher).
    bool pin(StepId step);

    /// Drop one pin. First release that empties the pins of an acquired
    /// step reports it drained (with the publish timestamp, for latency
    /// accounting); nullopt when the step is unknown or unpinned — a
    /// protocol error the caller escalates.
    struct Released {
        bool          first_drain = false;
        std::uint64_t publish_ns  = 0;
    };
    std::optional<Released> release(StepId step);

    /// Fully drained: stream ended, every subscribed consumer finished,
    /// and no step is still pinned.
    bool drained() const;

    /// Evict everything (terminal GC once drained, or teardown).
    std::vector<Evicted> clear();

private:
    struct StepInfo {
        std::uint64_t refs       = 0; ///< live consumer pins on this rank
        std::uint64_t acquires   = 0; ///< total grants + pins ever taken
        std::uint64_t publish_ns = 0;
        bool          drain_counted = false;
    };

    bool consumed(const StepInfo& info) const {
        return info.refs == 0 && info.acquires + dones_ >= expected_;
    }
    bool never_read(const StepInfo& info) const {
        return info.acquires == 0 && expected_ > 0;
    }

    StreamConfig               cfg_;
    std::map<StepId, StepInfo> steps_;
    bool                       eos_      = false;
    std::uint64_t              expected_ = 0;
    std::uint64_t              dones_    = 0;
    StepId                     last_published_;
};

} // namespace lowfive::stream
