#pragma once

/// User-facing streaming API: ADIOS2-style begin_step/end_step on the
/// producer and subscribe/next_step on the consumer, layered over the
/// DistMetadataVol step protocol (see DESIGN.md § Streaming transport).
///
/// Producer:
///     stream::Writer w(vol, "sim.h5");          // registers the stream
///     for (int t = 0; t < nsteps; ++t) {
///         h5::File& f = w.begin_step();          // a fresh writable file
///         ... create groups/datasets, write ...
///         w.end_step();                          // publish (may block /
///     }                                          //  drop per policy)
///     w.close();                                 // end of stream
///
/// Consumer:
///     stream::Reader r(vol, "sim.h5");           // subscribes
///     while (r.next_step()) {                    // acquire + pin a step
///         h5::File& f = r.file();                // frozen snapshot
///         ... open datasets, read ...
///     }                                          // false at end of stream
///     r.close();                                 // unsubscribe
///
/// Every step is an immutable versioned snapshot: end_step() indexes and
/// publishes it into the bounded staging window, next_step() pins one
/// step on every producer rank so it cannot be evicted while reads are
/// in flight, and closing the step's file releases those pins. Both
/// sides resolve their StreamConfig the same way (explicit argument >
/// vol->set_stream pattern > L5_STEP_WINDOW/L5_STEP_POLICY), so keep the
/// two in agreement — workflow links with `stream:` wire both ends.

#include "../dist_vol.hpp"
#include "step.hpp"

#include <h5/api.hpp>

#include <memory>
#include <optional>
#include <string>

namespace lowfive::stream {

/// Producer handle: publishes versioned snapshots of `name`. Forces the
/// owning vol into background serving (consumers drain asynchronously).
/// Requires in-memory mode for the stream's base name.
class Writer {
public:
    Writer(std::shared_ptr<DistMetadataVol> vol, std::string name,
           std::optional<StreamConfig> cfg = std::nullopt);
    ~Writer(); ///< implicit close(); swallows errors like h5::File

    Writer(const Writer&)            = delete;
    Writer& operator=(const Writer&) = delete;

    const StreamConfig& config() const { return cfg_; }

    /// Open a fresh writable snapshot for the next step.
    h5::File& begin_step();

    /// Publish the open snapshot into the staging window. Under the
    /// block policy this may wait for window space (honoring the
    /// stream's timeout_ms or the communicator deadline — TimeoutError,
    /// never a hang); under drop/latest_only it never waits.
    void end_step();

    /// The last published step (none before the first end_step()).
    StepId current_step() const { return current_; }

    /// End the stream: consumers past the last step see end-of-stream.
    void close();

private:
    std::shared_ptr<DistMetadataVol> vol_;
    std::string                      name_;
    StreamConfig                     cfg_;
    h5::File                         file_;
    StepId                           current_;
    bool                             open_step_ = false;
    bool                             closed_    = false;
};

/// Consumer handle: drains steps of `name` at its own pace. next_step()
/// and close() are collective over the consumer task's ranks: rank 0
/// runs the grant/pin protocol and broadcasts the step, so every rank
/// reads the same frozen snapshot.
class Reader {
public:
    Reader(std::shared_ptr<DistMetadataVol> vol, std::string name,
           std::optional<StreamConfig> cfg = std::nullopt);
    ~Reader(); ///< implicit close(); swallows errors like h5::File

    Reader(const Reader&)            = delete;
    Reader& operator=(const Reader&) = delete;

    const StreamConfig& config() const { return cfg_; }

    /// Release the current step (if any) and acquire the next one: the
    /// oldest available step newer than the last one seen — or the
    /// newest published step under latest_only, skipping intermediate
    /// steps. Blocks until a step is published; returns false at end of
    /// stream. The acquired step is pinned on every producer rank until
    /// the next next_step()/close().
    bool next_step();

    /// The step currently held (none before the first next_step()).
    StepId current_step() const { return current_; }

    /// The frozen snapshot of the current step; valid between a
    /// successful next_step() and the following next_step()/close().
    h5::File& file();

    /// Release the current step and unsubscribe (the producer may then
    /// retire the stream once every consumer has closed).
    void close();

private:
    std::shared_ptr<DistMetadataVol> vol_;
    std::string                      name_;
    StreamConfig                     cfg_;
    h5::File                         file_;
    StepId                           current_;
    bool                             done_   = false;
    bool                             closed_ = false;
};

} // namespace lowfive::stream
