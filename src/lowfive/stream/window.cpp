#include "window.hpp"

#include <check/race.hpp>
#include <h5/dataspace.hpp> // h5::Error

namespace lowfive::stream {

bool StepWindow::can_admit() const {
    L5_SHARED_READ(this, "window", "window/can_admit");
    if (steps_.size() < cfg_.window) return true;
    for (const auto& [step, info] : steps_)
        if (consumed(info)) return true;
    return false;
}

std::vector<StepWindow::Evicted> StepWindow::make_room() {
    L5_SHARED_WRITE(this, "window", "window/make_room");
    std::vector<Evicted> out;
    while (steps_.size() >= cfg_.window) {
        // oldest consumed step first: a clean eviction under any policy
        auto victim = steps_.end();
        for (auto it = steps_.begin(); it != steps_.end(); ++it)
            if (consumed(it->second)) {
                victim = it;
                break;
            }
        if (victim == steps_.end() && cfg_.policy != StepPolicy::Block) {
            // drop/latest_only: sacrifice the oldest unheld step; when
            // every step is pinned, admit anyway (overcommit) — the
            // producer must never wait on a slow consumer
            for (auto it = steps_.begin(); it != steps_.end(); ++it)
                if (it->second.refs == 0) {
                    victim = it;
                    break;
                }
        }
        if (victim == steps_.end()) break;
        out.push_back({victim->first, never_read(victim->second)});
        steps_.erase(victim);
    }
    return out;
}

std::vector<StepWindow::Evicted> StepWindow::reap() {
    L5_SHARED_WRITE(this, "window", "window/reap");
    std::vector<Evicted> out;
    for (auto it = steps_.begin(); it != steps_.end();) {
        if (consumed(it->second)) {
            out.push_back({it->first, never_read(it->second)});
            it = steps_.erase(it);
        } else {
            ++it;
        }
    }
    if (cfg_.policy != StepPolicy::Block)
        for (auto it = steps_.begin(); it != steps_.end() && steps_.size() > cfg_.window;) {
            if (it->second.refs == 0) {
                out.push_back({it->first, never_read(it->second)});
                it = steps_.erase(it);
            } else {
                ++it;
            }
        }
    return out;
}

void StepWindow::publish(StepId step, std::uint64_t publish_ns) {
    L5_SHARED_WRITE(this, "window", "window/publish");
    if (!step.valid()) throw h5::Error("lowfive: publish of an invalid step");
    if (step <= last_published_)
        throw h5::Error("lowfive: stream steps must be published in strictly increasing order");
    if (eos_) throw h5::Error("lowfive: publish after end of stream");
    StepInfo info;
    info.publish_ns = publish_ns;
    steps_.emplace(step, info);
    last_published_ = step;
}

StepWindow::Acquire StepWindow::acquire(StepId min, bool latest) {
    L5_SHARED_WRITE(this, "window", "window/acquire");
    Acquire r;
    auto    it = steps_.lower_bound(min);
    if (it == steps_.end()) {
        r.status = eos_ ? Acquire::Status::eos : Acquire::Status::retry_later;
        return r;
    }
    if (latest) it = std::prev(steps_.end()); // newest windowed step
    ++it->second.refs;
    ++it->second.acquires;
    r.status = Acquire::Status::granted;
    r.step   = it->first;
    return r;
}

bool StepWindow::pin(StepId step) {
    L5_SHARED_WRITE(this, "window", "window/pin");
    auto it = steps_.find(step);
    if (it == steps_.end()) return false;
    ++it->second.refs;
    ++it->second.acquires;
    return true;
}

std::optional<StepWindow::Released> StepWindow::release(StepId step) {
    L5_SHARED_WRITE(this, "window", "window/release");
    auto it = steps_.find(step);
    if (it == steps_.end() || it->second.refs == 0) return std::nullopt;
    --it->second.refs;
    Released r;
    r.publish_ns = it->second.publish_ns;
    if (it->second.refs == 0 && !it->second.drain_counted) {
        it->second.drain_counted = true;
        r.first_drain            = true;
    }
    return r;
}

bool StepWindow::drained() const {
    L5_SHARED_READ(this, "window", "window/drained");
    if (!eos_ || dones_ < expected_) return false;
    for (const auto& [step, info] : steps_)
        if (info.refs != 0) return false;
    return true;
}

std::vector<StepWindow::Evicted> StepWindow::clear() {
    L5_SHARED_WRITE(this, "window", "window/clear");
    std::vector<Evicted> out;
    out.reserve(steps_.size());
    for (const auto& [step, info] : steps_)
        out.push_back({step, never_read(info)});
    steps_.clear();
    return out;
}

} // namespace lowfive::stream
