#pragma once

/// Step-versioned streaming transport — core value types.
///
/// A *stream* is a named sequence of immutable file snapshots ("steps"):
/// the producer publishes step 0, 1, 2, … of a base file name into a
/// bounded staging window and consumers drain them asynchronously at
/// their own rate (ADIOS2-style begin_step/end_step; see DESIGN.md
/// § Streaming transport). This header holds the types shared by the
/// window state machine, the VOL wire protocol, and the user-facing
/// Writer/Reader: the typed step identifier, the backpressure policy,
/// the per-stream configuration, and the versioned-name encoding that
/// maps a (stream, step) pair onto the existing file namespace.

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace lowfive::stream {

/// A step version. Deliberately not a raw integer: all step arithmetic
/// (successor, ordering, the none/first distinction) lives here, so the
/// transport cannot mix step versions with ranks, counts, or request ids
/// (scripts/lint.py enforces that stream-facing headers never expose raw
/// integer step indices). Default-constructed = "none" — it orders before
/// every valid step, so "resume from the beginning" is StepId{}.next().
class StepId {
public:
    constexpr StepId() = default; ///< none (orders before every valid step)
    constexpr explicit StepId(std::uint64_t index) : raw_(index + 1) {}

    static constexpr StepId first() { return StepId(0); }

    constexpr bool valid() const { return raw_ != 0; }

    /// The zero-based step index; only meaningful when valid().
    constexpr std::uint64_t value() const { return raw_ - 1; }

    /// The successor step ("none".next() is the first step).
    constexpr StepId next() const { return valid() ? StepId(value() + 1) : first(); }

    friend constexpr auto operator<=>(StepId a, StepId b) = default;

private:
    std::uint64_t raw_ = 0; ///< value() + 1; 0 = none
};

/// What happens when a publish finds the staging window full.
enum class StepPolicy : std::uint8_t {
    Block,      ///< producer waits for a consumed step (honors deadlines)
    Drop,       ///< oldest unheld step is evicted; the producer never waits
    LatestOnly, ///< window of 1: consumers always jump to the newest step
};

/// Parse "block" | "drop" | "latest_only"; nullopt on anything else.
std::optional<StepPolicy> parse_policy(const std::string& s);
const char*               to_string(StepPolicy p);

/// Per-stream knobs, resolved at Writer/Reader construction: explicit
/// argument > DistMetadataVol::set_stream pattern > environment.
struct StreamConfig {
    std::size_t window = 4;                       ///< staging window (L5_STEP_WINDOW)
    StepPolicy  policy = StepPolicy::Block;       ///< full-window behavior (L5_STEP_POLICY)
    /// Block policy only: how long one publish may wait for window space
    /// before throwing TimeoutError; <= 0 defers to the communicator's
    /// effective deadline (with_deadline / L5_TIMEOUT_MS).
    std::int64_t timeout_ms = 0;

    /// Window/policy from L5_STEP_WINDOW / L5_STEP_POLICY (defaults 4 /
    /// block). Throws h5::Error on a malformed value.
    static StreamConfig from_env();

    /// Enforce the policy invariants: latest_only forces window 1, and
    /// every window is at least 1.
    StreamConfig normalized() const;
};

/// Versioned file names: step `s` of stream "sim.h5" is stored under the
/// internal name "sim.h5<US>s" (US = 0x1f, a character no portable file
/// name contains, so versioned names can never collide with user files).
/// Pattern matching (serve/consume routes, memory/passthru/compress
/// rules) is always done against the *base* name.
std::string step_name(const std::string& base, StepId step);

/// Split a versioned name into (base, step); nullopt for ordinary names.
std::optional<std::pair<std::string, StepId>> split_step_name(const std::string& name);

/// The stream base of `name` (identity for ordinary names).
std::string base_name(const std::string& name);

} // namespace lowfive::stream
