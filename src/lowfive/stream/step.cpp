#include "step.hpp"

#include <h5/dataspace.hpp> // h5::Error

#include <cstdlib>

namespace lowfive::stream {

namespace {

/// US (unit separator): never part of a portable file name, so versioned
/// names cannot collide with user files and split_step_name is exact.
constexpr char sep = '\x1f';

} // namespace

std::optional<StepPolicy> parse_policy(const std::string& s) {
    if (s == "block") return StepPolicy::Block;
    if (s == "drop") return StepPolicy::Drop;
    if (s == "latest_only") return StepPolicy::LatestOnly;
    return std::nullopt;
}

const char* to_string(StepPolicy p) {
    switch (p) {
    case StepPolicy::Block: return "block";
    case StepPolicy::Drop: return "drop";
    case StepPolicy::LatestOnly: return "latest_only";
    }
    return "?";
}

StreamConfig StreamConfig::from_env() {
    StreamConfig cfg;
    if (const char* e = std::getenv("L5_STEP_WINDOW"); e && *e) {
        char*      end = nullptr;
        const long v   = std::strtol(e, &end, 10);
        if (!end || *end != '\0' || v <= 0)
            throw h5::Error("lowfive: L5_STEP_WINDOW must be a positive integer, got '"
                            + std::string(e) + "'");
        cfg.window = static_cast<std::size_t>(v);
    }
    if (const char* e = std::getenv("L5_STEP_POLICY"); e && *e) {
        auto p = parse_policy(e);
        if (!p)
            throw h5::Error("lowfive: L5_STEP_POLICY must be block|drop|latest_only, got '"
                            + std::string(e) + "'");
        cfg.policy = *p;
    }
    return cfg;
}

StreamConfig StreamConfig::normalized() const {
    StreamConfig cfg = *this;
    if (cfg.window == 0) cfg.window = 1;
    if (cfg.policy == StepPolicy::LatestOnly) cfg.window = 1;
    return cfg;
}

std::string step_name(const std::string& base, StepId step) {
    if (!step.valid()) throw h5::Error("lowfive: step_name of an invalid step");
    return base + sep + std::to_string(step.value());
}

std::optional<std::pair<std::string, StepId>> split_step_name(const std::string& name) {
    const auto pos = name.rfind(sep);
    if (pos == std::string::npos) return std::nullopt;
    const std::string digits = name.substr(pos + 1);
    if (digits.empty()) return std::nullopt;
    std::uint64_t v = 0;
    for (char c : digits) {
        if (c < '0' || c > '9') return std::nullopt;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return std::make_pair(name.substr(0, pos), StepId(v));
}

std::string base_name(const std::string& name) {
    if (auto split = split_step_name(name)) return split->first;
    return name;
}

} // namespace lowfive::stream
