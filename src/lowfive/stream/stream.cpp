#include "stream.hpp"

namespace lowfive::stream {

// --- Writer ---------------------------------------------------------------------

Writer::Writer(std::shared_ptr<DistMetadataVol> vol, std::string name,
               std::optional<StreamConfig> cfg)
    : vol_(std::move(vol)), name_(std::move(name)) {
    if (!vol_) throw h5::Error("lowfive: stream::Writer requires a vol");
    cfg_ = vol_->stream_begin(name_, cfg);
}

Writer::~Writer() {
    try {
        if (open_step_) file_.close_quiet(); // publishes the dangling step, best effort
        open_step_ = false;
        close();
    } catch (...) {
        // a destructor must not throw; an ill-formed stream already
        // failed elsewhere
    }
}

h5::File& Writer::begin_step() {
    if (closed_) throw h5::Error("lowfive: begin_step on a closed stream '" + name_ + "'");
    if (open_step_)
        throw h5::Error("lowfive: begin_step with a step of '" + name_
                        + "' already open (call end_step first)");
    file_      = h5::File::create(step_name(name_, current_.next()), vol_);
    open_step_ = true;
    return file_;
}

void Writer::end_step() {
    if (!open_step_) throw h5::Error("lowfive: end_step without begin_step on '" + name_ + "'");
    const StepId step = current_.next();
    file_.close(); // publish: admission (backpressure), index, serve
    open_step_ = false;
    current_   = step;
}

void Writer::close() {
    if (closed_) return;
    if (open_step_)
        throw h5::Error("lowfive: Writer::close with an open step of '" + name_
                        + "' (call end_step first)");
    closed_ = true;
    vol_->stream_end(name_);
}

// --- Reader ---------------------------------------------------------------------

Reader::Reader(std::shared_ptr<DistMetadataVol> vol, std::string name,
               std::optional<StreamConfig> cfg)
    : vol_(std::move(vol)), name_(std::move(name)) {
    if (!vol_) throw h5::Error("lowfive: stream::Reader requires a vol");
    cfg_ = vol_->stream_subscribe(name_, cfg);
}

Reader::~Reader() {
    try {
        close();
    } catch (...) {
        // a destructor must not throw
    }
}

bool Reader::next_step() {
    if (closed_) throw h5::Error("lowfive: next_step on a closed stream '" + name_ + "'");
    if (done_) return false;
    const StepId prev = current_;
    if (prev.valid()) {
        file_.close();                      // drop this rank's read handles
        vol_->stream_release(name_, prev);  // collective: unpin everywhere
        current_ = StepId{};
    }
    auto got = vol_->stream_acquire(name_, prev.next(), cfg_.policy == StepPolicy::LatestOnly);
    if (!got) {
        done_ = true;
        return false;
    }
    current_ = *got;
    file_    = h5::File::open(step_name(name_, current_), vol_);
    return true;
}

h5::File& Reader::file() {
    if (!current_.valid() || !file_.valid())
        throw h5::Error("lowfive: Reader::file with no step held (call next_step)");
    return file_;
}

void Reader::close() {
    if (closed_) return;
    closed_ = true;
    if (current_.valid()) {
        file_.close();
        vol_->stream_release(name_, current_);
        current_ = StepId{};
    }
    vol_->stream_unsubscribe(name_);
}

} // namespace lowfive::stream
