#pragma once

/// Per-message wire compression for the serve data plane.
///
/// Payloads of a DataQuery reply trade CPU for wire bandwidth: the serve
/// side compresses each piece before it enters a simmpi envelope, the
/// query side decompresses into the scatter staging. The codec is
/// self-contained (no external libraries):
///
///  - byte shuffle: transpose an array of fixed-width elements so the
///    k-th bytes of all elements are adjacent. Numeric HPC data varies
///    mostly in the low bytes, so the shuffled stream has long
///    near-constant stretches the match finder can fold;
///  - an LZ4-style block format: sequences of [token | literal-run |
///    2-byte little-endian match offset | match-run], with 4-bit
///    literal/match length nibbles extended by 255-saturated bytes and a
///    4-byte minimum match. A 8K-entry hash table of 4-byte prefixes
///    finds matches greedily; the search step grows on incompressible
///    input (acceleration), so worst-case cost stays near memcpy.
///
/// A frame wraps the payload with a magic, the method actually used
/// (raw / lz4 / shuffle+lz4), the element width, and both sizes, so the
/// decoder is self-describing and falls back to a verbatim copy when
/// compression would not have paid.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace lowfive {
namespace codec {

/// Malformed or truncated frame/compressed block.
class CodecError : public std::runtime_error {
public:
    explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

enum class Method : std::uint8_t {
    raw         = 0, ///< payload stored verbatim
    lz4         = 1, ///< LZ4-style block
    shuffle_lz4 = 2, ///< byte-shuffled, then LZ4-style block
};

/// Frame header, little-endian, 24 bytes:
///   u32 magic "L5CZ" | u8 version | u8 method | u16 elem_size |
///   u64 raw_size | u64 payload_size
inline constexpr std::uint32_t frame_magic         = 0x5A43354Cu;
inline constexpr std::uint8_t  frame_version       = 1;
inline constexpr std::size_t   frame_header_bytes  = 24;

/// Upper bound on the LZ4-style output for `n` input bytes (worst case:
/// all literals plus run-length extension bytes).
std::size_t compress_bound(std::size_t n);

/// Compress `n` bytes (elements of `elem` bytes; pass 1 for untyped) and
/// append a complete frame to `out`. Picks shuffle+lz4 for element
/// widths in [2, 16] that divide `n`, plain lz4 otherwise, and stores
/// raw whenever the compressed payload would not be smaller. Returns the
/// frame size in bytes; `chosen` (optional) reports the method used.
std::size_t compress_frame(const std::byte* src, std::size_t n, std::size_t elem,
                           std::vector<std::byte>& out, Method* chosen = nullptr);

/// Validate a frame header and return the raw payload size it decodes to.
std::size_t frame_raw_size(const std::byte* frame, std::size_t frame_size);

/// Decode a frame into `dst`, which must hold frame_raw_size() bytes.
/// Throws CodecError on any malformed input.
void decompress_frame(const std::byte* frame, std::size_t frame_size, std::byte* dst);

// --- building blocks (exposed for tests and benches) ------------------------

/// LZ4-style block compression of `n` bytes into `dst` (capacity `cap`).
/// Returns the compressed size, or 0 when the output would exceed `cap`
/// (caller stores raw instead).
std::size_t lz4_compress(const std::byte* src, std::size_t n, std::byte* dst, std::size_t cap);

/// Decompress an LZ4-style block of `n` bytes into exactly `raw_n` output
/// bytes. Throws CodecError on malformed input.
void lz4_decompress(const std::byte* src, std::size_t n, std::byte* dst, std::size_t raw_n);

/// Byte-shuffle `n` bytes of `elem`-wide elements (n % elem == 0):
/// dst[k * (n/elem) + i] = src[i * elem + k].
void shuffle(const std::byte* src, std::size_t n, std::size_t elem, std::byte* dst);

/// Inverse of shuffle.
void unshuffle(const std::byte* src, std::size_t n, std::size_t elem, std::byte* dst);

/// Modelled wire bandwidth budget: data-plane replies charge their bytes
/// against a token bucket (same scheme as h5::PfsModel) so benches can
/// emulate a constrained interconnect and demonstrate the CPU-for-
/// bandwidth tradeoff. Configured from `L5_WIRE_MBPS` (0 = off, the
/// default: charges are free and no sleeping happens).
class WireModel {
public:
    static WireModel& instance();

    void configure(double bw_MBps);
    void configure_from_env();

    double bandwidth_MBps() const;

    /// Account `bytes` on the wire; sleeps the calling thread until the
    /// modelled transfer completes when a budget is configured.
    void charge(std::uint64_t bytes);

    std::uint64_t bytes_charged() const;
    void          reset_stats();

private:
    WireModel() = default;

    mutable std::mutex mutex_;
    double             bw_MBps_       = 0;
    std::uint64_t      bytes_charged_ = 0;
    std::chrono::steady_clock::time_point available_at_{};
};

} // namespace codec
} // namespace lowfive
