#include "dist_vol.hpp"

#include "codec.hpp"

#include <check/check.hpp>
#include <diy/serialization.hpp>
#include <obs/trace.hpp>
#include <simmpi/sched.hpp>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <set>
#include <thread>

namespace lowfive {

using h5::Dataspace;
using h5::Error;
using h5::Object;
using h5::ObjectKind;

/// Serve-state guard: a plain recursive lock normally; under a
/// deterministic scheduler, contention becomes a scheduling point so a
/// descheduled holder (the background serve thread at one of its send
/// yield points) can be run to release it. Every acquisition first feeds
/// the serve-lock-after-pin lint: under L5_CHECK, constructing a Guard
/// inside a pinned snapshot read section is a CheckError — the query hot
/// path must never block on publish/teardown control state.
class Guard : public simmpi::detail::CoopLock<std::recursive_mutex> {
public:
    Guard(simmpi::detail::Scheduler* s, std::recursive_mutex& m, const char* site)
        : CoopLock((mvcc::note_serve_lock(site), s), m, site) {}
};

namespace {

enum class Op : std::uint8_t {
    MetadataQuery  = 1,
    IntersectQuery = 2,
    DataQuery      = 3,
    Done           = 4,
    // streaming protocol (see DESIGN.md § Streaming transport): the
    // consumer task's rank 0 asks producer rank 0 (the coordinator) for
    // the next step, pins it on every other producer rank, and releases
    // all pins once every consumer rank finished reading the step
    StepNext    = 5, ///< consumer rank 0 → coordinator: grant next step >= min
    StepPin     = 6, ///< consumer rank 0 → other producer ranks: pin granted step
    StepRelease = 7, ///< consumer rank 0 → every producer rank: drop one pin
    StreamDone  = 8, ///< consumer rank 0 → every producer rank: task unsubscribed
};

constexpr int rpc_request    = 901;
constexpr int rpc_reply      = 902; ///< metadata / intersect replies
constexpr int rpc_ready      = 903;
constexpr int rpc_data_reply = 904; ///< data-query replies (separate tag so
                                    ///< eagerly issued data queries cannot
                                    ///< match the intersect drain)

void send_buffer(const simmpi::Comm& ic, int dest, int tag, diy::BinaryBuffer&& bb) {
    ic.send(dest, tag, std::move(bb).take());
}

diy::BinaryBuffer recv_buffer(const simmpi::Comm& ic, int src, int tag, int* from = nullptr) {
    std::vector<std::byte> raw;
    auto                   st = ic.recv(src, tag, raw);
    if (from) *from = st.source;
    return diy::BinaryBuffer(std::move(raw));
}

/// Collect (path, dataset node) pairs in deterministic DFS order.
void collect_datasets(Object* obj, std::vector<std::pair<std::string, Object*>>& out) {
    if (obj->kind == ObjectKind::Dataset) out.emplace_back(obj->path(), obj);
    for (auto& c : obj->children) collect_datasets(c.get(), out);
}

/// Monotonic timestamp for step publish→drain latency accounting.
std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now().time_since_epoch())
                                          .count());
}

} // namespace

DistMetadataVol::DistMetadataVol(simmpi::Comm local, h5::VolPtr passthru_vol)
    : MetadataVol(std::move(passthru_vol)), local_(std::move(local)) {
    // claim the RPC control-tag range for the checker: user traffic on
    // these tags elsewhere is a collision, and the serve loop's any-source
    // request/reply drains are an order-insensitive protocol by design
    local_.check_reserve_tags(rpc_request, rpc_data_reply, "dist_vol");
    if (const char* e = std::getenv("L5_COMPRESS"); e && *e && std::atoi(e) != 0)
        compress_.push_back({"*", "*"});
    codec::WireModel::instance().configure_from_env();
    // arm the serve-lock-after-pin lint alongside the MPI-semantics
    // checker: checked runs also verify the query path stays lock-free
    if (l5check::CheckConfig::from_env()) mvcc::set_lock_lint(true);
    // the same invariant as an l5race lock-order graph rule: acquiring
    // the serve mutex while inside a pinned read section is forbidden
    // even before any cycle exists
    l5race::declare_lock(&mutex_, "dist_vol.mutex");
    l5race::forbid_edge("mvcc.read_section", "dist_vol.mutex",
                        "serve-lock-after-pin: the serve-side query path must stay "
                        "lock-free past the pin");
}

void DistMetadataVol::set_compress(const std::string& file_pattern,
                                   const std::string& dset_pattern) {
    compress_.push_back({file_pattern, dset_pattern});
}

void DistMetadataVol::clear_compress() { compress_.clear(); }

DistMetadataVol::Stats DistMetadataVol::stats() const {
    Stats s;
    s.bytes_served             = c_bytes_served_.value();
    s.bytes_fetched            = c_bytes_fetched_.value();
    s.bytes_wire               = c_bytes_wire_.value();
    s.n_data_queries           = c_data_queries_.value();
    s.n_intersect_queries      = c_intersect_queries_.value();
    s.n_intersect_cache_hits   = c_cache_hits_.value();
    s.n_intersect_cache_misses = c_cache_misses_.value();
    s.n_compressed_pieces      = c_compressed_pieces_.value();
    s.n_zero_copy_pieces       = c_zero_copy_pieces_.value();
    s.n_steps_published        = c_steps_published_.value();
    s.n_steps_dropped          = c_steps_dropped_.value();
    s.n_steps_drained          = c_steps_drained_.value();
    s.n_step_publish_waits     = c_step_publish_waits_.value();
    s.n_steps_acquired         = c_steps_acquired_.value();
    s.n_step_pin_rollbacks     = c_step_pin_rollbacks_.value();
    s.n_snapshots_live         = g_snapshots_live_.value();
    s.n_snapshot_pins          = c_snapshot_pins_.value();
    s.n_snapshot_gc            = c_snapshot_gc_.value();
    return s;
}

DistMetadataVol::~DistMetadataVol() {
    try {
        finish_serving();
    } catch (...) {
        // a destructor must not throw; an ill-formed workflow already
        // failed elsewhere
    }
}

void DistMetadataVol::set_serve_in_background(bool v) {
    Guard lock(local_.scheduler(), mutex_, "set_serve_in_background");
    L5_SHARED_WRITE(this, "background_", "set_serve_in_background");
    background_ = v;
}

void DistMetadataVol::notify_dones() {
    dones_cv_.notify_all();
    if (auto* s = local_.scheduler()) s->notify(&dones_cv_);
}

void DistMetadataVol::background_loop() {
    // any exception — a world abort unblocking the probe, a deadline, a
    // malformed request — must not escape the thread (std::terminate) or
    // strand waiters on dones_cv_: record it and wake everyone instead
    try {
        std::vector<const simmpi::Comm*> comms;
        comms.reserve(serve_conns_.size() + 1);
        for (const auto& c : serve_conns_) comms.push_back(&c.ic);
        comms.push_back(&local_); // self-send on tag rpc_request = shutdown

        for (;;) {
            std::size_t which = 0;
            auto st = simmpi::Comm::probe_any(comms, simmpi::any_source, rpc_request, &which);
            if (which + 1 == comms.size()) {
                std::vector<std::byte> raw;
                local_.recv(st.source, rpc_request, raw);
                if (raw.empty()) return; // shutdown signal
                // deferred-retry nudge: a producer-thread publish parked
                // work for us; replay it here so request handling (and
                // its replies) stays single-threaded
                std::vector<Deferred> pending;
                {
                    Guard lock(local_.scheduler(), mutex_, "serve/deferred");
                    L5_SHARED_WRITE(this, "deferred_", "serve/deferred");
                    pending = std::move(deferred_);
                    deferred_.clear();
                }
                for (auto& d : pending)
                    handle_request(serve_conns_[d.conn], d.src, std::move(d.payload));
                notify_dones();
                continue;
            }
            auto& conn = serve_conns_[which];
            auto  bb   = recv_buffer(conn.ic, st.source, rpc_request);
            // no lock here: handle_request pins a snapshot for the query
            // ops and takes the Guard itself only for control ops
            handle_request(conn, st.source, std::move(bb).take());
            notify_dones();
        }
    } catch (...) {
        {
            Guard lock(local_.scheduler(), mutex_, "serve/record_error");
            L5_SHARED_WRITE(this, "serve_error_", "serve/record_error");
            serve_error_ = std::current_exception();
        }
        notify_dones();
    }
}

void DistMetadataVol::check_pin_leaks() {
    // finalize lint: every snapshot pin taken during the run (round pins,
    // step pins, reader pins) must have been released by now — a leak
    // keeps superseded versions and their data alive forever
    if (const auto n = snapshots_.outstanding_pins(); n != 0)
        local_.check_leak("leaked-snapshot-pin",
                          std::to_string(n)
                              + " snapshot pin(s) still outstanding at finish_serving "
                                "(round or step pins never released)");
}

void DistMetadataVol::finish_serving() {
    if (!serve_thread_.joinable()) {
        // sync mode: every round was served to completion inside close,
        // so the trailing round pins (kept for possible reopens of the
        // last version) can go now
        {
            Guard lock(local_.scheduler(), mutex_, "finish_serving/clear_pins");
            L5_SHARED_WRITE(this, "round_pins_", "finish_serving/clear_pins");
            round_pins_.clear();
        }
        check_pin_leaks();
        return;
    }
    auto*              sched = local_.scheduler();
    std::exception_ptr err;
    try {
        Guard lock(sched, mutex_, "finish_serving");
        simmpi::detail::coop_wait(sched, dones_cv_, lock, "finish_serving/dones", [&] {
            L5_SHARED_READ(this, "dones_", "finish_serving/dones");
            L5_SHARED_READ(this, "streams_", "finish_serving/dones");
            return rounds_done_locked();
        });
        L5_SHARED_READ(this, "serve_error_", "finish_serving/dones");
        err = serve_error_;
    } catch (...) {
        // deadline / deadlock / abort surfaced at the wait itself: the
        // serve thread must still be woken and joined below, or the
        // std::thread member is destroyed joinable (std::terminate)
        err = std::current_exception();
    }
    bool serve_died;
    {
        Guard lock(sched, mutex_, "finish_serving/check_error");
        L5_SHARED_READ(this, "serve_error_", "finish_serving/check_error");
        serve_died = serve_error_ != nullptr;
    }
    if (!serve_died) {
        try {
            local_.send(local_.rank(), rpc_request, nullptr, 0); // shutdown signal
        } catch (...) {
            // the send can only fail when the world was aborted under us;
            // the same poison has already woken the serve thread
            if (!err) err = std::current_exception();
        }
    }
    // under a deterministic scheduler the joiner steps away so the serve
    // thread can be scheduled to process the shutdown and exit
    simmpi::detail::coop_join(sched, serve_thread_);
    if (err) {
        {
            Guard lock(sched, mutex_, "finish_serving/clear_error");
            L5_SHARED_WRITE(this, "serve_error_", "finish_serving/clear_error");
            serve_error_ = nullptr; // surfaced once
        }
        std::rethrow_exception(err);
    }
    {
        // every round completed (the dones wait above): no in-flight
        // reader is left, so the trailing round pins can go
        Guard lock(sched, mutex_, "finish_serving/clear_pins");
        L5_SHARED_WRITE(this, "round_pins_", "finish_serving/clear_pins");
        round_pins_.clear();
    }
    check_pin_leaks();
}

void* DistMetadataVol::file_create(const std::string& name) {
    Guard lock(local_.scheduler(), mutex_, "file_create");
    return MetadataVol::file_create(name);
}

void DistMetadataVol::file_close(void* file) {
    Guard lock(local_.scheduler(), mutex_, "file_close");
    // closing a writable step snapshot publishes it: run the window
    // admission (and any block-policy backpressure wait) up front, while
    // mutex_ is held exactly once — the wait must release it fully so
    // the serve thread can process releases that free a slot
    if (HandleBox* h = box(file); h->file && h->file->writable && !h->file->remote)
        if (auto split = stream::split_step_name(h->file->name)) stream_admit(lock, split->first);
    MetadataVol::file_close(file);
}

void DistMetadataVol::drop_file(const std::string& name) {
    auto* sched = local_.scheduler();
    Guard lock(sched, mutex_, "drop_file");
    // never drop a file the background server may still be serving
    // (conservative: waits for every outstanding round; a dead server
    // cannot serve anything, so its error also ends the wait)
    if (serve_thread_.joinable())
        simmpi::detail::coop_wait(sched, dones_cv_, lock, "drop_file/dones", [&] {
            L5_SHARED_READ(this, "serve_error_", "drop_file/dones");
            L5_SHARED_READ(this, "dones_", "drop_file/dones");
            return serve_error_ || dones_received_ >= dones_expected_;
        });
    // every round is done (the wait above): this file's round pins can
    // go, and its snapshot line is retired — the current version is
    // superseded and GC'd as soon as the last pin drops
    L5_SHARED_WRITE(this, "round_pins_", "drop_file");
    for (auto it = round_pins_.begin(); it != round_pins_.end();)
        it = std::get<2>(it->first) == name ? round_pins_.erase(it) : std::next(it);
    snapshots_.retire(name);
    // the consumer-side intersect cache survives: its entries are valid
    // for exactly one publish version, so a later rewrite can never
    // serve stale sets
    MetadataVol::drop_file(name);
}

void DistMetadataVol::invalidate_producer_cache(const std::string& file) {
    producer_cache_.erase(file);
}

void DistMetadataVol::serve_to(simmpi::Comm intercomm, std::string pattern) {
    intercomm.check_reserve_tags(rpc_request, rpc_data_reply, "dist_vol");
    serve_conns_.push_back({std::move(intercomm), std::move(pattern)});
}

void DistMetadataVol::consume_from(simmpi::Comm intercomm, std::string pattern) {
    intercomm.check_reserve_tags(rpc_request, rpc_data_reply, "dist_vol");
    consume_conns_.push_back({std::move(intercomm), std::move(pattern)});
}

int DistMetadataVol::route_consume(const std::string& name) const {
    // step snapshots route like their base name: connection patterns
    // name streams, not individual step files
    const std::string base = stream::base_name(name);
    for (std::size_t i = 0; i < consume_conns_.size(); ++i)
        if (glob_match(consume_conns_[i].pattern, base)) return static_cast<int>(i);
    return -1;
}

// --- producer: index (Algorithm 1) ------------------------------------------

void DistMetadataVol::index_file(FileEntry& entry) {
    obs::ScopedTimerNs timer(c_t_index_ns_);
    obs::Span          span("dist.index", "lowfive",
                            {{"file", 0, obs::intern_if_enabled(entry.name)}});

    std::vector<std::pair<std::string, Object*>> dsets;
    collect_datasets(entry.root.get(), dsets);

    mvcc::IndexMap index;
    for (auto& [path, node] : dsets) {
        diy::RegularDecomposer decomp(node->space.extent_bounds(), local_.size());

        // outgoing bounding boxes per target producer rank
        std::vector<diy::BinaryBuffer> out(static_cast<std::size_t>(local_.size()));
        for (const auto& piece : node->pieces) {
            diy::Bounds bb = piece.filespace.bounding_box();
            if (bb.empty()) continue;
            for (int t : decomp.intersecting_blocks(bb))
                bb.save(out[static_cast<std::size_t>(t)]);
        }

        std::vector<std::vector<std::byte>> payloads;
        payloads.reserve(out.size());
        for (auto& bb : out) payloads.push_back(std::move(bb).take());

        auto incoming = local_.alltoall(std::move(payloads));

        auto& entries = index[path];
        for (int src = 0; src < local_.size(); ++src) {
            diy::BinaryBuffer bb(std::move(incoming[static_cast<std::size_t>(src)]));
            while (!bb.exhausted()) entries.emplace_back(diy::Bounds::load(bb), src);
        }
    }

    // publish: install an immutable snapshot (frozen tree + index) as the
    // new current version with an atomic root swap. The superseded
    // version stays alive — and byte-identically readable — exactly as
    // long as some pin (a round pin, a step pin, an in-flight query)
    // still holds it. Consumers key their intersect cache by this
    // version, learned from the metadata reply.
    auto pin      = snapshots_.publish(entry.name, entry.root, std::move(index), now_ns());
    entry.version = pin->version();
}

// --- producer: serve (Algorithm 2) --------------------------------------------

void DistMetadataVol::serve_all() {
    auto* sched = local_.scheduler();
    Guard lock(sched, mutex_, "serve_all");
    if (serve_thread_.joinable()) {
        // background mode: just wait for the server to drain the rounds
        simmpi::detail::coop_wait(sched, dones_cv_, lock, "serve_all/dones", [&] {
            L5_SHARED_READ(this, "dones_", "serve_all/dones");
            L5_SHARED_READ(this, "streams_", "serve_all/dones");
            return rounds_done_locked();
        });
        L5_SHARED_READ(this, "serve_error_", "serve_all/dones");
        if (serve_error_) std::rethrow_exception(serve_error_);
        return;
    }
    serve_until(dones_expected_);
}

void DistMetadataVol::serve_until(std::uint64_t target) {
    std::vector<const simmpi::Comm*> comms;
    comms.reserve(serve_conns_.size());
    for (const auto& c : serve_conns_) comms.push_back(&c.ic);

    L5_SHARED_READ(this, "dones_", "serve_until");
    while (dones_received_ < target) {
        // block (no spinning) until a request arrives on any connection
        std::size_t which = 0;
        auto st = simmpi::Comm::probe_any(comms, simmpi::any_source, rpc_request, &which);
        auto& conn = serve_conns_[which];
        auto  bb   = recv_buffer(conn.ic, st.source, rpc_request);
        handle_request(conn, st.source, std::move(bb).take());
    }
}

bool DistMetadataVol::poll_requests() {
    for (std::size_t c = 0; c < serve_conns_.size(); ++c) {
        auto& conn = serve_conns_[c];
        if (conn.ic.iprobe(simmpi::any_source, rpc_request)) {
            int  src = -1;
            auto bb  = recv_buffer(conn.ic, simmpi::any_source, rpc_request, &src);
            handle_request(conn, src, std::move(bb).take());
            return true;
        }
    }
    return false;
}

void DistMetadataVol::handle_request(Conn& conn, int src, std::vector<std::byte>&& payload) {
    obs::ScopedTimerNs timer(c_t_serve_ns_);
    diy::BinaryBuffer bb{std::move(payload)};
    const auto        op = bb.load<std::uint8_t>();

    switch (static_cast<Op>(op)) {
    case Op::IntersectQuery:
    case Op::DataQuery:
        // query hot path: answered from a pinned MVCC snapshot, no
        // serve-mutex acquisition (the serve-lock-after-pin lint enforces
        // this under L5_CHECK)
        handle_read_request(conn, src, std::move(bb), op);
        break;
    default:
        // control path: mutates publish/teardown state under mutex_
        // (recursive, so the synchronous serve paths that already hold it
        // re-enter freely)
        handle_control_request(conn, src, std::move(bb), op);
        break;
    }
}

void DistMetadataVol::handle_read_request(Conn& conn, int src, diy::BinaryBuffer&& bb,
                                          std::uint8_t op) {
    const auto  req_id = bb.load<std::uint64_t>();
    std::string name, dset;
    bb.load(name);
    bb.load(dset);
    const auto version = bb.load<std::uint64_t>();

    // pin the exact version the consumer opened: a rewrite racing this
    // query supersedes the current snapshot but cannot free the pinned
    // one. Fall back to the current version when the named one is
    // already gone (possible only if the consumer broke round/step-pin
    // discipline — the plain current read is still self-consistent).
    auto snap = snapshots_.pin(name, version);
    if (!snap && version != 0) {
        // the named version may not exist HERE yet: the consumer's
        // metadata came from a peer rank that already published it while
        // this rank is one close behind. Serving current instead would
        // hand out a torn (mixed-version) read across producer ranks —
        // park the request and replay it after this rank's next publish.
        auto cur = snapshots_.pin(name);
        if (!cur || cur->version() < version) {
            cur.release();
            // park under the vol mutex and RE-CHECK there: a publish
            // installs the snapshot and fires the deferred-retry nudge
            // while holding this mutex, so without the re-check the
            // publish could slip between our lock-free miss and the
            // park — a lost wakeup that leaves the request parked
            // forever (no later publish would replay it)
            Guard lock(local_.scheduler(), mutex_, "serve/defer-read");
            snap = snapshots_.pin(name, version);
            if (!snap) {
                cur = snapshots_.pin(name);
                if (!cur || cur->version() < version) {
                    cur.release();
                    const std::size_t conn_idx =
                        static_cast<std::size_t>(&conn - serve_conns_.data());
                    L5_SHARED_WRITE(this, "deferred_", "serve/defer-read");
                    deferred_.push_back({conn_idx, src, std::move(bb).take()});
                    return;
                }
                snap = std::move(cur); // version GC'd past: current is consistent
            }
        } else {
            snap = std::move(cur); // version GC'd past: current is consistent
        }
    }
    if (!snap) snap = snapshots_.pin(name);

    if (static_cast<Op>(op) == Op::IntersectQuery) {
        obs::Span span("serve.intersect", "lowfive",
                       {{"src", static_cast<std::uint64_t>(src), nullptr}});
        diy::Bounds qbb = diy::Bounds::load(bb);

        std::vector<std::int32_t> ranks;
        if (snap) {
            mvcc::ReadSection section;
            if (const auto* entries = snap->index_for(dset))
                for (const auto& [ibb, rank] : *entries)
                    if (diy::intersects(ibb, qbb)) ranks.push_back(rank);
        }
        std::sort(ranks.begin(), ranks.end());
        ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());

        diy::BinaryBuffer reply;
        reply.save(req_id);
        reply.save(ranks);
        send_buffer(conn.ic, src, rpc_reply, std::move(reply));
        return;
    }

    {
        obs::Span span("serve.data", "lowfive",
                       {{"src", static_cast<std::uint64_t>(src), nullptr}});
        Dataspace  fs     = Dataspace::load(bb);
        const auto accept = bb.load<std::uint8_t>(); // consumer accepts codec frames

        if (!snap) throw Error("lowfive: data query for unknown file '" + name + "'");
        mvcc::ReadSection section;
        Object*           node = snap->root()->resolve(dset);
        if (!node || node->kind != ObjectKind::Dataset)
            throw Error("lowfive: data query for unknown dataset '" + dset + "'");
        const std::size_t elem = node->type.size();

        // intersect each piece with the query exactly once, keeping the
        // per-piece sub-selection for the extraction below
        std::vector<std::pair<const h5::DataPiece*, Dataspace>> hits;
        for (const auto& piece : node->pieces) {
            auto common = intersect_selections(piece.filespace, fs);
            if (common.empty()) continue;
            Dataspace sub(node->space.dims());
            sub.select_none();
            for (const auto& b : common) sub.add_box(b);
            hits.emplace_back(&piece, std::move(sub));
        }

        diy::BinaryBuffer reply;
        reply.save(req_id);
        reply.save<std::uint64_t>(hits.size());
        std::uint64_t          served = 0;
        std::vector<std::byte> scratch; // reused staging for pieces we encode
        // pieces served without any copy: the reply header records u8 2
        // and the piece's packed buffer follows as its own aliased
        // message on the same (src, tag) stream — the mailbox's
        // non-overtaking guarantee keeps header and payloads paired
        std::vector<simmpi::SharedPayload> zc;
        for (auto& [piece, sub] : hits) {
            sub.save(reply);
            const std::uint64_t nbytes = sub.npoints() * elem;
            reply.save(nbytes);
            const bool compress_this = accept && nbytes >= compress_min_bytes_;
            // zero-copy eligibility: the query wants the whole piece (sub
            // is a subset of the piece's selection, so equal counts mean
            // equal selections) and the piece owns a packed copy whose
            // layout is exactly the wanted bytes
            const std::vector<std::byte>* full = nullptr;
            if (!compress_this && nbytes >= zero_copy_min_bytes_
                && sub.npoints() == piece->filespace.npoints())
                if (const auto* pb = piece->packed_bytes(); pb && pb->size() == nbytes)
                    full = pb;
            if (full) {
                reply.save<std::uint8_t>(2);
                // owning alias: the payload shares the snapshot's
                // lifetime, so the piece's bytes stay valid on the wire
                // even if the version is superseded and GC'd while the
                // message is still in flight (a plain recv on the other
                // side copies instead of moving them out from under us)
                zc.emplace_back(simmpi::SharedPayload(snap.shared(), full));
                c_zero_copy_pieces_.inc();
            } else if (compress_this) {
                // piece payload goes out as a codec frame: u8 1, u64
                // frame size (patched once known), then the frame. When
                // the query wants the whole piece and it owns a packed
                // copy, compress straight from it — no extract copy.
                const std::byte* enc_src = nullptr;
                if (sub.npoints() == piece->filespace.npoints())
                    if (const auto* pb = piece->packed_bytes(); pb && pb->size() == nbytes)
                        enc_src = pb->data();
                if (!enc_src) {
                    scratch.clear();
                    piece->extract(sub, elem, scratch);
                    enc_src = scratch.data();
                }
                reply.save<std::uint8_t>(1);
                auto&             raw   = reply.mutable_data();
                const std::size_t szoff = raw.size();
                reply.save<std::uint64_t>(0);
                std::uint64_t fsz;
                {
                    obs::ScopedTimerNs enc_timer(c_t_encode_ns_);
                    fsz = codec::compress_frame(enc_src, nbytes, elem, raw);
                }
                std::memcpy(raw.data() + szoff, &fsz, 8);
                c_compressed_pieces_.inc();
            } else {
                // extract straight into the reply buffer: no intermediate copy
                reply.save<std::uint8_t>(0);
                piece->extract(sub, elem, reply.mutable_data());
            }
            served += nbytes;
        }
        std::uint64_t wire = reply.size();
        for (const auto& p : zc) wire += p->size();
        c_bytes_served_.add(served);
        c_bytes_wire_.add(wire);
        span.end_arg("bytes", served);
        span.end_arg("wire_bytes", wire);
        // the modelled interconnect charges post-codec bytes: compression
        // buys wall-clock exactly when the wire is the bottleneck
        codec::WireModel::instance().charge(wire);
        send_buffer(conn.ic, src, rpc_data_reply, std::move(reply));
        // zero-copy payloads follow the header in piece order
        for (auto& p : zc) conn.ic.send_shared(src, rpc_data_reply, std::move(p));
    }
}

void DistMetadataVol::handle_control_request(Conn& conn, int src, diy::BinaryBuffer&& bb,
                                             std::uint8_t op) {
    Guard lock(local_.scheduler(), mutex_, "serve/control");

    switch (static_cast<Op>(op)) {
    case Op::IntersectQuery:
    case Op::DataQuery:
        throw Error("lowfive: query op routed to the control handler");
    case Op::Done: {
        obs::instant("serve.done", "lowfive",
                     {{"src", static_cast<std::uint64_t>(src), nullptr}});
        std::string name;
        bb.load(name);
        const auto version = bb.load<std::uint64_t>();
        L5_SHARED_WRITE(this, "dones_", "serve/done");
        ++dones_received_;
        // release this (connection, rank, file)'s round pins for every
        // version STRICTLY older than the one the round read. Dones
        // arrive in round order and opened versions are monotone, so
        // this rank can never read those versions again — but the named
        // version itself may be reopened by the very next round (a
        // consumer outpacing the producer), so its pin stays until a
        // later Done names a newer version (or teardown clears it).
        const std::size_t conn_idx = static_cast<std::size_t>(&conn - serve_conns_.data());
        L5_SHARED_WRITE(this, "round_pins_", "serve/done");
        if (auto rit = round_pins_.find({conn_idx, src, name}); rit != round_pins_.end()) {
            auto& pins = rit->second;
            pins.erase(std::remove_if(pins.begin(), pins.end(),
                                      [&](const mvcc::SnapshotPin& p) {
                                          return p && p->version() < version;
                                      }),
                       pins.end());
            if (pins.empty()) round_pins_.erase(rit);
        }
        break;
    }
    case Op::MetadataQuery: {
        obs::Span   span("serve.metadata", "lowfive",
                         {{"src", static_cast<std::uint64_t>(src), nullptr}});
        std::string name;
        bb.load(name);
        auto it   = files_.find(name);
        auto snap = snapshots_.pin(name);
        if (it == files_.end() || !it->second.root || it->second.writable || !snap) {
            // consumer ran ahead of the producer: retry after next close
            diy::BinaryBuffer orig;
            orig.save(static_cast<std::uint8_t>(Op::MetadataQuery));
            orig.save(name);
            std::size_t conn_idx =
                static_cast<std::size_t>(&conn - serve_conns_.data());
            L5_SHARED_WRITE(this, "deferred_", "serve/metadata");
            deferred_.push_back({conn_idx, src, std::move(orig).take()});
            break;
        }
        // reply from the snapshot so version and skeleton are one
        // consistent publish even if a rewrite is racing us
        diy::BinaryBuffer reply;
        reply.save(snap->version());
        snap->root()->save_skeleton(reply);
        send_buffer(conn.ic, src, rpc_reply, std::move(reply));
        break;
    }
    case Op::StepNext: {
        std::string base;
        bb.load(base);
        const auto min_raw = bb.load<std::uint64_t>();
        const auto latest  = bb.load<std::uint8_t>();

        L5_SHARED_READ(this, "streams_", "serve/step_next");
        auto                        sit = streams_.find(base);
        stream::StepWindow::Acquire r; // default: retry_later
        if (sit != streams_.end()) r = sit->second.acquire(stream::StepId(min_raw), latest != 0);
        if (r.status == stream::StepWindow::Acquire::Status::retry_later) {
            // nothing published past `min` yet and the stream is still
            // open (or not registered yet): park the request; replayed
            // after the next publish / stream begin / stream end
            diy::BinaryBuffer orig;
            orig.save(static_cast<std::uint8_t>(Op::StepNext));
            orig.save(base);
            orig.save(min_raw);
            orig.save(latest);
            std::size_t conn_idx = static_cast<std::size_t>(&conn - serve_conns_.data());
            L5_SHARED_WRITE(this, "deferred_", "serve/step_next");
            deferred_.push_back({conn_idx, src, std::move(orig).take()});
            break;
        }
        if (r.status == stream::StepWindow::Acquire::Status::granted) {
            // the grant IS a snapshot pin: the granted step's version
            // cannot be GC'd out from under the consumer until released
            const std::string sname = stream::step_name(base, r.step);
            L5_SHARED_WRITE(this, "step_pins_", "serve/step_next");
            if (auto pin = snapshots_.pin(sname)) step_pins_[sname].push_back(std::move(pin));
        }
        obs::instant("serve.step_next", "lowfive",
                     {{"src", static_cast<std::uint64_t>(src), nullptr},
                      {"step", r.step.valid() ? r.step.value() : 0, nullptr}});
        diy::BinaryBuffer reply;
        reply.save<std::uint8_t>(r.status == stream::StepWindow::Acquire::Status::eos ? 1 : 0);
        reply.save<std::uint64_t>(r.step.valid() ? r.step.value() : 0);
        send_buffer(conn.ic, src, rpc_reply, std::move(reply));
        break;
    }
    case Op::StepPin: {
        std::string base;
        bb.load(base);
        const auto sv  = bb.load<std::uint64_t>();
        L5_SHARED_READ(this, "streams_", "serve/step_pin");
        auto       sit = streams_.find(base);
        const bool ok  = sit != streams_.end() && sit->second.pin(stream::StepId(sv));
        if (ok) {
            const std::string sname = stream::step_name(base, stream::StepId(sv));
            L5_SHARED_WRITE(this, "step_pins_", "serve/step_pin");
            if (auto pin = snapshots_.pin(sname)) step_pins_[sname].push_back(std::move(pin));
        }
        diy::BinaryBuffer reply;
        // 2 = gone: this rank's window raced ahead and already evicted
        // the step — the consumer rolls its pins back and retries higher
        reply.save<std::uint8_t>(ok ? 0 : 2);
        send_buffer(conn.ic, src, rpc_reply, std::move(reply));
        break;
    }
    case Op::StepRelease: {
        std::string base;
        bb.load(base);
        const auto sv       = bb.load<std::uint64_t>();
        const auto rollback = bb.load<std::uint8_t>(); // pin rollback, not a drain
        L5_SHARED_READ(this, "streams_", "serve/step_release");
        auto       sit      = streams_.find(base);
        if (sit == streams_.end())
            throw Error("lowfive: step release for unknown stream '" + base + "'");
        auto rel = sit->second.release(stream::StepId(sv));
        if (!rel)
            throw Error("lowfive: release of an unpinned step " + std::to_string(sv)
                        + " of stream '" + base + "'");
        // drop the matching snapshot pin (rollback or drain alike)
        const std::string sname = stream::step_name(base, stream::StepId(sv));
        L5_SHARED_WRITE(this, "step_pins_", "serve/step_release");
        if (auto pit = step_pins_.find(sname); pit != step_pins_.end()) {
            pit->second.pop_back();
            if (pit->second.empty()) step_pins_.erase(pit);
        }
        if (rel->first_drain && !rollback) {
            c_steps_drained_.inc();
            h_step_latency_ns_.observe(now_ns() - rel->publish_ns);
            obs::instant("stream.drain", "lowfive",
                         {{"stream", 0, obs::intern_if_enabled(base)}, {"step", sv, nullptr}});
        }
        stream_room_locked(base, sit->second);
        break;
    }
    case Op::StreamDone: {
        std::string base;
        bb.load(base);
        L5_SHARED_READ(this, "streams_", "serve/stream_done");
        auto sit = streams_.find(base);
        if (sit == streams_.end()) {
            // consumer subscribed and quit before the writer registered
            // the stream; credited at stream_begin
            ++pending_stream_dones_[base];
            break;
        }
        sit->second.consumer_done();
        stream_room_locked(base, sit->second);
        break;
    }
    }
}

void DistMetadataVol::retry_deferred() {
    L5_SHARED_WRITE(this, "deferred_", "retry_deferred");
    auto pending = std::move(deferred_);
    deferred_.clear();
    for (auto& d : pending)
        handle_request(serve_conns_[d.conn], d.src, std::move(d.payload));
}

void DistMetadataVol::schedule_deferred_retry_locked() {
    L5_SHARED_READ(this, "deferred_", "schedule_deferred_retry");
    if (deferred_.empty()) return;
    L5_SHARED_READ(this, "serve_error_", "schedule_deferred_retry");
    if (serve_thread_.joinable() && !serve_error_) {
        // a live background server owns request handling: hand it the
        // replay via a one-byte self-send (the empty payload remains the
        // shutdown signal). The per-(source, tag) FIFO guarantee means
        // every nudge is consumed before a later shutdown send.
        const std::byte nudge{1};
        local_.send(local_.rank(), rpc_request, &nudge, 1);
    } else {
        retry_deferred();
    }
}

// --- step-versioned streaming --------------------------------------------------

void DistMetadataVol::set_stream(const std::string& pattern, stream::StreamConfig cfg) {
    stream_cfgs_.emplace_back(pattern, cfg);
}

stream::StreamConfig DistMetadataVol::stream_config_for(const std::string& name) const {
    for (const auto& [pattern, cfg] : stream_cfgs_)
        if (glob_match(pattern, name)) return cfg.normalized();
    return stream::StreamConfig::from_env().normalized();
}

stream::StreamConfig DistMetadataVol::stream_begin(const std::string& name,
                                                   std::optional<stream::StreamConfig> cfg) {
    if (name.find('\x1f') != std::string::npos)
        throw Error("lowfive: stream name '" + name + "' must not contain the step separator");
    if (!matches_file(memory_, name))
        throw Error("lowfive: stream '" + name
                    + "' requires in-memory mode (file-mode steps have no staging window)");
    const auto conf = (cfg ? *cfg : stream_config_for(name)).normalized();

    Guard lock(local_.scheduler(), mutex_, "stream_begin");
    L5_SHARED_WRITE(this, "streams_", "stream_begin");
    if (streams_.count(name))
        throw Error("lowfive: stream '" + name + "' is already open");
    auto [it, inserted] = streams_.emplace(name, stream::StepWindow(conf));
    auto& window        = it->second;
    window.set_expected_consumers(stream_expected_consumers(name));
    // credit StreamDones that raced ahead of us
    if (auto pd = pending_stream_dones_.find(name); pd != pending_stream_dones_.end()) {
        for (std::uint64_t i = 0; i < pd->second; ++i) window.consumer_done();
        pending_stream_dones_.erase(pd);
    }
    // streams always serve in the background: publishes return while
    // consumers drain, and the thread must exist even before the first
    // publish so an empty stream still answers acquires with eos
    L5_SHARED_WRITE(this, "background_", "stream_begin");
    background_ = true;
    ensure_serve_thread_locked();
    schedule_deferred_retry_locked(); // StepNext requests that raced ahead of the begin
    return conf;
}

void DistMetadataVol::stream_end(const std::string& name) {
    Guard lock(local_.scheduler(), mutex_, "stream_end");
    L5_SHARED_WRITE(this, "streams_", "stream_end");
    auto  it = streams_.find(name);
    if (it == streams_.end()) return; // already retired
    it->second.set_eos();
    schedule_deferred_retry_locked(); // parked acquires past the last step now see eos
    stream_room_locked(name, it->second);
    notify_dones();
}

stream::StreamConfig DistMetadataVol::stream_subscribe(const std::string& name,
                                                       std::optional<stream::StreamConfig> cfg) {
    if (name.find('\x1f') != std::string::npos)
        throw Error("lowfive: stream name '" + name + "' must not contain the step separator");
    if (route_consume(name) < 0)
        throw Error("lowfive: no producer connection for stream '" + name + "'");
    if (!matches_file(memory_, name))
        throw Error("lowfive: stream '" + name + "' requires in-memory mode");
    return (cfg ? *cfg : stream_config_for(name)).normalized();
}

std::optional<stream::StepId> DistMetadataVol::stream_acquire(const std::string& name,
                                                              stream::StepId min, bool latest) {
    const int ci = route_consume(name);
    if (ci < 0) throw Error("lowfive: no producer connection for stream '" + name + "'");
    auto&     conn   = consume_conns_[static_cast<std::size_t>(ci)];
    const int npeers = conn.ic.peer_size();

    // rank 0 runs the grant/pin protocol on behalf of the whole task;
    // the result is broadcast so every rank steps through the same
    // versions (per-rank windows can diverge under drop/latest_only)
    std::uint64_t raw = 0; // StepId wire encoding: 0 = end of stream
    if (local_.rank() == 0) {
        for (;;) {
            diy::BinaryBuffer req;
            req.save(static_cast<std::uint8_t>(Op::StepNext));
            req.save(name);
            req.save<std::uint64_t>(min.valid() ? min.value() : 0);
            req.save<std::uint8_t>(latest ? 1 : 0);
            send_buffer(conn.ic, 0, rpc_request, std::move(req));
            auto       reply = recv_buffer(conn.ic, 0, rpc_reply);
            const auto kind  = reply.load<std::uint8_t>(); // 0 granted, 1 eos
            const auto sv    = reply.load<std::uint64_t>();
            if (kind == 1) break; // raw stays 0: eos

            // the coordinator's grant pinned rank 0; pin everywhere else
            const stream::StepId step(sv);
            auto                 send_release = [&](int p, bool rollback) {
                diy::BinaryBuffer rel;
                rel.save(static_cast<std::uint8_t>(Op::StepRelease));
                rel.save(name);
                rel.save<std::uint64_t>(step.value());
                rel.save<std::uint8_t>(rollback ? 1 : 0);
                send_buffer(conn.ic, p, rpc_request, std::move(rel));
            };
            int pinned_until = 1; // producer ranks [0, pinned_until) hold a pin
            for (int p = 1; p < npeers; ++p) {
                diy::BinaryBuffer pin;
                pin.save(static_cast<std::uint8_t>(Op::StepPin));
                pin.save(name);
                pin.save<std::uint64_t>(step.value());
                send_buffer(conn.ic, p, rpc_request, std::move(pin));
                auto pr = recv_buffer(conn.ic, p, rpc_reply);
                if (pr.load<std::uint8_t>() != 0) break; // gone on rank p
                pinned_until = p + 1;
            }
            if (pinned_until == npeers) {
                raw = step.value() + 1;
                break;
            }
            // some rank already evicted the step: roll the pins back and
            // retry strictly past it (possible only under drop/latest)
            c_step_pin_rollbacks_.inc();
            for (int p = 0; p < pinned_until; ++p) send_release(p, true);
            min = step.next();
        }
        if (raw != 0) {
            c_steps_acquired_.inc();
            obs::instant("stream.acquire", "lowfive",
                         {{"stream", 0, obs::intern_if_enabled(name)},
                          {"step", raw - 1, nullptr}});
            local_.check_step("acquire", name, raw - 1);
        }
    }
    if (local_.size() > 1) raw = local_.bcast_value(raw, 0);
    if (raw == 0) return std::nullopt;
    return stream::StepId(raw - 1);
}

void DistMetadataVol::stream_release(const std::string& name, stream::StepId step) {
    const int ci = route_consume(name);
    if (ci < 0) throw Error("lowfive: no producer connection for stream '" + name + "'");
    // every rank of the consumer task finished reading before rank 0
    // drops the pins that keep the step alive on the producers
    local_.barrier();
    if (local_.rank() == 0) {
        auto&             conn = consume_conns_[static_cast<std::size_t>(ci)];
        diy::BinaryBuffer bb;
        bb.save(static_cast<std::uint8_t>(Op::StepRelease));
        bb.save(name);
        bb.save<std::uint64_t>(step.value());
        bb.save<std::uint8_t>(0); // real release, not a pin rollback
        auto payload = simmpi::make_shared_payload(std::move(bb).take());
        for (int p = 0; p < conn.ic.peer_size(); ++p)
            conn.ic.send_shared(p, rpc_request, payload);
        local_.check_step("release", name, step.value());
    }
    // the step snapshot is gone for good: its cached producer sets die
    // with it (each step file is its own cache entry)
    invalidate_producer_cache(stream::step_name(name, step));
}

void DistMetadataVol::stream_unsubscribe(const std::string& name) {
    const int ci = route_consume(name);
    if (ci < 0) throw Error("lowfive: no producer connection for stream '" + name + "'");
    local_.barrier(); // the whole task is done with the stream
    if (local_.rank() == 0) {
        auto&             conn = consume_conns_[static_cast<std::size_t>(ci)];
        diy::BinaryBuffer bb;
        bb.save(static_cast<std::uint8_t>(Op::StreamDone));
        bb.save(name);
        auto payload = simmpi::make_shared_payload(std::move(bb).take());
        for (int p = 0; p < conn.ic.peer_size(); ++p)
            conn.ic.send_shared(p, rpc_request, payload);
    }
}

void DistMetadataVol::stream_admit(simmpi::detail::CoopLock<std::recursive_mutex>& lock,
                                   const std::string& base) {
    L5_SHARED_READ(this, "streams_", "stream_admit");
    auto it = streams_.find(base);
    if (it == streams_.end())
        throw Error("lowfive: step publish for unregistered stream '" + base
                    + "' (create a stream::Writer first)");
    auto& window = it->second;
    if (window.config().policy == stream::StepPolicy::Block && !window.can_admit()) {
        c_step_publish_waits_.inc();
        // block policy: wait until a consumer release frees a slot,
        // honoring the explicit timeout or the ambient deadline
        const std::int64_t ms = window.config().timeout_ms > 0 ? window.config().timeout_ms
                                                               : local_.effective_deadline_ms();
        auto*      sched = local_.scheduler();
        const bool ok    = simmpi::detail::coop_wait_deadline(
            sched, dones_cv_, lock, "stream/window", ms, [&] {
                L5_SHARED_READ(this, "serve_error_", "stream/window");
                L5_SHARED_READ(this, "streams_", "stream/window");
                return serve_error_ != nullptr || window.can_admit();
            });
        L5_SHARED_READ(this, "serve_error_", "stream_admit");
        if (serve_error_) std::rethrow_exception(serve_error_);
        if (!ok)
            throw simmpi::TimeoutError(
                ms, "stream/window (step publish backpressure on '" + base + "')", -1, -1);
    }
    L5_SHARED_WRITE(this, "streams_", "stream_admit/make_room");
    for (auto ev : window.make_room()) gc_step_locked(base, ev);
    g_window_occupancy_.set(static_cast<std::int64_t>(window.occupancy()));
}

void DistMetadataVol::publish_step(FileEntry& entry, const std::string& base,
                                   stream::StepId step) {
    L5_SHARED_READ(this, "streams_", "publish_step");
    auto it = streams_.find(base);
    if (it == streams_.end())
        throw Error("lowfive: step publish for unregistered stream '" + base + "'");
    auto& window = it->second;
    index_file(entry);
    L5_SHARED_WRITE(this, "streams_", "publish_step");
    window.publish(step, now_ns());
    c_steps_published_.inc();
    g_window_occupancy_.set(static_cast<std::int64_t>(window.occupancy()));
    obs::instant("stream.publish", "lowfive",
                 {{"stream", 0, obs::intern_if_enabled(base)},
                  {"step", step.value(), nullptr}});
    local_.check_step("publish", base, step.value());
    schedule_deferred_retry_locked(); // grant any parked StepNext that now has its step
    notify_dones();
}

void DistMetadataVol::stream_room_locked(const std::string& base, stream::StepWindow& window) {
    L5_SHARED_WRITE(this, "streams_", "stream_room");
    for (auto ev : window.reap()) gc_step_locked(base, ev);
    if (window.drained()) {
        // terminal GC: eos reached, every consumer finished, nothing
        // pinned — whatever remains was never going to be read
        for (auto ev : window.clear()) gc_step_locked(base, ev);
        streams_.erase(base);
        g_window_occupancy_.set(0);
        notify_dones(); // finish_serving may be waiting on this retirement
        return;
    }
    g_window_occupancy_.set(static_cast<std::int64_t>(window.occupancy()));
}

void DistMetadataVol::gc_step_locked(const std::string& base, stream::StepWindow::Evicted ev) {
    const std::string name = stream::step_name(base, ev.step);
    L5_SHARED_WRITE(this, "step_pins_", "gc_step");
    step_pins_.erase(name); // evicted steps are unpinned; hygiene only
    // retire the step's whole snapshot line — including its version
    // counter, or a long stream accumulates one entry per step forever.
    // The tree itself survives as long as an in-flight query pins it.
    snapshots_.retire(name, /*forget_versions=*/true);
    files_.erase(name);
    if (ev.dropped) {
        c_steps_dropped_.inc();
        obs::instant("stream.drop", "lowfive",
                     {{"stream", 0, obs::intern_if_enabled(base)},
                      {"step", ev.step.value(), nullptr}});
    }
}

bool DistMetadataVol::streams_drained_locked() const {
    // drained streams are retired eagerly (stream_room_locked), so any
    // remaining entry is still live
    return streams_.empty();
}

std::uint64_t DistMetadataVol::stream_expected_consumers(const std::string& base) const {
    std::uint64_t n = 0;
    for (const auto& c : serve_conns_)
        if (glob_match(c.pattern, base)) ++n; // one consumer task per connection
    return n;
}

void DistMetadataVol::ensure_serve_thread_locked() {
    if (serve_thread_.joinable() || serve_conns_.empty()) return;
    serve_thread_ =
        simmpi::detail::spawn_participant(local_.scheduler(), "serve", [this] { background_loop(); });
}

// --- file lifecycle hooks ------------------------------------------------------

void DistMetadataVol::after_file_close(FileEntry& entry) {
    if (entry.remote) {
        if (stream::split_step_name(entry.name)) {
            // consumer closing a step snapshot: the pins are dropped by
            // Reader::next_step/close (collectively, via stream_release);
            // the per-step cache entries die with the step there too
            return;
        }
        // plain remote file: tell every producer rank we are done with
        // it; one shared payload fans out to all of them. The intersect
        // cache survives the close — entries are valid for exactly one
        // publish version, so a rewrite can never serve stale sets. The
        // Done names the version this round opened: the producers keep
        // that snapshot (and any later one) pinned, releasing only the
        // strictly older versions this rank can never read again.
        auto& conn = consume_conns_[static_cast<std::size_t>(entry.conn)];
        diy::BinaryBuffer bb;
        bb.save(static_cast<std::uint8_t>(Op::Done));
        bb.save(entry.name);
        bb.save(entry.version);
        auto payload = simmpi::make_shared_payload(std::move(bb).take());
        for (int p = 0; p < conn.ic.peer_size(); ++p)
            conn.ic.send_shared(p, rpc_request, payload);
        return;
    }

    if (!entry.writable) return; // closing a reopened local file: nothing to do
    entry.writable = false;

    if (auto split = stream::split_step_name(entry.name)) {
        // producer closing a writable step snapshot: publish it into the
        // stream's staging window (admission already ran in file_close)
        publish_step(entry, split->first, split->second);
        return;
    }

    std::vector<Conn*> matching;
    for (auto& c : serve_conns_)
        if (glob_match(c.pattern, entry.name)) matching.push_back(&c);
    if (matching.empty()) return;

    if (entry.memory && entry.root) {
        index_file(entry);
        // round pins: one per expected Done per (connection, rank) — the
        // version this publish installed stays live until every consumer
        // rank finished its round, no matter how many rewrites follow.
        // Created here (not by a wire op) so a pin can never race GC.
        L5_SHARED_WRITE(this, "round_pins_", "after_file_close");
        L5_SHARED_WRITE(this, "dones_", "after_file_close");
        for (auto* c : matching) {
            const std::size_t ci = static_cast<std::size_t>(c - serve_conns_.data());
            for (int p = 0; p < c->ic.peer_size(); ++p)
                round_pins_[{ci, p, entry.name}].push_back(snapshots_.pin(entry.name));
            dones_expected_ += static_cast<std::uint64_t>(c->ic.peer_size());
        }
        L5_SHARED_READ(this, "background_", "after_file_close");
        if (background_) {
            // overlap mode: a background thread serves; the producer
            // returns from close immediately and keeps computing. Under a
            // deterministic scheduler the server becomes an auxiliary
            // task attached at this exact point.
            ensure_serve_thread_locked();
            schedule_deferred_retry_locked();
        } else {
            retry_deferred();
            if (serve_on_close_) serve_until(dones_expected_);
        }
    } else if (local_.rank() == 0) {
        // passthru-only file: physical file is complete (collective close
        // barriered); notify consumers it is ready to be opened
        diy::BinaryBuffer bb;
        bb.save(entry.name);
        auto payload = simmpi::make_shared_payload(std::move(bb).take());
        for (auto* c : matching)
            for (int r = 0; r < c->ic.peer_size(); ++r)
                c->ic.send_shared(r, rpc_ready, payload);
    }
}

void* DistMetadataVol::file_open(const std::string& name) {
    {
        // local (possibly retained) files win over remote connections
        Guard lock(local_.scheduler(), mutex_, "file_open");
        auto  it = files_.find(name);
        if (it != files_.end() && it->second.root && !it->second.remote)
            return MetadataVol::file_open(name);
    }

    int ci = route_consume(name);
    if (ci < 0) {
        Guard lock(local_.scheduler(), mutex_, "file_open");
        return MetadataVol::file_open(name);
    }
    auto& conn = consume_conns_[static_cast<std::size_t>(ci)];

    if (!matches_file(memory_, stream::base_name(name))) {
        // file mode: wait for the producer's ready notification, then do a
        // physical open
        auto        bb = recv_buffer(conn.ic, 0, rpc_ready);
        std::string ready_name;
        bb.load(ready_name);
        if (ready_name != name)
            throw Error("lowfive: out-of-order file-ready: expected '" + name + "', got '"
                        + ready_name + "'");
        Guard lock(local_.scheduler(), mutex_, "file_open");
        return MetadataVol::file_open(name);
    }

    // in-situ: fetch the metadata skeleton from a producer rank
    const int target = local_.rank() % conn.ic.peer_size();
    {
        diy::BinaryBuffer bb;
        bb.save(static_cast<std::uint8_t>(Op::MetadataQuery));
        bb.save(name);
        send_buffer(conn.ic, target, rpc_request, std::move(bb));
    }
    auto reply = recv_buffer(conn.ic, target, rpc_reply);

    FileEntry entry;
    entry.name    = name;
    entry.remote  = true;
    entry.conn    = ci;
    entry.version = reply.load<std::uint64_t>();
    entry.root    = Object::load_skeleton(reply);
    // eager cache GC: opening a newer publish version supersedes every
    // cached producer set of the old one — evict them now so a long
    // rewrite sequence cannot accumulate dead entries
    auto& fc = producer_cache_[name];
    if (fc.version != entry.version) {
        fc.sets.clear();
        fc.version = entry.version;
    }
    Guard lock(local_.scheduler(), mutex_, "file_open");
    auto [it2, _] = files_.insert_or_assign(name, std::move(entry));
    return make_handle(it2->second, it2->second.root.get(), nullptr);
}

// --- consumer: query (Algorithm 3) ----------------------------------------------

void DistMetadataVol::remote_dataset_read(FileEntry& f, Object* node, const Dataspace& memspace,
                                          const Dataspace& filespace, void* buf) {
    if (!node || node->kind != ObjectKind::Dataset)
        throw Error("lowfive: remote read on a non-dataset handle");
    if (memspace.npoints() != filespace.npoints())
        throw Error("lowfive: remote read selection size mismatch");
    if (filespace.npoints() == 0) return;

    auto&             conn = consume_conns_[static_cast<std::size_t>(f.conn)];
    const std::string dset = node->path();
    const std::size_t elem = node->type.size();
    const int         n    = conn.ic.peer_size();

    obs::ScopedTimerNs q_timer(c_t_query_ns_, &h_query_ns_);
    obs::Span          q_span("query.read", "lowfive",
                              {{"dset", 0, obs::intern_if_enabled(dset)},
                               {"points", filespace.npoints(), nullptr}});

    // Step 1: common decomposition; the index-owning blocks to ask
    diy::RegularDecomposer decomp(node->space.extent_bounds(), n);
    diy::Bounds            bb = filespace.bounding_box();

    // did an earlier read of this (file, dataset, bounds) already learn
    // which producers answer it? The file's cache is valid for exactly
    // one publish version: a rewrite bumps it, which both prevents stale
    // hits and evicts the dead generation eagerly.
    std::string key;
    if (query_cache_) {
        diy::BinaryBuffer kb;
        bb.save(kb);
        key = dset;
        key.push_back('\0');
        key.append(reinterpret_cast<const char*>(kb.data().data()), kb.size());
    }
    std::vector<std::int32_t> producers;
    bool                      cached = false;
    FileCache*                fc     = nullptr;
    if (query_cache_) {
        fc = &producer_cache_[f.name];
        if (fc->version != f.version) {
            fc->sets.clear();
            fc->version = f.version;
        }
        if (auto it = fc->sets.find(key); it != fc->sets.end()) {
            producers = it->second;
            cached    = true;
            c_cache_hits_.inc();
            obs::instant("cache.hit", "lowfive",
                         {{"producers", producers.size(), nullptr}});
        } else {
            c_cache_misses_.inc();
            obs::instant("cache.miss", "lowfive");
        }
    }

    // negotiate wire compression per (file, dataset): the request
    // advertises whether this consumer accepts codec frames in the reply
    const std::uint8_t accept_codec = matches(compress_, stream::base_name(f.name), dset) ? 1 : 0;

    std::map<std::uint64_t, int> pending_data; // req id -> producer rank
    auto send_data_query = [&](int p) {
        const std::uint64_t id = next_req_id_++;
        diy::BinaryBuffer   req;
        req.save(static_cast<std::uint8_t>(Op::DataQuery));
        req.save(id);
        req.save(f.name);
        req.save(dset);
        // the version this consumer opened: the producer pins exactly
        // that snapshot, so the reply is byte-identical to the opened
        // file even while a rewrite is being published
        req.save(f.version);
        filespace.save(req);
        req.save(accept_codec);
        send_buffer(conn.ic, p, rpc_request, std::move(req));
        pending_data.emplace(id, p);
        c_data_queries_.inc();
    };

    if (cached) {
        // cache hit: skip the intersect round entirely
        for (int p : producers) send_data_query(p);
    } else if (pipelining_) {
        obs::ScopedTimerNs i_timer(c_t_intersect_ns_);
        obs::Span          i_span("query.intersect", "lowfive");
        // issue every intersect query up front...
        std::map<std::uint64_t, int> pending; // req id -> index block rank
        for (int p : decomp.intersecting_blocks(bb)) {
            const std::uint64_t id = next_req_id_++;
            diy::BinaryBuffer   req;
            req.save(static_cast<std::uint8_t>(Op::IntersectQuery));
            req.save(id);
            req.save(f.name);
            req.save(dset);
            req.save(f.version);
            bb.save(req);
            send_buffer(conn.ic, p, rpc_request, std::move(req));
            pending.emplace(id, p);
            c_intersect_queries_.inc();
        }
        // ...and drain replies in arrival order (they may complete out of
        // rank order); a data query goes out the moment a reply first
        // names a producer, overlapping with the remaining intersect round
        std::set<std::int32_t> seen;
        while (!pending.empty()) {
            int  from  = -1;
            auto reply = recv_buffer(conn.ic, simmpi::any_source, rpc_reply, &from);
            const auto id  = reply.load<std::uint64_t>();
            auto       pit = pending.find(id);
            if (pit == pending.end() || pit->second != from)
                throw Error("lowfive: intersect reply with unexpected id or source");
            pending.erase(pit);
            std::vector<std::int32_t> ranks;
            reply.load(ranks);
            for (auto r : ranks)
                if (seen.insert(r).second) send_data_query(static_cast<int>(r));
        }
        producers.assign(seen.begin(), seen.end());
    } else {
        obs::ScopedTimerNs i_timer(c_t_intersect_ns_);
        obs::Span          i_span("query.intersect", "lowfive");
        // serial reference path: one intersect query in flight at a time,
        // replies taken in rank order
        for (int p : decomp.intersecting_blocks(bb)) {
            const std::uint64_t id = next_req_id_++;
            diy::BinaryBuffer   req;
            req.save(static_cast<std::uint8_t>(Op::IntersectQuery));
            req.save(id);
            req.save(f.name);
            req.save(dset);
            req.save(f.version);
            bb.save(req);
            send_buffer(conn.ic, p, rpc_request, std::move(req));
            c_intersect_queries_.inc();
            auto reply = recv_buffer(conn.ic, p, rpc_reply);
            if (reply.load<std::uint64_t>() != id)
                throw Error("lowfive: intersect reply with unexpected id");
            std::vector<std::int32_t> ranks;
            reply.load(ranks);
            producers.insert(producers.end(), ranks.begin(), ranks.end());
        }
        std::sort(producers.begin(), producers.end());
        producers.erase(std::unique(producers.begin(), producers.end()), producers.end());
        for (int p : producers) send_data_query(p);
    }
    if (query_cache_ && !cached) fc->sets[key] = producers;

    // Step 2: scatter the replies as they arrive
    obs::ScopedTimerNs d_timer(c_t_data_ns_);
    obs::Span          d_span("query.data", "lowfive",
                              {{"producers", pending_data.size(), nullptr}});
    std::uint64_t      fetched = 0;

    // When the memory selection is a single contiguous run, the packed
    // layout of `filespace` IS a slice of the user's buffer: scatter the
    // replies straight into it and skip the staging buffer plus the
    // final unpack copy entirely. Zero fill is lazy: the common case —
    // the pieces cover the whole selection — never touches a byte twice;
    // when coverage has holes, the fallback below zeroes the slice and
    // replays the retained pieces so unserved holes still read as zero.
    const auto&            mruns  = memspace.runs();
    std::byte*             direct = nullptr;
    std::vector<std::byte> packed;
    if (mruns.size() == 1) {
        direct = static_cast<std::byte*>(buf) + mruns[0].file_off * elem;
    } else {
        packed.resize(filespace.npoints() * elem); // zero fill
    }
    std::byte* scatter_dst = direct ? direct : packed.data();

    // retained per-piece state for the direct path's holes fallback: the
    // sub-selection plus a pointer into storage kept alive below (reply
    // buffers, per-piece decode buffers, zero-copy payloads)
    struct PieceRec {
        Dataspace        sub;
        const std::byte* data;
    };
    std::vector<PieceRec>                    recs;
    std::deque<diy::BinaryBuffer>            kept_replies;
    std::deque<std::unique_ptr<std::byte[]>> kept_decoded; // uninitialized: decode fills them
    std::vector<simmpi::SharedPayload>       shared_payloads; // alive until scatters finish

    // reused staging when nothing is retained; uninitialized for the
    // same reason as the codec scratch (decompress_frame fills exactly
    // nbytes, so zero-filling first would only add page traffic)
    std::unique_ptr<std::byte[]> decoded;
    std::size_t                  decoded_cap = 0;
    auto scatter_reply = [&](diy::BinaryBuffer& reply, int from) {
        auto npieces = reply.load<std::uint64_t>();
        for (std::uint64_t k = 0; k < npieces; ++k) {
            Dataspace        sub    = Dataspace::load(reply);
            auto             nbytes = reply.load<std::uint64_t>();
            const auto       enc    = reply.load<std::uint8_t>();
            const std::byte* data;
            if (enc == 2) {
                // zero-copy piece: the payload follows the header as its
                // own message on the same (src, tag) stream; scatter
                // straight out of the producer's (aliased) buffer
                simmpi::SharedPayload payload;
                auto st = conn.ic.recv_shared(from, rpc_data_reply, payload);
                if (st.count != nbytes || !payload)
                    throw Error("lowfive: zero-copy data payload has unexpected size");
                data = payload->data();
                shared_payloads.push_back(std::move(payload));
            } else if (enc == 1) {
                const auto       fsz   = reply.load<std::uint64_t>();
                const std::byte* frame = reply.skip(fsz);
                if (codec::frame_raw_size(frame, fsz) != nbytes)
                    throw Error("lowfive: data reply frame decodes to unexpected size");
                std::byte* dst;
                if (direct) {
                    dst = kept_decoded
                              .emplace_back(std::make_unique_for_overwrite<std::byte[]>(nbytes))
                              .get();
                } else {
                    if (decoded_cap < nbytes) {
                        decoded     = std::make_unique_for_overwrite<std::byte[]>(nbytes);
                        decoded_cap = nbytes;
                    }
                    dst = decoded.get();
                }
                obs::ScopedTimerNs dec_timer(c_t_decode_ns_);
                codec::decompress_frame(frame, fsz, dst);
                data = dst;
            } else {
                data = reply.skip(nbytes); // scatter in place
            }
            fetched += nbytes;
            {
                obs::ScopedTimerNs copy_timer(c_t_copy_ns_);
                scatter_into_packed(filespace, scatter_dst, sub, data, elem);
            }
            if (direct) recs.push_back({std::move(sub), data});
        }
    };
    if (pipelining_) {
        while (!pending_data.empty()) {
            int  from  = -1;
            auto reply = recv_buffer(conn.ic, simmpi::any_source, rpc_data_reply, &from);
            const auto id  = reply.load<std::uint64_t>();
            auto       pit = pending_data.find(id);
            if (pit == pending_data.end() || pit->second != from)
                throw Error("lowfive: data reply with unexpected id or source");
            pending_data.erase(pit);
            if (direct) {
                // the holes fallback may rescatter from this buffer later
                scatter_reply(kept_replies.emplace_back(std::move(reply)), from);
            } else {
                scatter_reply(reply, from);
            }
        }
    } else {
        for (auto& [id, p] : pending_data) {
            auto reply = recv_buffer(conn.ic, p, rpc_data_reply);
            if (reply.load<std::uint64_t>() != id)
                throw Error("lowfive: data reply with unexpected id");
            if (direct)
                scatter_reply(kept_replies.emplace_back(std::move(reply)), p);
            else
                scatter_reply(reply, p);
        }
        pending_data.clear();
    }
    c_bytes_fetched_.add(fetched);
    d_span.end_arg("bytes", fetched);
    if (direct) {
        // holes fallback: count the distinct elements the pieces covered
        // (overlap-safe interval union over their runs); when short of
        // the selection, zero the slice and replay every retained piece
        std::vector<std::pair<std::uint64_t, std::uint64_t>> iv;
        for (const auto& r : recs)
            for (const auto& run : r.sub.runs()) iv.emplace_back(run.file_off, run.file_off + run.len);
        std::sort(iv.begin(), iv.end());
        std::uint64_t covered = 0, hi = 0;
        for (const auto& [a, b] : iv) {
            if (covered == 0 || a > hi) {
                covered += b - a;
                hi = b;
            } else if (b > hi) {
                covered += b - hi;
                hi = b;
            }
        }
        if (covered < filespace.npoints()) {
            obs::ScopedTimerNs copy_timer(c_t_copy_ns_);
            std::memset(direct, 0, filespace.npoints() * elem);
            for (const auto& r : recs)
                scatter_into_packed(filespace, direct, r.sub, r.data, elem);
        }
    } else {
        obs::ScopedTimerNs copy_timer(c_t_copy_ns_);
        unpack_selection(memspace, packed.data(), elem, buf);
    }
}

} // namespace lowfive
