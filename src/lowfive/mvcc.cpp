#include "mvcc.hpp"

#include <check/check.hpp>
#include <check/race.hpp>
#include <obs/metrics.hpp>
#include <obs/trace.hpp>

namespace lowfive::mvcc {

namespace {
/// Identity of the ReadSection pseudo-lock in the lockdep graph (one
/// class process-wide; per-thread nesting is tracked in the lockset).
const char g_read_section_tag = 0;
} // namespace

/// Copy-on-write name → current-snapshot map, swapped atomically at every
/// publish/retire so readers pin without a lock.
struct Root {
    std::map<std::string, std::shared_ptr<const Snapshot>> current;
};

struct StoreState {
    /// Leaf mutex for writer paths and superseded-version lookups only:
    /// nothing under it communicates, allocates unboundedly, or takes
    /// another lock.
    mutable std::mutex mutex;
    /// name → version → snapshot: the current version of every name plus
    /// superseded versions still pinned somewhere.
    std::map<std::string, std::map<std::uint64_t, std::shared_ptr<const Snapshot>>> live;
    /// Monotonic per-name publish versions (erased for retired steps).
    std::map<std::string, std::uint64_t> next_version;
    /// The lock-free read root. Guarded by `mutex` for writers; readers
    /// do a plain atomic load.
    std::atomic<std::shared_ptr<const Root>> root;

    std::atomic<std::uint64_t> outstanding_pins{0};
    SnapshotStore::Metrics     metrics;

    /// Remove (name, version) from the live set if present; metrics and
    /// the mvcc.gc trace event fire exactly once per version. Requires
    /// `mutex` held.
    bool gc_locked(const std::string& name, std::uint64_t version) {
        L5_SHARED_WRITE(this, "live", "mvcc/gc");
        auto nit = live.find(name);
        if (nit == live.end()) return false;
        auto vit = nit->second.find(version);
        if (vit == nit->second.end()) return false;
        nit->second.erase(vit);
        if (nit->second.empty()) live.erase(nit);
        if (metrics.live) metrics.live->add(-1);
        if (metrics.gc) metrics.gc->inc();
        obs::instant("mvcc.gc", "lowfive",
                     {{"file", 0, obs::intern_if_enabled(name)}, {"version", version, nullptr}});
        return true;
    }
};

// --- SnapshotPin -----------------------------------------------------------------

SnapshotPin::SnapshotPin(std::shared_ptr<const Snapshot> s) : snap_(std::move(s)) {
    if (!snap_) return;
    l5race::atomic_rmw(&snap_->pins_);
    snap_->pins_.fetch_add(1, std::memory_order_seq_cst);
    if (auto st = snap_->state_.lock()) {
        st->outstanding_pins.fetch_add(1, std::memory_order_relaxed);
        if (st->metrics.pins) st->metrics.pins->inc();
    }
}

void SnapshotPin::release() {
    if (!snap_) return;
    auto snap = std::move(snap_);
    snap_     = nullptr;
    auto st   = snap->state_.lock();
    if (st) st->outstanding_pins.fetch_sub(1, std::memory_order_relaxed);
    l5race::atomic_rmw(&snap->pins_);
    const auto prev = snap->pins_.fetch_sub(1, std::memory_order_seq_cst);
    // last pin of a superseded version: GC it now instead of waiting for
    // the next publish (the GC-while-last-reader-unpins edge; the seq_cst
    // pair with the supersede path means exactly one side sees both
    // "pins == 0" and "superseded")
    l5race::atomic_consume(&snap->superseded_);
    if (prev == 1 && snap->superseded_.load(std::memory_order_seq_cst) && st) {
        std::lock_guard<std::mutex> lk(st->mutex);
        l5race::LockHold rh(&st->mutex, "mvcc/unpin-gc", "mvcc.leaf");
        if (snap->pins_.load(std::memory_order_seq_cst) == 0)
            st->gc_locked(snap->name_, snap->version_);
    }
}

// --- SnapshotStore ---------------------------------------------------------------

SnapshotStore::SnapshotStore(Metrics m) : state_(std::make_shared<StoreState>()) {
    state_->metrics = m;
    state_->root.store(std::make_shared<const Root>(), std::memory_order_release);
}

SnapshotStore::~SnapshotStore() = default;

SnapshotPin SnapshotStore::publish(const std::string& name, std::shared_ptr<h5::Object> root,
                                   IndexMap index, std::uint64_t publish_ns) {
    std::lock_guard<std::mutex> lk(state_->mutex);
    l5race::LockHold rh(&state_->mutex, "mvcc/publish", "mvcc.leaf");

    auto snap         = std::shared_ptr<Snapshot>(new Snapshot());
    snap->name_       = name;
    L5_SHARED_WRITE(state_.get(), "next_version", "mvcc/publish");
    snap->version_    = ++state_->next_version[name];
    snap->publish_ns_ = publish_ns;
    snap->root_       = std::move(root);
    snap->index_      = std::move(index);
    snap->state_      = state_;

    l5race::atomic_consume(&state_->root);
    auto old_root = state_->root.load(std::memory_order_acquire);
    auto new_root = std::make_shared<Root>(*old_root);
    std::shared_ptr<const Snapshot> old;
    if (auto it = new_root->current.find(name); it != new_root->current.end()) old = it->second;
    new_root->current[name] = snap;

    L5_SHARED_WRITE(state_.get(), "live", "mvcc/publish");
    state_->live[name][snap->version_] = snap;
    if (state_->metrics.live) state_->metrics.live->add(1);
    obs::instant("mvcc.publish", "lowfive",
                 {{"file", 0, obs::intern_if_enabled(name)},
                  {"version", snap->version_, nullptr}});

    // install before superseding: a reader racing the swap pins either
    // the old version (still live until unpinned) or the new one
    l5race::atomic_publish(&state_->root);
    state_->root.store(std::move(new_root), std::memory_order_release);
    if (old) {
        l5race::atomic_publish(&old->superseded_);
        old->superseded_.store(true, std::memory_order_seq_cst);
        l5race::atomic_consume(&old->pins_);
        if (old->pins_.load(std::memory_order_seq_cst) == 0)
            state_->gc_locked(old->name_, old->version_);
    }
    return SnapshotPin(std::move(snap));
}

void SnapshotStore::retire(const std::string& name, bool forget_versions) {
    std::lock_guard<std::mutex> lk(state_->mutex);
    l5race::LockHold rh(&state_->mutex, "mvcc/retire", "mvcc.leaf");
    l5race::atomic_consume(&state_->root);
    auto old_root = state_->root.load(std::memory_order_acquire);
    if (auto it = old_root->current.find(name); it != old_root->current.end()) {
        auto new_root = std::make_shared<Root>(*old_root);
        auto current  = it->second;
        new_root->current.erase(name);
        l5race::atomic_publish(&state_->root);
        state_->root.store(std::move(new_root), std::memory_order_release);
        l5race::atomic_publish(&current->superseded_);
        current->superseded_.store(true, std::memory_order_seq_cst);
        l5race::atomic_consume(&current->pins_);
        if (current->pins_.load(std::memory_order_seq_cst) == 0)
            state_->gc_locked(current->name_, current->version_);
    }
    L5_SHARED_WRITE(state_.get(), "next_version", "mvcc/retire");
    if (forget_versions) state_->next_version.erase(name);
}

SnapshotPin SnapshotStore::pin(const std::string& name) const {
    l5race::atomic_consume(&state_->root);
    auto root = state_->root.load(std::memory_order_acquire);
    auto it   = root->current.find(name);
    if (it == root->current.end()) return {};
    return SnapshotPin(it->second);
}

SnapshotPin SnapshotStore::pin(const std::string& name, std::uint64_t version) const {
    l5race::atomic_consume(&state_->root);
    auto root = state_->root.load(std::memory_order_acquire);
    if (auto it = root->current.find(name);
        it != root->current.end() && it->second->version_ == version)
        return SnapshotPin(it->second);
    // superseded-but-live lookup: leaf mutex, still never the vol's
    // serve mutex (this is part of pinning, before any ReadSection)
    std::lock_guard<std::mutex> lk(state_->mutex);
    l5race::LockHold rh(&state_->mutex, "mvcc/pin-version", "mvcc.leaf");
    L5_SHARED_READ(state_.get(), "live", "mvcc/pin-version");
    auto nit = state_->live.find(name);
    if (nit == state_->live.end()) return {};
    auto vit = nit->second.find(version);
    if (vit == nit->second.end()) return {};
    return SnapshotPin(vit->second);
}

std::size_t SnapshotStore::live_snapshots() const {
    std::lock_guard<std::mutex> lk(state_->mutex);
    l5race::LockHold rh(&state_->mutex, "mvcc/live_snapshots", "mvcc.leaf");
    L5_SHARED_READ(state_.get(), "live", "mvcc/live_snapshots");
    std::size_t                 n = 0;
    for (const auto& [name, versions] : state_->live) n += versions.size();
    return n;
}

std::uint64_t SnapshotStore::outstanding_pins() const {
    return state_->outstanding_pins.load(std::memory_order_relaxed);
}

// --- no-lock-after-pin lint ------------------------------------------------------

namespace {
std::atomic<bool>        g_lock_lint{false};
thread_local std::size_t t_read_depth = 0;
} // namespace

void set_lock_lint(bool armed) { g_lock_lint.store(armed, std::memory_order_relaxed); }
bool lock_lint_armed() { return g_lock_lint.load(std::memory_order_relaxed); }

ReadSection::ReadSection() {
    // pseudo-lock: joins the lockdep graph (the serve-lock-after-pin
    // forbidden edge hangs off this class) but never excuses races.
    // Before the depth bump: a raise-mode throw must leave depth balanced
    // (the dtor will not run)
    l5race::pseudo_lock_acquired(&g_read_section_tag, "mvcc::ReadSection", "mvcc.read_section");
    ++t_read_depth;
}
ReadSection::~ReadSection() {
    l5race::pseudo_lock_released(&g_read_section_tag);
    --t_read_depth;
}

bool in_read_section() noexcept { return t_read_depth > 0; }

void note_serve_lock(const char* site) {
    if (!lock_lint_armed() || !in_read_section()) return;
    throw l5check::CheckError("serve-lock-after-pin",
                              std::string("serve mutex acquired at '") + site
                                  + "' inside a pinned snapshot read section — the "
                                    "serve-side query path must stay lock-free past "
                                    "the pin");
}

} // namespace lowfive::mvcc
