#include "config.hpp"

namespace lowfive {

bool glob_match(const std::string& pattern, const std::string& name) {
    // iterative glob with backtracking over the last '*'
    std::size_t p = 0, n = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (n < name.size()) {
        if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == name[n])) {
            ++p;
            ++n;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = n;
        } else if (star != std::string::npos) {
            p = star + 1;
            n = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*') ++p;
    return p == pattern.size();
}

bool matches_file(const std::vector<PatternPair>& rules, const std::string& filename) {
    for (const auto& r : rules)
        if (glob_match(r.file_pattern, filename)) return true;
    return false;
}

bool matches(const std::vector<PatternPair>& rules, const std::string& filename,
             const std::string& dset_path) {
    for (const auto& r : rules)
        if (glob_match(r.file_pattern, filename) && glob_match(r.dset_pattern, dset_path))
            return true;
    return false;
}

} // namespace lowfive
