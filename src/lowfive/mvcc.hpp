#pragma once

/// MVCC snapshot index for DistMetadataVol (ROADMAP item 2).
///
/// Every publish of a file — a plain file close or a streaming `end_step`
/// — freezes the file's state into an immutable `Snapshot`: the metadata
/// tree (shared with the producer's FileEntry, never mutated after close)
/// plus the Algorithm-1 index (dataset path → (bounding box, producer
/// rank) entries this rank owns). Snapshots are installed with an atomic
/// root swap and read lock-free:
///
///  - **publish** (producer thread, serialized per vol) builds the new
///    Snapshot, supersedes the previous current version of the same name,
///    and swaps a copy-on-write name→snapshot root pointer;
///  - **pin** (any thread) loads the root pointer, bumps the snapshot's
///    refcount, and hands out an RAII `SnapshotPin`; reading through a
///    pin touches no lock — the tree and index are frozen. Pinning an
///    exact superseded-but-live version falls back to a small leaf mutex
///    (the control path), still never the vol's serve mutex;
///  - **GC**: a superseded version is dropped from the live set as soon
///    as no pin holds it — either at the publish that superseded it or
///    when the last reader unpins. In-flight zero-copy serve payloads
///    alias the snapshot through its shared_ptr, so the bytes stay valid
///    on the wire even after the version left the live set.
///
/// The store also backs the no-lock-after-pin lint: when armed (L5_CHECK),
/// acquiring the vol's serve mutex inside a `ReadSection` (entered after a
/// query handler pins its snapshot) raises a "serve-lock-after-pin"
/// CheckError — the acceptance contract that the serve-side query path
/// stays lock-free past the pin.

#include <diy/bounds.hpp>
#include <h5/tree.hpp>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace obs {
class Counter;
class Gauge;
} // namespace obs

namespace lowfive::mvcc {

/// Per-dataset index entries: (bounding box, producer rank) pairs for the
/// common-decomposition blocks this rank owns (Algorithm 1's output).
using IndexEntries = std::vector<std::pair<diy::Bounds, int>>;
using IndexMap     = std::map<std::string, IndexEntries>;

class SnapshotStore;

/// One immutable published version of one file: the frozen metadata tree
/// and the per-dataset index. Reached only through a SnapshotPin (or a
/// shared_ptr alias kept by an in-flight zero-copy payload).
class Snapshot {
public:
    const std::string& name() const { return name_; }
    std::uint64_t      version() const { return version_; }
    std::uint64_t      publish_ns() const { return publish_ns_; }

    /// The frozen metadata tree. Non-const Object because resolve() and
    /// the piece extractors are non-const; the tree is immutable by
    /// contract once published (file close froze it).
    h5::Object* root() const { return root_.get(); }

    /// Index entries for one dataset path; nullptr when the dataset has
    /// no indexed writes on this rank.
    const IndexEntries* index_for(const std::string& dset) const {
        auto it = index_.find(dset);
        return it == index_.end() ? nullptr : &it->second;
    }

    Snapshot(const Snapshot&)            = delete;
    Snapshot& operator=(const Snapshot&) = delete;

private:
    friend class SnapshotStore;
    friend class SnapshotPin;
    Snapshot() = default;

    std::string                 name_;
    std::uint64_t               version_    = 0;
    std::uint64_t               publish_ns_ = 0;
    std::shared_ptr<h5::Object> root_;
    IndexMap                    index_;

    // GC state: pin count and the superseded flag use seq_cst so the
    // last-unpin / supersede race cannot lose the GC on both sides.
    // Both mutable: the live set hands out shared_ptr<const Snapshot>,
    // and pin/supersede are bookkeeping, not logical mutation.
    mutable std::atomic<std::uint64_t> pins_{0};
    mutable std::atomic<bool>          superseded_{false};
    std::weak_ptr<struct StoreState>   state_; ///< GC + accounting back-ref
};

/// RAII pin: keeps one snapshot version alive and readable. Move-only;
/// destroying (or release()-ing) the last pin of a superseded version
/// garbage-collects it from the store's live set.
class SnapshotPin {
public:
    SnapshotPin() = default;
    SnapshotPin(SnapshotPin&& o) noexcept : snap_(std::move(o.snap_)) {}
    SnapshotPin& operator=(SnapshotPin&& o) noexcept {
        if (this != &o) {
            release();
            snap_ = std::move(o.snap_);
        }
        return *this;
    }
    SnapshotPin(const SnapshotPin&)            = delete;
    SnapshotPin& operator=(const SnapshotPin&) = delete;
    ~SnapshotPin() { release(); }

    /// Drop the pin now (idempotent); runs the last-unpin GC.
    void release();

    explicit operator bool() const { return snap_ != nullptr; }
    const Snapshot* operator->() const { return snap_.get(); }
    const Snapshot& operator*() const { return *snap_; }
    const Snapshot* get() const { return snap_.get(); }

    /// The snapshot as a shared_ptr, for aliasing its buffers into
    /// zero-copy wire payloads that may outlive the pin.
    std::shared_ptr<const Snapshot> shared() const { return snap_; }

private:
    friend class SnapshotStore;
    explicit SnapshotPin(std::shared_ptr<const Snapshot> s);
    std::shared_ptr<const Snapshot> snap_;
};

/// The versioned snapshot store: one per DistMetadataVol (per rank).
/// publish/retire run on the producer thread (serialized by the vol's
/// control lock); pin/unpin run on any thread, lock-free on the current
/// version.
class SnapshotStore {
public:
    /// Optional externally owned instruments (a vol's metrics registry);
    /// any may be null. The store publishes:
    ///   n_snapshots_live (gauge)  — versions in the live set (current +
    ///                               superseded-but-pinned)
    ///   n_snapshot_pins (counter) — pins ever taken
    ///   n_snapshot_gc  (counter)  — versions dropped from the live set
    struct Metrics {
        obs::Gauge*   live = nullptr;
        obs::Counter* pins = nullptr;
        obs::Counter* gc   = nullptr;
    };

    // (explicit init list: a nested class's default member initializers
    // are not usable in a default argument of its enclosing class)
    explicit SnapshotStore(Metrics m = Metrics{nullptr, nullptr, nullptr});
    ~SnapshotStore();

    SnapshotStore(const SnapshotStore&)            = delete;
    SnapshotStore& operator=(const SnapshotStore&) = delete;

    /// Install a new current version of `name` (monotonic per-name
    /// version numbers), superseding — and GC'ing, when unpinned — the
    /// previous current one. Returns a pin of the new version.
    SnapshotPin publish(const std::string& name, std::shared_ptr<h5::Object> root,
                        IndexMap index, std::uint64_t publish_ns);

    /// Drop `name`'s current version (file dropped / step evicted).
    /// Superseded-but-pinned versions stay live until their last unpin.
    /// `forget_versions` additionally erases the per-name version counter
    /// — for step names, which are never republished, so a long stream
    /// does not accumulate counters.
    void retire(const std::string& name, bool forget_versions = false);

    /// Pin the current version of `name`; empty pin when none. Lock-free:
    /// an atomic root load plus one refcount increment.
    SnapshotPin pin(const std::string& name) const;

    /// Pin exactly version `version` of `name`: lock-free when it is
    /// current, a leaf-mutex lookup of the superseded-but-live set
    /// otherwise; empty pin when that version is gone.
    SnapshotPin pin(const std::string& name, std::uint64_t version) const;

    /// Live versions across all names (the n_snapshots_live gauge).
    std::size_t live_snapshots() const;
    /// SnapshotPin handles currently alive (the leaked-pin lint input).
    std::uint64_t outstanding_pins() const;

private:
    std::shared_ptr<StoreState> state_;
};

/// --- no-lock-after-pin lint ------------------------------------------------

/// Arm/disarm the serve-lock-after-pin lint (process-wide; armed by
/// DistMetadataVol when L5_CHECK is set, or directly by tests).
void set_lock_lint(bool armed);
bool lock_lint_armed();

/// A pinned read section: the serve-side query path enters one right
/// after pinning its snapshot. Thread-local depth; always cheap. Also a
/// pseudo-lock of l5race class "mvcc.read_section", so entering one may
/// throw RaceError in raise mode on a lock-order violation.
class ReadSection {
public:
    ReadSection();
    ~ReadSection();
    ReadSection(const ReadSection&)            = delete;
    ReadSection& operator=(const ReadSection&) = delete;
};
bool in_read_section() noexcept;

/// Called by the vol's serve-state lock wrappers before acquiring. When
/// the lint is armed and the calling thread is inside a ReadSection,
/// raises l5check::CheckError("serve-lock-after-pin") naming `site`.
void note_serve_lock(const char* site);

} // namespace lowfive::mvcc
