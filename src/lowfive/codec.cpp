#include "codec.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#define L5_CODEC_SSE2 1
#endif

namespace lowfive {
namespace codec {

namespace {

constexpr int         hash_log     = 13;
constexpr std::size_t hash_size    = std::size_t(1) << hash_log;
constexpr std::size_t min_match    = 4;
/// The last bytes of a block are emitted as literals so match extension
/// never reads past the input and the decoder's wild copies stay inside
/// the exact output size.
constexpr std::size_t tail_literals = 12;
constexpr std::size_t max_offset    = 65535;

inline std::uint32_t read32(const std::byte* p) {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

inline std::uint64_t read64(const std::byte* p) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

/// Index of the first differing byte between two little-endian words.
inline std::size_t first_diff_byte(std::uint64_t a, std::uint64_t b) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<std::size_t>(__builtin_ctzll(a ^ b)) >> 3;
#else
    std::uint64_t x = a ^ b;
    std::size_t   i = 0;
    while ((x & 0xff) == 0) { x >>= 8; ++i; }
    return i;
#endif
}

/// Length of the common prefix of src[a..] and src[b..], capped at `max`.
/// Word-at-a-time: compares 8 bytes per iteration, then pinpoints the
/// mismatch with a count-trailing-zeros on the xor.
inline std::size_t match_length(const std::byte* src, std::size_t a, std::size_t b,
                                std::size_t max) {
    std::size_t len = 0;
    while (len + 8 <= max) {
        const std::uint64_t wa = read64(src + a + len);
        const std::uint64_t wb = read64(src + b + len);
        if (wa != wb) return len + first_diff_byte(wa, wb);
        len += 8;
    }
    while (len < max && src[a + len] == src[b + len]) ++len;
    return len;
}

inline std::uint32_t hash4(std::uint32_t v) {
    return (v * 2654435761u) >> (32 - hash_log);
}

inline void write16le(std::byte* p, std::uint16_t v) {
    p[0] = static_cast<std::byte>(v & 0xff);
    p[1] = static_cast<std::byte>(v >> 8);
}

inline std::uint16_t read16le(const std::byte* p) {
    return static_cast<std::uint16_t>(static_cast<unsigned>(p[0])
                                      | (static_cast<unsigned>(p[1]) << 8));
}

/// Emit one sequence: `lit` literals from `src + anchor`, then (unless
/// this is the final literal-only sequence) a match of `mlen` at
/// `offset`. Returns false when `dst` capacity would be exceeded.
bool emit_sequence(const std::byte* src, std::size_t anchor, std::size_t lit, std::size_t offset,
                   std::size_t mlen, std::byte* dst, std::size_t cap, std::size_t& op,
                   bool final_literals) {
    // worst case: token + lit/255 + 1 ext bytes + literals + offset + mlen ext
    const std::size_t worst = 1 + lit / 255 + 1 + lit + 2 + (mlen ? mlen / 255 + 1 : 0);
    if (op + worst > cap) return false;

    const std::size_t token_pos = op++;
    std::uint8_t      token     = 0;

    if (lit >= 15) {
        token = 15u << 4;
        std::size_t rest = lit - 15;
        while (rest >= 255) {
            dst[op++] = static_cast<std::byte>(255);
            rest -= 255;
        }
        dst[op++] = static_cast<std::byte>(rest);
    } else {
        token = static_cast<std::uint8_t>(lit << 4);
    }
    std::memcpy(dst + op, src + anchor, lit);
    op += lit;

    if (!final_literals) {
        write16le(dst + op, static_cast<std::uint16_t>(offset));
        op += 2;
        const std::size_t ml = mlen - min_match;
        if (ml >= 15) {
            token |= 15;
            std::size_t rest = ml - 15;
            while (rest >= 255) {
                dst[op++] = static_cast<std::byte>(255);
                rest -= 255;
            }
            dst[op++] = static_cast<std::byte>(rest);
        } else {
            token |= static_cast<std::uint8_t>(ml);
        }
    }
    dst[token_pos] = static_cast<std::byte>(token);
    return true;
}

} // namespace

std::size_t compress_bound(std::size_t n) { return n + n / 255 + 16; }

std::size_t lz4_compress(const std::byte* src, std::size_t n, std::byte* dst, std::size_t cap) {
    std::size_t op = 0;

    if (n <= tail_literals) {
        if (!emit_sequence(src, 0, n, 0, 0, dst, cap, op, /*final=*/true)) return 0;
        return op;
    }

    std::uint32_t table[hash_size] = {0}; // position + 1; 0 = empty

    const std::size_t mflimit = n - tail_literals; // last position a match may start
    std::size_t       ip = 0, anchor = 0;
    std::size_t       skip = 1u << 6; // acceleration: step = skip >> 6

    while (ip < mflimit) {
        const std::uint32_t seq  = read32(src + ip);
        const std::uint32_t h    = hash4(seq);
        const std::size_t   cand = table[h];
        table[h]                 = static_cast<std::uint32_t>(ip + 1);

        if (cand != 0 && ip + 1 - cand <= max_offset && read32(src + (cand - 1)) == seq) {
            const std::size_t match = cand - 1;
            const std::size_t mmax  = n - tail_literals + min_match - ip; // keep tail literal-only
            const std::size_t mlen =
                min_match + match_length(src, match + min_match, ip + min_match, mmax - min_match);

            if (!emit_sequence(src, anchor, ip - anchor, ip - match, mlen, dst, cap, op,
                               /*final=*/false))
                return 0;
            ip += mlen;
            anchor = ip;
            skip   = 1u << 6;
        } else {
            ip += skip++ >> 6;
        }
    }

    if (!emit_sequence(src, anchor, n - anchor, 0, 0, dst, cap, op, /*final=*/true)) return 0;
    return op;
}

void lz4_decompress(const std::byte* src, std::size_t n, std::byte* dst, std::size_t raw_n) {
    std::size_t ip = 0, op = 0;

    auto read_len = [&](std::size_t base) -> std::size_t {
        std::size_t len = base;
        if (base == 15) {
            std::uint8_t b;
            do {
                if (ip >= n) throw CodecError("lz4: truncated length");
                b = static_cast<std::uint8_t>(src[ip++]);
                len += b;
            } while (b == 255);
        }
        return len;
    };

    while (ip < n) {
        const std::uint8_t token = static_cast<std::uint8_t>(src[ip++]);

        const std::size_t lit = read_len(token >> 4);
        if (ip + lit > n) throw CodecError("lz4: literal run past input");
        if (op + lit > raw_n) throw CodecError("lz4: literal run past output");
        std::memcpy(dst + op, src + ip, lit);
        ip += lit;
        op += lit;

        if (ip == n) break; // final literal-only sequence

        if (ip + 2 > n) throw CodecError("lz4: truncated offset");
        const std::size_t offset = read16le(src + ip);
        ip += 2;
        if (offset == 0 || offset > op) throw CodecError("lz4: bad match offset");

        const std::size_t mlen = read_len(token & 0x0f) + min_match;
        if (op + mlen > raw_n) throw CodecError("lz4: match run past output");
        const std::byte* m = dst + op - offset;
        if (offset >= mlen) {
            // disjoint: one plain copy
            std::memcpy(dst + op, m, mlen);
        } else if (offset == 1) {
            // run-length: replicate a single byte
            std::memset(dst + op, static_cast<int>(m[0]), mlen);
        } else {
            // overlapping match replicates a period of `offset` bytes; seed
            // one period, then double the replicated span with disjoint
            // copies (filled stays a multiple of offset so the source
            // region never overlaps the destination of any memcpy)
            std::memcpy(dst + op, m, offset);
            std::size_t filled = offset;
            while (filled < mlen) {
                const std::size_t take = std::min(filled, mlen - filled);
                std::memcpy(dst + op + filled, dst + op, take);
                filled += take;
            }
        }
        op += mlen;
    }

    if (op != raw_n) throw CodecError("lz4: decoded size mismatch");
}

namespace {

/// Elements per transpose tile: the tile's row-major side (tile * elem
/// bytes, at most 64 KiB for elem = 16) stays cache-resident across all
/// `elem` byte-plane passes instead of streaming the whole buffer once
/// per plane.
constexpr std::size_t shuffle_tile = 4096;

#if L5_CODEC_SSE2

/// 16x8 byte transpose of 16 consecutive 8-byte elements, as an SSE2
/// unpack network (SSE2 is x86-64 baseline — no runtime dispatch
/// needed). Elements enter the network in bit-reversed order; the
/// 4-stage riffle then emits plane k's 16 bytes in natural element
/// order, matching the scalar layout byte-for-byte.
void shuffle8_sse2(const std::byte* src, std::size_t count, std::byte* dst) {
    const std::size_t vec = count & ~std::size_t(15);
    for (std::size_t i = 0; i < vec; i += 16) {
        const std::byte* s   = src + i * 8;
        const auto       ld2 = [&](int a, int b) {
            const __m128i lo = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(s + a * 8));
            const __m128i hi = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(s + b * 8));
            return _mm_unpacklo_epi64(lo, hi);
        };
        const __m128i r0 = ld2(0, 8), r1 = ld2(4, 12), r2 = ld2(2, 10), r3 = ld2(6, 14);
        const __m128i r4 = ld2(1, 9), r5 = ld2(5, 13), r6 = ld2(3, 11), r7 = ld2(7, 15);
        const __m128i o0 = _mm_unpacklo_epi8(r0, r4), o1 = _mm_unpackhi_epi8(r0, r4);
        const __m128i o2 = _mm_unpacklo_epi8(r1, r5), o3 = _mm_unpackhi_epi8(r1, r5);
        const __m128i o4 = _mm_unpacklo_epi8(r2, r6), o5 = _mm_unpackhi_epi8(r2, r6);
        const __m128i o6 = _mm_unpacklo_epi8(r3, r7), o7 = _mm_unpackhi_epi8(r3, r7);
        const __m128i p0 = _mm_unpacklo_epi16(o0, o4), p1 = _mm_unpackhi_epi16(o0, o4);
        const __m128i p2 = _mm_unpacklo_epi16(o1, o5), p3 = _mm_unpackhi_epi16(o1, o5);
        const __m128i p4 = _mm_unpacklo_epi16(o2, o6), p5 = _mm_unpackhi_epi16(o2, o6);
        const __m128i p6 = _mm_unpacklo_epi16(o3, o7), p7 = _mm_unpackhi_epi16(o3, o7);
        const __m128i q0 = _mm_unpacklo_epi32(p0, p4), q1 = _mm_unpackhi_epi32(p0, p4);
        const __m128i q2 = _mm_unpacklo_epi32(p1, p5), q3 = _mm_unpackhi_epi32(p1, p5);
        const __m128i q4 = _mm_unpacklo_epi32(p2, p6), q5 = _mm_unpackhi_epi32(p2, p6);
        const __m128i q6 = _mm_unpacklo_epi32(p3, p7), q7 = _mm_unpackhi_epi32(p3, p7);
        const __m128i planes[8] = {
            _mm_unpacklo_epi64(q0, q4), _mm_unpackhi_epi64(q0, q4),
            _mm_unpacklo_epi64(q1, q5), _mm_unpackhi_epi64(q1, q5),
            _mm_unpacklo_epi64(q2, q6), _mm_unpackhi_epi64(q2, q6),
            _mm_unpacklo_epi64(q3, q7), _mm_unpackhi_epi64(q3, q7),
        };
        for (int k = 0; k < 8; ++k)
            _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + static_cast<std::size_t>(k) * count + i),
                             planes[k]);
    }
    for (std::size_t k = 0; k < 8; ++k) {
        std::byte* d = dst + k * count;
        for (std::size_t i = vec; i < count; ++i) d[i] = src[i * 8 + k];
    }
}

/// Inverse of shuffle8_sse2: an 8x16 transpose. Planes enter in
/// bit-reversed order; three riffle stages emit element pairs in
/// natural order with natural byte order.
void unshuffle8_sse2(const std::byte* src, std::size_t count, std::byte* dst) {
    const std::size_t vec = count & ~std::size_t(15);
    for (std::size_t i = 0; i < vec; i += 16) {
        const auto ld = [&](int plane) {
            return _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(src + static_cast<std::size_t>(plane) * count + i));
        };
        const __m128i s0 = ld(0), s1 = ld(4), s2 = ld(2), s3 = ld(6);
        const __m128i s4 = ld(1), s5 = ld(5), s6 = ld(3), s7 = ld(7);
        const __m128i o0 = _mm_unpacklo_epi8(s0, s4), o1 = _mm_unpackhi_epi8(s0, s4);
        const __m128i o2 = _mm_unpacklo_epi8(s1, s5), o3 = _mm_unpackhi_epi8(s1, s5);
        const __m128i o4 = _mm_unpacklo_epi8(s2, s6), o5 = _mm_unpackhi_epi8(s2, s6);
        const __m128i o6 = _mm_unpacklo_epi8(s3, s7), o7 = _mm_unpackhi_epi8(s3, s7);
        const __m128i p0 = _mm_unpacklo_epi16(o0, o4), p1 = _mm_unpackhi_epi16(o0, o4);
        const __m128i p2 = _mm_unpacklo_epi16(o1, o5), p3 = _mm_unpackhi_epi16(o1, o5);
        const __m128i p4 = _mm_unpacklo_epi16(o2, o6), p5 = _mm_unpackhi_epi16(o2, o6);
        const __m128i p6 = _mm_unpacklo_epi16(o3, o7), p7 = _mm_unpackhi_epi16(o3, o7);
        const __m128i q[8] = {
            _mm_unpacklo_epi32(p0, p4), _mm_unpackhi_epi32(p0, p4),
            _mm_unpacklo_epi32(p1, p5), _mm_unpackhi_epi32(p1, p5),
            _mm_unpacklo_epi32(p2, p6), _mm_unpackhi_epi32(p2, p6),
            _mm_unpacklo_epi32(p3, p7), _mm_unpackhi_epi32(p3, p7),
        };
        std::byte* d = dst + i * 8;
        for (int k = 0; k < 8; ++k)
            _mm_storeu_si128(reinterpret_cast<__m128i*>(d + static_cast<std::size_t>(k) * 16), q[k]);
    }
    for (std::size_t k = 0; k < 8; ++k) {
        const std::byte* s = src + k * count;
        for (std::size_t i = vec; i < count; ++i) dst[i * 8 + k] = s[i];
    }
}

#endif // L5_CODEC_SSE2

} // namespace

void shuffle(const std::byte* src, std::size_t n, std::size_t elem, std::byte* dst) {
    const std::size_t count = n / elem;
#if L5_CODEC_SSE2
    if (elem == 8 && count >= 16) {
        shuffle8_sse2(src, count, dst);
        return;
    }
#endif
    for (std::size_t i0 = 0; i0 < count; i0 += shuffle_tile) {
        const std::size_t i1 = std::min(count, i0 + shuffle_tile);
        for (std::size_t k = 0; k < elem; ++k) {
            std::byte* d = dst + k * count;
            for (std::size_t i = i0; i < i1; ++i) d[i] = src[i * elem + k];
        }
    }
}

void unshuffle(const std::byte* src, std::size_t n, std::size_t elem, std::byte* dst) {
    const std::size_t count = n / elem;
#if L5_CODEC_SSE2
    if (elem == 8 && count >= 16) {
        unshuffle8_sse2(src, count, dst);
        return;
    }
#endif
    for (std::size_t i0 = 0; i0 < count; i0 += shuffle_tile) {
        const std::size_t i1 = std::min(count, i0 + shuffle_tile);
        for (std::size_t k = 0; k < elem; ++k) {
            const std::byte* s = src + k * count;
            for (std::size_t i = i0; i < i1; ++i) dst[i * elem + k] = s[i];
        }
    }
}

namespace {

void write_header(std::byte* p, Method method, std::size_t elem, std::uint64_t raw_size,
                  std::uint64_t payload_size) {
    std::uint32_t magic = frame_magic;
    std::memcpy(p, &magic, 4);
    p[4] = static_cast<std::byte>(frame_version);
    p[5] = static_cast<std::byte>(method);
    const std::uint16_t e = static_cast<std::uint16_t>(elem);
    std::memcpy(p + 6, &e, 2);
    std::memcpy(p + 8, &raw_size, 8);
    std::memcpy(p + 16, &payload_size, 8);
}

struct Header {
    Method        method;
    std::size_t   elem;
    std::uint64_t raw_size;
    std::uint64_t payload_size;
};

/// Reusable per-thread scratch for the codec's intermediate buffers.
/// The serve and query loops run the codec once per piece; allocating a
/// fresh multi-MiB buffer each time costs more in zero-fill and
/// first-touch page faults than the LZ4 pass itself, so the scratch is
/// kept (uninitialized, grown monotonically) for the thread's lifetime.
struct Scratch {
    std::unique_ptr<std::byte[]> buf;
    std::size_t                  cap = 0;

    std::byte* ensure(std::size_t n) {
        if (cap < n) {
            buf = std::make_unique_for_overwrite<std::byte[]>(n);
            cap = n;
        }
        return buf.get();
    }
};

thread_local Scratch t_shuffle_scratch;  // shuffled input / decoded intermediate
thread_local Scratch t_payload_scratch;  // lz4 output before it is appended

Header parse_header(const std::byte* frame, std::size_t frame_size) {
    if (frame_size < frame_header_bytes) throw CodecError("codec: frame shorter than header");
    std::uint32_t magic;
    std::memcpy(&magic, frame, 4);
    if (magic != frame_magic) throw CodecError("codec: bad frame magic");
    if (static_cast<std::uint8_t>(frame[4]) != frame_version)
        throw CodecError("codec: unsupported frame version");
    const std::uint8_t m = static_cast<std::uint8_t>(frame[5]);
    if (m > static_cast<std::uint8_t>(Method::shuffle_lz4))
        throw CodecError("codec: unknown method");
    Header h;
    h.method = static_cast<Method>(m);
    std::uint16_t e;
    std::memcpy(&e, frame + 6, 2);
    h.elem = e;
    std::memcpy(&h.raw_size, frame + 8, 8);
    std::memcpy(&h.payload_size, frame + 16, 8);
    if (h.payload_size != frame_size - frame_header_bytes)
        throw CodecError("codec: frame size does not match header");
    if (h.method == Method::raw && h.payload_size != h.raw_size)
        throw CodecError("codec: raw frame size mismatch");
    if (h.method == Method::shuffle_lz4 && (h.elem == 0 || h.raw_size % h.elem != 0))
        throw CodecError("codec: bad element width for shuffled frame");
    return h;
}

} // namespace

std::size_t compress_frame(const std::byte* src, std::size_t n, std::size_t elem,
                           std::vector<std::byte>& out, Method* chosen) {
    const bool        shuffled = elem >= 2 && elem <= 16 && n >= 64 && n % elem == 0;
    Method            method   = shuffled ? Method::shuffle_lz4 : Method::lz4;
    const std::size_t cap      = n > 0 ? n - 1 : 0; // must beat raw to be kept

    // Compress into per-thread scratch and append only the winning
    // payload: growing `out` by compress_bound(n) up front would
    // zero-fill n extra bytes per frame, which on multi-MiB pieces costs
    // more than the LZ4 pass itself.
    std::byte*  lz = t_payload_scratch.ensure(cap);
    std::size_t csize;
    if (shuffled) {
        std::byte* tmp = t_shuffle_scratch.ensure(n); // shuffle overwrites every byte
        shuffle(src, n, elem, tmp);
        csize = lz4_compress(tmp, n, lz, cap);
    } else {
        csize = lz4_compress(src, n, lz, cap);
    }

    const std::byte* payload = lz;
    if (csize == 0 || csize >= n) { // did not pay: store verbatim
        method  = Method::raw;
        payload = src;
        csize   = n;
    }

    std::byte header[frame_header_bytes];
    write_header(header, method, elem, n, csize);
    out.insert(out.end(), header, header + frame_header_bytes);
    if (csize > 0) out.insert(out.end(), payload, payload + csize);
    if (chosen) *chosen = method;
    return frame_header_bytes + csize;
}

std::size_t frame_raw_size(const std::byte* frame, std::size_t frame_size) {
    return parse_header(frame, frame_size).raw_size;
}

void decompress_frame(const std::byte* frame, std::size_t frame_size, std::byte* dst) {
    const Header     h       = parse_header(frame, frame_size);
    const std::byte* payload = frame + frame_header_bytes;

    switch (h.method) {
        case Method::raw:
            std::memcpy(dst, payload, h.raw_size);
            return;
        case Method::lz4:
            lz4_decompress(payload, h.payload_size, dst, h.raw_size);
            return;
        case Method::shuffle_lz4: {
            // per-thread scratch: lz4_decompress fills exactly raw_size
            std::byte* tmp = t_shuffle_scratch.ensure(h.raw_size);
            lz4_decompress(payload, h.payload_size, tmp, h.raw_size);
            unshuffle(tmp, h.raw_size, h.elem, dst);
            return;
        }
    }
    throw CodecError("codec: unknown method"); // unreachable; parse_header validated
}

// --- WireModel ---------------------------------------------------------------

WireModel& WireModel::instance() {
    static WireModel model;
    return model;
}

void WireModel::configure(double bw_MBps) {
    std::lock_guard<std::mutex> lock(mutex_);
    bw_MBps_      = bw_MBps;
    available_at_ = {};
}

void WireModel::configure_from_env() {
    double bw = bandwidth_MBps();
    if (const char* s = std::getenv("L5_WIRE_MBPS")) bw = std::atof(s);
    configure(bw);
}

double WireModel::bandwidth_MBps() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return bw_MBps_;
}

void WireModel::charge(std::uint64_t bytes) {
    std::chrono::steady_clock::time_point finish;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        bytes_charged_ += bytes;
        if (bw_MBps_ <= 0) return;
        const double seconds = static_cast<double>(bytes) / (bw_MBps_ * 1e6);
        const auto   now     = std::chrono::steady_clock::now();
        const auto   start   = std::max(now, available_at_);
        const auto   dur     = std::chrono::duration<double>(seconds);
        finish = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(dur);
        available_at_ = finish;
    }
    // lint: allow-raw-sleep(modelled wire bandwidth; charges simulated transfer time)
    std::this_thread::sleep_until(finish);
}

std::uint64_t WireModel::bytes_charged() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_charged_;
}

void WireModel::reset_stats() {
    std::lock_guard<std::mutex> lock(mutex_);
    bytes_charged_ = 0;
    available_at_  = {};
}

} // namespace codec
} // namespace lowfive
