#pragma once

#include "metadata_vol.hpp"
#include "mvcc.hpp"
#include "stream/step.hpp"
#include "stream/window.hpp"

#include <diy/decomposer.hpp>
#include <obs/metrics.hpp>
#include <simmpi/comm.hpp>
#include <simmpi/sched.hpp>

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <tuple>

namespace diy {
class BinaryBuffer;
} // namespace diy

namespace lowfive {

/// LowFive's distributed metadata VOL (paper §III-A level (c) and §III-B):
/// connects the ranks of a producer task to the ranks of a consumer task
/// through intercommunicators and redistributes dataset data with the
/// index–serve–query protocol:
///
///  - Index (Algorithm 1): on closing an in-memory file, the producer
///    ranks agree on a *common decomposition* of each dataset (n blocks
///    from factoring n into d near-equal factors) and exchange the
///    bounding boxes of their written data spaces so that rank i holds
///    the index for block i.
///  - Serve (Algorithm 2): producer ranks then answer consumer requests:
///    metadata queries (the serialized tree skeleton), intersection
///    queries (which producer ranks hold data intersecting a box), and
///    data queries (the actual selected elements), until every consumer
///    rank has closed the file (sent its done message).
///  - Query (Algorithm 3): a consumer read first asks the index-owning
///    ranks which producers hold intersecting data, then requests the
///    data from exactly those producers — all communication is direct
///    point-to-point, with no intermediate staging resources.
///
/// Connections are tagged with a file-name glob so a task can consume
/// from several producers and serve several consumers at once (fan-in /
/// fan-out). For passthru (file-mode) files, closing the file sends a
/// file-ready notification instead, and consumers block on it before
/// opening the physical file — reproducing the paper's synchronization
/// through file close.
class DistMetadataVol : public MetadataVol {
public:
    DistMetadataVol(simmpi::Comm local, h5::VolPtr passthru_vol = nullptr);

    /// The remote side of `intercomm` consumes files matching `pattern`.
    void serve_to(simmpi::Comm intercomm, std::string pattern = "*");
    /// The remote side of `intercomm` produces files matching `pattern`.
    void consume_from(simmpi::Comm intercomm, std::string pattern = "*");

    /// When true (default), closing an in-memory file that someone
    /// consumes blocks serving it until all consumer ranks are done.
    void set_serve_on_close(bool v) { serve_on_close_ = v; }

    /// Manually serve outstanding rounds (needed when serve_on_close is
    /// disabled); returns when all pending done messages have arrived.
    void serve_all();

    /// The paper's future-work overlap (§V-C "consume data as soon as it
    /// is available, and overlap reading and writing"): when enabled,
    /// closing an in-memory file indexes it and hands serving to a
    /// background thread; the producer rank continues immediately.
    /// Zero-copy buffers must then stay valid until finish_serving().
    /// Reserves tag 901 on the local communicator for the shutdown signal.
    void set_serve_in_background(bool v);

    /// Block until every outstanding round has been served and stop the
    /// background server. Safe to call when background serving is off.
    /// Cannot hang: when the serve thread died (world abort, deadline,
    /// malformed request) the wait ends, the thread is joined, and its
    /// exception is rethrown here.
    void finish_serving();

    ~DistMetadataVol() override;

    /// Consumer-side request pipelining: when true (default), a remote
    /// read issues every intersect query up front and drains replies in
    /// arrival order, sending each data query the moment a producer is
    /// first named; replies carry a request id so they may complete out
    /// of order. When false, the serial reference path runs: one request
    /// in flight at a time, replies taken in rank order.
    void set_pipelining(bool v) { pipelining_ = v; }

    /// Consumer-side producer-set cache: when true (default), the set of
    /// producer ranks answering a (file, dataset, query-bounds) triple is
    /// remembered, so repeated reads skip the intersect round entirely.
    /// Invalidated when the consumer closes or drops the file.
    void set_query_cache(bool v) {
        query_cache_ = v;
        if (!v) producer_cache_.clear();
    }

    /// Wire compression, negotiated per (file, dataset): data queries for
    /// datasets matching any registered glob pair advertise that the
    /// reply may be compressed; the serving side then wraps each piece
    /// payload ≥ the minimum size in a codec frame (byte shuffle +
    /// LZ4-style, lowfive::codec) before it enters the simmpi envelope.
    /// Setting `L5_COMPRESS=1` in the environment registers ("*", "*") at
    /// construction. Off by default: the codec trades serve/query CPU
    /// for wire bytes, which only pays on a constrained interconnect
    /// (see `L5_WIRE_MBPS`).
    void set_compress(const std::string& file_pattern, const std::string& dset_pattern);
    void clear_compress();

    /// Serve side: pieces smaller than this many bytes are never
    /// compressed (header + codec overhead would dominate). Default 4 KiB.
    void set_compress_min_bytes(std::uint64_t n) { compress_min_bytes_ = n; }

    /// Serve side: when a data query wants a whole piece (the common
    /// crossing-decomposition case) and the piece owns a packed copy, the
    /// reply aliases that buffer on the wire instead of extracting —
    /// zero serve-side copies. Pieces smaller than this many bytes are
    /// copied inline instead (a second message per piece has fixed
    /// protocol cost). Default 64 KiB; compression takes precedence.
    void set_zero_copy_min_bytes(std::uint64_t n) { zero_copy_min_bytes_ = n; }

    // --- step-versioned streaming (see stream/stream.hpp and DESIGN.md
    // § Streaming transport): producers publish immutable versioned
    // snapshots of a base file name into a bounded staging window and
    // consumers drain them asynchronously; backpressure per StreamConfig.

    /// Register the stream configuration (window size, backpressure
    /// policy, block-publish timeout) for streams whose base name
    /// matches `pattern`. First match wins; unmatched streams read
    /// `L5_STEP_WINDOW` / `L5_STEP_POLICY`. Register the same config on
    /// both the producer and the consumer vol (workflow `stream:` links
    /// do) — the consumer's acquire semantics depend on the policy.
    void set_stream(const std::string& pattern, stream::StreamConfig cfg);

    /// The config a stream named `name` would run under (registry > env).
    stream::StreamConfig stream_config_for(const std::string& name) const;

    // Wire entry points for stream::Writer / stream::Reader. Writer side:
    /// Register stream `name` (must be in-memory; forces background
    /// serving) and return its normalized config.
    stream::StreamConfig stream_begin(const std::string& name,
                                      std::optional<stream::StreamConfig> cfg);
    /// End of stream: consumers past the last published step see eos.
    void stream_end(const std::string& name);
    // Reader side:
    /// Subscribe to stream `name`; returns its normalized config.
    stream::StreamConfig stream_subscribe(const std::string& name,
                                          std::optional<stream::StreamConfig> cfg);
    /// Acquire the next step >= `min` (the newest published one when
    /// `latest`), pinning it on every producer rank so it cannot be
    /// evicted while held; blocks until one is published; nullopt at end
    /// of stream. Collective over the consumer task: rank 0 runs the
    /// grant/pin protocol and broadcasts the result, so every consumer
    /// rank steps through the same versions.
    std::optional<stream::StepId> stream_acquire(const std::string& name, stream::StepId min,
                                                 bool latest);
    /// Release the pins of `step` (collective: barriers so every rank
    /// finished reading before rank 0 releases on all producer ranks).
    void stream_release(const std::string& name, stream::StepId step);
    /// Done with the stream (collective): lets producers retire it once
    /// every subscribed consumer task has unsubscribed.
    void stream_unsubscribe(const std::string& name);

    /// Transfer statistics for reporting: a point-in-time snapshot of the
    /// metrics registry, returned by value so it is safe to read while a
    /// background serve thread is updating the underlying counters.
    struct Stats {
        std::uint64_t bytes_served   = 0; ///< payload bytes sent while serving (pre-codec)
        std::uint64_t bytes_fetched  = 0; ///< payload bytes received by queries (post-codec)
        std::uint64_t bytes_wire     = 0; ///< data-reply bytes that crossed the wire
        std::uint64_t n_data_queries = 0;
        std::uint64_t n_intersect_queries = 0;
        std::uint64_t n_intersect_cache_hits   = 0; ///< reads that skipped the intersect round
        std::uint64_t n_intersect_cache_misses = 0; ///< reads that had to run it
        std::uint64_t n_compressed_pieces = 0; ///< reply pieces that went out codec-framed
        std::uint64_t n_zero_copy_pieces  = 0; ///< reply pieces served as aliased buffers
        // streaming (producer side unless noted)
        std::uint64_t n_steps_published    = 0; ///< steps admitted to the staging window
        std::uint64_t n_steps_dropped      = 0; ///< steps evicted before full consumption
        std::uint64_t n_steps_drained      = 0; ///< steps fully released after an acquire
        std::uint64_t n_step_publish_waits = 0; ///< publishes that blocked on a full window
        std::uint64_t n_steps_acquired     = 0; ///< consumer side: successful next_step()s
        std::uint64_t n_step_pin_rollbacks = 0; ///< consumer side: gone-grant rollback retries
        // MVCC snapshot index (producer side)
        std::int64_t  n_snapshots_live = 0; ///< versions in the live set right now
        std::uint64_t n_snapshot_pins  = 0; ///< snapshot pins ever taken
        std::uint64_t n_snapshot_gc    = 0; ///< versions GC'd from the live set
    };
    Stats stats() const;

    /// The full metrics registry behind stats(): counters (including the
    /// per-phase time_*_ns breakdown) and latency histograms.
    const obs::Registry& metrics() const { return metrics_; }

    /// The MVCC snapshot store behind the serve-side index (read-only
    /// introspection: live versions, outstanding pins). See mvcc.hpp.
    const mvcc::SnapshotStore& snapshot_store() const { return snapshots_; }

    /// Consumer-side cache size: producer sets retained across all open
    /// remote files (each valid for exactly one publish version). For
    /// boundedness regression tests; touched only by the consumer thread.
    std::size_t producer_cache_sets() const {
        std::size_t n = 0;
        for (const auto& [file, fc] : producer_cache_) n += fc.sets.size();
        return n;
    }

    void* file_create(const std::string& name) override;
    void* file_open(const std::string& name) override;
    void  file_close(void* file) override;
    void  drop_file(const std::string& name) override;

protected:
    void after_file_close(FileEntry& entry) override;
    void remote_dataset_read(FileEntry& f, h5::Object* node, const h5::Dataspace& memspace,
                             const h5::Dataspace& filespace, void* buf) override;

private:
    struct Conn {
        simmpi::Comm ic;
        std::string  pattern;
    };

    int route_consume(const std::string& name) const; ///< -1 when no match

    /// Algorithm 1 over the local communicator (collective); publishes
    /// the resulting index + frozen tree as a new MVCC snapshot version.
    void index_file(FileEntry& entry);

    /// Serve requests until `target` total done messages have arrived.
    void serve_until(std::uint64_t target);
    /// Handle one queued request if any; returns true when something was
    /// handled (or deferred work was completed).
    bool poll_requests();
    /// Dispatch one request: Intersect/Data queries answer against a
    /// pinned snapshot with no serve-mutex acquisition; everything else
    /// (Done, MetadataQuery, stream control) runs under mutex_.
    void handle_request(Conn& conn, int src, std::vector<std::byte>&& payload);
    void handle_read_request(Conn& conn, int src, diy::BinaryBuffer&& bb, std::uint8_t op);
    void handle_control_request(Conn& conn, int src, diy::BinaryBuffer&& bb, std::uint8_t op);
    void retry_deferred();
    /// Replay parked requests after a publish/stream event. With a live
    /// background server the replay is handed to it via a one-byte
    /// self-send nudge (request handling stays single-threaded); inline
    /// otherwise. Requires mutex_ held.
    void schedule_deferred_retry_locked();
    /// Raise the leaked-snapshot-pin lint (L5_CHECK) when pins are still
    /// outstanding at finish_serving.
    void check_pin_leaks();

    void background_loop();

    /// Wake dones_cv_ waiters on both paths: the real condition variable
    /// and (when a deterministic scheduler is active) its channel.
    void notify_dones();

    // --- streaming internals (all require mutex_ held) --------------------
    /// Window admission for the step about to be published: runs the
    /// block-policy backpressure wait (the lock must hold mutex_ exactly
    /// once — the wait releases it for the serve thread) and the
    /// drop/latest_only evictions that make room.
    void stream_admit(simmpi::detail::CoopLock<std::recursive_mutex>& lock,
                      const std::string& base);
    /// Publish one versioned snapshot: index it, answer deferred acquires.
    void publish_step(FileEntry& entry, const std::string& base, stream::StepId step);
    /// Evict + GC per policy after a release/done/publish changed the
    /// window; retires the whole stream once drained.
    void stream_room_locked(const std::string& base, stream::StepWindow& window);
    /// GC one evicted step: drop its retained snapshot and index.
    void gc_step_locked(const std::string& base, stream::StepWindow::Evicted ev);
    /// Every registered stream ended, fully unsubscribed, and unpinned.
    bool streams_drained_locked() const;
    /// finish_serving predicate: file rounds AND streams done (or the
    /// serve thread died).
    bool rounds_done_locked() const {
        return serve_error_
               || (dones_received_ >= dones_expected_ && streams_drained_locked());
    }
    /// Consumer tasks subscribed to `base`: one per matching serve
    /// connection (each consumer task pins/releases through its rank 0).
    std::uint64_t stream_expected_consumers(const std::string& base) const;
    /// Spawn the background serve thread if not already running.
    void ensure_serve_thread_locked();

    /// Drop every cached producer set belonging to `file`.
    void invalidate_producer_cache(const std::string& file);

    simmpi::Comm      local_;
    std::vector<Conn> serve_conns_;
    std::vector<Conn> consume_conns_;
    bool              serve_on_close_ = true;
    bool              pipelining_     = true;
    bool              query_cache_    = true;

    // wire-compression negotiation (consumer advertises, producer encodes)
    std::vector<PatternPair> compress_;
    std::uint64_t            compress_min_bytes_  = 4096;
    std::uint64_t            zero_copy_min_bytes_ = 65536;

    // consumer state (touched only by the consumer's own thread): the
    // producer sets learned for one remote file, valid for exactly one
    // publish version — stale hits are impossible by construction, and a
    // reopen at a newer version evicts the file's sets eagerly, so
    // superseded versions never accumulate across long streams (each
    // step's entry additionally dies at stream_release)
    struct FileCache {
        std::uint64_t                                    version = 0;
        std::map<std::string, std::vector<std::int32_t>> sets; ///< dset \0 bounds → ranks
    };
    std::map<std::string, FileCache> producer_cache_;
    std::uint64_t                    next_req_id_ = 1;

    // background serving (off by default): the serve thread and the
    // producer thread share the publish/teardown control state —
    // files_/deferred_/done counters/round & step pins/stream windows —
    // guarded by mutex_ (recursive: the sync path serves while holding
    // it). The query hot path (Intersect/Data) does NOT take it: it reads
    // a pinned MVCC snapshot (snapshots_), enforced by the
    // serve-lock-after-pin lint under L5_CHECK.
    bool                         background_ = false;
    std::thread                  serve_thread_;
    mutable std::recursive_mutex mutex_;
    std::condition_variable_any  dones_cv_;
    // set (under mutex_) when the background serve thread dies — from a
    // world abort, a deadline, or a malformed request — so waiters on
    // dones_cv_ wake instead of hanging; finish_serving() rethrows it
    std::exception_ptr           serve_error_;

    // producer state
    std::uint64_t dones_received_ = 0;
    std::uint64_t dones_expected_ = 0;

    // round pins (guarded by mutex_): one snapshot pin per expected Done
    // per (serve connection, consumer rank, file), created at publish and
    // popped by the Done handler — the exact version a consumer opened
    // stays live (and byte-identically readable) until it finished its
    // round, no matter how many rewrites landed in between
    std::map<std::tuple<std::size_t, int, std::string>, std::vector<mvcc::SnapshotPin>>
        round_pins_;
    // streaming (guarded by mutex_): one snapshot pin per wire StepPin /
    // coordinator grant per versioned step name — a StepPin IS a snapshot
    // pin; popped by StepRelease, so window eviction only ever retires
    // unpinned snapshots
    std::map<std::string, std::vector<mvcc::SnapshotPin>> step_pins_;

    // metadata queries for files that do not exist yet (a fast consumer
    // ran ahead) and step acquires with nothing available yet; retried
    // after every file close / step publish / stream end
    struct Deferred {
        std::size_t            conn;
        int                    src;
        std::vector<std::byte> payload;
    };
    std::vector<Deferred> deferred_;

    // streaming state (guarded by mutex_): one staging window per active
    // stream on this producer rank, plus the config registry (first
    // matching pattern wins) shared by both sides
    std::map<std::string, stream::StepWindow>                 streams_;
    std::vector<std::pair<std::string, stream::StreamConfig>> stream_cfgs_;
    // StreamDone messages that raced ahead of stream_begin (a consumer
    // subscribed and quit before the writer registered the stream)
    std::map<std::string, std::uint64_t> pending_stream_dones_;

    // metrics (always on): atomics shared between the producer thread,
    // the consumer thread, and the background serve thread — updates and
    // stats() snapshots never race. Refs are resolved once here; the
    // registry member must precede them.
    obs::Registry   metrics_;
    obs::Counter&   c_bytes_served_     = metrics_.counter("bytes_served");
    obs::Counter&   c_bytes_fetched_    = metrics_.counter("bytes_fetched");
    obs::Counter&   c_data_queries_     = metrics_.counter("n_data_queries");
    obs::Counter&   c_intersect_queries_ = metrics_.counter("n_intersect_queries");
    obs::Counter&   c_cache_hits_       = metrics_.counter("n_intersect_cache_hits");
    obs::Counter&   c_cache_misses_     = metrics_.counter("n_intersect_cache_misses");
    obs::Counter&   c_t_index_ns_       = metrics_.counter("time_index_ns");
    obs::Counter&   c_t_serve_ns_       = metrics_.counter("time_serve_ns");
    obs::Counter&   c_t_query_ns_       = metrics_.counter("time_query_ns");
    obs::Counter&   c_t_intersect_ns_   = metrics_.counter("time_query_intersect_ns");
    obs::Counter&   c_t_data_ns_        = metrics_.counter("time_query_data_ns");
    // data-plane breakdown: decompress (time_query_compress_ns) and
    // scatter/unpack (time_query_copy_ns) are sub-phases of the data
    // phase; serve-side encode time is separate (inside time_serve_ns)
    obs::Counter&   c_bytes_wire_         = metrics_.counter("bytes_wire");
    obs::Counter&   c_compressed_pieces_  = metrics_.counter("n_compressed_pieces");
    obs::Counter&   c_zero_copy_pieces_   = metrics_.counter("n_zero_copy_pieces");
    obs::Counter&   c_t_encode_ns_        = metrics_.counter("time_serve_compress_ns");
    obs::Counter&   c_t_decode_ns_        = metrics_.counter("time_query_compress_ns");
    obs::Counter&   c_t_copy_ns_          = metrics_.counter("time_query_copy_ns");
    obs::Histogram& h_query_ns_         = metrics_.histogram("query_latency_ns");
    // streaming lifecycle: counts mirror Stats; the gauge tracks the
    // occupancy of the most recently updated stream window and the
    // histogram the publish→first-full-drain latency per step
    obs::Counter&   c_steps_published_    = metrics_.counter("n_steps_published");
    obs::Counter&   c_steps_dropped_      = metrics_.counter("n_steps_dropped");
    obs::Counter&   c_steps_drained_      = metrics_.counter("n_steps_drained");
    obs::Counter&   c_step_publish_waits_ = metrics_.counter("n_step_publish_waits");
    obs::Counter&   c_steps_acquired_     = metrics_.counter("n_steps_acquired");
    obs::Gauge&     g_window_occupancy_   = metrics_.gauge("stream_window_occupancy");
    obs::Histogram& h_step_latency_ns_    = metrics_.histogram("step_latency_ns");
    obs::Counter&   c_step_pin_rollbacks_ = metrics_.counter("n_step_pin_rollbacks");
    // MVCC snapshot lifecycle (updated by the store; resolved here so the
    // registry member precedes the store member)
    obs::Gauge&     g_snapshots_live_ = metrics_.gauge("n_snapshots_live");
    obs::Counter&   c_snapshot_pins_  = metrics_.counter("n_snapshot_pins");
    obs::Counter&   c_snapshot_gc_    = metrics_.counter("n_snapshot_gc");

    // the MVCC snapshot index: every publish installs an immutable
    // versioned snapshot here; the serve-side query path pins and reads
    // with no serve-mutex acquisition (see mvcc.hpp). Declared after the
    // metric refs it captures.
    mvcc::SnapshotStore snapshots_{
        mvcc::SnapshotStore::Metrics{&g_snapshots_live_, &c_snapshot_pins_, &c_snapshot_gc_}};
};

} // namespace lowfive
