#pragma once

#include <string>
#include <vector>

namespace lowfive {

/// Glob match: '*' matches any (possibly empty) sequence, '?' any single
/// character. Used for the per-file / per-dataset configuration patterns
/// (which files stay in memory, which pass through to storage, which
/// datasets are zero-copy), as in LowFive's set_memory/set_passthru API.
bool glob_match(const std::string& pattern, const std::string& name);

/// A (file pattern, dataset pattern) rule.
struct PatternPair {
    std::string file_pattern;
    std::string dset_pattern;
};

/// True when any rule matches the file name (dataset ignored).
bool matches_file(const std::vector<PatternPair>& rules, const std::string& filename);

/// True when any rule matches both the file name and the dataset path.
bool matches(const std::vector<PatternPair>& rules, const std::string& filename,
             const std::string& dset_path);

} // namespace lowfive
