#include "metadata_vol.hpp"

#include "stream/step.hpp"

#include <cstring>

namespace lowfive {

using h5::Dataspace;
using h5::Datatype;
using h5::Error;
using h5::Object;
using h5::ObjectKind;

MetadataVol::MetadataVol(h5::VolPtr passthru_vol) : passthru_vol_(std::move(passthru_vol)) {}

h5::Vol& MetadataVol::native() {
    if (!passthru_vol_) passthru_vol_ = std::make_shared<h5::NativeVol>();
    return *passthru_vol_;
}

void MetadataVol::set_memory(const std::string& fp, const std::string& dp) {
    memory_.push_back({fp, dp});
}
void MetadataVol::set_passthru(const std::string& fp, const std::string& dp) {
    passthru_.push_back({fp, dp});
}
void MetadataVol::set_zerocopy(const std::string& fp, const std::string& dp) {
    zerocopy_.push_back({fp, dp});
}

bool MetadataVol::zerocopy_for(const FileEntry& f, const std::string& dset_path) const {
    // step snapshots match like their base name: patterns name streams
    return matches(zerocopy_, stream::base_name(f.name), dset_path);
}

h5::Object* MetadataVol::find_file(const std::string& name) {
    auto it = files_.find(name);
    return it == files_.end() ? nullptr : it->second.root.get();
}

void MetadataVol::drop_file(const std::string& name) { files_.erase(name); }

std::vector<std::string> MetadataVol::retained_files() const {
    std::vector<std::string> names;
    for (const auto& [name, entry] : files_)
        if (entry.root) names.push_back(name);
    return names;
}

MetadataVol::HandleBox* MetadataVol::make_handle(FileEntry& f, Object* node, void* nat) {
    f.handles.push_back(std::make_unique<HandleBox>());
    auto* h   = f.handles.back().get();
    h->node   = node;
    h->native = nat;
    h->file   = &f;
    return h;
}

// --- files -------------------------------------------------------------------

void* MetadataVol::file_create(const std::string& name) {
    FileEntry entry;
    entry.name     = name;
    // a step snapshot inherits its stream's (base-name) placement
    entry.memory   = matches_file(memory_, stream::base_name(name));
    entry.passthru = matches_file(passthru_, stream::base_name(name));
    entry.writable = true;
    entry.root     = std::make_shared<Object>(ObjectKind::File, name);
    if (entry.passthru) entry.native = native().file_create(name);

    auto [it, _] = files_.insert_or_assign(name, std::move(entry));
    FileEntry& f = it->second;
    return make_handle(f, f.root.get(), f.native);
}

void* MetadataVol::file_open(const std::string& name) {
    auto it = files_.find(name);
    if (it != files_.end() && it->second.root && !it->second.remote) {
        // reopen a retained in-memory file
        FileEntry& f = it->second;
        f.writable   = false;
        return make_handle(f, f.root.get(), f.native);
    }

    // not in memory: physical open through the terminal VOL
    FileEntry entry;
    entry.name     = name;
    entry.passthru = true;
    entry.native   = native().file_open(name);
    auto [it2, _]  = files_.insert_or_assign(name, std::move(entry));
    return make_handle(it2->second, nullptr, it2->second.native);
}

void MetadataVol::file_close(void* file) {
    HandleBox* h = box(file);
    FileEntry& f = *h->file;

    if (f.native) {
        native().file_close(f.native);
        f.native = nullptr;
    }

    after_file_close(f); // DistMetadataVol: signal readiness / serve consumers

    const bool retain = f.memory && f.root != nullptr;
    f.handles.clear(); // invalidates h
    if (!retain) files_.erase(f.name);
}

void MetadataVol::after_file_close(FileEntry&) {}

void MetadataVol::file_flush(void* file) {
    HandleBox* h = box(file);
    if (h->file->native) native().file_flush(h->file->native);
    // in-memory contents need no flushing; the serve trigger stays close
}

// --- groups ------------------------------------------------------------------

void* MetadataVol::group_create(void* parent, const std::string& name) {
    HandleBox* p    = box(parent);
    Object*    node = nullptr;
    if (p->node) {
        if (p->node->find_child(name))
            throw Error("lowfive: '" + name + "' already exists in " + p->node->path());
        node = p->node->add_child(std::make_unique<Object>(ObjectKind::Group, name));
    }
    void* nat = p->native ? native().group_create(p->native, name) : nullptr;
    return make_handle(*p->file, node, nat);
}

void* MetadataVol::group_open(void* parent, const std::string& path) {
    HandleBox* p    = box(parent);
    Object*    node = nullptr;
    if (p->node) {
        node = p->node->resolve(path);
        if (!node || node->kind == ObjectKind::Dataset)
            throw Error("lowfive: group '" + path + "' not found under " + p->node->path());
    }
    void* nat = (!node && p->native) ? native().group_open(p->native, path) : nullptr;
    if (!node && !nat) throw Error("lowfive: group '" + path + "' not found");
    return make_handle(*p->file, node, nat);
}

// --- datasets ----------------------------------------------------------------

void* MetadataVol::dataset_create(void* parent, const std::string& name, const Datatype& type,
                                  const Dataspace& space) {
    HandleBox* p    = box(parent);
    Object*    node = nullptr;
    if (p->node) {
        if (p->node->find_child(name))
            throw Error("lowfive: '" + name + "' already exists in " + p->node->path());
        node        = p->node->add_child(std::make_unique<Object>(ObjectKind::Dataset, name));
        node->type  = type;
        node->space = Dataspace(space.dims());
    }
    void* nat = p->native ? native().dataset_create(p->native, name, type, space) : nullptr;
    return make_handle(*p->file, node, nat);
}

void* MetadataVol::dataset_open(void* parent, const std::string& path) {
    HandleBox* p    = box(parent);
    Object*    node = nullptr;
    if (p->node) {
        node = p->node->resolve(path);
        if (!node || node->kind != ObjectKind::Dataset)
            throw Error("lowfive: dataset '" + path + "' not found under " + p->node->path());
    }
    void* nat = (!node && p->native) ? native().dataset_open(p->native, path) : nullptr;
    if (!node && !nat) throw Error("lowfive: dataset '" + path + "' not found");
    return make_handle(*p->file, node, nat);
}

Datatype MetadataVol::dataset_type(void* dset) {
    HandleBox* h = box(dset);
    return h->node ? h->node->type : native().dataset_type(h->native);
}

Dataspace MetadataVol::dataset_space(void* dset) {
    HandleBox* h = box(dset);
    return h->node ? h->node->space : native().dataset_space(h->native);
}

void MetadataVol::dataset_write(void* dset, const Dataspace& memspace, const Dataspace& filespace,
                                const void* buf) {
    HandleBox* h = box(dset);
    FileEntry& f = *h->file;

    if (h->node && f.memory) {
        if (memspace.npoints() != filespace.npoints())
            throw Error("lowfive: dataset_write selection size mismatch");
        h5::DataPiece piece;
        piece.filespace = filespace;
        if (zerocopy_for(f, h->node->path())) {
            piece.ownership = h5::Ownership::Shallow;
            piece.memspace  = memspace;
            piece.ref       = buf;
        } else {
            piece.ownership = h5::Ownership::Deep;
            piece.owned.resize(filespace.npoints() * h->node->type.size());
            pack_selection(memspace, buf, h->node->type.size(), piece.owned.data());
        }
        h->node->pieces.push_back(std::move(piece));
    }
    if (h->native) native().dataset_write(h->native, memspace, filespace, buf);
    if (!h->native && !(h->node && f.memory))
        throw Error("lowfive: dataset_write has neither memory nor passthru target for file '"
                    + f.name + "'");
}

void MetadataVol::dataset_read(void* dset, const Dataspace& memspace, const Dataspace& filespace,
                               void* buf) {
    HandleBox* h = box(dset);
    FileEntry& f = *h->file;

    if (f.remote) {
        remote_dataset_read(f, h->node, memspace, filespace, buf);
        return;
    }
    if (h->node && !h->node->pieces.empty()) {
        if (memspace.npoints() != filespace.npoints())
            throw Error("lowfive: dataset_read selection size mismatch");
        const std::size_t      elem = h->node->type.size();
        std::vector<std::byte> packed(filespace.npoints() * elem);
        read_from_pieces(*h->node, filespace, packed.data());
        unpack_selection(memspace, packed.data(), elem, buf);
        return;
    }
    if (h->native) {
        native().dataset_read(h->native, memspace, filespace, buf);
        return;
    }
    // in-memory dataset that was never written: fill value (zeros)
    std::memset(buf, 0, memspace.npoints() * dataset_type(dset).size());
}

void MetadataVol::remote_dataset_read(FileEntry&, Object*, const Dataspace&, const Dataspace&,
                                      void*) {
    throw Error("lowfive: remote read requires DistMetadataVol");
}

void MetadataVol::dataset_set_extent(void* dset, const h5::Extent& new_dims) {
    HandleBox* h = box(dset);
    if (h->node) {
        if (!h->file->writable) throw Error("lowfive: dataset_set_extent on a read-only file");
        h->node->space.grow_extent(new_dims);
        for (auto& piece : h->node->pieces)
            piece.filespace = piece.filespace.with_dims(new_dims);
    }
    if (h->native) native().dataset_set_extent(h->native, new_dims);
}

std::vector<std::string> MetadataVol::list_attributes(void* obj) {
    HandleBox* h = box(obj);
    if (h->node) {
        std::vector<std::string> names;
        for (const auto& a : h->node->attributes) names.push_back(a.name);
        return names;
    }
    return native().list_attributes(h->native);
}

void MetadataVol::unlink(void* parent, const std::string& path) {
    HandleBox* p = box(parent);
    if (p->node) {
        Object* target = p->node->resolve(path);
        if (!target || !target->parent) throw Error("lowfive: cannot unlink '" + path + "'");
        Object* holder = target->parent;
        for (auto it = holder->children.begin(); it != holder->children.end(); ++it)
            if (it->get() == target) {
                holder->children.erase(it);
                break;
            }
    }
    if (p->native) native().unlink(p->native, path);
}

// --- attributes ----------------------------------------------------------------

void MetadataVol::attribute_write(void* obj, const std::string& name, const Datatype& type,
                                  const Dataspace& space, const void* buf) {
    HandleBox* h = box(obj);
    if (h->node) {
        auto* a = h->node->find_attribute(name);
        if (!a) {
            h->node->attributes.push_back({});
            a = &h->node->attributes.back();
        }
        a->name  = name;
        a->type  = type;
        a->space = space;
        a->data.resize(space.npoints() * type.size());
        std::memcpy(a->data.data(), buf, a->data.size());
    }
    if (h->native) native().attribute_write(h->native, name, type, space, buf);
}

std::optional<h5::Vol::AttrInfo> MetadataVol::attribute_info(void* obj, const std::string& name) {
    HandleBox* h = box(obj);
    if (h->node) {
        if (auto* a = h->node->find_attribute(name)) return AttrInfo{a->type, a->space};
        if (!h->native) return std::nullopt;
    }
    if (h->native) return native().attribute_info(h->native, name);
    return std::nullopt;
}

void MetadataVol::attribute_read(void* obj, const std::string& name, void* buf) {
    HandleBox* h = box(obj);
    if (h->node) {
        if (auto* a = h->node->find_attribute(name)) {
            std::memcpy(buf, a->data.data(), a->data.size());
            return;
        }
    }
    if (h->native) {
        native().attribute_read(h->native, name, buf);
        return;
    }
    throw Error("lowfive: attribute '" + name + "' not found");
}

// --- introspection ---------------------------------------------------------------

std::vector<std::string> MetadataVol::list_children(void* obj) {
    HandleBox* h = box(obj);
    if (h->node) {
        std::vector<std::string> names;
        for (const auto& c : h->node->children) names.push_back(c->name);
        return names;
    }
    return native().list_children(h->native);
}

bool MetadataVol::exists(void* obj, const std::string& path) {
    HandleBox* h = box(obj);
    if (h->node) return h->node->resolve(path) != nullptr;
    return native().exists(h->native, path);
}

} // namespace lowfive
