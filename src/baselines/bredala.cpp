#include "bredala.hpp"

#include <diy/decomposer.hpp>
#include <diy/serialization.hpp>

#include <chrono>
#include <cstring>
#include <stdexcept>

namespace baselines::bredala {

namespace {

constexpr int tag_field = 31;

std::pair<std::uint64_t, std::uint64_t> contiguous_target(std::uint64_t global_count, int rank,
                                                          int nranks) {
    auto lo = global_count * static_cast<std::uint64_t>(rank) / static_cast<std::uint64_t>(nranks);
    auto hi = global_count * static_cast<std::uint64_t>(rank + 1) / static_cast<std::uint64_t>(nranks);
    return {lo, hi};
}

std::uint64_t offset_in(const diy::Bounds& box, const std::array<std::int64_t, diy::max_dim>& pt) {
    std::uint64_t off = 0;
    for (int i = 0; i < box.dim; ++i) {
        auto u = static_cast<std::size_t>(i);
        off    = off * static_cast<std::uint64_t>(box.max[u] - box.min[u])
              + static_cast<std::uint64_t>(pt[u] - box.min[u]);
    }
    return off;
}

template <typename Fn>
void for_each_point(const diy::Bounds& box, Fn&& fn) {
    if (box.empty()) return;
    std::array<std::int64_t, diy::max_dim> pt{};
    for (int i = 0; i < box.dim; ++i) pt[static_cast<std::size_t>(i)] = box.min[static_cast<std::size_t>(i)];
    for (;;) {
        fn(pt);
        int i = box.dim - 1;
        for (; i >= 0; --i) {
            auto u = static_cast<std::size_t>(i);
            if (++pt[u] < box.max[u]) break;
            pt[u] = box.min[u];
        }
        if (i < 0) break;
    }
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

} // namespace

Field* Container::find(const std::string& name) {
    for (auto& f : fields_)
        if (f.name == name) return &f;
    return nullptr;
}
const Field* Container::find(const std::string& name) const {
    for (const auto& f : fields_)
        if (f.name == name) return &f;
    return nullptr;
}

void redistribute_producer(const Container& c, const simmpi::Comm& local,
                           const simmpi::Comm& intercomm,
                           std::map<std::string, double>* field_seconds) {
    const int m = intercomm.peer_size();

    for (const auto& f : c.fields()) {
        auto t0 = std::chrono::steady_clock::now();

        if (f.policy == RedistPolicy::Contiguous) {
            // split/merge of a linear list: contiguous slices, no reordering
            const auto my_lo = f.offset;
            const auto my_hi = f.offset + f.count();
            for (int r = 0; r < m; ++r) {
                auto [lo, hi] = contiguous_target(f.global_count, r, m);
                auto s_lo     = std::max(lo, my_lo);
                auto s_hi     = std::min(hi, my_hi);

                diy::BinaryBuffer msg;
                if (s_lo < s_hi) {
                    msg.save<std::uint64_t>(s_lo);
                    msg.save<std::uint64_t>(s_hi - s_lo);
                    msg.save_raw(f.data.data() + (s_lo - my_lo) * f.elem, (s_hi - s_lo) * f.elem);
                } else {
                    msg.save<std::uint64_t>(0);
                    msg.save<std::uint64_t>(0);
                }
                intercomm.send(r, tag_field, std::move(msg).take());
            }
        } else {
            // BBox policy, as published: gather the global index of producer
            // boxes, ship it along redundantly, and serialize per point with
            // coordinates attached
            diy::BinaryBuffer mine;
            f.bounds.save(mine);
            auto all_boxes = local.allgather(
                std::span<const std::byte>(mine.data().data(), mine.size()));

            diy::RegularDecomposer dec(f.domain, m);
            for (int r = 0; r < m; ++r) {
                diy::BinaryBuffer msg;
                // the index of every producer's box travels with every message
                msg.save<std::uint64_t>(all_boxes.size());
                for (const auto& raw : all_boxes) msg.save_raw(raw.data(), raw.size());

                auto common = diy::intersect(f.bounds, dec.block_bounds(r));
                msg.save<std::uint64_t>(common ? common->size() : 0);
                if (common) {
                    for_each_point(*common, [&](const std::array<std::int64_t, diy::max_dim>& pt) {
                        for (int i = 0; i < f.domain.dim; ++i)
                            msg.save<std::int64_t>(pt[static_cast<std::size_t>(i)]);
                        msg.save_raw(f.data.data() + offset_in(f.bounds, pt) * f.elem, f.elem);
                    });
                }
                intercomm.send(r, tag_field, std::move(msg).take());
            }
        }

        if (field_seconds) (*field_seconds)[f.name] += seconds_since(t0);
    }
}

void redistribute_consumer(Container& c, const simmpi::Comm& local,
                           const simmpi::Comm& intercomm,
                           std::map<std::string, double>* field_seconds) {
    const int n = intercomm.peer_size();

    for (auto& f : c.fields()) {
        auto t0 = std::chrono::steady_clock::now();

        if (f.policy == RedistPolicy::Contiguous) {
            auto [lo, hi] = contiguous_target(f.global_count, local.rank(), local.size());
            f.offset      = lo;
            f.data.assign((hi - lo) * f.elem, std::byte{0});
            for (int p = 0; p < n; ++p) {
                std::vector<std::byte> raw;
                intercomm.recv(p, tag_field, raw);
                diy::BinaryBuffer msg{std::move(raw)};
                auto              s_lo  = msg.load<std::uint64_t>();
                auto              count = msg.load<std::uint64_t>();
                if (count) msg.load_raw(f.data.data() + (s_lo - lo) * f.elem, count * f.elem);
            }
        } else {
            diy::RegularDecomposer dec(f.domain, local.size());
            f.bounds = dec.block_bounds(local.rank());
            f.data.assign(f.bounds.size() * f.elem, std::byte{0});
            for (int p = 0; p < n; ++p) {
                std::vector<std::byte> raw;
                intercomm.recv(p, tag_field, raw);
                diy::BinaryBuffer msg{std::move(raw)};
                // parse (and discard) the redundant index
                auto nboxes = msg.load<std::uint64_t>();
                for (std::uint64_t b = 0; b < nboxes; ++b) (void)diy::Bounds::load(msg);

                auto npoints = msg.load<std::uint64_t>();
                std::array<std::int64_t, diy::max_dim> pt{};
                for (std::uint64_t k = 0; k < npoints; ++k) {
                    for (int i = 0; i < f.domain.dim; ++i)
                        pt[static_cast<std::size_t>(i)] = msg.load<std::int64_t>();
                    if (!f.bounds.contains(pt))
                        throw std::runtime_error("bredala: point outside target bounds");
                    msg.load_raw(f.data.data() + offset_in(f.bounds, pt) * f.elem, f.elem);
                }
            }
        }

        if (field_seconds) (*field_seconds)[f.name] += seconds_since(t0);
    }
}

} // namespace baselines::bredala
