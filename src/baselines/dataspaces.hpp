#pragma once

#include <diy/bounds.hpp>
#include <simmpi/comm.hpp>

#include <cstdint>
#include <string>
#include <vector>

namespace baselines::dataspaces {

/// A DataSpaces-like staging service (the paper's Fig. 8/11 comparator):
/// a set of dedicated *server* ranks maintains a bounding-box index of
/// N-dimensional array regions; producers register regions with
/// `put_local` (data stays in producer memory — the
/// `dspaces_put_local` mode the paper used); consumers ask the server
/// which producers hold intersecting regions and pull the data directly.
///
/// Architectural contrasts with LowFive that the paper discusses, all
/// reproduced here: extra dedicated resources (the server ranks), a
/// restricted data model (n-d regular arrays of fixed-size tuples, no
/// hierarchy), no file-close synchronization (versions become visible as
/// soon as all parts are registered), and modification of user code
/// (put/get API instead of intercepted HDF5 calls).
class Server {
public:
    /// Serve index traffic until every producer and consumer rank has
    /// sent its finalize message. Call on each server rank.
    /// `producers_ic` / `consumers_ic` connect the server task to the
    /// client tasks.
    static void run(const simmpi::Comm& producers_ic, const simmpi::Comm& consumers_ic);
};

class ProducerClient {
public:
    /// `servers_ic` connects to the staging servers; `consumers_ic`
    /// directly to the consumer task (pulls are producer<->consumer).
    ProducerClient(simmpi::Comm servers_ic, simmpi::Comm consumers_ic);

    /// Register my region of array (name, version). The caller's buffer
    /// (row-major within `bounds`) must stay valid until serve_pulls
    /// returns — put_local semantics.
    void put_local(const std::string& name, int version, const diy::Bounds& bounds,
                   const void* data, std::size_t elem);

    /// Answer consumer pulls until every consumer rank signals done.
    void serve_pulls();

    /// Tell the servers this client is finished (call once, at the end).
    void finalize();

private:
    struct Entry {
        std::string name;
        int         version;
        diy::Bounds bounds;
        const void* data;
        std::size_t elem;
    };

    simmpi::Comm       servers_;
    simmpi::Comm       consumers_;
    std::vector<Entry> entries_;
};

class ConsumerClient {
public:
    ConsumerClient(simmpi::Comm servers_ic, simmpi::Comm producers_ic);

    /// Fetch my box of array (name, version) into `out` (row-major within
    /// `box`). `nparts` is the number of producer regions making up the
    /// version (the query blocks at the server until all are registered).
    void get(const std::string& name, int version, int nparts, const diy::Bounds& box, void* out,
             std::size_t elem);

    /// Signal all producers that this consumer rank needs no more pulls.
    void done();

    void finalize();

private:
    simmpi::Comm servers_;
    simmpi::Comm producers_;
};

} // namespace baselines::dataspaces
