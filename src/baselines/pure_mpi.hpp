#pragma once

#include <diy/bounds.hpp>
#include <diy/serialization.hpp>
#include <simmpi/comm.hpp>

#include <functional>

namespace baselines::pure_mpi {

/// The paper's "Pure MPI" comparator (Fig. 7): a hand-written
/// redistribution where producer and consumer know each other's
/// decompositions analytically (no metadata layer), exchange directly
/// over the intercommunicator, and — as the paper describes — serialize
/// by "simply iterating over all the data points in the intersection of
/// bounding boxes ... one point at a time". LowFive's run-optimized
/// serializer beats this at small scale; that behaviour is part of what
/// Fig. 7 shows.
///
/// `BoundsFn(i)` returns the bounds owned by rank i of the other task.
using BoundsFn = std::function<diy::Bounds(int)>;

/// Producer side: `data` holds the elements of `mine`, row-major within
/// the box. Sends one message per intersecting consumer.
void producer_send(const simmpi::Comm& intercomm, const diy::Bounds& mine, const void* data,
                   std::size_t elem, const BoundsFn& consumer_bounds, int nconsumers,
                   int tag = 11);

/// Consumer side: fills `out` (row-major within `mine`) from every
/// intersecting producer.
void consumer_recv(const simmpi::Comm& intercomm, const diy::Bounds& mine, void* out,
                   std::size_t elem, const BoundsFn& producer_bounds, int nproducers,
                   int tag = 11);

} // namespace baselines::pure_mpi
