#include "dataspaces.hpp"

#include <diy/serialization.hpp>

#include <cstring>
#include <map>
#include <thread>

namespace baselines::dataspaces {

namespace {

enum class Req : std::uint8_t { PutLocal = 1, Query = 2, Finalize = 3 };

constexpr int tag_index       = 21;
constexpr int tag_index_reply = 22;
constexpr int tag_pull        = 23;
constexpr int tag_pull_reply  = 24;
constexpr int tag_done        = 25;

int shard_of(const std::string& name, int version, int nservers) {
    return static_cast<int>((std::hash<std::string>{}(name) ^ static_cast<std::size_t>(version))
                            % static_cast<std::size_t>(nservers));
}

/// Iterate the rows of `want` (a sub-box of `have`), giving the row-major
/// element offsets of each row's start within both boxes' buffers.
template <typename Fn>
void for_each_row(const diy::Bounds& have, const diy::Bounds& want, Fn&& fn) {
    if (want.empty()) return;
    const int  d    = have.dim;
    const auto last = static_cast<std::size_t>(d - 1);
    const auto row  = static_cast<std::uint64_t>(want.max[last] - want.min[last]);

    auto strides = [&](const diy::Bounds& b) {
        std::array<std::uint64_t, diy::max_dim> s{};
        s[static_cast<std::size_t>(d - 1)] = 1;
        for (int i = d - 2; i >= 0; --i)
            s[static_cast<std::size_t>(i)] =
                s[static_cast<std::size_t>(i + 1)]
                * static_cast<std::uint64_t>(b.max[static_cast<std::size_t>(i + 1)]
                                             - b.min[static_cast<std::size_t>(i + 1)]);
        return s;
    };
    auto hs = strides(have), ws = strides(want);

    std::array<std::int64_t, diy::max_dim> pt{};
    for (int i = 0; i < d; ++i) pt[static_cast<std::size_t>(i)] = want.min[static_cast<std::size_t>(i)];
    for (;;) {
        std::uint64_t hoff = 0, woff = 0;
        for (int i = 0; i < d; ++i) {
            auto u = static_cast<std::size_t>(i);
            hoff += static_cast<std::uint64_t>(pt[u] - have.min[u]) * hs[u];
            woff += static_cast<std::uint64_t>(pt[u] - want.min[u]) * ws[u];
        }
        fn(hoff, woff, row);

        int i = d - 2;
        for (; i >= 0; --i) {
            auto u = static_cast<std::size_t>(i);
            if (++pt[u] < want.max[u]) break;
            pt[u] = want.min[u];
        }
        if (i < 0) break;
    }
}

/// Pack the sub-box `want` out of a row-major buffer of `have`.
void extract_box(const diy::Bounds& have, const std::byte* have_buf, const diy::Bounds& want,
                 std::byte* out, std::size_t elem) {
    for_each_row(have, want, [&](std::uint64_t hoff, std::uint64_t woff, std::uint64_t row) {
        std::memcpy(out + woff * elem, have_buf + hoff * elem, row * elem);
    });
}

/// Scatter a packed `want` buffer into a row-major buffer of `have`.
void insert_box(const diy::Bounds& have, std::byte* have_buf, const diy::Bounds& want,
                const std::byte* in, std::size_t elem) {
    for_each_row(have, want, [&](std::uint64_t hoff, std::uint64_t woff, std::uint64_t row) {
        std::memcpy(have_buf + hoff * elem, in + woff * elem, row * elem);
    });
}

} // namespace

// --- Server ---------------------------------------------------------------

void Server::run(const simmpi::Comm& producers_ic, const simmpi::Comm& consumers_ic) {
    // the index server is an order-insensitive drain by design: puts
    // accumulate and queries are answered once the part count is reached,
    // whatever order requests arrive in
    producers_ic.check_commutative(tag_index, "index-server drain");
    consumers_ic.check_commutative(tag_index, "index-server drain");
    struct Key {
        std::string name;
        int         version;
        bool        operator<(const Key& o) const {
            return name != o.name ? name < o.name : version < o.version;
        }
    };
    std::map<Key, std::vector<std::pair<int, diy::Bounds>>> index;

    struct PendingQuery {
        int         src;
        diy::Bounds box;
        int         nparts;
    };
    std::map<Key, std::vector<PendingQuery>> pending;

    int finalizes_needed = producers_ic.peer_size() + consumers_ic.peer_size();
    int finalizes        = 0;

    auto answer = [&](const Key& key, const PendingQuery& q) {
        diy::BinaryBuffer reply;
        std::uint64_t     n = 0;
        for (const auto& [rank, b] : index[key])
            if (diy::intersects(b, q.box)) ++n;
        reply.save(n);
        for (const auto& [rank, b] : index[key])
            if (diy::intersects(b, q.box)) {
                reply.save<std::int32_t>(rank);
                b.save(reply);
            }
        consumers_ic.send(q.src, tag_index_reply, std::move(reply).take());
    };

    auto handle = [&](const simmpi::Comm& ic) {
        std::vector<std::byte> raw;
        auto                   st = ic.recv(simmpi::any_source, tag_index, raw);
        diy::BinaryBuffer      bb{std::move(raw)};
        auto                   req = static_cast<Req>(bb.load<std::uint8_t>());
        switch (req) {
        case Req::PutLocal: {
            Key key;
            bb.load(key.name);
            key.version = bb.load<std::int32_t>();
            diy::Bounds b = diy::Bounds::load(bb);
            index[key].emplace_back(st.source, b);
            // a newly complete version may release pending queries
            auto pit = pending.find(key);
            if (pit != pending.end()) {
                auto& waiting = pit->second;
                for (auto qit = waiting.begin(); qit != waiting.end();) {
                    if (static_cast<int>(index[key].size()) >= qit->nparts) {
                        answer(key, *qit);
                        qit = waiting.erase(qit);
                    } else {
                        ++qit;
                    }
                }
            }
            break;
        }
        case Req::Query: {
            Key key;
            bb.load(key.name);
            key.version = bb.load<std::int32_t>();
            PendingQuery q;
            q.src    = st.source;
            q.nparts = bb.load<std::int32_t>();
            q.box    = diy::Bounds::load(bb);
            if (static_cast<int>(index[key].size()) >= q.nparts)
                answer(key, q);
            else
                pending[key].push_back(q);
            break;
        }
        case Req::Finalize:
            ++finalizes;
            break;
        }
    };

    const std::array<const simmpi::Comm*, 2> comms{&producers_ic, &consumers_ic};
    while (finalizes < finalizes_needed) {
        std::size_t which = 0;
        simmpi::Comm::probe_any(comms, simmpi::any_source, tag_index, &which);
        handle(*comms[which]);
    }
}

// --- ProducerClient ----------------------------------------------------------

ProducerClient::ProducerClient(simmpi::Comm servers_ic, simmpi::Comm consumers_ic)
    : servers_(std::move(servers_ic)), consumers_(std::move(consumers_ic)) {}

void ProducerClient::put_local(const std::string& name, int version, const diy::Bounds& bounds,
                               const void* data, std::size_t elem) {
    diy::BinaryBuffer bb;
    bb.save(static_cast<std::uint8_t>(Req::PutLocal));
    bb.save(name);
    bb.save<std::int32_t>(version);
    bounds.save(bb);
    servers_.send(shard_of(name, version, servers_.peer_size()), tag_index, std::move(bb).take());
    entries_.push_back({name, version, bounds, data, elem});
}

void ProducerClient::serve_pulls() {
    // pulls address disjoint regions and dones only count: service order
    // cannot change any result
    consumers_.check_commutative(simmpi::any_tag, "pull/done drain");
    int dones = 0;
    while (dones < consumers_.peer_size()) {
        // block until either a pull or a done arrives (the only two tags
        // consumers send in this phase)
        auto next = consumers_.probe(simmpi::any_source, simmpi::any_tag);
        if (next.tag == tag_done) {
            std::vector<std::byte> raw;
            consumers_.recv(next.source, tag_done, raw);
            ++dones;
            continue;
        }
        std::vector<std::byte> raw;
        auto                   st = consumers_.recv(next.source, tag_pull, raw);
        diy::BinaryBuffer      bb{std::move(raw)};
        std::string            name;
        bb.load(name);
        int         version = bb.load<std::int32_t>();
        diy::Bounds want    = diy::Bounds::load(bb);

        const Entry* entry = nullptr;
        for (const auto& e : entries_)
            if (e.name == name && e.version == version) entry = &e;
        if (!entry) throw std::runtime_error("dataspaces: pull for unregistered region");

        std::vector<std::byte> payload(want.size() * entry->elem);
        extract_box(entry->bounds, static_cast<const std::byte*>(entry->data), want,
                    payload.data(), entry->elem);
        consumers_.send(st.source, tag_pull_reply, std::move(payload));
    }
}

void ProducerClient::finalize() {
    diy::BinaryBuffer bb;
    bb.save(static_cast<std::uint8_t>(Req::Finalize));
    // every server must hear the finalize
    for (int s = 0; s < servers_.peer_size(); ++s) {
        diy::BinaryBuffer copy;
        copy.save(static_cast<std::uint8_t>(Req::Finalize));
        servers_.send(s, tag_index, std::move(copy).take());
    }
    entries_.clear();
}

// --- ConsumerClient ----------------------------------------------------------

ConsumerClient::ConsumerClient(simmpi::Comm servers_ic, simmpi::Comm producers_ic)
    : servers_(std::move(servers_ic)), producers_(std::move(producers_ic)) {}

void ConsumerClient::get(const std::string& name, int version, int nparts, const diy::Bounds& box,
                         void* out, std::size_t elem) {
    // 1. ask the index server which producers intersect my box
    {
        diy::BinaryBuffer bb;
        bb.save(static_cast<std::uint8_t>(Req::Query));
        bb.save(name);
        bb.save<std::int32_t>(version);
        bb.save<std::int32_t>(nparts);
        box.save(bb);
        servers_.send(shard_of(name, version, servers_.peer_size()), tag_index, std::move(bb).take());
    }
    int  shard = shard_of(name, version, servers_.peer_size());
    auto reply = [&] {
        std::vector<std::byte> raw;
        servers_.recv(shard, tag_index_reply, raw);
        return diy::BinaryBuffer{std::move(raw)};
    }();

    auto                                          n = reply.load<std::uint64_t>();
    std::vector<std::pair<int, diy::Bounds>>      holders;
    for (std::uint64_t i = 0; i < n; ++i) {
        int rank = reply.load<std::int32_t>();
        holders.emplace_back(rank, diy::Bounds::load(reply));
    }

    // 2. pull the intersections directly from the producers
    std::vector<diy::Bounds> wants;
    for (const auto& [rank, b] : holders) {
        auto common = diy::intersect(b, box);
        if (!common) continue;
        diy::BinaryBuffer bb;
        bb.save(name);
        bb.save<std::int32_t>(version);
        common->save(bb);
        producers_.send(rank, tag_pull, std::move(bb).take());
        wants.push_back(*common);
    }
    std::size_t k = 0;
    for (const auto& [rank, b] : holders) {
        if (!diy::intersects(b, box)) continue;
        std::vector<std::byte> payload;
        producers_.recv(rank, tag_pull_reply, payload);
        insert_box(box, static_cast<std::byte*>(out), wants[k], payload.data(), elem);
        ++k;
    }
}

void ConsumerClient::done() {
    for (int p = 0; p < producers_.peer_size(); ++p)
        producers_.send(p, tag_done, nullptr, 0);
}

void ConsumerClient::finalize() {
    for (int s = 0; s < servers_.peer_size(); ++s) {
        diy::BinaryBuffer bb;
        bb.save(static_cast<std::uint8_t>(Req::Finalize));
        servers_.send(s, tag_index, std::move(bb).take());
    }
}

} // namespace baselines::dataspaces
