#pragma once

#include <diy/bounds.hpp>
#include <simmpi/comm.hpp>

#include <map>
#include <string>
#include <vector>

namespace baselines::bredala {

/// A Bredala-like annotated-container transport (the paper's Fig. 9/10
/// comparator, after Dreher & Peterka 2016). Fields appended to a
/// container carry redistribution annotations; two policies are
/// implemented, matching the paper's Figure 10:
///
///  - Contiguous: a linear global list (the particle dataset) — producers
///    hold contiguous chunks; consumers receive near-equal contiguous
///    splits; data moves as contiguous buffers. This performs well.
///  - BBox: n-dimensional grid data indexed by coordinates — reproducing
///    the published inefficiency the paper measures: the index of all
///    producer bounding boxes is gathered and communicated redundantly,
///    and data are serialized per point with their coordinates attached.
///    This is what makes Bredala's grid curve blow up in Fig. 9.
enum class RedistPolicy : std::uint8_t { Contiguous, BBox };

/// One annotated field. For Contiguous fields, `data` holds `count` items
/// of `elem` bytes forming the global range [offset, offset+count); for
/// BBox fields, `data` holds the row-major elements of `bounds` within
/// `domain`.
struct Field {
    std::string  name;
    RedistPolicy policy = RedistPolicy::Contiguous;
    std::size_t  elem   = 0; ///< bytes per semantic item (kept intact, e.g. a 3-vector)

    // Contiguous
    std::uint64_t global_count = 0;
    std::uint64_t offset       = 0;

    // BBox
    diy::Bounds domain;
    diy::Bounds bounds;

    std::vector<std::byte> data;

    std::uint64_t count() const { return elem ? data.size() / elem : 0; }
};

/// The container data model: fields are appended one at a time with their
/// annotations (Bredala's API requires this explicit description — one of
/// the code-modification costs the paper contrasts with LowFive).
class Container {
public:
    Field& append(Field f) {
        fields_.push_back(std::move(f));
        return fields_.back();
    }
    Field*       find(const std::string& name);
    const Field* find(const std::string& name) const;

    std::vector<Field>&       fields() { return fields_; }
    const std::vector<Field>& fields() const { return fields_; }

private:
    std::vector<Field> fields_;
};

/// Redistribute every field of the container from the producer task to
/// the consumer task. Producers call the producer function with their
/// filled container; consumers call the consumer function with a
/// container holding the same fields annotated with their *target*
/// layout (offset/count left 0 for Contiguous — they are derived from the
/// consumer rank — and `bounds` set to the desired box for BBox).
/// `field_seconds`, when given, receives per-field wall time — the
/// decomposition shown in the paper's Fig. 9.
void redistribute_producer(const Container& c, const simmpi::Comm& local,
                           const simmpi::Comm& intercomm,
                           std::map<std::string, double>* field_seconds = nullptr);
void redistribute_consumer(Container& c, const simmpi::Comm& local,
                           const simmpi::Comm& intercomm,
                           std::map<std::string, double>* field_seconds = nullptr);

} // namespace baselines::bredala
