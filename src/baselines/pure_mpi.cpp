#include "pure_mpi.hpp"

#include <cstring>

namespace baselines::pure_mpi {

namespace {

/// Row-major offset of a point within a box.
std::uint64_t offset_in(const diy::Bounds& box, const std::array<std::int64_t, diy::max_dim>& pt) {
    std::uint64_t off = 0;
    for (int i = 0; i < box.dim; ++i) {
        auto u = static_cast<std::size_t>(i);
        off    = off * static_cast<std::uint64_t>(box.max[u] - box.min[u])
              + static_cast<std::uint64_t>(pt[u] - box.min[u]);
    }
    return off;
}

/// Visit every point of `box` in row-major order — the deliberately naive
/// per-point loop of the hand-written comparator.
template <typename Fn>
void for_each_point(const diy::Bounds& box, Fn&& fn) {
    std::array<std::int64_t, diy::max_dim> pt{};
    for (int i = 0; i < box.dim; ++i) pt[static_cast<std::size_t>(i)] = box.min[static_cast<std::size_t>(i)];
    if (box.empty()) return;
    for (;;) {
        fn(pt);
        int i = box.dim - 1;
        for (; i >= 0; --i) {
            auto u = static_cast<std::size_t>(i);
            if (++pt[u] < box.max[u]) break;
            pt[u] = box.min[u];
        }
        if (i < 0) break;
    }
}

} // namespace

void producer_send(const simmpi::Comm& intercomm, const diy::Bounds& mine, const void* data,
                   std::size_t elem, const BoundsFn& consumer_bounds, int nconsumers, int tag) {
    const auto* src = static_cast<const std::byte*>(data);
    for (int c = 0; c < nconsumers; ++c) {
        auto common = diy::intersect(mine, consumer_bounds(c));
        if (!common) continue;

        diy::BinaryBuffer msg;
        common->save(msg);
        for_each_point(*common, [&](const std::array<std::int64_t, diy::max_dim>& pt) {
            msg.save_raw(src + offset_in(mine, pt) * elem, elem);
        });
        intercomm.send(c, tag, std::move(msg).take());
    }
}

void consumer_recv(const simmpi::Comm& intercomm, const diy::Bounds& mine, void* out,
                   std::size_t elem, const BoundsFn& producer_bounds, int nproducers, int tag) {
    // every message carries its own bounds and producers cover disjoint
    // regions, so scatter order is immaterial
    intercomm.check_commutative(tag, "self-describing disjoint regions");
    auto* dst = static_cast<std::byte*>(out);

    int expected = 0;
    for (int p = 0; p < nproducers; ++p)
        if (diy::intersects(producer_bounds(p), mine)) ++expected;

    for (int k = 0; k < expected; ++k) {
        std::vector<std::byte> raw;
        intercomm.recv(simmpi::any_source, tag, raw);
        diy::BinaryBuffer msg{std::move(raw)};
        diy::Bounds       common = diy::Bounds::load(msg);
        for_each_point(common, [&](const std::array<std::int64_t, diy::max_dim>& pt) {
            msg.load_raw(dst + offset_in(mine, pt) * elem, elem);
        });
    }
}

} // namespace baselines::pure_mpi
