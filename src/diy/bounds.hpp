#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>

namespace diy {

/// Maximum dimensionality supported throughout the reproduction (HDF5's
/// limit is 32; the paper's workloads use 1–3 dimensions).
inline constexpr int max_dim = 8;

/// An axis-aligned integer box, half-open: [min, max) per dimension.
/// These are the bounding boxes of the paper's index–serve–query protocol
/// and the blocks of the common decomposition.
struct Bounds {
    int                         dim = 0;
    std::array<std::int64_t, max_dim> min{};
    std::array<std::int64_t, max_dim> max{};

    Bounds() = default;
    explicit Bounds(int d) : dim(d) {}

    /// Number of grid points contained; 0 when any extent is empty.
    std::uint64_t size() const {
        std::uint64_t n = 1;
        for (int i = 0; i < dim; ++i) {
            if (max[static_cast<std::size_t>(i)] <= min[static_cast<std::size_t>(i)]) return 0;
            n *= static_cast<std::uint64_t>(max[static_cast<std::size_t>(i)] - min[static_cast<std::size_t>(i)]);
        }
        return n;
    }

    bool empty() const { return size() == 0; }

    bool contains(const std::array<std::int64_t, max_dim>& pt) const {
        for (int i = 0; i < dim; ++i) {
            auto u = static_cast<std::size_t>(i);
            if (pt[u] < min[u] || pt[u] >= max[u]) return false;
        }
        return true;
    }

    bool operator==(const Bounds& o) const {
        if (dim != o.dim) return false;
        for (int i = 0; i < dim; ++i) {
            auto u = static_cast<std::size_t>(i);
            if (min[u] != o.min[u] || max[u] != o.max[u]) return false;
        }
        return true;
    }

    template <typename Buffer>
    void save(Buffer& bb) const {
        bb.template save<std::int32_t>(dim);
        for (int i = 0; i < dim; ++i) {
            bb.save(min[static_cast<std::size_t>(i)]);
            bb.save(max[static_cast<std::size_t>(i)]);
        }
    }

    template <typename Buffer>
    static Bounds load(Buffer& bb) {
        Bounds b(bb.template load<std::int32_t>());
        for (int i = 0; i < b.dim; ++i) {
            bb.load(b.min[static_cast<std::size_t>(i)]);
            bb.load(b.max[static_cast<std::size_t>(i)]);
        }
        return b;
    }

    std::string str() const {
        std::string s = "[";
        for (int i = 0; i < dim; ++i) {
            auto u = static_cast<std::size_t>(i);
            s += std::to_string(min[u]) + ":" + std::to_string(max[u]);
            if (i + 1 < dim) s += ", ";
        }
        return s + ")";
    }
};

inline std::ostream& operator<<(std::ostream& os, const Bounds& b) { return os << b.str(); }

/// Intersection of two boxes of equal dimension; nullopt when disjoint.
inline std::optional<Bounds> intersect(const Bounds& a, const Bounds& b) {
    Bounds r(a.dim);
    for (int i = 0; i < a.dim; ++i) {
        auto u = static_cast<std::size_t>(i);
        r.min[u] = std::max(a.min[u], b.min[u]);
        r.max[u] = std::min(a.max[u], b.max[u]);
        if (r.min[u] >= r.max[u]) return std::nullopt;
    }
    return r;
}

inline bool intersects(const Bounds& a, const Bounds& b) {
    for (int i = 0; i < a.dim; ++i) {
        auto u = static_cast<std::size_t>(i);
        if (std::max(a.min[u], b.min[u]) >= std::min(a.max[u], b.max[u])) return false;
    }
    return a.dim > 0;
}

} // namespace diy
