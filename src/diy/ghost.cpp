#include "ghost.hpp"

#include <algorithm>

namespace diy {

namespace {
constexpr int tag_base = 91; // tags 91..96, one per face
}

GhostField::GhostField(const RegularDecomposer& dec, const simmpi::Comm& comm)
    : dec_(dec), comm_(comm), block_(dec.block_bounds(comm.rank())) {
    if (dec.dim() != 3) throw std::invalid_argument("diy::GhostField requires a 3-d decomposition");
    if (dec.nblocks() != comm.size())
        throw std::invalid_argument("diy::GhostField requires one block per rank");

    const auto ex = static_cast<std::size_t>(block_.max[0] - block_.min[0]);
    const auto ey = static_cast<std::size_t>(block_.max[1] - block_.min[1]);
    const auto ez = static_cast<std::size_t>(block_.max[2] - block_.min[2]);
    stride_z_     = ez + 2;
    stride_y_     = (ey + 2) * stride_z_;
    data_.assign((ex + 2) * (ey + 2) * (ez + 2), 0.0);

    const Bounds domain = dec.domain();

    // the ghost slab of rank q's face f, wrapped into the domain, plus the
    // shift that maps wrapped coordinates back to q's unwrapped margin
    auto wrapped_slab = [&](int q, int face, std::array<std::int64_t, 3>& shift) {
        const Bounds qb   = dec.block_bounds(q);
        const int    axis = face / 2, side = face % 2;
        Bounds       slab = qb;
        auto         u    = static_cast<std::size_t>(axis);
        if (side == 0) {
            slab.min[u] = qb.min[u] - 1;
            slab.max[u] = qb.min[u];
        } else {
            slab.min[u] = qb.max[u];
            slab.max[u] = qb.max[u] + 1;
        }
        shift = {0, 0, 0};
        const auto ext = domain.max[u] - domain.min[u];
        if (slab.min[u] < domain.min[u]) {
            slab.min[u] += ext;
            slab.max[u] += ext;
            shift[u] = -ext; // wrapped + shift = unwrapped ghost coordinate
        } else if (slab.min[u] >= domain.max[u]) {
            slab.min[u] -= ext;
            slab.max[u] -= ext;
            shift[u] = ext;
        }
        return slab;
    };

    // receives: what my six ghost faces need, and from whom
    for (int face = 0; face < 6; ++face) {
        std::array<std::int64_t, 3> shift{};
        Bounds                      slab = wrapped_slab(comm_.rank(), face, shift);
        for (int owner : dec.intersecting_blocks(slab)) {
            auto region = intersect(slab, dec.block_bounds(owner));
            if (!region) continue;
            recvs_.push_back({owner, face, *region, shift});
        }
    }
    // sends: which other ranks' ghost faces overlap my block
    for (int q = 0; q < comm_.size(); ++q) {
        for (int face = 0; face < 6; ++face) {
            std::array<std::int64_t, 3> shift{};
            Bounds                      slab = wrapped_slab(q, face, shift);
            if (q == comm_.rank()) continue; // self-copies handled on the recv side
            auto region = intersect(slab, block_);
            if (region) sends_.push_back({q, face, *region, shift});
        }
    }
}

void GhostField::load_interior(const std::vector<double>& interior) {
    if (interior.size() != block_.size())
        throw std::invalid_argument("diy::GhostField::load_interior size mismatch");
    std::size_t k = 0;
    for (auto x = block_.min[0]; x < block_.max[0]; ++x)
        for (auto y = block_.min[1]; y < block_.max[1]; ++y)
            for (auto z = block_.min[2]; z < block_.max[2]; ++z) at(x, y, z) = interior[k++];
}

void GhostField::exchange() {
    // post all sends (buffered), then satisfy the receives
    for (const auto& t : sends_) {
        std::vector<double> payload(t.region.size());
        std::size_t         k = 0;
        for (auto x = t.region.min[0]; x < t.region.max[0]; ++x)
            for (auto y = t.region.min[1]; y < t.region.max[1]; ++y)
                for (auto z = t.region.min[2]; z < t.region.max[2]; ++z) payload[k++] = at(x, y, z);
        comm_.send_span<double>(t.rank, tag_base + t.face, payload);
    }

    for (const auto& t : recvs_) {
        if (t.rank == comm_.rank()) {
            // periodic self-neighbor (single block along an axis): copy
            for (auto x = t.region.min[0]; x < t.region.max[0]; ++x)
                for (auto y = t.region.min[1]; y < t.region.max[1]; ++y)
                    for (auto z = t.region.min[2]; z < t.region.max[2]; ++z)
                        at(x + t.shift[0], y + t.shift[1], z + t.shift[2]) = at(x, y, z);
            continue;
        }
        auto        payload = comm_.recv_vector<double>(t.rank, tag_base + t.face);
        std::size_t k       = 0;
        for (auto x = t.region.min[0]; x < t.region.max[0]; ++x)
            for (auto y = t.region.min[1]; y < t.region.max[1]; ++y)
                for (auto z = t.region.min[2]; z < t.region.max[2]; ++z)
                    at(x + t.shift[0], y + t.shift[1], z + t.shift[2]) = payload[k++];
    }
}

} // namespace diy
