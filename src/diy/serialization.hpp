#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace diy {

/// Append-only/consume-only binary buffer used to serialize metadata,
/// bounding boxes, and dataset payloads into message-passing payloads,
/// mirroring DIY's BinaryBuffer.
class BinaryBuffer {
public:
    BinaryBuffer() = default;
    explicit BinaryBuffer(std::vector<std::byte> bytes) : data_(std::move(bytes)) {}

    const std::vector<std::byte>& data() const { return data_; }
    /// Mutable access to the backing storage, for producers that append
    /// payload bytes in place (avoids an intermediate copy). Appending is
    /// safe; never shrink below the current read position.
    std::vector<std::byte>& mutable_data() { return data_; }
    std::vector<std::byte>  take() && { return std::move(data_); }
    std::size_t                   size() const { return data_.size(); }
    std::size_t                   position() const { return pos_; }
    bool                          exhausted() const { return pos_ >= data_.size(); }
    void                          rewind() { pos_ = 0; }

    void save_raw(const void* p, std::size_t n) {
        const auto* b = static_cast<const std::byte*>(p);
        data_.insert(data_.end(), b, b + n);
    }

    /// Advance the read cursor past `n` bytes and return a pointer to the
    /// skipped region (valid while the buffer lives) — zero-copy reads.
    const std::byte* skip(std::size_t n) {
        if (pos_ + n > data_.size())
            throw std::out_of_range("diy::BinaryBuffer: skip past end");
        const std::byte* p = data_.data() + pos_;
        pos_ += n;
        return p;
    }

    void load_raw(void* p, std::size_t n) {
        if (pos_ + n > data_.size())
            throw std::out_of_range("diy::BinaryBuffer: read past end ("
                                    + std::to_string(pos_ + n) + " > " + std::to_string(data_.size()) + ")");
        std::memcpy(p, data_.data() + pos_, n);
        pos_ += n;
    }

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    void save(const T& value) {
        save_raw(&value, sizeof(T));
    }

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    void load(T& value) {
        load_raw(&value, sizeof(T));
    }

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    T load() {
        T value{};
        load_raw(&value, sizeof(T));
        return value;
    }

    void save(const std::string& s) {
        save<std::uint64_t>(s.size());
        save_raw(s.data(), s.size());
    }

    void load(std::string& s) {
        auto n = load<std::uint64_t>();
        s.resize(n);
        load_raw(s.data(), n);
    }

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    void save(const std::vector<T>& v) {
        save<std::uint64_t>(v.size());
        save_raw(v.data(), v.size() * sizeof(T));
    }

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    void load(std::vector<T>& v) {
        auto n = load<std::uint64_t>();
        v.resize(n);
        load_raw(v.data(), n * sizeof(T));
    }

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    void save_span(std::span<const T> v) {
        save<std::uint64_t>(v.size());
        save_raw(v.data(), v.size_bytes());
    }

private:
    std::vector<std::byte> data_;
    std::size_t            pos_ = 0;
};

} // namespace diy
