#include "decomposer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace diy {

std::vector<int> RegularDecomposer::factor(int n, int d) {
    if (n <= 0 || d <= 0) throw std::invalid_argument("diy: factor requires n>0, d>0");
    std::vector<int> factors(static_cast<std::size_t>(d), 1);

    // prime factors of n, largest first
    std::vector<int> primes;
    int              m = n;
    for (int p = 2; p * p <= m; ++p)
        while (m % p == 0) {
            primes.push_back(p);
            m /= p;
        }
    if (m > 1) primes.push_back(m);
    std::sort(primes.rbegin(), primes.rend());

    // greedily multiply each prime into the currently smallest factor,
    // keeping the d factors as balanced as possible
    for (int p : primes) {
        auto it = std::min_element(factors.begin(), factors.end());
        *it *= p;
    }
    std::sort(factors.rbegin(), factors.rend());
    return factors;
}

RegularDecomposer::RegularDecomposer(const Bounds& domain, int nblocks)
    : domain_(domain), nblocks_(nblocks) {
    if (domain.dim <= 0 || domain.dim > max_dim)
        throw std::invalid_argument("diy: bad domain dimension");
    if (nblocks <= 0) throw std::invalid_argument("diy: nblocks must be positive");

    // assign the largest factors to the dimensions with the largest extents
    std::vector<int> fac = factor(nblocks, domain.dim); // descending
    std::vector<int> dims(static_cast<std::size_t>(domain.dim));
    std::iota(dims.begin(), dims.end(), 0);
    std::stable_sort(dims.begin(), dims.end(), [&](int a, int b) {
        auto ea = domain.max[static_cast<std::size_t>(a)] - domain.min[static_cast<std::size_t>(a)];
        auto eb = domain.max[static_cast<std::size_t>(b)] - domain.min[static_cast<std::size_t>(b)];
        return ea > eb;
    });
    shape_.assign(static_cast<std::size_t>(domain.dim), 1);
    for (std::size_t i = 0; i < dims.size(); ++i)
        shape_[static_cast<std::size_t>(dims[i])] = fac[i];
}

std::int64_t RegularDecomposer::chunk_lo(int dimension, int chunk) const {
    auto u      = static_cast<std::size_t>(dimension);
    auto extent = domain_.max[u] - domain_.min[u];
    auto k      = static_cast<std::int64_t>(shape_[u]);
    return domain_.min[u] + extent * chunk / k;
}

int RegularDecomposer::chunk_of(int dimension, std::int64_t coord) const {
    auto u      = static_cast<std::size_t>(dimension);
    auto extent = domain_.max[u] - domain_.min[u];
    auto k      = static_cast<std::int64_t>(shape_[u]);
    if (coord < domain_.min[u] || coord >= domain_.max[u]) return -1;
    auto c = (coord - domain_.min[u]) * k / extent; // first guess, then fix up
    while (c + 1 < k && chunk_lo(dimension, static_cast<int>(c) + 1) <= coord) ++c;
    while (c > 0 && chunk_lo(dimension, static_cast<int>(c)) > coord) --c;
    return static_cast<int>(c);
}

Bounds RegularDecomposer::block_bounds(int gid) const {
    if (gid < 0 || gid >= nblocks_) throw std::out_of_range("diy: block gid out of range");
    Bounds b(domain_.dim);
    int    rem = gid;
    // row-major: last dimension varies fastest
    for (int i = domain_.dim - 1; i >= 0; --i) {
        auto u = static_cast<std::size_t>(i);
        int  c = rem % shape_[u];
        rem /= shape_[u];
        b.min[u] = chunk_lo(i, c);
        b.max[u] = chunk_lo(i, c + 1);
    }
    return b;
}

int RegularDecomposer::point_to_block(const std::array<std::int64_t, max_dim>& pt) const {
    int gid = 0;
    for (int i = 0; i < domain_.dim; ++i) {
        int c = chunk_of(i, pt[static_cast<std::size_t>(i)]);
        if (c < 0) return -1;
        gid = gid * shape_[static_cast<std::size_t>(i)] + c;
    }
    return gid;
}

std::vector<int> RegularDecomposer::intersecting_blocks(const Bounds& box) const {
    auto clipped = intersect(box, domain_);
    if (!clipped) return {};

    // per-dimension chunk ranges [lo, hi]
    std::array<int, max_dim> lo{}, hi{};
    for (int i = 0; i < domain_.dim; ++i) {
        auto u = static_cast<std::size_t>(i);
        lo[u]  = chunk_of(i, clipped->min[u]);
        hi[u]  = chunk_of(i, clipped->max[u] - 1);
    }

    std::vector<int>         gids;
    std::array<int, max_dim> cur = lo;
    for (;;) {
        int gid = 0;
        for (int i = 0; i < domain_.dim; ++i)
            gid = gid * shape_[static_cast<std::size_t>(i)] + cur[static_cast<std::size_t>(i)];
        gids.push_back(gid);

        int i = domain_.dim - 1;
        for (; i >= 0; --i) {
            auto u = static_cast<std::size_t>(i);
            if (++cur[u] <= hi[u]) break;
            cur[u] = lo[u];
        }
        if (i < 0) break;
    }
    return gids;
}

} // namespace diy
