#pragma once

#include "bounds.hpp"

#include <vector>

namespace diy {

/// Regular block decomposition of a d-dimensional domain into n blocks —
/// the paper's *common decomposition* (§III-B): n is factored into d
/// factors as close to each other as possible, the domain is cut into
/// n1 × ... × nd blocks, and block i belongs to producer process i.
class RegularDecomposer {
public:
    /// Factor `nblocks` into `dim` near-equal factors (largest factors on
    /// the dimensions with the largest extents of `domain`).
    RegularDecomposer(const Bounds& domain, int nblocks);

    int           nblocks() const { return nblocks_; }
    int           dim() const { return domain_.dim; }
    const Bounds& domain() const { return domain_; }
    const std::vector<int>& shape() const { return shape_; }

    /// Bounds of block `gid` (row-major order over the block grid).
    Bounds block_bounds(int gid) const;

    /// Block containing a point; -1 when outside the domain.
    int point_to_block(const std::array<std::int64_t, max_dim>& pt) const;

    /// All block gids whose bounds intersect `box`.
    std::vector<int> intersecting_blocks(const Bounds& box) const;

    /// Factor n into d near-equal factors (exposed for testing).
    static std::vector<int> factor(int n, int d);

private:
    // per-dimension chunk boundary: index of first grid point of chunk c
    std::int64_t chunk_lo(int dimension, int chunk) const;
    int          chunk_of(int dimension, std::int64_t coord) const;

    Bounds           domain_;
    int              nblocks_;
    std::vector<int> shape_; ///< blocks per dimension, product == nblocks
};

} // namespace diy
