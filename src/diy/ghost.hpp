#pragma once

#include "decomposer.hpp"

#include <simmpi/comm.hpp>

#include <vector>

namespace diy {

/// A scalar (double) field over one block of a 3-d regular decomposition,
/// stored with a one-cell ghost margin, plus the face-ghost exchange
/// between neighboring blocks (periodic across the domain boundary) that
/// stencil codes need. One block per rank: block gid == comm rank.
///
/// This is the block-parallel helper a DIY-based simulation would use for
/// its halo exchange; MiniNyx's Poisson solver runs on it. Message tags
/// 91..96 on the given communicator are reserved by exchange().
class GhostField {
public:
    /// Collective setup over `comm` (dimensions only; no communication).
    GhostField(const RegularDecomposer& dec, const simmpi::Comm& comm);

    const Bounds& block() const { return block_; }

    /// Access by *global* coordinates; valid for the block plus the
    /// one-cell ghost margin around it (unwrapped coordinates).
    double& at(std::int64_t x, std::int64_t y, std::int64_t z) {
        return data_[index(x, y, z)];
    }
    double at(std::int64_t x, std::int64_t y, std::int64_t z) const {
        return data_[index(x, y, z)];
    }

    void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

    /// Copy interior values from a row-major (margin-less) block buffer.
    void load_interior(const std::vector<double>& interior);

    /// Refresh the face ghost layers from the neighboring blocks
    /// (periodic wrap at the domain boundary). Collective: every rank of
    /// the communicator must call it the same number of times.
    void exchange();

    /// Swap payloads with another field of the same geometry (cheap
    /// double-buffering for Jacobi sweeps).
    void swap(GhostField& other) { data_.swap(other.data_); }

private:
    std::size_t index(std::int64_t x, std::int64_t y, std::int64_t z) const {
        // margin of 1: local coordinate = global - min + 1
        auto lx = static_cast<std::size_t>(x - block_.min[0] + 1);
        auto ly = static_cast<std::size_t>(y - block_.min[1] + 1);
        auto lz = static_cast<std::size_t>(z - block_.min[2] + 1);
        return lx * stride_y_ + ly * stride_z_ + lz;
    }

    /// The region of my block that rank q's ghost margin needs (empty
    /// bounds if none); also yields the unwrap shift to apply.
    struct Transfer {
        int    rank;      ///< peer rank
        int    face;      ///< 0..5 (axis*2 + side), from the *receiver's* view
        Bounds region;    ///< in the *sender's* (unwrapped) coordinates
        std::array<std::int64_t, 3> shift; ///< sender coords + shift = receiver ghost coords
    };

    RegularDecomposer   dec_;
    simmpi::Comm        comm_;
    Bounds              block_;
    std::size_t         stride_y_ = 0, stride_z_ = 0;
    std::vector<double> data_;
    std::vector<Transfer> sends_; ///< regions of my data others need
    std::vector<Transfer> recvs_; ///< regions of others' data my ghosts need
};

} // namespace diy
