#pragma once

/// Umbrella header for the diy block-parallel helpers: integer bounds
/// boxes, the regular decomposer implementing the paper's common
/// decomposition, and binary serialization buffers.

#include "bounds.hpp"        // IWYU pragma: export
#include "decomposer.hpp"    // IWYU pragma: export
#include "serialization.hpp" // IWYU pragma: export
