#include "reeber.hpp"

#include <diy/serialization.hpp>

#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>

namespace reeber {

namespace {

constexpr int tag_faces = 81;

/// Local union–find with path compression.
class UnionFind {
public:
    explicit UnionFind(std::size_t n) : parent_(n) {
        std::iota(parent_.begin(), parent_.end(), std::size_t{0});
    }
    std::size_t find(std::size_t x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x          = parent_[x];
        }
        return x;
    }
    void unite(std::size_t a, std::size_t b) {
        a = find(a);
        b = find(b);
        if (a != b) parent_[std::max(a, b)] = std::min(a, b);
    }

private:
    std::vector<std::size_t> parent_;
};

diy::Bounds cube_domain(std::int64_t n) {
    diy::Bounds d(3);
    d.max = {n, n, n};
    return d;
}

} // namespace

std::vector<Halo> HaloFinder::find_halos(std::int64_t n, const diy::Bounds& block,
                                         const std::vector<double>& density) {
    diy::RegularDecomposer dec(cube_domain(n), local_.size());
    if (!(dec.block_bounds(local_.rank()) == block))
        throw std::runtime_error("reeber: block must match the task's regular decomposition");

    const auto ey = block.max[1] - block.min[1];
    const auto ez = block.max[2] - block.min[2];

    auto lidx = [&](std::int64_t x, std::int64_t y, std::int64_t z) {
        return static_cast<std::size_t>(((x - block.min[0]) * ey + (y - block.min[1])) * ez
                                        + (z - block.min[2]));
    };
    auto gid = [&](std::int64_t x, std::int64_t y, std::int64_t z) {
        return (static_cast<std::uint64_t>(x) * static_cast<std::uint64_t>(n)
                + static_cast<std::uint64_t>(y))
                   * static_cast<std::uint64_t>(n)
               + static_cast<std::uint64_t>(z);
    };
    auto above = [&](std::int64_t x, std::int64_t y, std::int64_t z) {
        return density[lidx(x, y, z)] >= threshold_;
    };

    // --- 1. local connected components (6-connectivity) ---------------------
    UnionFind uf(block.size());
    for (auto x = block.min[0]; x < block.max[0]; ++x)
        for (auto y = block.min[1]; y < block.max[1]; ++y)
            for (auto z = block.min[2]; z < block.max[2]; ++z) {
                if (!above(x, y, z)) continue;
                if (x + 1 < block.max[0] && above(x + 1, y, z)) uf.unite(lidx(x, y, z), lidx(x + 1, y, z));
                if (y + 1 < block.max[1] && above(x, y + 1, z)) uf.unite(lidx(x, y, z), lidx(x, y + 1, z));
                if (z + 1 < block.max[2] && above(x, y, z + 1)) uf.unite(lidx(x, y, z), lidx(x, y, z + 1));
            }

    // component label = smallest global cell id in the component (so far);
    // flat array indexed by local root index (hot path — no tree lookups)
    constexpr std::uint64_t    no_label = ~std::uint64_t{0};
    std::vector<std::uint64_t> label(block.size(), no_label);
    for (auto x = block.min[0]; x < block.max[0]; ++x)
        for (auto y = block.min[1]; y < block.max[1]; ++y)
            for (auto z = block.min[2]; z < block.max[2]; ++z) {
                if (!above(x, y, z)) continue;
                auto root = uf.find(lidx(x, y, z));
                auto g    = gid(x, y, z);
                if (g < label[root]) label[root] = g;
            }

    // --- 2. which ranks are face-adjacent to my block -----------------------
    std::vector<int> neighbors;
    for (int axis = 0; axis < 3; ++axis)
        for (int side = 0; side < 2; ++side) {
            diy::Bounds slab = block;
            auto        u    = static_cast<std::size_t>(axis);
            if (side == 0) {
                slab.max[u] = block.min[u];
                slab.min[u] = block.min[u] - 1;
            } else {
                slab.min[u] = block.max[u];
                slab.max[u] = block.max[u] + 1;
            }
            for (int r : dec.intersecting_blocks(slab))
                if (r != local_.rank()) neighbors.push_back(r);
        }
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()), neighbors.end());

    // --- 3. label-merge rounds until global fixpoint -------------------------
    for (;;) {
        // (receiver cell gid, sender label) per neighbor
        std::map<int, diy::BinaryBuffer> outgoing;
        for (int r : neighbors) outgoing[r]; // ensure one (possibly empty) message each

        auto emit_face = [&](int axis, int side) {
            auto        u    = static_cast<std::size_t>(axis);
            diy::Bounds face = block;
            if (side == 0)
                face.max[u] = block.min[u] + 1;
            else
                face.min[u] = block.max[u] - 1;
            for (auto x = face.min[0]; x < face.max[0]; ++x)
                for (auto y = face.min[1]; y < face.max[1]; ++y)
                    for (auto z = face.min[2]; z < face.max[2]; ++z) {
                        if (!above(x, y, z)) continue;
                        std::array<std::int64_t, diy::max_dim> adj{x, y, z};
                        adj[u] += side == 0 ? -1 : 1;
                        if (adj[u] < 0 || adj[u] >= n) continue;
                        int owner = dec.point_to_block(adj);
                        if (owner == local_.rank() || owner < 0) continue;
                        auto root = uf.find(lidx(x, y, z));
                        outgoing[owner].save(gid(adj[0], adj[1], adj[2]));
                        outgoing[owner].save(label[root]);
                    }
        };
        for (int axis = 0; axis < 3; ++axis)
            for (int side = 0; side < 2; ++side) emit_face(axis, side);

        for (auto& [r, buf] : outgoing) local_.send(r, tag_faces, std::move(buf).take());

        // label exchange converges to the componentwise minimum: applying
        // neighbor updates in any order reaches the same fixed point
        local_.check_commutative(tag_faces, "min-label accumulation");

        bool changed = false;
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
            std::vector<std::byte> raw;
            local_.recv(simmpi::any_source, tag_faces, raw);
            diy::BinaryBuffer bb{std::move(raw)};
            while (!bb.exhausted()) {
                auto cell_gid  = bb.load<std::uint64_t>();
                auto remote_lb = bb.load<std::uint64_t>();
                // decode my cell from the global id
                auto z = static_cast<std::int64_t>(cell_gid % static_cast<std::uint64_t>(n));
                auto y = static_cast<std::int64_t>((cell_gid / static_cast<std::uint64_t>(n))
                                                   % static_cast<std::uint64_t>(n));
                auto x = static_cast<std::int64_t>(cell_gid
                                                   / (static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n)));
                if (!block.contains({x, y, z}) || !above(x, y, z)) continue;
                auto root = uf.find(lidx(x, y, z));
                if (remote_lb < label[root]) {
                    label[root] = remote_lb;
                    changed     = true;
                }
            }
        }
        if (!local_.allreduce(changed ? 1 : 0)) break;
    }

    // --- 4. per-label partial statistics, merged globally ---------------------
    std::map<std::uint64_t, Halo> stats;
    for (auto x = block.min[0]; x < block.max[0]; ++x)
        for (auto y = block.min[1]; y < block.max[1]; ++y)
            for (auto z = block.min[2]; z < block.max[2]; ++z) {
                if (!above(x, y, z)) continue;
                auto  lb = label[uf.find(lidx(x, y, z))];
                auto& h  = stats[lb];
                h.id     = lb;
                h.n_cells += 1;
                h.mass += density[lidx(x, y, z)];
                h.peak = std::max(h.peak, density[lidx(x, y, z)]);
            }

    diy::BinaryBuffer mine;
    mine.save<std::uint64_t>(stats.size());
    for (const auto& [lb, h] : stats) {
        mine.save(h.id);
        mine.save(h.n_cells);
        mine.save(h.mass);
        mine.save(h.peak);
    }
    auto all = local_.gather(std::span<const std::byte>(mine.data().data(), mine.size()), 0);

    diy::BinaryBuffer result;
    if (local_.rank() == 0) {
        std::map<std::uint64_t, Halo> merged;
        for (auto& raw : all) {
            diy::BinaryBuffer bb{std::move(raw)};
            auto              k = bb.load<std::uint64_t>();
            for (std::uint64_t i = 0; i < k; ++i) {
                Halo h;
                bb.load(h.id);
                bb.load(h.n_cells);
                bb.load(h.mass);
                bb.load(h.peak);
                auto& m = merged[h.id];
                m.id    = h.id;
                m.n_cells += h.n_cells;
                m.mass += h.mass;
                m.peak = std::max(m.peak, h.peak);
            }
        }
        result.save<std::uint64_t>(merged.size());
        for (const auto& [lb, h] : merged) {
            result.save(h.id);
            result.save(h.n_cells);
            result.save(h.mass);
            result.save(h.peak);
        }
    }
    std::vector<std::byte> blob = std::move(result).take();
    local_.bcast(blob, 0);

    diy::BinaryBuffer bb{std::move(blob)};
    std::vector<Halo> halos(bb.load<std::uint64_t>());
    for (auto& h : halos) {
        bb.load(h.id);
        bb.load(h.n_cells);
        bb.load(h.mass);
        bb.load(h.peak);
    }
    return halos;
}

std::vector<Halo> HaloFinder::run(const std::string& file_name, const std::string& dset_path,
                                  const h5::VolPtr& vol) {
    h5::File f = h5::File::open(file_name, vol);
    auto     d = f.open_dataset(dset_path);

    auto dims = d.space().dims();
    if (dims.size() != 3 || dims[0] != dims[1] || dims[1] != dims[2])
        throw std::runtime_error("reeber: expected a cubic 3-d density dataset");
    auto n = static_cast<std::int64_t>(dims[0]);

    diy::RegularDecomposer dec(cube_domain(n), local_.size());
    diy::Bounds            block = dec.block_bounds(local_.rank());

    h5::Dataspace sel({dims[0], dims[1], dims[2]});
    sel.select_box(block);

    auto                t0      = std::chrono::steady_clock::now();
    std::vector<double> density = d.read_vector<double>(sel);
    read_seconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    f.close(); // releases the producer in LowFive memory mode
    return find_halos(n, block, density);
}

} // namespace reeber
