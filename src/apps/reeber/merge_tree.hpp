#pragma once

#include <simmpi/comm.hpp>

#include <cstdint>
#include <vector>

namespace reeber {

/// A persistence pair of the superlevel-set filtration: a maximum born
/// at `birth` (its density value) dies at `death` when its component
/// merges into one with a higher peak. `prominence() = birth - death`
/// ranks how significant the feature is — the merge-tree-based notion of
/// "is this density peak a real halo", after Reeber's merge-tree halo
/// analysis (Friesen et al.; Smirnov & Morozov's triplet merge trees).
struct PersistencePair {
    std::uint64_t peak_vertex = 0; ///< global cell id of the maximum
    double        birth       = 0; ///< density at the maximum
    double        death       = 0; ///< density at the merge (saddle), or
                                   ///< the sweep floor for the last survivor
    double prominence() const { return birth - death; }
};

/// Merge tree of the superlevel sets of a scalar field on an n^3 grid
/// (6-connectivity): tracks how components of {v : f(v) >= t} appear at
/// maxima and join at saddles as t sweeps downward. Built with a sorted
/// union–find sweep; vertices below `floor` are ignored (the halo
/// analysis never descends below the background density).
class MergeTree {
public:
    /// `field` is the full row-major n^3 field.
    static MergeTree build(std::int64_t n, const std::vector<double>& field, double floor);

    /// All persistence pairs, most prominent first. Components still
    /// alive at the floor die there (their death is the floor value).
    const std::vector<PersistencePair>& pairs() const { return pairs_; }

    /// Number of features with prominence >= cutoff — the
    /// persistence-simplified halo count.
    std::size_t count_features(double prominence_cutoff) const;

    /// Number of maxima (leaves of the tree).
    std::size_t n_maxima() const { return pairs_.size(); }

private:
    std::vector<PersistencePair> pairs_;
};

/// Distributed convenience used by the analysis task: gathers the
/// block-decomposed field to rank 0 (the blocks must follow
/// RegularDecomposer(n^3, comm.size())), builds the tree there, and
/// broadcasts the pairs. Collective over `comm`. MiniReeber's
/// steady-state halo finding stays fully distributed (HaloFinder); the
/// merge tree is the deeper, occasional analysis, so the gather is
/// acceptable at the sizes it runs on.
std::vector<PersistencePair> distributed_persistence(const simmpi::Comm& comm, std::int64_t n,
                                                     const std::vector<double>& local_block,
                                                     double floor);

} // namespace reeber
