#include "merge_tree.hpp"

#include <diy/decomposer.hpp>
#include <diy/serialization.hpp>

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace reeber {

namespace {

/// Union–find over the active (already swept) vertices, tracking each
/// component's peak.
class PeakUnionFind {
public:
    explicit PeakUnionFind(std::size_t n)
        : parent_(n, no_vertex), peak_(n, 0) {}

    static constexpr std::size_t no_vertex = ~std::size_t{0};

    bool active(std::size_t v) const { return parent_[v] != no_vertex; }

    void activate(std::size_t v) {
        parent_[v] = v;
        peak_[v]   = v;
    }

    std::size_t find(std::size_t v) {
        std::size_t root = v;
        while (parent_[root] != root) root = parent_[root];
        while (parent_[v] != root) {
            auto next  = parent_[v];
            parent_[v] = root;
            v          = next;
        }
        return root;
    }

    std::size_t peak(std::size_t root) const { return peak_[root]; }

    /// Union two roots; the surviving root keeps the higher peak.
    /// Returns the peak vertex of the component that *died*.
    template <typename Higher>
    std::size_t merge(std::size_t ra, std::size_t rb, Higher&& higher) {
        std::size_t pa = peak_[ra], pb = peak_[rb];
        std::size_t survivor_peak = higher(pa, pb) ? pa : pb;
        std::size_t dead_peak     = higher(pa, pb) ? pb : pa;
        parent_[rb] = ra;
        peak_[ra]   = survivor_peak;
        return dead_peak;
    }

private:
    std::vector<std::size_t> parent_;
    std::vector<std::size_t> peak_;
};

} // namespace

MergeTree MergeTree::build(std::int64_t n, const std::vector<double>& field, double floor) {
    const auto total = static_cast<std::size_t>(n) * static_cast<std::size_t>(n)
                       * static_cast<std::size_t>(n);
    if (field.size() != total)
        throw std::invalid_argument("reeber::MergeTree: field size does not match n^3");

    // vertices above the floor, sorted by decreasing value; ties broken by
    // index so the sweep order is a strict total order (simulation of
    // simplicity)
    std::vector<std::uint32_t> order;
    order.reserve(total / 4);
    for (std::size_t v = 0; v < total; ++v)
        if (field[v] >= floor) order.push_back(static_cast<std::uint32_t>(v));
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        return field[a] != field[b] ? field[a] > field[b] : a < b;
    });

    auto higher = [&](std::size_t a, std::size_t b) {
        return field[a] != field[b] ? field[a] > field[b] : a < b;
    };

    PeakUnionFind uf(total);
    MergeTree     tree;

    const auto nn = static_cast<std::size_t>(n);
    for (auto v : order) {
        uf.activate(v);
        const std::size_t z = v % nn, y = (v / nn) % nn, x = v / (nn * nn);

        auto try_union = [&](std::size_t u) {
            if (!uf.active(u)) return;
            auto rv = uf.find(v), ru = uf.find(u);
            if (rv == ru) return;
            // two superlevel components join at value field[v]: the one
            // with the lower peak dies here; zero-persistence pairs
            // (flat-region artifacts of the tie-breaking) are discarded,
            // as is standard
            auto dead_peak = uf.merge(rv, ru, higher);
            if (field[dead_peak] > field[v])
                tree.pairs_.push_back({static_cast<std::uint64_t>(dead_peak), field[dead_peak],
                                       field[v]});
        };
        if (x > 0) try_union(v - nn * nn);
        if (x + 1 < nn) try_union(v + nn * nn);
        if (y > 0) try_union(v - nn);
        if (y + 1 < nn) try_union(v + nn);
        if (z > 0) try_union(v - 1);
        if (z + 1 < nn) try_union(v + 1);
    }

    // survivors die at the floor
    std::vector<std::size_t> roots;
    for (auto v : order) {
        auto r = uf.find(v);
        roots.push_back(r);
    }
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
    for (auto r : roots) {
        auto p = uf.peak(r);
        tree.pairs_.push_back({static_cast<std::uint64_t>(p), field[p], floor});
    }

    std::sort(tree.pairs_.begin(), tree.pairs_.end(),
              [](const PersistencePair& a, const PersistencePair& b) {
                  return a.prominence() > b.prominence();
              });
    return tree;
}

std::size_t MergeTree::count_features(double prominence_cutoff) const {
    std::size_t k = 0;
    for (const auto& p : pairs_)
        if (p.prominence() >= prominence_cutoff) ++k;
    return k;
}

std::vector<PersistencePair> distributed_persistence(const simmpi::Comm& comm, std::int64_t n,
                                                     const std::vector<double>& local_block,
                                                     double floor) {
    diy::Bounds domain(3);
    domain.max = {n, n, n};
    diy::RegularDecomposer dec(domain, comm.size());
    const diy::Bounds      block = dec.block_bounds(comm.rank());
    if (local_block.size() != block.size())
        throw std::invalid_argument("reeber: local block size does not match the decomposition");

    // gather blocks at rank 0 into the full field
    auto parts = comm.gather(
        std::span<const std::byte>(reinterpret_cast<const std::byte*>(local_block.data()),
                                   local_block.size() * sizeof(double)),
        0);

    diy::BinaryBuffer result;
    if (comm.rank() == 0) {
        std::vector<double> field(static_cast<std::size_t>(n * n * n));
        for (int r = 0; r < comm.size(); ++r) {
            const auto  rb   = dec.block_bounds(r);
            const auto* vals = reinterpret_cast<const double*>(parts[static_cast<std::size_t>(r)].data());
            std::size_t k    = 0;
            for (auto x = rb.min[0]; x < rb.max[0]; ++x)
                for (auto y = rb.min[1]; y < rb.max[1]; ++y)
                    for (auto z = rb.min[2]; z < rb.max[2]; ++z)
                        field[static_cast<std::size_t>((x * n + y) * n + z)] = vals[k++];
        }
        auto tree = MergeTree::build(n, field, floor);
        result.save<std::uint64_t>(tree.pairs().size());
        for (const auto& p : tree.pairs()) {
            result.save(p.peak_vertex);
            result.save(p.birth);
            result.save(p.death);
        }
    }
    std::vector<std::byte> blob = std::move(result).take();
    comm.bcast(blob, 0);

    diy::BinaryBuffer            bb{std::move(blob)};
    std::vector<PersistencePair> pairs(bb.load<std::uint64_t>());
    for (auto& p : pairs) {
        bb.load(p.peak_vertex);
        bb.load(p.birth);
        bb.load(p.death);
    }
    return pairs;
}

} // namespace reeber
