#pragma once

#include <diy/decomposer.hpp>
#include <h5/api.hpp>
#include <simmpi/comm.hpp>

#include <cstdint>
#include <string>
#include <vector>

namespace reeber {

/// A halo found by the analysis: a connected component of cells whose
/// density exceeds the threshold.
struct Halo {
    std::uint64_t id        = 0; ///< smallest global cell id in the component
    std::uint64_t n_cells   = 0;
    double        mass      = 0; ///< sum of density over the component
    double        peak      = 0; ///< maximum density
};

/// MiniReeber: stand-in for the Reeber halo finder of the paper's use
/// case. Reads the density field written by the simulation — with its own
/// block decomposition, which generally differs from the producer's, so
/// the read exercises real n→m redistribution — then finds halos with a
/// distributed connected-component pass: local union–find per block,
/// followed by label-merging rounds across block faces until a global
/// fixpoint (a simplified local–global merge, after Nigmetov & Morozov).
class HaloFinder {
public:
    HaloFinder(simmpi::Comm local, double threshold) : local_(std::move(local)), threshold_(threshold) {}

    /// Read `dset_path` from `file_name` through the given VOL (LowFive,
    /// native, anything) and find halos. Collective over the task;
    /// returns the globally merged halo list on every rank, sorted by id.
    std::vector<Halo> run(const std::string& file_name, const std::string& dset_path,
                          const h5::VolPtr& vol);

    /// Core analysis on an already-loaded block (exposed for testing and
    /// for plotfile input): `block` is this rank's sub-box of an n^3 grid.
    std::vector<Halo> find_halos(std::int64_t grid_size, const diy::Bounds& block,
                                 const std::vector<double>& density);

    /// Wall time spent inside dataset reads by the last run() call.
    double last_read_seconds() const { return read_seconds_; }

private:
    simmpi::Comm local_;
    double       threshold_;
    double       read_seconds_ = 0;
};

} // namespace reeber
