#pragma once

#include <diy/bounds.hpp>
#include <simmpi/comm.hpp>

#include <cstdint>
#include <string>
#include <vector>

namespace nyx {

/// AMReX-style plotfile layout (the paper's "plotfiles" scenario in
/// Table II): a directory with an ASCII `Header` describing the domain
/// and per-block bounds, and one binary cell file per writer rank under
/// `Level_0/`. Unlike the single shared HDF5 file, data are split into
/// separate files among the simulation processes — the format AMReX
/// designed to sidestep shared-file contention.
///
/// All I/O goes through the throttled FileIO layer, so plotfile writes
/// compete for the same modelled PFS bandwidth as everything else.
class PlotfileWriter {
public:
    /// Collective over `local`. `block` is this rank's sub-box of the
    /// N^3 domain; `density` its row-major values. `particles` (raw
    /// bytes, any record layout) goes to a per-rank particle file, as
    /// AMReX plotfiles carry the particle data too.
    static void write(const simmpi::Comm& local, const std::string& dir, std::int64_t grid_size,
                      const diy::Bounds& block, const std::vector<double>& density,
                      const void* particles = nullptr, std::size_t particle_bytes = 0);
};

/// The unoptimized plotfile reader (the paper reports that reading
/// plotfiles was slow and unrepresentative; ours is the same naive shape:
/// every reader rank reads *entire* writer block files that intersect its
/// region, then crops).
class PlotfileReader {
public:
    explicit PlotfileReader(const std::string& dir);

    std::int64_t                    grid_size() const { return grid_size_; }
    int                             nblocks() const { return static_cast<int>(blocks_.size()); }
    const std::vector<diy::Bounds>& blocks() const { return blocks_; }

    /// Fill `out` (row-major within `want`) from the block files.
    void read_region(const diy::Bounds& want, std::vector<double>& out) const;

private:
    std::string              dir_;
    std::int64_t             grid_size_ = 0;
    std::vector<diy::Bounds> blocks_;
};

} // namespace nyx
