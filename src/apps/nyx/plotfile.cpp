#include "plotfile.hpp"

#include <h5/storage.hpp>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace nyx {

namespace {

std::string cell_file(const std::string& dir, int rank) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "Cell_D_%05d", rank);
    return dir + "/Level_0/" + buf;
}

} // namespace

void PlotfileWriter::write(const simmpi::Comm& local, const std::string& dir,
                           std::int64_t grid_size, const diy::Bounds& block,
                           const std::vector<double>& density, const void* particles,
                           std::size_t particle_bytes) {
    if (local.rank() == 0) {
        std::filesystem::create_directories(dir + "/Level_0");

        // gather every rank's bounds for the header
        std::vector<diy::Bounds> blocks(static_cast<std::size_t>(local.size()));
        blocks[0] = block;
        for (int r = 1; r < local.size(); ++r) {
            std::vector<std::byte> raw;
            local.recv(r, 71, raw);
            diy::BinaryBuffer bb{std::move(raw)};
            blocks[static_cast<std::size_t>(r)] = diy::Bounds::load(bb);
        }

        std::ostringstream header;
        header << "MiniNyxPlotfile-1\n"
               << "ncomp 1\ndensity\n"
               << "grid_size " << grid_size << "\n"
               << "nblocks " << local.size() << "\n";
        for (const auto& b : blocks) {
            for (int i = 0; i < 3; ++i)
                header << b.min[static_cast<std::size_t>(i)] << " "
                       << b.max[static_cast<std::size_t>(i)] << " ";
            header << "\n";
        }
        const std::string text = header.str();
        auto              io   = h5::FileIO::create(dir + "/Header");
        io.pwrite(text.data(), text.size(), 0);
    } else {
        diy::BinaryBuffer bb;
        block.save(bb);
        local.send(0, 71, std::move(bb).take());
    }
    local.barrier(); // directory must exist before anyone writes a cell file

    auto io = h5::FileIO::create(cell_file(dir, local.rank()));
    io.pwrite(density.data(), density.size() * sizeof(double), 0);

    if (particles && particle_bytes) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "Particles_D_%05d", local.rank());
        auto pio = h5::FileIO::create(dir + "/Level_0/" + buf);
        pio.pwrite(particles, particle_bytes, 0);
    }
    local.barrier(); // plotfile complete
}

PlotfileReader::PlotfileReader(const std::string& dir) : dir_(dir) {
    // the Header is small; read it through the throttled layer then parse
    auto                   io = h5::FileIO::open_ro(dir + "/Header");
    std::vector<char>      text(io.size());
    io.pread(text.data(), text.size(), 0);
    std::istringstream in(std::string(text.begin(), text.end()));

    std::string line, word;
    std::getline(in, line);
    if (line != "MiniNyxPlotfile-1")
        throw h5::Error("plotfile: bad header in " + dir);
    int ncomp = 0;
    in >> word >> ncomp;
    std::string comp_name;
    in >> comp_name;
    int nblocks = 0;
    in >> word >> grid_size_ >> word >> nblocks;
    blocks_.resize(static_cast<std::size_t>(nblocks), diy::Bounds(3));
    for (auto& b : blocks_)
        for (int i = 0; i < 3; ++i)
            in >> b.min[static_cast<std::size_t>(i)] >> b.max[static_cast<std::size_t>(i)];
    if (!in) throw h5::Error("plotfile: truncated header in " + dir);
}

void PlotfileReader::read_region(const diy::Bounds& want, std::vector<double>& out) const {
    out.assign(want.size(), 0.0);

    for (int r = 0; r < nblocks(); ++r) {
        const auto& b      = blocks_[static_cast<std::size_t>(r)];
        auto        common = diy::intersect(b, want);
        if (!common) continue;

        // naive reader: pull the whole block file, then crop
        auto                io = h5::FileIO::open_ro(cell_file(dir_, r));
        std::vector<double> blockdata(b.size());
        io.pread(blockdata.data(), blockdata.size() * sizeof(double), 0);

        auto offset_in = [](const diy::Bounds& box, std::int64_t x, std::int64_t y, std::int64_t z) {
            return (static_cast<std::uint64_t>(x - box.min[0])
                        * static_cast<std::uint64_t>(box.max[1] - box.min[1])
                    + static_cast<std::uint64_t>(y - box.min[1]))
                       * static_cast<std::uint64_t>(box.max[2] - box.min[2])
                   + static_cast<std::uint64_t>(z - box.min[2]);
        };
        for (auto x = common->min[0]; x < common->max[0]; ++x)
            for (auto y = common->min[1]; y < common->max[1]; ++y) {
                auto src = offset_in(b, x, y, common->min[2]);
                auto dst = offset_in(want, x, y, common->min[2]);
                std::copy_n(blockdata.begin() + static_cast<std::ptrdiff_t>(src),
                            common->max[2] - common->min[2],
                            out.begin() + static_cast<std::ptrdiff_t>(dst));
            }
    }
}

} // namespace nyx
