#include "nyx.hpp"

#include "plotfile.hpp"

#include <diy/serialization.hpp>

#include <cmath>
#include <cstring>
#include <random>

namespace nyx {

namespace {

diy::Bounds cube_domain(std::int64_t n) {
    diy::Bounds d(3);
    d.max = {n, n, n};
    return d;
}

std::int64_t wrap(std::int64_t v, std::int64_t n) { return ((v % n) + n) % n; }

float wrapf(float v, float n) {
    v = std::fmod(v, n);
    return v < 0 ? v + n : v;
}

} // namespace

Simulation::Simulation(simmpi::Comm local, const Config& cfg)
    : local_(std::move(local)), cfg_(cfg), decomposer_(cube_domain(cfg.grid_size), local_.size()),
      block_(decomposer_.block_bounds(local_.rank())), density_(block_.size(), 0.0) {
    const auto   n_total = static_cast<double>(cfg_.particles_per_rank) * local_.size();
    const double cells   = std::pow(static_cast<double>(cfg_.grid_size), 3);
    particle_mass_       = cells / n_total; // mean density 1

    std::mt19937 rng(cfg_.seed + static_cast<unsigned>(local_.rank()) * 7919u);
    std::uniform_real_distribution<float> ux(static_cast<float>(block_.min[0]),
                                             static_cast<float>(block_.max[0]));
    std::uniform_real_distribution<float> uy(static_cast<float>(block_.min[1]),
                                             static_cast<float>(block_.max[1]));
    std::uniform_real_distribution<float> uz(static_cast<float>(block_.min[2]),
                                             static_cast<float>(block_.max[2]));
    std::normal_distribution<float>       uv(0.f, 0.05f);

    particles_.resize(cfg_.particles_per_rank);
    for (auto& p : particles_) p = {ux(rng), uy(rng), uz(rng), uv(rng), uv(rng), uv(rng)};

    if (cfg_.poisson_iters > 0) {
        phi_.emplace(decomposer_, local_);
        scratch_.emplace(decomposer_, local_);
    }
    deposit_density();
}

double& Simulation::cell(std::int64_t x, std::int64_t y, std::int64_t z) {
    auto idx = (static_cast<std::uint64_t>(x - block_.min[0])
                    * static_cast<std::uint64_t>(block_.max[1] - block_.min[1])
                + static_cast<std::uint64_t>(y - block_.min[1]))
                   * static_cast<std::uint64_t>(block_.max[2] - block_.min[2])
               + static_cast<std::uint64_t>(z - block_.min[2]);
    return density_[idx];
}

double Simulation::cell_or_zero(std::int64_t x, std::int64_t y, std::int64_t z) const {
    if (x < block_.min[0] || x >= block_.max[0] || y < block_.min[1] || y >= block_.max[1]
        || z < block_.min[2] || z >= block_.max[2])
        return 0.0;
    return const_cast<Simulation*>(this)->cell(x, y, z);
}

void Simulation::deposit_density() {
    std::fill(density_.begin(), density_.end(), 0.0);
    const auto n = cfg_.grid_size;
    for (const auto& p : particles_) {
        auto x = wrap(static_cast<std::int64_t>(p.x), n);
        auto y = wrap(static_cast<std::int64_t>(p.y), n);
        auto z = wrap(static_cast<std::int64_t>(p.z), n);
        // particles are kept within the local block by migrate_particles
        cell(x, y, z) += particle_mass_;
    }
}

void Simulation::solve_gravity() {
    // periodic Poisson solve: laplacian(phi) = 4*pi*G*(rho - mean), mean
    // density is exactly 1 by construction of particle_mass_
    auto& phi     = *phi_;
    auto& scratch = *scratch_;

    diy::GhostField rho(decomposer_, local_);
    rho.load_interior(density_);
    rho.exchange();

    const double four_pi_g = 4.0 * 3.14159265358979323846 * cfg_.gravity;
    for (int it = 0; it < cfg_.poisson_iters; ++it) {
        phi.exchange();
        for (auto x = block_.min[0]; x < block_.max[0]; ++x)
            for (auto y = block_.min[1]; y < block_.max[1]; ++y)
                for (auto z = block_.min[2]; z < block_.max[2]; ++z) {
                    double nb = phi.at(x - 1, y, z) + phi.at(x + 1, y, z) + phi.at(x, y - 1, z)
                                + phi.at(x, y + 1, z) + phi.at(x, y, z - 1) + phi.at(x, y, z + 1);
                    scratch.at(x, y, z) = (nb - four_pi_g * (rho.at(x, y, z) - 1.0)) / 6.0;
                }
        phi.swap(scratch);
    }
    phi.exchange(); // fresh ghosts for the gradient in kick_drift
}

void Simulation::kick_drift() {
    const auto  n  = static_cast<float>(cfg_.grid_size);
    const float dt = static_cast<float>(cfg_.dt);
    for (auto& p : particles_) {
        auto x = static_cast<std::int64_t>(p.x);
        auto y = static_cast<std::int64_t>(p.y);
        auto z = static_cast<std::int64_t>(p.z);
        float gx, gy, gz;
        if (phi_) {
            // acceleration a = -grad(phi), central differences
            const auto& phi = *phi_;
            gx = static_cast<float>(-(phi.at(x + 1, y, z) - phi.at(x - 1, y, z)) * 0.5);
            gy = static_cast<float>(-(phi.at(x, y + 1, z) - phi.at(x, y - 1, z)) * 0.5);
            gz = static_cast<float>(-(phi.at(x, y, z + 1) - phi.at(x, y, z - 1)) * 0.5);
        } else {
            // no-solver fallback: local density-gradient toy force
            gx = static_cast<float>(cfg_.gravity
                                    * (cell_or_zero(x + 1, y, z) - cell_or_zero(x - 1, y, z)));
            gy = static_cast<float>(cfg_.gravity
                                    * (cell_or_zero(x, y + 1, z) - cell_or_zero(x, y - 1, z)));
            gz = static_cast<float>(cfg_.gravity
                                    * (cell_or_zero(x, y, z + 1) - cell_or_zero(x, y, z - 1)));
        }
        p.vx += gx * dt;
        p.vy += gy * dt;
        p.vz += gz * dt;
        p.x = wrapf(p.x + p.vx * dt, n);
        p.y = wrapf(p.y + p.vy * dt, n);
        p.z = wrapf(p.z + p.vz * dt, n);
    }
}

void Simulation::migrate_particles() {
    std::vector<std::vector<std::byte>> outgoing(static_cast<std::size_t>(local_.size()));
    std::vector<Particle>               keep;
    keep.reserve(particles_.size());

    for (const auto& p : particles_) {
        int owner = decomposer_.point_to_block({static_cast<std::int64_t>(p.x),
                                                static_cast<std::int64_t>(p.y),
                                                static_cast<std::int64_t>(p.z)});
        if (owner < 0) owner = 0; // numeric edge after wrapping
        if (owner == local_.rank()) {
            keep.push_back(p);
        } else {
            auto& buf = outgoing[static_cast<std::size_t>(owner)];
            buf.resize(buf.size() + sizeof(Particle));
            std::memcpy(buf.data() + buf.size() - sizeof(Particle), &p, sizeof(Particle));
        }
    }

    auto incoming = local_.alltoall(std::move(outgoing));
    particles_    = std::move(keep);
    for (auto& buf : incoming) {
        if (buf.empty()) continue;
        auto count = buf.size() / sizeof(Particle);
        auto base  = particles_.size();
        particles_.resize(base + count);
        std::memcpy(particles_.data() + base, buf.data(), buf.size());
    }
}

void Simulation::step() {
    if (phi_) solve_gravity();
    kick_drift();
    migrate_particles();
    deposit_density();
    ++step_;
}

std::uint64_t Simulation::total_particles() const {
    return local_.allreduce(static_cast<std::uint64_t>(particles_.size()));
}

double Simulation::total_mass() const {
    double mine = 0;
    for (double d : density_) mine += d;
    return local_.allreduce(mine);
}

h5::Datatype Simulation::position_type() {
    return h5::Datatype::compound(12)
        .insert("x", 0, h5::dt::float32())
        .insert("y", 4, h5::dt::float32())
        .insert("z", 8, h5::dt::float32());
}

std::vector<Simulation::Patch> Simulation::find_patches() const {
    std::vector<Patch> patches;
    const std::int64_t ps = 4; // patch covers 4^3 parent cells, refined 2x

    auto in_existing = [&](std::int64_t x, std::int64_t y, std::int64_t z) {
        for (const auto& p : patches)
            if (x >= p.origin[0] && x < p.origin[0] + ps && y >= p.origin[1]
                && y < p.origin[1] + ps && z >= p.origin[2] && z < p.origin[2] + ps)
                return true;
        return false;
    };

    for (auto x = block_.min[0]; x < block_.max[0]; ++x) {
        for (auto y = block_.min[1]; y < block_.max[1]; ++y) {
            for (auto z = block_.min[2]; z < block_.max[2]; ++z) {
                if (static_cast<int>(patches.size()) >= cfg_.max_patches_per_rank) return patches;
                if (cell_or_zero(x, y, z) < cfg_.refine_threshold || in_existing(x, y, z)) continue;

                Patch p;
                p.origin = {std::max(block_.min[0], std::min(x, block_.max[0] - ps)),
                            std::max(block_.min[1], std::min(y, block_.max[1] - ps)),
                            std::max(block_.min[2], std::min(z, block_.max[2] - ps))};
                // refine by replicating each parent cell into 2^3 subcells
                for (std::int64_t i = 0; i < 8; ++i)
                    for (std::int64_t j = 0; j < 8; ++j)
                        for (std::int64_t k = 0; k < 8; ++k)
                            p.values[static_cast<std::size_t>((i * 8 + j) * 8 + k)] =
                                cell_or_zero(p.origin[0] + i / 2, p.origin[1] + j / 2,
                                             p.origin[2] + k / 2);
                patches.push_back(p);
            }
        }
    }
    return patches;
}

void Simulation::write_snapshot_h5(const std::string& name, const h5::VolPtr& vol) const {
    const auto n = static_cast<std::uint64_t>(cfg_.grid_size);

    h5::File f = h5::File::create(name, vol);
    f.write_attribute("step", std::int32_t{step_});
    f.write_attribute("time", time());
    f.write_attribute("grid_size", static_cast<std::int64_t>(cfg_.grid_size));

    // level-0 density, written one AMReX-style sub-box at a time
    auto gf = f.create_group("native_fields");
    auto dd = gf.create_dataset("baryon_density", h5::dt::float64(), h5::Dataspace({n, n, n}));
    const auto mgs = std::max<std::int64_t>(1, cfg_.max_grid_size);
    for (auto x0 = block_.min[0]; x0 < block_.max[0]; x0 += mgs)
        for (auto y0 = block_.min[1]; y0 < block_.max[1]; y0 += mgs)
            for (auto z0 = block_.min[2]; z0 < block_.max[2]; z0 += mgs) {
                diy::Bounds box(3);
                box.min = {x0, y0, z0};
                box.max = {std::min(x0 + mgs, block_.max[0]), std::min(y0 + mgs, block_.max[1]),
                           std::min(z0 + mgs, block_.max[2])};
                h5::Dataspace fsel({n, n, n});
                fsel.select_box(box);
                // the source buffer is the full block; describe it as a
                // memory space selecting the sub-box (zero repacking here)
                h5::Dataspace msel({static_cast<std::uint64_t>(block_.max[0] - block_.min[0]),
                                    static_cast<std::uint64_t>(block_.max[1] - block_.min[1]),
                                    static_cast<std::uint64_t>(block_.max[2] - block_.min[2])});
                diy::Bounds   local = box;
                for (int i = 0; i < 3; ++i) {
                    auto u = static_cast<std::size_t>(i);
                    local.min[u] -= block_.min[u];
                    local.max[u] -= block_.min[u];
                }
                msel.select_box(local);
                dd.write(density_.data(), msel, fsel);
            }

    // particle positions: contiguous global list, offsets by exclusive scan
    auto counts = local_.allgather_value(static_cast<std::uint64_t>(particles_.size()));
    std::uint64_t total = 0, offset = 0;
    for (int r = 0; r < local_.size(); ++r) {
        if (r == local_.rank()) offset = total;
        total += counts[static_cast<std::size_t>(r)];
    }
    auto gp = f.create_group("particles");
    auto dp = gp.create_dataset("position", position_type(), h5::Dataspace({total}));
    std::vector<float> pos(particles_.size() * 3);
    for (std::size_t i = 0; i < particles_.size(); ++i) {
        pos[i * 3]     = particles_[i].x;
        pos[i * 3 + 1] = particles_[i].y;
        pos[i * 3 + 2] = particles_[i].z;
    }
    h5::Dataspace psel({total});
    diy::Bounds   prange(1);
    prange.min[0] = static_cast<std::int64_t>(offset);
    prange.max[0] = static_cast<std::int64_t>(offset + particles_.size());
    psel.select_box(prange);
    dp.write(pos.data(), psel);

    // AMR level-1 patches (variable count: sized collectively)
    auto patches = find_patches();
    auto pcounts = local_.allgather_value(static_cast<std::uint64_t>(patches.size()));
    std::uint64_t ptotal = 0, poffset = 0;
    for (int r = 0; r < local_.size(); ++r) {
        if (r == local_.rank()) poffset = ptotal;
        ptotal += pcounts[static_cast<std::size_t>(r)];
    }
    auto ga = f.create_group("amr");
    ga.write_attribute("n_patches", ptotal);
    if (ptotal > 0) {
        auto dor = ga.create_dataset("patch_origin", h5::dt::int64(), h5::Dataspace({ptotal, 3}));
        auto dpd = ga.create_dataset("patch_density", h5::dt::float64(),
                                     h5::Dataspace({ptotal, 8, 8, 8}));
        if (!patches.empty()) {
            std::vector<std::int64_t> origins(patches.size() * 3);
            std::vector<double>       values(patches.size() * 512);
            for (std::size_t i = 0; i < patches.size(); ++i) {
                for (int k = 0; k < 3; ++k)
                    origins[i * 3 + static_cast<std::size_t>(k)] = patches[i].origin[static_cast<std::size_t>(k)];
                std::copy(patches[i].values.begin(), patches[i].values.end(),
                          values.begin() + static_cast<std::ptrdiff_t>(i * 512));
            }
            h5::Dataspace osel({ptotal, 3});
            diy::Bounds   ob(2);
            ob.min = {static_cast<std::int64_t>(poffset), 0};
            ob.max = {static_cast<std::int64_t>(poffset + patches.size()), 3};
            osel.select_box(ob);
            dor.write(origins.data(), osel);

            h5::Dataspace vsel({ptotal, 8, 8, 8});
            diy::Bounds   vb(4);
            vb.min = {static_cast<std::int64_t>(poffset), 0, 0, 0};
            vb.max = {static_cast<std::int64_t>(poffset + patches.size()), 8, 8, 8};
            vsel.select_box(vb);
            dpd.write(values.data(), vsel);
        }
    }
    f.close(); // in LowFive memory mode this is where serving happens
}

void Simulation::write_snapshot_plotfile(const std::string& dir) const {
    PlotfileWriter::write(local_, dir, cfg_.grid_size, block_, density_, particles_.data(),
                          particles_.size() * sizeof(Particle));
}

} // namespace nyx
