#pragma once

#include <diy/decomposer.hpp>
#include <diy/ghost.hpp>
#include <h5/api.hpp>
#include <simmpi/comm.hpp>

#include <optional>

#include <cstdint>
#include <string>
#include <vector>

namespace nyx {

/// MiniNyx: a stand-in for the Nyx cosmological simulation of the paper's
/// use case (§IV-C). It is a toy particle–mesh code — particles deposit
/// density on a block-decomposed 3-d grid, feel the local density
/// gradient, and drift with periodic wrapping; cells above a threshold
/// spawn 2× refined AMR patches — but its I/O surface is the real thing:
/// snapshots are written through the MiniH5 API (and therefore through
/// whatever VOL is plugged in, LowFive included, with zero changes here)
/// or as AMReX-style plotfiles. Density values are reproducible for a
/// given (seed, grid, ranks) so consumers can be validated.
struct Config {
    std::int64_t  grid_size          = 64;   ///< N for an N^3 level-0 grid
    std::uint64_t particles_per_rank = 8192;
    double        dt                 = 0.1;
    double        refine_threshold   = 4.0; ///< density triggering an AMR patch
    int           max_patches_per_rank = 8;
    /// AMReX-style box chopping: each rank's block is written as sub-boxes
    /// of at most this side length (AMReX max_grid_size). Many small
    /// interleaved writes are exactly what makes single-shared-file output
    /// expensive on a parallel file system.
    std::int64_t  max_grid_size      = 16;
    /// Jacobi sweeps of the periodic Poisson solve per step (0 = fall
    /// back to the local density-gradient toy force, no communication).
    int           poisson_iters      = 12;
    double        gravity            = 0.05; ///< G in grad(phi) = 4*pi*G*(rho - mean)
    unsigned      seed               = 12345;
};

struct Particle {
    float x, y, z;
    float vx, vy, vz;
};

class Simulation {
public:
    Simulation(simmpi::Comm local, const Config& cfg);

    /// Advance one timestep: deposit density, kick from the local density
    /// gradient, drift with periodic wrapping, and migrate particles that
    /// crossed block boundaries (all-to-all over the task communicator).
    void step();

    int    current_step() const { return step_; }
    double time() const { return static_cast<double>(step_) * cfg_.dt; }

    /// Write a snapshot (density grid + particle positions + AMR patches
    /// + attributes) through the MiniH5 API. Collective over the task.
    void write_snapshot_h5(const std::string& name, const h5::VolPtr& vol) const;

    /// Write an AMReX-style plotfile directory. Collective over the task.
    void write_snapshot_plotfile(const std::string& dir) const;

    // --- introspection (used by tests and validation) ----------------------
    const Config&                cfg() const { return cfg_; }
    const diy::Bounds&           block() const { return block_; }
    const std::vector<double>&   density() const { return density_; }
    const std::vector<Particle>& particles() const { return particles_; }
    std::uint64_t                total_particles() const;
    double                       total_mass() const; ///< globally reduced

    /// Datatype of the particle-position dataset rows.
    static h5::Datatype position_type();

private:
    void deposit_density();
    /// Periodic Poisson solve for the gravitational potential: Jacobi
    /// sweeps with face-ghost exchange over the block decomposition.
    void solve_gravity();
    void kick_drift();
    void migrate_particles();

    /// AMR: (origin, 8^3 refined density values) for each local patch.
    struct Patch {
        std::array<std::int64_t, 3> origin;
        std::array<double, 512>     values;
    };
    std::vector<Patch> find_patches() const;

    double&      cell(std::int64_t x, std::int64_t y, std::int64_t z);
    double       cell_or_zero(std::int64_t x, std::int64_t y, std::int64_t z) const;

    simmpi::Comm           local_;
    Config                 cfg_;
    diy::RegularDecomposer decomposer_;
    diy::Bounds            block_;
    std::vector<double>    density_; ///< row-major within block_
    std::vector<Particle>  particles_;
    double                 particle_mass_ = 1.0;
    int                    step_          = 0;

    // gravity state (constructed when poisson_iters > 0); phi_ is kept
    // across steps as the Jacobi warm start
    std::optional<diy::GhostField> phi_, scratch_;
};

} // namespace nyx
