#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
#   scripts/check.sh            build + ctest in ./build
#   scripts/check.sh --tsan     additionally configure a ThreadSanitizer
#                               tree in ./build-tsan and run the
#                               concurrency-sensitive tests under it
#
# Extra arguments after the flags are passed through to ctest
# (e.g. scripts/check.sh -R QueryPipeline).
set -euo pipefail

cd "$(dirname "$0")/.."

tsan=0
if [[ "${1:-}" == "--tsan" ]]; then
    tsan=1
    shift
fi

jobs=$(nproc 2>/dev/null || echo 2)

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
# --timeout turns any regression back into a hang (the failure mode the
# fault-injection suite guards against) into a loud test failure
ctest --test-dir build --output-on-failure --no-tests=error --timeout 180 -j "$jobs" "$@"

# deterministic-scheduler sweep: replay the hang-regression suite under a
# handful of seeded schedules (both policies) — interleavings wall-clock
# timing would rarely hit; any failure prints an L5_SCHED repro line
echo "== Deterministic-scheduler sweep (mh5sched) =="
./build/tools/mh5sched --seeds 1:5 --timeout 120 --jobs "$jobs" \
    -- ./build/tests/test_fault_injection --gtest_brief=1
./build/tools/mh5sched --seeds 1:5 --policy pct --depth 3 --timeout 120 --jobs "$jobs" \
    -- ./build/tests/test_fault_injection --gtest_brief=1

if [[ $tsan -eq 1 ]]; then
    echo "== ThreadSanitizer tree (build-tsan) =="
    cmake -B build-tsan -S . -DLOWFIVE_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$jobs"
    # the concurrency-heavy suites: simmpi mailboxes/collectives,
    # background serving, the pipelined query plane, the telemetry
    # ring buffers / registry (concurrent emit vs snapshot), the
    # abort/deadline/fault-injection hang-regression suite, and the
    # deterministic scheduler (cooperative handoffs + replay corpus)
    ctest --test-dir build-tsan --output-on-failure --no-tests=error --timeout 300 -j "$jobs" \
          -R 'Simmpi|AsyncServe|QueryPipeline|DistVol|Telemetry|FaultInjection|Sched'
fi

echo "check.sh: all green"
