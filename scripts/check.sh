#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
#   scripts/check.sh            build + lint + ctest in ./build, then the
#                               suite once more with the MPI-semantics
#                               checker armed (L5_CHECK=1)
#   scripts/check.sh --tsan     additionally configure a ThreadSanitizer
#                               tree in ./build-tsan and run the
#                               concurrency-sensitive tests under it
#   scripts/check.sh --ubsan    additionally configure an
#                               UndefinedBehaviorSanitizer tree in
#                               ./build-ubsan and run the full suite under it
#
# Extra arguments after the flags are passed through to ctest
# (e.g. scripts/check.sh -R QueryPipeline).
set -euo pipefail

cd "$(dirname "$0")/.."

tsan=0
ubsan=0
while [[ "${1:-}" == --* ]]; do
    case "$1" in
        --tsan) tsan=1 ;;
        --ubsan) ubsan=1 ;;
        *) echo "check.sh: unknown flag $1" >&2; exit 2 ;;
    esac
    shift
done

jobs=$(nproc 2>/dev/null || echo 2)

echo "== Repo lint (scripts/lint.py) =="
python3 scripts/lint.py

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
# --timeout turns any regression back into a hang (the failure mode the
# fault-injection suite guards against) into a loud test failure
ctest --test-dir build --output-on-failure --no-tests=error --timeout 180 -j "$jobs" "$@"

# the whole suite must stay diagnostic-free under the MPI-semantics
# checker: wildcard races, collective mismatches, and resource leaks
# escalate to test failures here
echo "== Checked suite (L5_CHECK=1) =="
L5_CHECK=1 ctest --test-dir build --output-on-failure --no-tests=error --timeout 180 -j "$jobs" "$@"

# ... and under the predictive race/lock-order detector: any predicted
# data race, lock-order cycle, forbidden edge, or lock-across-wait is
# raised at the offending site and fails the test that reached it
echo "== Race-checked suite (L5_RACE=1) =="
L5_RACE=1 ctest --test-dir build --output-on-failure --no-tests=error --timeout 180 -j "$jobs" "$@"

# deterministic-scheduler sweep: replay the hang-regression suite under a
# handful of seeded schedules (both policies) — interleavings wall-clock
# timing would rarely hit; any failure prints an L5_SCHED repro line.
# --check arms the semantics checker and --race the predictive
# race/lock-order detector in every explored schedule; l5race findings
# are aggregated across seeds and fail the sweep with a repro line.
echo "== Deterministic-scheduler sweep (mh5sched) =="
./build/tools/mh5sched --seeds 1:5 --timeout 120 --jobs "$jobs" --check --race \
    -- ./build/tests/test_fault_injection --gtest_brief=1
./build/tools/mh5sched --seeds 1:5 --policy pct --depth 3 --timeout 120 --jobs "$jobs" --check --race \
    -- ./build/tests/test_fault_injection --gtest_brief=1
# the same sweep with the data-plane worker pool forced on (and a tiny
# fan-out threshold so even small payloads use it): the pool must not
# introduce schedule-dependent behavior into the protocol suites
L5_DATA_THREADS=3 L5_PAR_THRESHOLD=1024 \
    ./build/tools/mh5sched --seeds 1:5 --timeout 120 --jobs "$jobs" --check --race \
    -- ./build/tests/test_dist_vol --gtest_brief=1
# streaming-transport sweep: the step protocol (publish/acquire/pin/
# release, backpressure waits, drop GC) must stay hang-free and
# policy-correct under adversarial interleavings; --check arms the
# step-order checker in every explored schedule
./build/tools/mh5sched --seeds 1:5 --timeout 120 --jobs "$jobs" --check --race \
    -- ./build/tests/test_stream --gtest_brief=1
./build/tools/mh5sched --seeds 1:5 --policy pct --depth 3 --timeout 120 --jobs "$jobs" --check --race \
    -- ./build/tests/test_stream --gtest_brief=1
# MVCC snapshot-index sweep: versioned pins, GC on last unpin, and the
# defer-until-published read protocol must stay torn-read-free and
# hang-free under seeded schedules (the full 200-seed sweep runs in CI)
./build/tools/mh5sched --seeds 1:5 --timeout 120 --jobs "$jobs" --check --race \
    -- ./build/tests/test_mvcc --gtest_brief=1
./build/tools/mh5sched --seeds 1:5 --policy pct --depth 3 --timeout 120 --jobs "$jobs" --check --race \
    -- ./build/tests/test_mvcc --gtest_brief=1

if [[ $tsan -eq 1 ]]; then
    echo "== ThreadSanitizer tree (build-tsan) =="
    cmake -B build-tsan -S . -DLOWFIVE_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$jobs"
    # the concurrency-heavy suites: simmpi mailboxes/collectives,
    # background serving, the pipelined query plane, the telemetry
    # ring buffers / registry (concurrent emit vs snapshot), the
    # abort/deadline/fault-injection hang-regression suite, the
    # deterministic scheduler (cooperative handoffs + replay corpus),
    # and the MVCC snapshot store (lock-free pins racing publish/GC)
    # scripts/tsan.supp silences the libstdc++ _Sp_atomic artifact (see
    # the file header); everything else still fails the run
    TSAN_OPTIONS="suppressions=$PWD/scripts/tsan.supp" \
        ctest --test-dir build-tsan --output-on-failure --no-tests=error --timeout 300 -j "$jobs" \
          -R 'Simmpi|AsyncServe|QueryPipeline|DistVol|Telemetry|FaultInjection|Sched|Stream|Mvcc|Snapshot'
fi

if [[ $ubsan -eq 1 ]]; then
    echo "== UndefinedBehaviorSanitizer tree (build-ubsan) =="
    cmake -B build-ubsan -S . -DLOWFIVE_SANITIZE=undefined >/dev/null
    cmake --build build-ubsan -j "$jobs"
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
        ctest --test-dir build-ubsan --output-on-failure --no-tests=error --timeout 300 -j "$jobs"
fi

echo "check.sh: all green"
