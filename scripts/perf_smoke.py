#!/usr/bin/env python3
"""Perf smoke gate: compare a fresh BENCH_*.json against the pinned one.

Usage
-----
    perf_smoke.py <pinned.json> <fresh.json> [--threshold 0.25]

Both files use the unified bench envelope (bench/common.hpp): scenarios
are matched by (label, procs) and their `seconds_median` compared. The
gate fails when any matched scenario's fresh median exceeds the pinned
median by more than the threshold (default +25%, overridable with
--threshold or L5_PERF_SMOKE_THRESHOLD).

This is a *smoke* gate, not a benchmark: the pinned numbers were taken
on one machine and CI runs on another, so the threshold is generous and
guards against order-of-magnitude regressions (an accidental O(n^2)
path, a lost fast path), not single-digit percent drift. Scenarios that
exist on only one side are reported but never fail the gate, so adding
or retiring scenarios does not require touching this script. Scenarios
whose pinned median sits under --min-seconds (default 10 ms) are shown
but not gated either: at that scale scheduling jitter swamps any real
signal.

Exit status: 0 within budget, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_smoke.py: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != 1:
        print(f"perf_smoke.py: {path}: unknown schema {doc.get('schema')!r}",
              file=sys.stderr)
        sys.exit(2)
    out = {}
    for s in doc.get("scenarios", []):
        key = (s.get("label"), s.get("procs"))
        out[key] = float(s["seconds_median"])
    return doc.get("bench", "?"), out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("pinned")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float,
                    default=float(os.environ.get("L5_PERF_SMOKE_THRESHOLD", "0.25")),
                    help="allowed fractional slowdown per scenario (default 0.25)")
    ap.add_argument("--min-seconds", type=float, default=0.010,
                    help="pinned medians below this are noise, not gated (default 0.010)")
    args = ap.parse_args()

    bench_a, pinned = load(args.pinned)
    bench_b, fresh = load(args.fresh)
    if bench_a != bench_b:
        print(f"perf_smoke.py: bench mismatch: pinned={bench_a!r} fresh={bench_b!r}",
              file=sys.stderr)
        sys.exit(2)

    matched = sorted(set(pinned) & set(fresh))
    if not matched:
        print("perf_smoke.py: no scenarios in common — nothing to compare",
              file=sys.stderr)
        sys.exit(2)

    failures = 0
    for key in matched:
        label, procs = key
        base, cur = pinned[key], fresh[key]
        ratio = cur / base if base > 0 else float("inf")
        verdict = "ok"
        if base < args.min_seconds:
            verdict = "below noise floor, not gated"
        elif ratio > 1.0 + args.threshold:
            verdict = "REGRESSION"
            failures += 1
        print(f"  {label:<40} procs={procs:<3} "
              f"pinned={base * 1e3:9.3f}ms fresh={cur * 1e3:9.3f}ms "
              f"ratio={ratio:5.2f}  {verdict}")

    for key in sorted(set(pinned) - set(fresh)):
        print(f"  {key[0]:<40} procs={key[1]:<3} only in pinned (skipped)")
    for key in sorted(set(fresh) - set(pinned)):
        print(f"  {key[0]:<40} procs={key[1]:<3} only in fresh (skipped)")

    if failures:
        print(f"perf_smoke.py: {failures} scenario(s) regressed past "
              f"+{args.threshold:.0%} of the pinned median", file=sys.stderr)
        return 1
    print(f"perf_smoke.py: {len(matched)} scenario(s) within "
          f"+{args.threshold:.0%} of pinned ({bench_a})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
