#!/usr/bin/env bash
# Regenerate every table and figure of the paper's evaluation.
# Usage: scripts/run_all_benches.sh [output_file]
# Knobs: L5_BENCH_SCALE, L5_BENCH_MAX_PROCS, L5_BENCH_TRIALS, L5_PFS_*.
set -u
out="${1:-bench_output.txt}"
build="$(dirname "$0")/../build"
{
  for b in "$build"/bench/bench_*; do
    [ -x "$b" ] || continue
    echo "=== $(basename "$b") ==="
    "$b"
  done
} 2>&1 | tee "$out"
