#!/usr/bin/env python3
"""Repo-local lint rules that clang-tidy cannot express.

Rules
-----
tmp-path    tests must not hardcode /tmp paths: every test runs in its own
            scratch cwd (mh5sched sweeps run seeds concurrently), so fixed
            paths collide across runs. Write relative to the cwd instead.
raw-sleep   src/ must not sleep: wall-clock delays are nondeterministic
            under the cooperative scheduler and slow every test. Modelled
            latencies and injected delays are the sanctioned exceptions.
bare-wait   scheduler-aware src/ files (anything touching CoopLock /
            coop_wait / detail::Scheduler) must not block on a raw
            condition variable: a wait the scheduler cannot see deadlocks
            deterministic runs. Use coop_wait / Scheduler::block, or keep
            the raw wait on the explicitly free-running path.
non-atomic-toggle
            src/ must not declare process-wide toggles as bare scalar
            globals (`bool g_verbose`, `int g_mode`, ...): they are read
            and flipped across rank threads, which is a data race under
            TSan and the deterministic scheduler. Use std::atomic with
            explicit memory order (see h5::g_kernel_mode), or guard the
            state with a mutex. const/constexpr and thread_local globals
            are exempt — they are not shared mutable state.
raw-step-index
            the stream-facing public headers (src/lowfive/stream/*.hpp)
            must not declare step indices as raw integers (`int step`,
            `std::uint64_t next_step`, ...): a bare integer silently
            mixes step versions with ranks, sizes, and counts. Use the
            typed stream::StepId, whose ordering and "none" sentinel
            carry the protocol semantics; raw integers belong only at
            the wire-serialization boundary inside .cpp files.

A finding is suppressed by `// lint: allow-<rule>(<reason>)` on the same
line or the line directly above; the reason is mandatory and should say
why this occurrence is sound, not what the code does.

Exit status: 0 clean, 1 findings, 2 usage/IO error.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SOURCE_GLOBS = ("*.cpp", "*.hpp")

TMP_PATH = re.compile(r'"/tmp')
RAW_SLEEP = re.compile(r"\b(?:sleep_for|sleep_until|usleep|::sleep)\s*\(")
BARE_WAIT = re.compile(r"\b\w*cv\w*\.wait(?:_for|_until)?\s*\(")
SCHED_AWARE = re.compile(r"\bCoopLock\b|\bcoop_wait\b|\bScheduler\b")
# a file-scope scalar with the g_ naming convention, declared without
# std::atomic / a const qualifier / thread_local on the same line
NON_ATOMIC_TOGGLE = re.compile(
    r"^\s*(?:(?:static|inline)\s+)*"
    r"(?:bool|char|short|int|long(?:\s+long)?|unsigned(?:\s+(?:char|short|int|long))?"
    r"|float|double|std::(?:u?int\d+_t|size_t|ptrdiff_t))\s+"
    r"g_\w+"
)
TOGGLE_EXEMPT = re.compile(r"\bconst\b|\bconstexpr\b|\bthread_local\b|\batomic\b")
# an integer-typed declaration whose identifier names a step — the typed
# StepId (step.hpp) is the only sanctioned spelling in public headers
RAW_STEP_INDEX = re.compile(
    r"\b(?:int|long(?:\s+long)?|unsigned(?:\s+(?:char|short|int|long))?"
    r"|std::(?:u?int\d+_t|size_t|ptrdiff_t))\s+"
    r"\w*[Ss]tep\w*\s*[;,)=({\[]"
)
ALLOW = re.compile(r"//\s*lint:\s*allow-([a-z-]+)\(([^)]+)\)")


def iter_sources(root):
    for pattern in SOURCE_GLOBS:
        yield from sorted(root.rglob(pattern))


def allowed(rule, line, prev_line):
    for text in (line, prev_line):
        m = ALLOW.search(text)
        if m and m.group(1) == rule and m.group(2).strip():
            return True
    return False


def match_non_atomic_toggle(code):
    return NON_ATOMIC_TOGGLE.search(code) and not TOGGLE_EXEMPT.search(code)


def scan_file(path, rules):
    findings = []
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    for i, line in enumerate(lines):
        prev = lines[i - 1] if i else ""
        code = line.split("//", 1)[0]  # patterns never fire on comment text
        for rule, matcher in rules:
            if matcher(code) and not allowed(rule, line, prev):
                findings.append((path, i + 1, rule, line.strip()))
    return findings


def main():
    findings = []

    for path in iter_sources(REPO / "tests"):
        findings += scan_file(path, [("tmp-path", TMP_PATH.search)])

    for path in iter_sources(REPO / "src"):
        rules = [("raw-sleep", RAW_SLEEP.search),
                 ("non-atomic-toggle", match_non_atomic_toggle)]
        if SCHED_AWARE.search(path.read_text(encoding="utf-8", errors="replace")):
            rules.append(("bare-wait", BARE_WAIT.search))
        findings += scan_file(path, rules)

    for path in iter_sources(REPO / "src" / "lowfive" / "stream"):
        if path.suffix == ".hpp":
            findings += scan_file(path, [("raw-step-index", RAW_STEP_INDEX.search)])

    for path, lineno, rule, line in findings:
        rel = path.relative_to(REPO)
        print(f"{rel}:{lineno}: [{rule}] {line}")

    if findings:
        print(f"lint.py: {len(findings)} finding(s); suppress a false positive with "
              "'// lint: allow-<rule>(reason)'", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
