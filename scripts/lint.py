#!/usr/bin/env python3
"""Repo-local lint rules that clang-tidy cannot express.

Rules
-----
tmp-path    tests must not hardcode /tmp paths: every test runs in its own
            scratch cwd (mh5sched sweeps run seeds concurrently), so fixed
            paths collide across runs. Write relative to the cwd instead.
raw-sleep   src/ must not sleep: wall-clock delays are nondeterministic
            under the cooperative scheduler and slow every test. Modelled
            latencies and injected delays are the sanctioned exceptions.
bare-wait   scheduler-aware src/ files (anything touching CoopLock /
            coop_wait / detail::Scheduler) must not block on a raw
            condition variable: a wait the scheduler cannot see deadlocks
            deterministic runs. Use coop_wait / Scheduler::block, or keep
            the raw wait on the explicitly free-running path.
non-atomic-toggle
            src/ must not declare process-wide toggles as bare scalar
            globals (`bool g_verbose`, `int g_mode`, ...): they are read
            and flipped across rank threads, which is a data race under
            TSan and the deterministic scheduler. Use std::atomic with
            explicit memory order (see h5::g_kernel_mode), or guard the
            state with a mutex. const/constexpr and thread_local globals
            are exempt — they are not shared mutable state.
raw-step-index
            the stream-facing public headers (src/lowfive/stream/*.hpp)
            must not declare step indices as raw integers (`int step`,
            `std::uint64_t next_step`, ...): a bare integer silently
            mixes step versions with ranks, sizes, and counts. Use the
            typed stream::StepId, whose ordering and "none" sentinel
            carry the protocol semantics; raw integers belong only at
            the wire-serialization boundary inside .cpp files.
tsan-supp   every suppression in scripts/tsan.supp must carry a
            `# matches: <regex>` annotation on the line directly above,
            and the regex must still match something under src/. A
            suppression is a standing claim that specific code is
            TSan-clean for a library-artifact reason; once the code it
            points at is gone, the suppression is a blanket mute that
            would swallow real races in whatever matches the symbol
            next. The annotation keeps each suppression anchored to the
            code that justifies it.

A finding is suppressed by `// lint: allow-<rule>(<reason>)` on the same
line or the line directly above; the reason is mandatory and should say
why this occurrence is sound, not what the code does.

Exit status: 0 clean, 1 findings, 2 usage/IO error.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SOURCE_GLOBS = ("*.cpp", "*.hpp")

TMP_PATH = re.compile(r'"/tmp')
RAW_SLEEP = re.compile(r"\b(?:sleep_for|sleep_until|usleep|::sleep)\s*\(")
BARE_WAIT = re.compile(r"\b\w*cv\w*\.wait(?:_for|_until)?\s*\(")
SCHED_AWARE = re.compile(r"\bCoopLock\b|\bcoop_wait\b|\bScheduler\b")
# a file-scope scalar with the g_ naming convention, declared without
# std::atomic / a const qualifier / thread_local on the same line
NON_ATOMIC_TOGGLE = re.compile(
    r"^\s*(?:(?:static|inline)\s+)*"
    r"(?:bool|char|short|int|long(?:\s+long)?|unsigned(?:\s+(?:char|short|int|long))?"
    r"|float|double|std::(?:u?int\d+_t|size_t|ptrdiff_t))\s+"
    r"g_\w+"
)
TOGGLE_EXEMPT = re.compile(r"\bconst\b|\bconstexpr\b|\bthread_local\b|\batomic\b")
# an integer-typed declaration whose identifier names a step — the typed
# StepId (step.hpp) is the only sanctioned spelling in public headers
RAW_STEP_INDEX = re.compile(
    r"\b(?:int|long(?:\s+long)?|unsigned(?:\s+(?:char|short|int|long))?"
    r"|std::(?:u?int\d+_t|size_t|ptrdiff_t))\s+"
    r"\w*[Ss]tep\w*\s*[;,)=({\[]"
)
ALLOW = re.compile(r"//\s*lint:\s*allow-([a-z-]+)\(([^)]+)\)")


def iter_sources(root):
    for pattern in SOURCE_GLOBS:
        yield from sorted(root.rglob(pattern))


def allowed(rule, line, prev_line):
    for text in (line, prev_line):
        m = ALLOW.search(text)
        if m and m.group(1) == rule and m.group(2).strip():
            return True
    return False


def match_non_atomic_toggle(code):
    return NON_ATOMIC_TOGGLE.search(code) and not TOGGLE_EXEMPT.search(code)


def scan_file(path, rules):
    findings = []
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    for i, line in enumerate(lines):
        prev = lines[i - 1] if i else ""
        code = line.split("//", 1)[0]  # patterns never fire on comment text
        for rule, matcher in rules:
            if matcher(code) and not allowed(rule, line, prev):
                findings.append((path, i + 1, rule, line.strip()))
    return findings


def audit_tsan_supp():
    """Check scripts/tsan.supp: each suppression needs a live anchor.

    A suppression line (``race:_Sp_atomic``) must be directly preceded by
    ``# matches: <regex>``, and that regex must match at least one source
    line under src/ — proof the code the suppression excuses still
    exists. Returns findings in the same shape as scan_file().
    """
    supp = REPO / "scripts" / "tsan.supp"
    if not supp.exists():
        return []
    findings = []
    src_text = "\n".join(
        p.read_text(encoding="utf-8", errors="replace")
        for p in iter_sources(REPO / "src"))
    lines = supp.read_text(encoding="utf-8", errors="replace").splitlines()
    for i, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue  # comments and blanks are not suppressions
        prev = lines[i - 1].strip() if i else ""
        m = re.match(r"#\s*matches:\s*(.+)", prev)
        if not m:
            findings.append((supp, i + 1, "tsan-supp",
                             f"{stripped}  (missing '# matches: <regex>' "
                             "annotation on the preceding line)"))
            continue
        pattern = m.group(1).strip()
        try:
            anchored = re.search(re.escape(pattern), src_text) or \
                       re.search(pattern, src_text)
        except re.error as err:
            findings.append((supp, i, "tsan-supp",
                             f"{stripped}  (bad annotation regex: {err})"))
            continue
        if not anchored:
            findings.append((supp, i + 1, "tsan-supp",
                             f"{stripped}  (annotation regex '{pattern}' matches "
                             "nothing under src/ — the code this suppression "
                             "excuses is gone; delete the suppression)"))
    return findings


def main():
    findings = []

    for path in iter_sources(REPO / "tests"):
        findings += scan_file(path, [("tmp-path", TMP_PATH.search)])

    for path in iter_sources(REPO / "src"):
        rules = [("raw-sleep", RAW_SLEEP.search),
                 ("non-atomic-toggle", match_non_atomic_toggle)]
        if SCHED_AWARE.search(path.read_text(encoding="utf-8", errors="replace")):
            rules.append(("bare-wait", BARE_WAIT.search))
        findings += scan_file(path, rules)

    for path in iter_sources(REPO / "src" / "lowfive" / "stream"):
        if path.suffix == ".hpp":
            findings += scan_file(path, [("raw-step-index", RAW_STEP_INDEX.search)])

    findings += audit_tsan_supp()

    for path, lineno, rule, line in findings:
        rel = path.relative_to(REPO)
        print(f"{rel}:{lineno}: [{rule}] {line}")

    if findings:
        print(f"lint.py: {len(findings)} finding(s); suppress a false positive with "
              "'// lint: allow-<rule>(reason)'", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
