#!/usr/bin/env bash
# Local mirror of the CI pipeline (.github/workflows/ci.yml):
# tier-1 verify (configure + build + full ctest) followed by the
# ThreadSanitizer tree over the concurrency-sensitive suites.
#
#   scripts/ci.sh
#
# This is just check.sh with the sanitizer tree always on; kept as a
# separate entry point so "run what CI runs" stays a one-liner.
set -euo pipefail

cd "$(dirname "$0")/.."

exec scripts/check.sh --tsan
