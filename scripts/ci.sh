#!/usr/bin/env bash
# Local mirror of the CI pipeline (.github/workflows/ci.yml):
# tier-1 verify (configure + build + full ctest) followed by the
# ThreadSanitizer tree over the concurrency-sensitive suites, then the
# deep MVCC schedule sweep that CI runs on every push.
#
#   scripts/ci.sh
#
# This is check.sh --tsan plus the CI-depth mh5sched sweep of the MVCC
# concurrency battery; kept as a separate entry point so "run what CI
# runs" stays a one-liner.
set -euo pipefail

cd "$(dirname "$0")/.."

scripts/check.sh --tsan

jobs=$(nproc 2>/dev/null || echo 2)

# MVCC snapshot-index deep sweep: 100 random + 100 pct seeded schedules
# over the whole concurrency battery (versioned pins racing publish/GC,
# defer-until-published replay, bounded-snapshot streaming). check.sh
# runs 5 seeds per policy as a smoke; this is the CI-depth soak.
echo "== MVCC schedule sweep (mh5sched, 200 seeds) =="
./build/tools/mh5sched --seeds 1:100 --timeout 120 --jobs "$jobs" --check --race \
    -- ./build/tests/test_mvcc --gtest_brief=1
./build/tools/mh5sched --seeds 1:100 --policy pct --depth 3 --timeout 120 --jobs "$jobs" --check --race \
    -- ./build/tests/test_mvcc --gtest_brief=1

echo "ci.sh: all green"
