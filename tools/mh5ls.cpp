/// mh5ls — list the contents of a MiniH5 file (the h5ls analogue).
///
///   mh5ls [-r] [-a] FILE [PATH]
///     -r  recurse into groups (default: one level)
///     -a  show attributes
///
/// Exit status: 0 on success, 1 on usage or I/O errors.

#include <h5/h5.hpp>

#include <cstdio>
#include <cstring>
#include <string>

namespace {

void print_attributes(const h5::NodeRef& node, const std::string& indent) {
    for (const auto& name : node.attributes())
        std::printf("%s  @%s\n", indent.c_str(), name.c_str());
}

std::string describe_space(const h5::Dataspace& sp) {
    std::string s = "{";
    for (std::size_t i = 0; i < sp.dims().size(); ++i) {
        s += std::to_string(sp.dims()[i]);
        if (i + 1 < sp.dims().size()) s += ", ";
    }
    return s + "}";
}

void list_node(const h5::NodeRef& node, const std::string& prefix, bool recurse, bool attrs,
               const std::string& indent) {
    for (const auto& child : node.children()) {
        std::string path = prefix.empty() ? child : prefix + "/" + child;
        // a child is a dataset iff opening it as one succeeds
        bool is_dataset = false;
        try {
            auto d = node.open_dataset(child);
            std::printf("%s%-24s Dataset %s %s\n", indent.c_str(), child.c_str(),
                        describe_space(d.space()).c_str(), d.type().str().c_str());
            if (attrs) print_attributes(d, indent);
            is_dataset = true;
        } catch (const h5::Error&) {
        }
        if (is_dataset) continue;

        auto g = node.open_group(child);
        std::printf("%s%-24s Group\n", indent.c_str(), child.c_str());
        if (attrs) print_attributes(g, indent);
        if (recurse) list_node(g, path, recurse, attrs, indent + "    ");
    }
}

} // namespace

int main(int argc, char** argv) {
    bool        recurse = false, attrs = false;
    std::string file, path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-r") == 0)
            recurse = true;
        else if (std::strcmp(argv[i], "-a") == 0)
            attrs = true;
        else if (file.empty())
            file = argv[i];
        else
            path = argv[i];
    }
    if (file.empty()) {
        std::fprintf(stderr, "usage: mh5ls [-r] [-a] FILE [PATH]\n");
        return 1;
    }

    try {
        auto     vol = std::make_shared<h5::NativeVol>();
        h5::File f   = h5::File::open(file, vol);
        if (attrs) print_attributes(f, "");
        if (path.empty()) {
            list_node(f, "", recurse, attrs, "");
        } else {
            auto g = f.open_group(path);
            list_node(g, path, recurse, attrs, "");
        }
        f.close();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mh5ls: %s\n", e.what());
        return 1;
    }
    return 0;
}
