/// mh5sched: schedule explorer for the deterministic simmpi scheduler.
///
/// Runs a test binary once per seed with L5_SCHED set, so every run
/// explores a different (but exactly reproducible) thread interleaving.
/// Failing seeds are reported with a copy-pasteable repro line; the exit
/// status is nonzero when any seed failed, so the tool drops straight
/// into CI jobs and check.sh sweeps.
///
///   mh5sched --seeds 1:200 -- ./tests/test_dist_vol --gtest_brief=1
///   mh5sched --seeds 1:50 --policy pct --depth 3 -- ./tests/test_fault_injection
///
/// Options:
///   --seeds A:B   inclusive seed range to sweep (default 1:20)
///   --policy P    random | pct (default random)
///   --depth K     pct priority-change points (default 3)
///   --horizon H   forced-change horizon in scheduler steps (default: unset)
///   --timeout S   per-run timeout in seconds, enforced with timeout(1)
///                 (default 120; a timed-out run reports as HANG)
///   --jobs N      seeds to run concurrently (default 1); every seed runs
///                 in its own scratch directory, so parallel runs cannot
///                 collide on the files a test binary writes
///   --keep-going  sweep all seeds even after a failure (default: stop
///                 after the first failing seed per worker)
///   --check       arm the MPI-semantics checker (L5_CHECK=1) in every
///                 run, so each explored schedule is also audited for
///                 wildcard races, collective mismatches, and leaks
///   --race        arm the predictive race/lock-order detector
///                 (L5_RACE=report) in every run; per-seed reports are
///                 aggregated, deduplicated by access-site pair, and
///                 printed with the first seed's repro line. Any finding
///                 makes the sweep exit nonzero.

#include <limits.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Options {
    std::uint64_t seed_lo    = 1;
    std::uint64_t seed_hi    = 20;
    std::string   policy     = "random";
    int           depth      = 3;
    long          horizon    = 0; // 0: leave the scheduler default
    long          timeout_s  = 120;
    int           jobs       = 1;
    bool          keep_going = false;
    bool          check      = false;
    bool          race       = false;
    std::vector<std::string> cmd;
};

int usage() {
    std::fprintf(stderr,
                 "usage: mh5sched [--seeds A:B] [--policy random|pct] [--depth K] "
                 "[--horizon H] [--timeout S] [--jobs N] [--keep-going] [--check] "
                 "[--race] -- cmd args...\n");
    return 2;
}

/// Single-quote a word for POSIX sh so the child command survives
/// std::system intact ( ' -> '\'' ).
std::string shell_quote(const std::string& s) {
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

std::string sched_value(const Options& opt, std::uint64_t seed) {
    std::string v = "seed=" + std::to_string(seed) + ",policy=" + opt.policy;
    if (opt.policy == "pct") v += ",depth=" + std::to_string(opt.depth);
    if (opt.horizon > 0) v += ",horizon=" + std::to_string(opt.horizon);
    return v;
}

struct Failure {
    std::uint64_t seed;
    int           exit_code; ///< 124 from timeout(1) means a hang
    std::string   repro;
};

/// One deduplicated l5race finding across the sweep: the same site pair
/// predicted racy under many seeds is reported once, with the count and
/// the first seed's repro line.
struct RaceFinding {
    std::string   kind;
    std::string   site_a;
    std::string   site_b;
    std::string   message;
    std::string   repro; ///< first seed's schedule repro from the report
    std::uint64_t first_seed = 0;
    std::uint64_t count      = 0;
};

} // namespace

int main(int argc, char** argv) {
    Options opt;

    int i = 1;
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (arg == "--") {
            ++i;
            break;
        } else if (arg == "--seeds") {
            const char* v = next();
            if (!v) return usage();
            char* colon = nullptr;
            opt.seed_lo = std::strtoull(v, &colon, 10);
            if (!colon || *colon != ':') return usage();
            opt.seed_hi = std::strtoull(colon + 1, nullptr, 10);
            if (opt.seed_hi < opt.seed_lo) return usage();
        } else if (arg == "--policy") {
            const char* v = next();
            if (!v || (std::string(v) != "random" && std::string(v) != "pct")) return usage();
            opt.policy = v;
        } else if (arg == "--depth") {
            const char* v = next();
            if (!v) return usage();
            opt.depth = std::atoi(v);
        } else if (arg == "--horizon") {
            const char* v = next();
            if (!v) return usage();
            opt.horizon = std::atol(v);
        } else if (arg == "--timeout") {
            const char* v = next();
            if (!v) return usage();
            opt.timeout_s = std::atol(v);
        } else if (arg == "--jobs") {
            const char* v = next();
            if (!v) return usage();
            opt.jobs = std::atoi(v);
            if (opt.jobs < 1) opt.jobs = 1;
        } else if (arg == "--keep-going") {
            opt.keep_going = true;
        } else if (arg == "--check") {
            opt.check = true;
        } else if (arg == "--race") {
            opt.race = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else {
            return usage();
        }
    }
    for (; i < argc; ++i) opt.cmd.emplace_back(argv[i]);
    if (opt.cmd.empty()) return usage();

    // each seed runs in a scratch directory, so a relative binary path
    // must be absolutized before the child's cd
    if (opt.cmd[0].find('/') != std::string::npos && opt.cmd[0][0] != '/') {
        char resolved[PATH_MAX];
        if (realpath(opt.cmd[0].c_str(), resolved)) opt.cmd[0] = resolved;
    }

    std::string quoted_cmd;
    for (const auto& word : opt.cmd) {
        if (!quoted_cmd.empty()) quoted_cmd += ' ';
        quoted_cmd += shell_quote(word);
    }

    const std::uint64_t n_seeds = opt.seed_hi - opt.seed_lo + 1;
    std::printf("mh5sched: sweeping %llu seeds (%llu:%llu, policy=%s%s%s) over: %s\n",
                static_cast<unsigned long long>(n_seeds),
                static_cast<unsigned long long>(opt.seed_lo),
                static_cast<unsigned long long>(opt.seed_hi), opt.policy.c_str(),
                opt.check ? ", check" : "", opt.race ? ", race" : "", quoted_cmd.c_str());
    std::fflush(stdout);

    std::atomic<std::uint64_t> next_seed{opt.seed_lo};
    std::atomic<bool>          stop{false};
    std::mutex                 report_mutex;
    std::vector<Failure>       failures;
    std::map<std::string, RaceFinding> races; ///< keyed by kind + site pair
    std::atomic<std::uint64_t> n_run{0};

    auto worker = [&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const std::uint64_t seed = next_seed.fetch_add(1, std::memory_order_relaxed);
            if (seed > opt.seed_hi) return;
            const std::string sched = sched_value(opt, seed);
            // per-seed scratch directory: tests write files relative to
            // their cwd, and parallel sweeps must not share those
            const std::string dir = "/tmp/mh5sched." + std::to_string(getpid()) + "."
                                    + std::to_string(seed);
            const std::string report_path = dir + "/l5race.report";
            const std::string check_env   = opt.check ? "L5_CHECK=1 " : "";
            const std::string race_env =
                opt.race ? "L5_RACE=report L5_RACE_OUT=" + shell_quote(report_path) + " " : "";
            // the scratch dir is removed here (not in the shell) so the
            // race report can be harvested after the child exits
            const std::string full = "mkdir -p " + shell_quote(dir) + " && cd " + shell_quote(dir)
                                     + " && env " + check_env + race_env
                                     + "L5_SCHED=" + shell_quote(sched)
                                     + " timeout " + std::to_string(opt.timeout_s) + " "
                                     + quoted_cmd + " >/dev/null 2>&1";
            const int rc   = std::system(full.c_str());
            const int code = (rc == -1) ? -1 : WEXITSTATUS(rc);
            n_run.fetch_add(1, std::memory_order_relaxed);
            if (opt.race) {
                // harvest the per-seed report: tab-separated
                // kind, site_a, site_b, message, repro — one finding per
                // line. A missing file means the run died before the
                // detector finalized (that failure is reported below).
                std::ifstream in(report_path);
                std::string   line;
                while (in && std::getline(in, line)) {
                    std::vector<std::string> f;
                    std::size_t              pos = 0;
                    while (f.size() < 4) {
                        const auto tab = line.find('\t', pos);
                        if (tab == std::string::npos) break;
                        f.push_back(line.substr(pos, tab - pos));
                        pos = tab + 1;
                    }
                    if (f.size() < 4) continue; // malformed line
                    f.push_back(line.substr(pos));
                    const std::string key = f[0] + '\x1f' + f[1] + '\x1f' + f[2];
                    std::lock_guard<std::mutex> lock(report_mutex);
                    auto [it, fresh] = races.try_emplace(key);
                    if (fresh) {
                        it->second = {f[0], f[1], f[2], f[3], f[4], seed, 1};
                    } else {
                        ++it->second.count;
                        if (seed < it->second.first_seed) it->second.first_seed = seed;
                    }
                }
            }
            std::error_code ec;
            std::filesystem::remove_all(dir, ec); // best-effort scratch cleanup
            if (code != 0) {
                std::lock_guard<std::mutex> lock(report_mutex);
                std::string repro = (opt.check ? std::string("L5_CHECK=1 ") : std::string())
                                    + (opt.race ? std::string("L5_RACE=1 ") : std::string())
                                    + "L5_SCHED=" + shell_quote(sched) + " " + quoted_cmd;
                std::printf("mh5sched: seed %llu %s (exit %d)\n  repro: %s\n",
                            static_cast<unsigned long long>(seed),
                            code == 124 ? "HANG (timeout)" : "FAILED", code, repro.c_str());
                std::fflush(stdout);
                failures.push_back({seed, code, std::move(repro)});
                if (!opt.keep_going) stop.store(true, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::thread> threads;
    const int n_workers = static_cast<int>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(opt.jobs), n_seeds));
    threads.reserve(static_cast<std::size_t>(n_workers));
    for (int w = 0; w < n_workers; ++w) threads.emplace_back(worker);
    for (auto& t : threads) t.join();

    if (!races.empty()) {
        std::printf("mh5sched: %zu distinct race/lock-order finding(s) across the sweep:\n",
                    races.size());
        for (const auto& [key, f] : races) {
            std::printf("  [%s] %s  vs  %s (seen in %llu seed(s), first %llu)\n    %s\n",
                        f.kind.c_str(), f.site_a.c_str(), f.site_b.c_str(),
                        static_cast<unsigned long long>(f.count),
                        static_cast<unsigned long long>(f.first_seed), f.message.c_str());
            if (!f.repro.empty()) std::printf("    %s\n", f.repro.c_str());
            std::printf("    rerun: L5_RACE=1 L5_SCHED=%s %s\n",
                        shell_quote(sched_value(opt, f.first_seed)).c_str(), quoted_cmd.c_str());
        }
    }
    std::printf("mh5sched: %llu/%llu seeds run, %zu failing%s\n",
                static_cast<unsigned long long>(n_run.load()),
                static_cast<unsigned long long>(n_seeds), failures.size(),
                races.empty() ? "" : ", race findings present");
    return failures.empty() && races.empty() ? 0 : 1;
}
