/// mh5dump — print the values of a MiniH5 dataset (the h5dump analogue).
///
///   mh5dump [-n LIMIT] FILE DATASET
///     -n LIMIT  print at most LIMIT elements (default 64; 0 = all)
///
/// Atomic element values are printed one per line with their row-major
/// index; compound elements are printed member by member.

#include <h5/h5.hpp>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

void print_atomic(const h5::Datatype& t, const std::byte* p) {
    switch (t.type_class()) {
    case h5::TypeClass::Int: {
        std::int64_t v = 0;
        if (t.size() == 1) v = *reinterpret_cast<const std::int8_t*>(p);
        if (t.size() == 2) v = *reinterpret_cast<const std::int16_t*>(p);
        if (t.size() == 4) v = *reinterpret_cast<const std::int32_t*>(p);
        if (t.size() == 8) v = *reinterpret_cast<const std::int64_t*>(p);
        std::printf("%lld", static_cast<long long>(v));
        break;
    }
    case h5::TypeClass::UInt: {
        std::uint64_t v = 0;
        if (t.size() == 1) v = *reinterpret_cast<const std::uint8_t*>(p);
        if (t.size() == 2) v = *reinterpret_cast<const std::uint16_t*>(p);
        if (t.size() == 4) v = *reinterpret_cast<const std::uint32_t*>(p);
        if (t.size() == 8) v = *reinterpret_cast<const std::uint64_t*>(p);
        std::printf("%llu", static_cast<unsigned long long>(v));
        break;
    }
    case h5::TypeClass::Float:
        if (t.size() == 4)
            std::printf("%g", static_cast<double>(*reinterpret_cast<const float*>(p)));
        else
            std::printf("%g", *reinterpret_cast<const double*>(p));
        break;
    case h5::TypeClass::Compound:
        std::printf("{");
        for (std::size_t m = 0; m < t.n_members(); ++m) {
            std::printf("%s%s=", m ? ", " : "", t.member_name(m).c_str());
            print_atomic(t.member_type(m), p + t.member_offset(m));
        }
        std::printf("}");
        break;
    }
}

} // namespace

int main(int argc, char** argv) {
    std::uint64_t limit = 64;
    std::string   file, dset;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-n") == 0 && i + 1 < argc) {
            limit = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (file.empty()) {
            file = argv[i];
        } else {
            dset = argv[i];
        }
    }
    if (file.empty() || dset.empty()) {
        std::fprintf(stderr, "usage: mh5dump [-n LIMIT] FILE DATASET\n");
        return 1;
    }

    try {
        auto     vol = std::make_shared<h5::NativeVol>();
        h5::File f   = h5::File::open(file, vol);
        auto     d   = f.open_dataset(dset);
        auto     t   = d.type();
        auto     sp  = d.space();

        std::printf("DATASET \"%s\"  type %s  space %s (%llu elements)\n", dset.c_str(),
                    t.str().c_str(), sp.str().c_str(),
                    static_cast<unsigned long long>(sp.extent_npoints()));

        std::uint64_t n = sp.extent_npoints();
        if (limit > 0) n = std::min(n, limit);
        if (n == 0) {
            f.close();
            return 0;
        }

        std::vector<std::byte> data(sp.extent_npoints() * t.size());
        d.read(data.data());
        for (std::uint64_t i = 0; i < n; ++i) {
            std::printf("  [%llu] ", static_cast<unsigned long long>(i));
            print_atomic(t, data.data() + i * t.size());
            std::printf("\n");
        }
        if (n < sp.extent_npoints())
            std::printf("  ... (%llu more)\n",
                        static_cast<unsigned long long>(sp.extent_npoints() - n));
        f.close();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mh5dump: %s\n", e.what());
        return 1;
    }
    return 0;
}
