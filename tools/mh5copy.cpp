/// mh5copy — copy an object (dataset or group subtree) between MiniH5
/// files (the h5copy analogue).
///
///   mh5copy SRC_FILE SRC_PATH DST_FILE DST_PATH
///
/// The destination file is created if missing, opened and rewritten
/// otherwise (its existing content is preserved by copying it forward).

#include <h5/copy.hpp>
#include <h5/h5.hpp>

#include <cstdio>
#include <filesystem>
#include <string>

int main(int argc, char** argv) {
    if (argc != 5) {
        std::fprintf(stderr, "usage: mh5copy SRC_FILE SRC_PATH DST_FILE DST_PATH\n");
        return 1;
    }
    const std::string src_file = argv[1], src_path = argv[2];
    const std::string dst_file = argv[3], dst_path = argv[4];

    try {
        auto     vol = std::make_shared<h5::NativeVol>();
        h5::File src = h5::File::open(src_file, vol);

        // our native files are written on close, so "append" = copy the
        // existing destination forward into a fresh file first
        h5::File dst = h5::File::create(dst_file + ".tmp", vol);
        if (std::filesystem::exists(dst_file)) {
            h5::File old = h5::File::open(dst_file, vol);
            for (const auto& child : old.children()) h5::copy_object(old, child, dst, child);
            old.close();
        }
        h5::copy_object(src, src_path, dst, dst_path);
        src.close();
        dst.close();
        std::filesystem::rename(dst_file + ".tmp", dst_file);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mh5copy: %s\n", e.what());
        std::filesystem::remove(dst_file + ".tmp");
        return 1;
    }
    return 0;
}
