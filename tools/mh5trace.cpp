/// mh5trace: merge, filter, and summarize Chrome trace-event JSON files
/// produced by the telemetry subsystem (obs::write_chrome_trace / the
/// L5_TRACE workflow hook).
///
///   mh5trace trace.json                     per-phase summary table
///   mh5trace -o merged.json a.json b.json   merge into one Chrome trace
///                                           (each input gets its own pid)
///   mh5trace -c lowfive -r 8 trace.json     filter by category / rank
///
/// Options:
///   -o FILE     write the merged/filtered Chrome trace JSON to FILE
///               (default: print a per-phase summary instead)
///   -c CAT      keep only events of this category (repeatable)
///   -n SUBSTR   keep only events whose name contains SUBSTR (repeatable)
///   -r RANK     keep only this rank lane (repeatable)
///   -s          also print the summary when -o is given
///   --steps     print the streaming step lifecycle instead: every
///               (stream, step) pair's publish->drain latency (first
///               publish to last drain across ranks), eviction marks,
///               and a per-stream published/drained/dropped summary;
///               also prints MVCC snapshot lifetimes — every
///               (file, version) pair's publish->GC span from the
///               mvcc.publish / mvcc.gc instants, with versions still
///               live at the end of the trace flagged

#include <obs/json.hpp>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

using obs::json::Value;

struct Filter {
    std::vector<std::string> cats;
    std::vector<std::string> names;
    std::vector<int>         ranks;

    bool keep(const Value& ev) const {
        const Value* ph = ev.find("ph");
        if (ph && ph->is_string() && ph->str() == "M") return true; // metadata
        if (!cats.empty()) {
            const Value* cat = ev.find("cat");
            if (!cat || !cat->is_string()
                || std::find(cats.begin(), cats.end(), cat->str()) == cats.end())
                return false;
        }
        if (!names.empty()) {
            const Value* name = ev.find("name");
            if (!name || !name->is_string()) return false;
            bool any = false;
            for (const auto& n : names)
                if (name->str().find(n) != std::string::npos) any = true;
            if (!any) return false;
        }
        if (!ranks.empty()) {
            const Value* tid = ev.find("tid");
            if (!tid || !tid->is_number()
                || std::find(ranks.begin(), ranks.end(), static_cast<int>(tid->number()))
                       == ranks.end())
                return false;
        }
        return true;
    }
};

Value load_trace(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("mh5trace: cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    Value doc = Value::parse(ss.str());
    if (!doc.find("traceEvents"))
        throw std::runtime_error("mh5trace: " + path + " has no traceEvents array");
    return doc;
}

/// Aggregate per span name: count, total time inside Begin/End pairs
/// (paired LIFO per (pid, tid) lane), and the sum of "bytes" args.
struct Phase {
    std::uint64_t count    = 0;
    double        total_us = 0;
    std::uint64_t bytes    = 0;
};

std::uint64_t bytes_arg(const Value& ev) {
    const Value* args = ev.find("args");
    if (!args) return 0;
    const Value* b = args->find("bytes");
    return b && b->is_number() ? static_cast<std::uint64_t>(b->number()) : 0;
}

std::map<std::string, Phase> summarize(const std::vector<Value>& events) {
    struct Open {
        std::string name;
        double      ts;
        std::uint64_t bytes;
    };
    std::map<std::pair<int, int>, std::vector<Open>> stacks;
    std::map<std::string, Phase>                     phases;

    for (const auto& ev : events) {
        const Value* ph   = ev.find("ph");
        const Value* name = ev.find("name");
        const Value* ts   = ev.find("ts");
        if (!ph || !ph->is_string() || !name || !name->is_string()) continue;
        const Value* pid  = ev.find("pid");
        const Value* tid  = ev.find("tid");
        std::pair<int, int> lane{pid && pid->is_number() ? static_cast<int>(pid->number()) : 0,
                                 tid && tid->is_number() ? static_cast<int>(tid->number()) : 0};
        const std::string& p = ph->str();
        if (p == "B") {
            stacks[lane].push_back({name->str(), ts ? ts->number() : 0, bytes_arg(ev)});
        } else if (p == "E") {
            auto& stack = stacks[lane];
            // LIFO pairing; tolerate orphan Ends
            for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
                if (it->name != name->str()) continue;
                auto& phase = phases[it->name];
                phase.count++;
                phase.total_us += (ts ? ts->number() : 0) - it->ts;
                phase.bytes += it->bytes + bytes_arg(ev);
                stack.erase(std::next(it).base());
                break;
            }
        } else if (p == "i" || p == "I") {
            auto& phase = phases[name->str()];
            phase.count++;
            phase.bytes += bytes_arg(ev);
        }
    }
    return phases;
}

/// Lifecycle of one (stream, step): the step protocol emits
/// stream.publish / stream.drain / stream.drop instants per producer
/// rank; the lifecycle spans first publish to last drain across ranks.
struct StepLife {
    double        first_publish_us = -1;
    double        last_drain_us    = -1;
    std::uint64_t publishes        = 0;
    std::uint64_t drains           = 0;
    std::uint64_t drops            = 0;
};

std::map<std::pair<std::string, std::uint64_t>, StepLife>
summarize_steps(const std::vector<Value>& events) {
    std::map<std::pair<std::string, std::uint64_t>, StepLife> steps;
    for (const auto& ev : events) {
        const Value* ph   = ev.find("ph");
        const Value* name = ev.find("name");
        const Value* ts   = ev.find("ts");
        const Value* args = ev.find("args");
        if (!ph || !ph->is_string() || (ph->str() != "i" && ph->str() != "I")) continue;
        if (!name || !name->is_string() || name->str().rfind("stream.", 0) != 0) continue;
        if (!args) continue;
        const Value* stream = args->find("stream");
        const Value* step   = args->find("step");
        if (!stream || !stream->is_string() || !step || !step->is_number()) continue;
        auto& life = steps[{stream->str(), static_cast<std::uint64_t>(step->number())}];
        const double t = ts && ts->is_number() ? ts->number() : 0;
        if (name->str() == "stream.publish") {
            if (!life.publishes || t < life.first_publish_us) life.first_publish_us = t;
            life.publishes++;
        } else if (name->str() == "stream.drain") {
            if (!life.drains || t > life.last_drain_us) life.last_drain_us = t;
            life.drains++;
        } else if (name->str() == "stream.drop") {
            life.drops++;
        }
    }
    return steps;
}

void print_steps(const std::map<std::pair<std::string, std::uint64_t>, StepLife>& steps) {
    if (steps.empty()) {
        std::printf("no streaming step events (stream.publish/drain/drop instants)\n");
        return;
    }
    std::printf("%-24s %8s %14s %14s %14s\n", "stream", "step", "publish(ms)", "drain(ms)",
                "latency(ms)");
    struct Agg {
        std::uint64_t published = 0, drained = 0, dropped = 0;
        double        min_ms = 0, max_ms = 0, total_ms = 0;
    };
    std::map<std::string, Agg> per_stream;
    for (const auto& [key, life] : steps) {
        auto& agg = per_stream[key.first];
        if (life.publishes) agg.published++;
        if (life.drops) agg.dropped++;
        if (life.drains) {
            const double lat_ms = (life.last_drain_us - life.first_publish_us) / 1000.0;
            agg.drained++;
            agg.total_ms += lat_ms;
            if (agg.drained == 1 || lat_ms < agg.min_ms) agg.min_ms = lat_ms;
            if (agg.drained == 1 || lat_ms > agg.max_ms) agg.max_ms = lat_ms;
            std::printf("%-24s %8llu %14.3f %14.3f %14.3f\n", key.first.c_str(),
                        static_cast<unsigned long long>(key.second),
                        life.first_publish_us / 1000.0, life.last_drain_us / 1000.0, lat_ms);
        } else {
            std::printf("%-24s %8llu %14.3f %14s %14s\n", key.first.c_str(),
                        static_cast<unsigned long long>(key.second),
                        life.first_publish_us / 1000.0, "-",
                        life.drops ? "dropped" : "undrained");
        }
    }
    for (const auto& [name, agg] : per_stream)
        std::printf("%s: published %llu, drained %llu, dropped %llu, "
                    "latency min/mean/max %.3f/%.3f/%.3f ms\n",
                    name.c_str(), static_cast<unsigned long long>(agg.published),
                    static_cast<unsigned long long>(agg.drained),
                    static_cast<unsigned long long>(agg.dropped), agg.min_ms,
                    agg.drained ? agg.total_ms / static_cast<double>(agg.drained) : 0.0,
                    agg.max_ms);
}

/// Lifecycle of one MVCC snapshot (file, version): the store emits
/// mvcc.publish / mvcc.gc instants per rank; the lifetime spans first
/// publish to last GC across ranks. A version with fewer GCs than
/// publishes is still live somewhere at the end of the trace.
struct SnapLife {
    double        first_publish_us = 0;
    double        last_gc_us       = 0;
    std::uint64_t publishes        = 0;
    std::uint64_t gcs              = 0;
};

std::map<std::pair<std::string, std::uint64_t>, SnapLife>
summarize_snapshots(const std::vector<Value>& events) {
    std::map<std::pair<std::string, std::uint64_t>, SnapLife> snaps;
    for (const auto& ev : events) {
        const Value* ph   = ev.find("ph");
        const Value* name = ev.find("name");
        const Value* ts   = ev.find("ts");
        const Value* args = ev.find("args");
        if (!ph || !ph->is_string() || (ph->str() != "i" && ph->str() != "I")) continue;
        if (!name || !name->is_string() || name->str().rfind("mvcc.", 0) != 0) continue;
        if (!args) continue;
        const Value* file    = args->find("file");
        const Value* version = args->find("version");
        if (!file || !file->is_string() || !version || !version->is_number()) continue;
        auto& life = snaps[{file->str(), static_cast<std::uint64_t>(version->number())}];
        const double t = ts && ts->is_number() ? ts->number() : 0;
        if (name->str() == "mvcc.publish") {
            if (!life.publishes || t < life.first_publish_us) life.first_publish_us = t;
            life.publishes++;
        } else if (name->str() == "mvcc.gc") {
            if (!life.gcs || t > life.last_gc_us) life.last_gc_us = t;
            life.gcs++;
        }
    }
    return snaps;
}

void print_snapshots(const std::map<std::pair<std::string, std::uint64_t>, SnapLife>& snaps) {
    if (snaps.empty()) {
        std::printf("no MVCC snapshot events (mvcc.publish/gc instants)\n");
        return;
    }
    std::printf("%-24s %8s %14s %14s %14s\n", "file", "version", "publish(ms)", "gc(ms)",
                "lifetime(ms)");
    struct Agg {
        std::uint64_t published = 0, collected = 0, live = 0;
        double        total_ms = 0;
    };
    std::map<std::string, Agg> per_file;
    for (const auto& [key, life] : snaps) {
        auto& agg = per_file[key.first];
        agg.published++;
        if (life.gcs >= life.publishes) {
            const double ms = (life.last_gc_us - life.first_publish_us) / 1000.0;
            agg.collected++;
            agg.total_ms += ms;
            std::printf("%-24s %8llu %14.3f %14.3f %14.3f\n", key.first.c_str(),
                        static_cast<unsigned long long>(key.second),
                        life.first_publish_us / 1000.0, life.last_gc_us / 1000.0, ms);
        } else {
            agg.live++;
            std::printf("%-24s %8llu %14.3f %14s %14s\n", key.first.c_str(),
                        static_cast<unsigned long long>(key.second),
                        life.first_publish_us / 1000.0, "-", "live");
        }
    }
    for (const auto& [name, agg] : per_file)
        std::printf("%s: versions published %llu, collected %llu, still live %llu, "
                    "mean lifetime %.3f ms\n",
                    name.c_str(), static_cast<unsigned long long>(agg.published),
                    static_cast<unsigned long long>(agg.collected),
                    static_cast<unsigned long long>(agg.live),
                    agg.collected ? agg.total_ms / static_cast<double>(agg.collected) : 0.0);
}

void print_summary(const std::map<std::string, Phase>& phases) {
    std::printf("%-28s %10s %12s %12s %10s\n", "phase", "count", "total(ms)", "mean(us)", "MiB");
    for (const auto& [name, ph] : phases)
        std::printf("%-28s %10llu %12.3f %12.2f %10.2f\n", name.c_str(),
                    static_cast<unsigned long long>(ph.count), ph.total_us / 1000.0,
                    ph.count ? ph.total_us / static_cast<double>(ph.count) : 0.0,
                    static_cast<double>(ph.bytes) / (1024.0 * 1024.0));
}

int usage() {
    std::fprintf(stderr,
                 "usage: mh5trace [-o out.json] [-c cat]... [-n substr]... [-r rank]... [-s] "
                 "[--steps] trace.json...\n");
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    std::string              out_path;
    bool                     want_summary = false;
    bool                     want_steps   = false;
    Filter                   filter;
    std::vector<std::string> inputs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (arg == "-o") {
            const char* v = next();
            if (!v) return usage();
            out_path = v;
        } else if (arg == "-c") {
            const char* v = next();
            if (!v) return usage();
            filter.cats.emplace_back(v);
        } else if (arg == "-n") {
            const char* v = next();
            if (!v) return usage();
            filter.names.emplace_back(v);
        } else if (arg == "-r") {
            const char* v = next();
            if (!v) return usage();
            filter.ranks.push_back(std::atoi(v));
        } else if (arg == "-s" || arg == "--summary") {
            want_summary = true;
        } else if (arg == "--steps") {
            want_steps = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty()) return usage();
    if (out_path.empty() && !want_steps) want_summary = true;

    try {
        // merge: each input file becomes its own pid so lanes from
        // different runs stay separate in the viewer
        std::vector<Value> merged;
        for (std::size_t f = 0; f < inputs.size(); ++f) {
            Value doc = load_trace(inputs[f]);
            if (inputs.size() > 1) {
                Value meta{obs::json::Object{}};
                meta.set("name", "process_name");
                meta.set("ph", "M");
                meta.set("pid", static_cast<std::uint64_t>(f));
                meta.set("tid", 0);
                Value args{obs::json::Object{}};
                args.set("name", inputs[f]);
                meta.set("args", std::move(args));
                merged.push_back(std::move(meta));
            }
            for (auto& ev : doc.find("traceEvents")->array()) {
                if (!filter.keep(ev)) continue;
                if (inputs.size() > 1) ev.set("pid", static_cast<std::uint64_t>(f));
                merged.push_back(std::move(ev));
            }
        }

        if (!out_path.empty()) {
            Value out{obs::json::Object{}};
            out.set("displayTimeUnit", "ms");
            out.set("traceEvents", Value{obs::json::Array{merged.begin(), merged.end()}});
            std::ofstream os(out_path, std::ios::binary);
            if (!os) throw std::runtime_error("mh5trace: cannot write " + out_path);
            os << out.dump(1) << "\n";
            std::printf("mh5trace: wrote %zu events to %s\n", merged.size(), out_path.c_str());
        }
        if (want_summary) print_summary(summarize(merged));
        if (want_steps) {
            print_steps(summarize_steps(merged));
            print_snapshots(summarize_snapshots(merged));
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return 0;
}
