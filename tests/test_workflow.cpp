#include <workflow/workflow.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>

using namespace workflow;

TEST(WorkflowMode, Factories) {
    EXPECT_TRUE(Mode::in_situ().memory);
    EXPECT_FALSE(Mode::in_situ().passthru);
    EXPECT_FALSE(Mode::file().memory);
    EXPECT_TRUE(Mode::file().passthru);
    EXPECT_TRUE(Mode::both().memory);
    EXPECT_TRUE(Mode::both().passthru);
}

TEST(WorkflowMode, FromEnv) {
    ::setenv("L5_MODE", "file", 1);
    EXPECT_TRUE(Mode::from_env().passthru);
    EXPECT_FALSE(Mode::from_env().memory);
    ::setenv("L5_MODE", "both", 1);
    EXPECT_TRUE(Mode::from_env().memory);
    ::setenv("L5_MODE", "memory", 1);
    EXPECT_TRUE(Mode::from_env().memory);
    EXPECT_FALSE(Mode::from_env().passthru);
    ::setenv("L5_MODE", "bogus", 1);
    EXPECT_THROW(Mode::from_env(), std::runtime_error);
    ::unsetenv("L5_MODE");
    EXPECT_TRUE(Mode::from_env().memory); // default
}

TEST(Workflow, SplitsCommunicatorsPerTask) {
    std::atomic<int> a_ranks{0}, b_ranks{0};
    run(
        {
            {"a", 3,
             [&](Context& ctx) {
                 EXPECT_EQ(ctx.size(), 3);
                 EXPECT_EQ(ctx.world.size(), 5);
                 EXPECT_EQ(ctx.task_index, 0);
                 EXPECT_EQ(ctx.task_name, "a");
                 a_ranks += 1;
             }},
            {"b", 2,
             [&](Context& ctx) {
                 EXPECT_EQ(ctx.size(), 2);
                 EXPECT_EQ(ctx.task_index, 1);
                 b_ranks += 1;
             }},
        },
        {});
    EXPECT_EQ(a_ranks.load(), 3);
    EXPECT_EQ(b_ranks.load(), 2);
}

TEST(Workflow, VolIsWiredPerRank) {
    run(
        {
            {"a", 2, [&](Context& ctx) { EXPECT_NE(ctx.vol, nullptr); }},
            {"b", 1, [&](Context& ctx) { EXPECT_NE(ctx.vol, nullptr); }},
        },
        {Link{0, 1, "*"}});
}

TEST(Workflow, RejectsBadConfigs) {
    EXPECT_THROW(run({{"a", 0, [](Context&) {}}}, {}), std::runtime_error);
    EXPECT_THROW(run({{"a", 1, [](Context&) {}}, {"b", 1, [](Context&) {}}},
                     {Link{0, 5, "*"}}),
                 std::runtime_error);
    EXPECT_THROW(run({{"a", 1, [](Context&) {}}, {"b", 1, [](Context&) {}}},
                     {Link{1, 1, "*"}}), // self-link
                 std::runtime_error);
}

TEST(Workflow, TaskExceptionPropagates) {
    EXPECT_THROW(run(
                     {
                         {"a", 2, [](Context& ctx) { ctx.local.barrier(); }},
                         {"b", 2,
                          [](Context& ctx) {
                              ctx.local.barrier();
                              if (ctx.rank() == 1) throw std::runtime_error("task failure");
                          }},
                     },
                     {}),
                 std::runtime_error);
}

TEST(Workflow, EmptyWorkflowIsNoop) { run({}, {}); }

TEST(Workflow, WorldBarrierSpansTasks) {
    std::atomic<int> before{0};
    run(
        {
            {"a", 2,
             [&](Context& ctx) {
                 before += 1;
                 ctx.world.barrier();
                 EXPECT_EQ(before.load(), 5);
             }},
            {"b", 3,
             [&](Context& ctx) {
                 before += 1;
                 ctx.world.barrier();
                 EXPECT_EQ(before.load(), 5);
             }},
        },
        {});
}
