/// h5::copy_object — H5Ocopy analogue: subtree copies within a file,
/// across files, and across VOLs (in-memory LowFive tree -> physical
/// native file, i.e. a checkpoint path written purely against the public
/// API).

#include <h5/copy.hpp>
#include <lowfive/lowfive.hpp>

#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

using namespace h5;

namespace {

void build_source(File& f) {
    f.write_attribute("version", 2);
    auto g = f.create_group("fields");
    g.write_attribute("dx", 0.5);
    auto d = g.create_dataset("rho", dt::float64(), Dataspace({3, 3}));
    std::vector<double> v(9);
    std::iota(v.begin(), v.end(), 1.0);
    d.write(v.data());
    d.write_attribute("units", 7);
    auto nested = g.create_group("nested");
    auto ids    = nested.create_dataset("ids", dt::uint16(), Dataspace({4}));
    std::uint16_t iv[4] = {9, 8, 7, 6};
    ids.write(iv);
}

} // namespace

TEST(CopyObject, DatasetWithinFile) {
    auto vol = std::make_shared<lowfive::MetadataVol>();
    File f   = File::create("copy1.h5", vol);
    build_source(f);

    copy_object(f, "fields/rho", f, "rho_backup");
    auto v = f.open_dataset("rho_backup").read_vector<double>();
    EXPECT_EQ(v[8], 9.0);
    EXPECT_EQ(f.open_dataset("rho_backup").read_attribute<int>("units"), 7);
}

TEST(CopyObject, GroupSubtreeAcrossFiles) {
    auto vol = std::make_shared<lowfive::MetadataVol>();
    File a   = File::create("copy_a.h5", vol);
    build_source(a);
    File b = File::create("copy_b.h5", vol);

    copy_object(a, "fields", b, "imported");
    EXPECT_TRUE(b.exists("imported/rho"));
    EXPECT_TRUE(b.exists("imported/nested/ids"));
    EXPECT_EQ(b.open_group("imported").read_attribute<double>("dx"), 0.5);
    auto ids = b.open_dataset("imported/nested/ids").read_vector<std::uint16_t>();
    EXPECT_EQ(ids[0], 9);
}

TEST(CopyObject, AcrossVolsCheckpointsMemoryToDisk) {
    auto tmp = (std::filesystem::temp_directory_path() / "copy_ckpt.mh5").string();
    std::filesystem::remove(tmp);
    PfsModel::instance().configure(0, 0, 0);

    // source lives only in memory
    auto mem = std::make_shared<lowfive::MetadataVol>();
    File src = File::create("copy_mem.h5", mem);
    build_source(src);

    {
        auto nat = std::make_shared<NativeVol>();
        File dst = File::create(tmp, nat);
        copy_object(src, "fields", dst, "fields");
        dst.close();
    }
    // read the checkpoint back with a fresh VOL
    auto nat = std::make_shared<NativeVol>();
    File r   = File::open(tmp, nat);
    EXPECT_EQ(r.open_dataset("fields/rho").read_vector<double>()[0], 1.0);
    EXPECT_EQ(r.open_dataset("fields/nested/ids").read_vector<std::uint16_t>()[3], 6);
    r.close();
    std::filesystem::remove(tmp);
}

TEST(CopyObject, MultiComponentDestinationCreatesGroups) {
    auto vol = std::make_shared<lowfive::MetadataVol>();
    File f   = File::create("copy_deep.h5", vol);
    build_source(f);
    copy_object(f, "fields/rho", f, "archive/step0/rho");
    EXPECT_TRUE(f.exists("archive/step0/rho"));
    EXPECT_EQ(f.open_dataset("archive/step0/rho").read_vector<double>()[4], 5.0);
}

TEST(CopyObject, ExistingDestinationRejected) {
    auto vol = std::make_shared<lowfive::MetadataVol>();
    File f   = File::create("copy_dup.h5", vol);
    build_source(f);
    EXPECT_THROW(copy_object(f, "fields/rho", f, "fields"), Error);
}
