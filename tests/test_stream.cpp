/// Step-versioned streaming transport: value-type units (StepId, config,
/// versioned names), the StepWindow state machine, the Checker's
/// step-order lint, and end-to-end Writer/Reader workflows under every
/// backpressure policy — including the deterministic-scheduler proofs
/// that drop/latest_only producers never block on a slow consumer and
/// that block-policy publishes honor deadlines (TimeoutError, not hangs).

#include <check/check.hpp>
#include <lowfive/lowfive.hpp>
#include <simmpi/simmpi.hpp>
#include <workflow/workflow.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

using namespace lowfive;
using simmpi::DeadlockError;
using simmpi::RankFailure;
using simmpi::SchedConfig;
using simmpi::TimeoutError;
using workflow::Context;
using workflow::Link;
using workflow::Options;

namespace {

/// Save/restore one environment variable around a test body.
class EnvGuard {
public:
    explicit EnvGuard(const char* name) : name_(name) {
        const char* v = std::getenv(name);
        if (v) saved_ = v;
    }
    ~EnvGuard() {
        if (saved_)
            ::setenv(name_, saved_->c_str(), 1);
        else
            ::unsetenv(name_);
    }

private:
    const char*                name_;
    std::optional<std::string> saved_;
};

constexpr std::uint64_t kPoints = 8;

/// One step's payload: values encode the step so a reader can prove it
/// got the snapshot it asked for (and only that snapshot).
void write_step(h5::File& f, std::uint64_t step) {
    auto      d = f.create_dataset("v", h5::dt::uint64(), h5::Dataspace({kPoints}));
    h5::Dataspace sel({kPoints});
    sel.select_all();
    std::vector<std::uint64_t> vals(kPoints);
    for (std::uint64_t i = 0; i < kPoints; ++i) vals[i] = step * 1000 + i;
    d.write(vals.data(), sel);
}

void expect_step(h5::File& f, std::uint64_t step) {
    auto d    = f.open_dataset("v");
    auto vals = d.read_vector<std::uint64_t>();
    ASSERT_EQ(vals.size(), kPoints);
    for (std::uint64_t i = 0; i < kPoints; ++i)
        ASSERT_EQ(vals[i], step * 1000 + i) << "step " << step << " at " << i;
}

} // namespace

// --- StepId -------------------------------------------------------------------

TEST(StepId, NoneOrdersBeforeEveryValidStep) {
    stream::StepId none;
    EXPECT_FALSE(none.valid());
    EXPECT_TRUE(stream::StepId::first().valid());
    EXPECT_LT(none, stream::StepId::first());
    EXPECT_LT(none, stream::StepId(41));
}

TEST(StepId, NextIsSuccessorAndNoneStartsAtFirst) {
    EXPECT_EQ(stream::StepId{}.next(), stream::StepId::first());
    EXPECT_EQ(stream::StepId::first().value(), 0u);
    EXPECT_EQ(stream::StepId(6).next().value(), 7u);
    EXPECT_LT(stream::StepId(6), stream::StepId(7));
}

// --- policy & config ----------------------------------------------------------

TEST(StreamConfig, PolicyParseRoundTrips) {
    for (auto p : {stream::StepPolicy::Block, stream::StepPolicy::Drop,
                   stream::StepPolicy::LatestOnly})
        EXPECT_EQ(stream::parse_policy(stream::to_string(p)), p);
    EXPECT_FALSE(stream::parse_policy("latest"));
    EXPECT_FALSE(stream::parse_policy(""));
    EXPECT_FALSE(stream::parse_policy("BLOCK"));
}

TEST(StreamConfig, FromEnvReadsWindowAndPolicy) {
    EnvGuard gw("L5_STEP_WINDOW"), gp("L5_STEP_POLICY");
    ::unsetenv("L5_STEP_WINDOW");
    ::unsetenv("L5_STEP_POLICY");
    auto def = stream::StreamConfig::from_env();
    EXPECT_EQ(def.window, 4u);
    EXPECT_EQ(def.policy, stream::StepPolicy::Block);

    ::setenv("L5_STEP_WINDOW", "7", 1);
    ::setenv("L5_STEP_POLICY", "drop", 1);
    auto cfg = stream::StreamConfig::from_env();
    EXPECT_EQ(cfg.window, 7u);
    EXPECT_EQ(cfg.policy, stream::StepPolicy::Drop);

    ::setenv("L5_STEP_WINDOW", "0", 1);
    EXPECT_THROW(stream::StreamConfig::from_env(), h5::Error);
    ::setenv("L5_STEP_WINDOW", "nope", 1);
    EXPECT_THROW(stream::StreamConfig::from_env(), h5::Error);
    ::setenv("L5_STEP_WINDOW", "3", 1);
    ::setenv("L5_STEP_POLICY", "bogus", 1);
    EXPECT_THROW(stream::StreamConfig::from_env(), h5::Error);
}

TEST(StreamConfig, NormalizedEnforcesPolicyInvariants) {
    stream::StreamConfig cfg;
    cfg.window = 9;
    cfg.policy = stream::StepPolicy::LatestOnly;
    EXPECT_EQ(cfg.normalized().window, 1u); // latest_only ⇒ window of 1
    cfg.policy = stream::StepPolicy::Block;
    cfg.window = 0;
    EXPECT_EQ(cfg.normalized().window, 1u); // every window is at least 1
}

// --- versioned names ----------------------------------------------------------

TEST(StepNames, RoundTripAndBase) {
    auto name  = stream::step_name("sim.h5", stream::StepId(12));
    auto split = stream::split_step_name(name);
    ASSERT_TRUE(split);
    EXPECT_EQ(split->first, "sim.h5");
    EXPECT_EQ(split->second, stream::StepId(12));
    EXPECT_EQ(stream::base_name(name), "sim.h5");
}

TEST(StepNames, OrdinaryNamesPassThrough) {
    EXPECT_FALSE(stream::split_step_name("sim.h5"));
    EXPECT_FALSE(stream::split_step_name("run7"));
    EXPECT_EQ(stream::base_name("run7"), "run7");
}

TEST(StepNames, DistinctStepsGetDistinctNames) {
    EXPECT_NE(stream::step_name("a", stream::StepId(1)),
              stream::step_name("a", stream::StepId(11)));
    EXPECT_NE(stream::step_name("a", stream::StepId(0)),
              stream::step_name("a1", stream::StepId(0)));
}

// --- StepWindow state machine -------------------------------------------------

namespace {
stream::StreamConfig wcfg(std::size_t window, stream::StepPolicy policy) {
    stream::StreamConfig c;
    c.window = window;
    c.policy = policy;
    return c;
}
stream::StepId sid(std::uint64_t i) { return stream::StepId(i); }
} // namespace

TEST(StepWindow, BlockRefusesToEvictUnconsumedSteps) {
    stream::StepWindow w(wcfg(2, stream::StepPolicy::Block));
    w.set_expected_consumers(1);
    EXPECT_TRUE(w.can_admit());
    w.publish(sid(0), 1);
    w.publish(sid(1), 2);
    EXPECT_EQ(w.occupancy(), 2u);
    EXPECT_FALSE(w.can_admit()); // full of unconsumed steps ⇒ the producer waits
    EXPECT_TRUE(w.make_room().empty());

    // one full acquire/release cycle consumes step 0 and reopens the window
    auto a = w.acquire(stream::StepId{}.next(), false);
    ASSERT_EQ(a.status, stream::StepWindow::Acquire::Status::granted);
    EXPECT_EQ(a.step, sid(0));
    EXPECT_FALSE(w.can_admit()); // still pinned
    auto rel = w.release(sid(0));
    ASSERT_TRUE(rel);
    EXPECT_TRUE(rel->first_drain);
    EXPECT_EQ(rel->publish_ns, 1u);
    EXPECT_TRUE(w.can_admit());
    auto ev = w.make_room();
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].step, sid(0));
    EXPECT_FALSE(ev[0].dropped); // it was read — a drain, not a drop
}

TEST(StepWindow, DropEvictsOldestUnheldAndCountsDrops) {
    stream::StepWindow w(wcfg(2, stream::StepPolicy::Drop));
    w.set_expected_consumers(1);
    w.publish(sid(0), 0);
    w.publish(sid(1), 0);
    // can_admit() is only the *block*-policy wait predicate; under drop
    // the producer skips the wait and lets make_room() sacrifice a step
    EXPECT_FALSE(w.can_admit());
    auto ev = w.make_room();
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].step, sid(0));
    EXPECT_TRUE(ev[0].dropped); // never read while a consumer was subscribed
    w.publish(sid(2), 0);

    // a pinned step survives eviction: overcommit instead
    auto a = w.acquire(stream::StepId{}.next(), false);
    ASSERT_EQ(a.status, stream::StepWindow::Acquire::Status::granted);
    EXPECT_EQ(a.step, sid(1));
    auto ev2 = w.make_room();
    ASSERT_EQ(ev2.size(), 1u);
    EXPECT_EQ(ev2[0].step, sid(2)); // the only unheld step
    w.publish(sid(3), 0);
    EXPECT_EQ(w.occupancy(), 2u); // pinned 1 + windowed 3

    // release of the pin lets reap() drain the overcommit
    ASSERT_TRUE(w.release(sid(1)));
    auto reaped = w.reap();
    ASSERT_EQ(reaped.size(), 1u);
    EXPECT_EQ(reaped[0].step, sid(1));
    EXPECT_FALSE(reaped[0].dropped);
    EXPECT_EQ(w.occupancy(), 1u);
}

TEST(StepWindow, AcquireGrantsOldestAtLeastMinOrLatest) {
    stream::StepWindow w(wcfg(4, stream::StepPolicy::Block));
    w.set_expected_consumers(2);
    w.publish(sid(3), 0);
    w.publish(sid(4), 0);
    w.publish(sid(6), 0);

    EXPECT_EQ(w.acquire(sid(4), false).step, sid(4)); // exact match
    EXPECT_EQ(w.acquire(sid(5), false).step, sid(6)); // next available
    EXPECT_EQ(w.acquire(sid(0), true).step, sid(6));  // latest ignores min

    auto past = w.acquire(sid(7), false);
    EXPECT_EQ(past.status, stream::StepWindow::Acquire::Status::retry_later);
    w.set_eos();
    EXPECT_EQ(w.acquire(sid(7), false).status, stream::StepWindow::Acquire::Status::eos);
}

TEST(StepWindow, PinFailsOnEvictedStep) {
    stream::StepWindow w(wcfg(1, stream::StepPolicy::Drop));
    w.set_expected_consumers(1);
    w.publish(sid(0), 0);
    EXPECT_TRUE(w.pin(sid(0)));
    ASSERT_TRUE(w.release(sid(0)));
    w.make_room();
    w.publish(sid(1), 0);
    EXPECT_FALSE(w.pin(sid(0))); // gone — the consumer retries higher
    EXPECT_TRUE(w.pin(sid(1)));
}

TEST(StepWindow, ReleaseReportsFirstDrainExactlyOnce) {
    stream::StepWindow w(wcfg(4, stream::StepPolicy::Block));
    w.set_expected_consumers(2);
    w.publish(sid(0), 42);
    EXPECT_FALSE(w.release(sid(0))); // unpinned: protocol error
    EXPECT_FALSE(w.release(sid(9))); // unknown step
    w.acquire(stream::StepId{}.next(), false);
    w.pin(sid(0));
    auto r1 = w.release(sid(0));
    ASSERT_TRUE(r1);
    EXPECT_FALSE(r1->first_drain); // one pin still live
    auto r2 = w.release(sid(0));
    ASSERT_TRUE(r2);
    EXPECT_TRUE(r2->first_drain);
    EXPECT_EQ(r2->publish_ns, 42u);
}

TEST(StepWindow, DrainedNeedsEosAllDonesAndNoPins) {
    stream::StepWindow w(wcfg(4, stream::StepPolicy::Block));
    w.set_expected_consumers(1);
    w.publish(sid(0), 0);
    w.acquire(stream::StepId{}.next(), false);
    w.set_eos();
    EXPECT_FALSE(w.drained()); // step 0 still pinned
    w.release(sid(0));
    EXPECT_FALSE(w.drained()); // consumer not done
    w.consumer_done();
    EXPECT_TRUE(w.drained());
    auto ev = w.clear();
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_FALSE(ev[0].dropped);
    EXPECT_TRUE(w.empty());
}

TEST(StepWindow, PublishMustBeStrictlyIncreasingAndBeforeEos) {
    stream::StepWindow w(wcfg(4, stream::StepPolicy::Block));
    w.publish(sid(1), 0);
    EXPECT_THROW(w.publish(sid(1), 0), h5::Error);
    EXPECT_THROW(w.publish(sid(0), 0), h5::Error);
    EXPECT_THROW(w.publish(stream::StepId{}, 0), h5::Error);
    w.set_eos();
    EXPECT_THROW(w.publish(sid(2), 0), h5::Error);
    EXPECT_EQ(w.last_published(), sid(1));
}

TEST(StepWindow, NoConsumersMeansStepsAreBornConsumed) {
    stream::StepWindow w(wcfg(1, stream::StepPolicy::Block));
    w.set_expected_consumers(0);
    w.publish(sid(0), 0);
    EXPECT_TRUE(w.can_admit()); // consumer-less writer never blocks
    auto ev = w.make_room();
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_FALSE(ev[0].dropped); // nobody was subscribed: not a drop
}

// --- Checker step-order lint --------------------------------------------------

TEST(StreamCheck, PublishRegressionIsNamed) {
    l5check::Checker chk(l5check::CheckConfig{l5check::CheckConfig::Action::report}, 2);
    chk.on_step(0, "publish", "s.h5", 0);
    chk.on_step(0, "publish", "s.h5", 1);
    chk.on_step(0, "publish", "s.h5", 0); // regression
    auto diags = chk.diagnostics();
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].kind, "step-order");
    EXPECT_NE(diags[0].message.find("strictly increasing"), std::string::npos);
}

TEST(StreamCheck, AcquireRegressionIsNamedPerRankAndStream) {
    l5check::Checker chk(l5check::CheckConfig{l5check::CheckConfig::Action::report}, 2);
    chk.on_step(1, "acquire", "s.h5", 3);
    chk.on_step(1, "acquire", "other.h5", 0); // different stream: independent
    chk.on_step(0, "acquire", "s.h5", 0);     // different rank: independent
    chk.on_step(1, "acquire", "s.h5", 2);     // regression
    auto diags = chk.diagnostics();
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].kind, "step-order");
    EXPECT_NE(diags[0].message.find("move strictly forward"), std::string::npos);
}

TEST(StreamCheck, ReleaseMustMatchTheHeldStep) {
    l5check::Checker chk(l5check::CheckConfig{l5check::CheckConfig::Action::report}, 2);
    chk.on_step(0, "release", "s.h5", 0); // nothing acquired
    chk.on_step(0, "acquire", "s.h5", 4);
    chk.on_step(0, "release", "s.h5", 3); // wrong step
    chk.on_step(0, "release", "s.h5", 4); // correct: silent
    auto diags = chk.diagnostics();
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_NE(diags[0].message.find("nothing acquired"), std::string::npos);
    EXPECT_NE(diags[1].message.find("holds step 4"), std::string::npos);
}

// --- end-to-end workflows -----------------------------------------------------

namespace {

struct StreamStats {
    std::atomic<std::uint64_t> published{0}, dropped{0}, drained{0}, waits{0}, acquired{0},
        rollbacks{0};
    void add(const DistMetadataVol::Stats& s) {
        published += s.n_steps_published;
        dropped += s.n_steps_dropped;
        drained += s.n_steps_drained;
        waits += s.n_step_publish_waits;
        acquired += s.n_steps_acquired;
        rollbacks += s.n_step_pin_rollbacks;
    }
};

/// Producer body: publish `nsteps` snapshots, close, then (optionally)
/// wave the consumer through and wait for the drain so the captured
/// stats cover the whole stream lifecycle.
void produce_steps(Context& ctx, int nsteps, StreamStats& out, bool gate_consumer,
                   std::optional<stream::StreamConfig> cfg = std::nullopt) {
    {
        stream::Writer w(ctx.vol, "s.h5", cfg);
        for (int t = 0; t < nsteps; ++t) {
            h5::File& f = w.begin_step();
            write_step(f, static_cast<std::uint64_t>(t));
            w.end_step();
            EXPECT_EQ(w.current_step().value(), static_cast<std::uint64_t>(t));
        }
        w.close();
    }
    if (gate_consumer && ctx.rank() == 0)
        ctx.world.send_value(ctx.world.size() - 1, 77, 1); // consumer may start now
    ctx.vol->finish_serving(); // stats below include every drain/drop
    out.add(ctx.vol->stats());
}

/// Consumer body: drain the stream, validating each step's payload, and
/// report which steps were seen.
std::vector<std::uint64_t> consume_steps(Context& ctx, StreamStats& out,
                                         bool gated = false,
                                         std::optional<stream::StreamConfig> cfg = std::nullopt) {
    if (gated && ctx.rank() == ctx.size() - 1) ctx.world.recv_value<int>(0, 77);
    if (gated) ctx.local.barrier(); // nobody subscribes before the gate
    std::vector<std::uint64_t> seen;
    stream::Reader r(ctx.vol, "s.h5", cfg);
    while (r.next_step()) {
        seen.push_back(r.current_step().value());
        expect_step(r.file(), r.current_step().value());
    }
    r.close();
    out.add(ctx.vol->stats());
    return seen;
}

} // namespace

TEST(Stream, BlockDeliversEveryStepInOrder) {
    StreamStats ps, cs;
    std::vector<std::uint64_t> seen;
    workflow::run(
        {
            {"producer", 1, [&](Context& ctx) { produce_steps(ctx, 6, ps, false); }},
            {"consumer", 1, [&](Context& ctx) { seen = consume_steps(ctx, cs); }},
        },
        {Link{0, 1, "*", "block", 4}});
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5}));
    EXPECT_EQ(ps.published.load(), 6u);
    EXPECT_EQ(ps.drained.load(), 6u);
    EXPECT_EQ(ps.dropped.load(), 0u);
    EXPECT_EQ(cs.acquired.load(), 6u);
}

TEST(Stream, BlockWindowOfOneStaysLossless) {
    StreamStats ps, cs;
    std::vector<std::uint64_t> seen;
    workflow::run(
        {
            {"producer", 1, [&](Context& ctx) { produce_steps(ctx, 4, ps, false); }},
            {"consumer", 1, [&](Context& ctx) { seen = consume_steps(ctx, cs); }},
        },
        {Link{0, 1, "*", "block", 1}});
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3}));
    EXPECT_EQ(ps.dropped.load(), 0u);
    EXPECT_EQ(ps.drained.load(), 4u);
}

TEST(Stream, MultiRankConsumerReadsTheSameSnapshot) {
    // 2 producer ranks × 2 consumer ranks: rank 0 runs the acquire/pin
    // protocol, the step is broadcast, and both consumer ranks read the
    // same frozen snapshot (each validating the full payload).
    StreamStats ps, cs;
    std::atomic<int> steps_seen{0};
    workflow::run(
        {
            {"producer", 2, [&](Context& ctx) { produce_steps(ctx, 5, ps, false); }},
            {"consumer", 2,
             [&](Context& ctx) {
                 auto seen = consume_steps(ctx, cs);
                 EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
                 steps_seen += static_cast<int>(seen.size());
             }},
        },
        {Link{0, 1, "*", "block", 2}});
    EXPECT_EQ(steps_seen.load(), 10); // 5 steps × 2 ranks
    EXPECT_EQ(ps.published.load(), 10u); // 5 steps × 2 producer ranks
    EXPECT_EQ(ps.dropped.load(), 0u);
}

TEST(Stream, DropNeverBlocksAFastProducer) {
    // The producer publishes 8 steps and finishes before the consumer is
    // even allowed to subscribe (the tag-77 gate) — 4× the consumer's
    // rate and then some. Under drop it must never wait: zero blocking
    // waits by construction, asserted via the obs-backed stats, and the
    // 6 steps that aged out of the window count as drops.
    StreamStats ps, cs;
    std::vector<std::uint64_t> seen;
    workflow::run(
        {
            {"producer", 1, [&](Context& ctx) { produce_steps(ctx, 8, ps, true); }},
            {"consumer", 1, [&](Context& ctx) { seen = consume_steps(ctx, cs, true); }},
        },
        {Link{0, 1, "*", "drop", 2}});
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{6, 7})); // the surviving window
    EXPECT_EQ(ps.waits.load(), 0u);
    EXPECT_EQ(ps.published.load(), 8u);
    EXPECT_EQ(ps.dropped.load(), 6u);
    EXPECT_EQ(ps.drained.load(), 2u);
}

TEST(Stream, DropNeverBlocksUnderTheDeterministicScheduler) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        StreamStats ps, cs;
        std::vector<std::uint64_t> seen;
        Options opts;
        opts.runtime.sched       = SchedConfig{};
        opts.runtime.sched->seed = seed;
        workflow::run(
            {
                {"producer", 1, [&](Context& ctx) { produce_steps(ctx, 8, ps, true); }},
                {"consumer", 1, [&](Context& ctx) { seen = consume_steps(ctx, cs, true); }},
            },
            {Link{0, 1, "*", "drop", 2}}, opts);
        EXPECT_EQ(seen, (std::vector<std::uint64_t>{6, 7})) << "seed " << seed;
        EXPECT_EQ(ps.waits.load(), 0u) << "seed " << seed;
        EXPECT_EQ(ps.dropped.load(), 6u) << "seed " << seed;
    }
}

TEST(Stream, GoneStepGrantRollsBackAndRetries) {
    // 2 producer ranks under drop: the coordinator (producer rank 0)
    // grants a step from ITS window, but a racing publish may evict that
    // step from rank 1's window — and GC its snapshot — before the
    // StepPin lands there. The consumer must roll its pins back and
    // retry strictly past the gone step, never reading a dead version.
    // The race needs a publish in the grant→pin gap, which only exists
    // under free-running threads (the cooperative scheduler never
    // preempts a drop-policy producer mid-burst), so repeat free-running
    // runs and assert the race was both EXERCISED (somewhere across the
    // sweep) and always SURVIVED (every acquired step validated
    // byte-for-byte).
    // block is exempt: a blocking window only retires consumed steps, so
    // a granted step can never be gone by the time its pins land.
    if (std::getenv("L5_SCHED"))
        GTEST_SKIP() << "needs free-running threads: under the cooperative "
                        "scheduler a drop producer has no scheduling points, "
                        "so the grant->pin gap can never see a publish";
    constexpr int kSteps = 60;
    auto sweep = [&](const char* policy, int reps) {
        std::uint64_t rollbacks = 0;
        for (int rep = 1; rep <= reps; ++rep) {
            StreamStats ps, cs;
            std::vector<std::uint64_t> seen;
            Options opts;
            opts.background_serve = true;
            workflow::run(
                {
                    {"producer", 2,
                     [&](Context& ctx) {
                         // wait until the consumer is subscribed, so its
                         // acquires overlap live publishes (tag 88); under
                         // drop the publishes then never block
                         ctx.world.recv_value<int>(2, 88);
                         stream::Writer w(ctx.vol, "s.h5");
                         for (int t = 0; t < kSteps; ++t) {
                             h5::File& f = w.begin_step();
                             write_step(f, static_cast<std::uint64_t>(t));
                             w.end_step();
                         }
                         w.close();
                         ctx.vol->finish_serving();
                         ps.add(ctx.vol->stats());
                     }},
                    {"consumer", 1,
                     [&](Context& ctx) {
                         ctx.world.send_value(0, 88, 1);
                         ctx.world.send_value(1, 88, 1);
                         stream::Reader r(ctx.vol, "s.h5");
                         while (r.next_step()) {
                             seen.push_back(r.current_step().value());
                             expect_step(r.file(), r.current_step().value());
                         }
                         r.close();
                         cs.add(ctx.vol->stats());
                     }},
                },
                {Link{0, 1, "*", policy, 1}}, opts);
            // every acquired payload was validated above; the acquired
            // steps are a strictly increasing subsequence (possibly
            // empty: every grant of a fast-evicting stream can be outrun)
            for (std::size_t i = 1; i < seen.size(); ++i)
                EXPECT_LT(seen[i - 1], seen[i]) << policy << " rep " << rep;
            EXPECT_EQ(ps.waits.load(), 0u) << policy << " rep " << rep;
            rollbacks += cs.rollbacks.load();
        }
        return rollbacks;
    };
    // latest_only evicts even more eagerly than drop; the retries must
    // survive there too, but only drop's sweep is wide enough to demand
    // the race was actually hit
    sweep("latest_only", 4);
    EXPECT_GE(sweep("drop", 8), 1u)
        << "sweep never hit the gone-grant race; "
           "widen the rep count or shrink the window";
}

TEST(Stream, LatestOnlyJumpsToTheNewestStep) {
    StreamStats ps, cs;
    std::vector<std::uint64_t> seen;
    workflow::run(
        {
            {"producer", 1, [&](Context& ctx) { produce_steps(ctx, 8, ps, true); }},
            {"consumer", 1, [&](Context& ctx) { seen = consume_steps(ctx, cs, true); }},
        },
        {Link{0, 1, "*", "latest_only"}});
    // non-contiguous drain: the consumer's first acquire lands on the
    // newest step, skipping 0..6 entirely
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{7}));
    EXPECT_EQ(ps.waits.load(), 0u);
    EXPECT_EQ(ps.published.load(), 8u);
    EXPECT_EQ(ps.dropped.load(), 7u);
}

TEST(Stream, LatestOnlyNeverBlocksUnderTheDeterministicScheduler) {
    StreamStats ps, cs;
    std::vector<std::uint64_t> seen;
    Options opts;
    opts.runtime.sched       = SchedConfig{};
    opts.runtime.sched->seed = 7;
    workflow::run(
        {
            {"producer", 1, [&](Context& ctx) { produce_steps(ctx, 8, ps, true); }},
            {"consumer", 1, [&](Context& ctx) { seen = consume_steps(ctx, cs, true); }},
        },
        {Link{0, 1, "*", "latest_only"}}, opts);
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{7}));
    EXPECT_EQ(ps.waits.load(), 0u);
}

TEST(Stream, EmptyStreamEndsImmediately) {
    StreamStats ps, cs;
    std::vector<std::uint64_t> seen{99}; // sentinel: must come back empty
    workflow::run(
        {
            {"producer", 1,
             [&](Context& ctx) {
                 stream::Writer w(ctx.vol, "s.h5");
                 w.close(); // zero steps
                 ctx.vol->finish_serving();
                 ps.add(ctx.vol->stats());
             }},
            {"consumer", 1, [&](Context& ctx) { seen = consume_steps(ctx, cs); }},
        },
        {Link{0, 1, "*", "block"}});
    EXPECT_TRUE(seen.empty());
    EXPECT_EQ(ps.published.load(), 0u);
    EXPECT_EQ(cs.acquired.load(), 0u);
}

TEST(Stream, WriterWithoutConsumersNeverBlocksOrDrops) {
    StreamStats ps;
    workflow::run({{"solo", 1, [&](Context& ctx) { produce_steps(ctx, 5, ps, false); }}}, {});
    EXPECT_EQ(ps.published.load(), 5u);
    EXPECT_EQ(ps.waits.load(), 0u);
    EXPECT_EQ(ps.dropped.load(), 0u); // nobody subscribed: nothing "dropped"
}

TEST(Stream, WriterRejectsReservedNamesAndMisuse) {
    workflow::run(
        {{"solo", 1,
          [&](Context& ctx) {
              EXPECT_THROW(stream::Writer(ctx.vol, std::string("a\x1f") + "b"), h5::Error);
              stream::Writer w(ctx.vol, "s.h5");
              EXPECT_THROW(w.end_step(), h5::Error);   // no open step
              EXPECT_THROW(stream::Writer(ctx.vol, "s.h5"), h5::Error); // already open
              w.begin_step();
              EXPECT_THROW(w.begin_step(), h5::Error); // step already open
              EXPECT_THROW(w.close(), h5::Error);      // step still open
              w.end_step();
              w.close();
          }}},
        {});
}

TEST(Stream, LinkConfigReachesBothEnds) {
    // neither side passes an explicit config: both resolve the link's
    // `stream:`/`window:` declaration through set_stream
    workflow::run(
        {
            {"producer", 1,
             [&](Context& ctx) {
                 stream::Writer w(ctx.vol, "s.h5");
                 EXPECT_EQ(w.config().policy, stream::StepPolicy::Drop);
                 EXPECT_EQ(w.config().window, 3u);
                 w.close();
                 ctx.vol->finish_serving();
             }},
            {"consumer", 1,
             [&](Context& ctx) {
                 stream::Reader r(ctx.vol, "s.h5");
                 EXPECT_EQ(r.config().policy, stream::StepPolicy::Drop);
                 EXPECT_EQ(r.config().window, 3u);
                 EXPECT_FALSE(r.next_step());
                 r.close();
             }},
        },
        {Link{0, 1, "*", "drop", 3}});
}

TEST(Stream, BlockPublishHonorsDeadlinesWithTimeoutError) {
    // window 1, block, 50 ms publish budget: the consumer pins step 0 and
    // then parks on a message that never comes, so the producer's second
    // publish can never be admitted — it must surface a TimeoutError
    // naming the backpressure wait, not hang. Deterministic under the
    // scheduler: simulated time jumps straight to the deadline.
    stream::StreamConfig cfg;
    cfg.window     = 1;
    cfg.policy     = stream::StepPolicy::Block;
    cfg.timeout_ms = 50;
    Options opts;
    opts.runtime.sched       = SchedConfig{};
    opts.runtime.sched->seed = 2;
    std::string what;
    workflow::run(
        {
            {"producer", 1,
             [&](Context& ctx) {
                 {
                     stream::Writer w(ctx.vol, "s.h5", cfg);
                     write_step(w.begin_step(), 0);
                     w.end_step();
                     write_step(w.begin_step(), 1);
                     try {
                         w.end_step(); // step 0 is pinned: can never be admitted
                     } catch (const TimeoutError& e) {
                         what = e.what();
                     }
                 } // ~Writer abandons the step (bounded, swallowed) + ends the stream
                 ctx.world.send_value(1, 77, 1); // consumer may move on now
                 ctx.vol->finish_serving();
             }},
            {"consumer", 1,
             [&](Context& ctx) {
                 stream::Reader r(ctx.vol, "s.h5");
                 ASSERT_TRUE(r.next_step());
                 expect_step(r.file(), 0);
                 // pin step 0 through both of the producer's publish attempts
                 ctx.world.recv_value<int>(0, 77);
                 EXPECT_FALSE(r.next_step()); // step 1 was never published
                 r.close();
             }},
        },
        {Link{0, 1, "*", "", 0}}, opts);
    EXPECT_NE(what.find("timeout"), std::string::npos) << what;
    EXPECT_NE(what.find("backpressure"), std::string::npos) << what;
    EXPECT_NE(what.find("50 ms"), std::string::npos) << what;
}

TEST(Stream, BlockedPublishIsNamedInDeadlockReports) {
    // same shape but with no deadline anywhere: every task ends up
    // blocked (producer in the stream/window wait, consumer in a recv)
    // and the scheduler's deadlock report must name the publish wait site
    // so a stuck pipeline is diagnosable.
    stream::StreamConfig cfg;
    cfg.window = 1;
    cfg.policy = stream::StepPolicy::Block;
    Options opts;
    opts.runtime.sched       = SchedConfig{};
    opts.runtime.sched->seed = 3;
    try {
        workflow::run(
            {
                {"producer", 1,
                 [&](Context& ctx) {
                     stream::Writer w(ctx.vol, "s.h5", cfg);
                     write_step(w.begin_step(), 0);
                     w.end_step();
                     write_step(w.begin_step(), 1);
                     w.end_step(); // blocks forever
                 }},
                {"consumer", 1,
                 [&](Context& ctx) {
                     stream::Reader r(ctx.vol, "s.h5");
                     ASSERT_TRUE(r.next_step());
                     ctx.world.recv_value<int>(0, 55); // never sent
                 }},
            },
            {Link{0, 1, "*", "", 0}}, opts);
        FAIL() << "expected RankFailure";
    } catch (const RankFailure& rf) {
        const std::string what = rf.what();
        EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
        EXPECT_NE(what.find("stream/window"), std::string::npos) << what;
    }
}
