#include <baselines/bredala.hpp>
#include <baselines/dataspaces.hpp>
#include <baselines/pure_mpi.hpp>

#include <diy/decomposer.hpp>
#include <simmpi/simmpi.hpp>

#include <gtest/gtest.h>

#include <numeric>

using simmpi::Comm;
using simmpi::Runtime;

namespace {

diy::Bounds domain2(std::int64_t rows, std::int64_t cols) {
    diy::Bounds d(2);
    d.max = {rows, cols};
    return d;
}

/// Build the world for an n-producer / m-consumer pair plus an optional
/// server task, and run the role functions.
void run_pair(int n, int m, const std::function<void(Comm&, Comm&)>& producer,
              const std::function<void(Comm&, Comm&)>& consumer) {
    Runtime::run(n + m, [&](Comm& world) {
        const bool       is_prod = world.rank() < n;
        Comm             local   = world.split(is_prod ? 0 : 1);
        std::vector<int> prod(static_cast<std::size_t>(n)), cons(static_cast<std::size_t>(m));
        std::iota(prod.begin(), prod.end(), 0);
        std::iota(cons.begin(), cons.end(), n);
        Comm ic = Comm::create_intercomm(world, prod, cons);
        if (is_prod)
            producer(local, ic);
        else
            consumer(local, ic);
    });
}

} // namespace

// --- pure MPI ---------------------------------------------------------------

TEST(PureMpi, RowToColumnRedistribution) {
    constexpr std::int64_t rows = 24, cols = 24;
    constexpr int          n = 6, m = 4;
    const diy::Bounds      dom = domain2(rows, cols);

    diy::RegularDecomposer pdec(dom, n);
    auto                   cons_bounds = [&](int r) {
        diy::Bounds b(2);
        b.min = {0, cols * r / m};
        b.max = {rows, cols * (r + 1) / m};
        return b;
    };
    auto prod_bounds = [&](int r) { return pdec.block_bounds(r); };

    run_pair(
        n, m,
        [&](Comm& local, Comm& ic) {
            diy::Bounds                mine = pdec.block_bounds(local.rank());
            std::vector<std::uint64_t> data(mine.size());
            std::size_t                k = 0;
            for (auto r = mine.min[0]; r < mine.max[0]; ++r)
                for (auto c = mine.min[1]; c < mine.max[1]; ++c)
                    data[k++] = static_cast<std::uint64_t>(r * cols + c);
            baselines::pure_mpi::producer_send(ic, mine, data.data(), 8, cons_bounds, m);
        },
        [&](Comm& local, Comm& ic) {
            diy::Bounds                mine = cons_bounds(local.rank());
            std::vector<std::uint64_t> out(mine.size(), ~0ull);
            baselines::pure_mpi::consumer_recv(ic, mine, out.data(), 8, prod_bounds, n);
            std::size_t k = 0;
            for (auto r = mine.min[0]; r < mine.max[0]; ++r)
                for (auto c = mine.min[1]; c < mine.max[1]; ++c, ++k)
                    ASSERT_EQ(out[k], static_cast<std::uint64_t>(r * cols + c));
        });
}

TEST(PureMpi, OneDimensionalChunks) {
    constexpr std::int64_t total = 1000;
    constexpr int          n = 3, m = 5;

    auto chunk = [&](int r, int nr) {
        diy::Bounds b(1);
        b.min[0] = total * r / nr;
        b.max[0] = total * (r + 1) / nr;
        return b;
    };

    run_pair(
        n, m,
        [&](Comm& local, Comm& ic) {
            auto                      mine = chunk(local.rank(), n);
            std::vector<std::int32_t> data(mine.size());
            std::iota(data.begin(), data.end(), static_cast<std::int32_t>(mine.min[0]));
            baselines::pure_mpi::producer_send(ic, mine, data.data(), 4,
                                               [&](int r) { return chunk(r, m); }, m);
        },
        [&](Comm& local, Comm& ic) {
            auto                      mine = chunk(local.rank(), m);
            std::vector<std::int32_t> out(mine.size());
            baselines::pure_mpi::consumer_recv(ic, mine, out.data(), 4,
                                               [&](int r) { return chunk(r, n); }, n);
            for (std::size_t i = 0; i < out.size(); ++i)
                ASSERT_EQ(out[i], static_cast<std::int32_t>(mine.min[0]) + static_cast<std::int32_t>(i));
        });
}

// --- DataSpaces -----------------------------------------------------------------

namespace ds = baselines::dataspaces;

TEST(DataSpaces, PutLocalGetRedistributes) {
    constexpr std::int64_t rows = 16, cols = 16;
    constexpr int          n = 4, m = 2, s = 1;
    const diy::Bounds      dom = domain2(rows, cols);
    diy::RegularDecomposer pdec(dom, n);

    Runtime::run(n + m + s, [&](Comm& world) {
        enum Role { Prod, Cons, Serv };
        Role role = world.rank() < n ? Prod : (world.rank() < n + m ? Cons : Serv);
        Comm local = world.split(role);

        std::vector<int> prod(n), cons(m), serv(s);
        std::iota(prod.begin(), prod.end(), 0);
        std::iota(cons.begin(), cons.end(), n);
        std::iota(serv.begin(), serv.end(), n + m);
        Comm prod_serv = Comm::create_intercomm(world, prod, serv);
        Comm cons_serv = Comm::create_intercomm(world, cons, serv);
        Comm prod_cons = Comm::create_intercomm(world, prod, cons);

        if (role == Serv) {
            // from the server's perspective the client intercomms are the
            // reversed halves of prod_serv / cons_serv
            ds::Server::run(prod_serv, cons_serv);
        } else if (role == Prod) {
            ds::ProducerClient client(prod_serv, prod_cons);
            diy::Bounds        mine = pdec.block_bounds(local.rank());
            std::vector<std::uint64_t> data(mine.size());
            std::size_t                k = 0;
            for (auto r = mine.min[0]; r < mine.max[0]; ++r)
                for (auto c = mine.min[1]; c < mine.max[1]; ++c)
                    data[k++] = static_cast<std::uint64_t>(r * cols + c);
            client.put_local("grid", 0, mine, data.data(), 8);
            client.serve_pulls();
            client.finalize();
        } else {
            ds::ConsumerClient client(cons_serv, prod_cons);
            diy::Bounds        mine(2);
            mine.min = {0, cols * local.rank() / m};
            mine.max = {rows, cols * (local.rank() + 1) / m};
            std::vector<std::uint64_t> out(mine.size(), ~0ull);
            client.get("grid", 0, n, mine, out.data(), 8);
            std::size_t k = 0;
            for (auto r = mine.min[0]; r < mine.max[0]; ++r)
                for (auto c = mine.min[1]; c < mine.max[1]; ++c, ++k)
                    ASSERT_EQ(out[k], static_cast<std::uint64_t>(r * cols + c));
            client.done();
            client.finalize();
        }
    });
}

TEST(DataSpaces, QueryBlocksUntilVersionComplete) {
    // consumer issues its get before the producer has registered: the
    // server must defer the reply until all parts arrived
    Runtime::run(3, [&](Comm& world) {
        enum Role { Prod, Cons, Serv };
        Role             role  = static_cast<Role>(world.rank());
        Comm             local = world.split(role);
        std::vector<int> prod{0}, cons{1}, serv{2};
        Comm             prod_serv = Comm::create_intercomm(world, prod, serv);
        Comm             cons_serv = Comm::create_intercomm(world, cons, serv);
        Comm             prod_cons = Comm::create_intercomm(world, prod, cons);

        diy::Bounds whole(1);
        whole.max[0] = 64;

        if (role == Serv) {
            ds::Server::run(prod_serv, cons_serv);
        } else if (role == Prod) {
            // deliberately slow producer
            world.recv_value<int>(1, 77); // wait for the consumer's signal
            std::vector<float> data(64);
            std::iota(data.begin(), data.end(), 0.f);
            ds::ProducerClient client(prod_serv, prod_cons);
            client.put_local("v", 3, whole, data.data(), 4);
            client.serve_pulls();
            client.finalize();
        } else {
            ds::ConsumerClient client(cons_serv, prod_cons);
            world.send_value(0, 77, 1); // unleash the producer *after* we query
            std::vector<float> out(64);
            client.get("v", 3, 1, whole, out.data(), 4);
            EXPECT_EQ(out[63], 63.f);
            client.done();
            client.finalize();
        }
    });
}

TEST(DataSpaces, MultipleVersions) {
    Runtime::run(3, [&](Comm& world) {
        enum Role { Prod, Cons, Serv };
        Role             role  = static_cast<Role>(world.rank());
        Comm             local = world.split(role);
        std::vector<int> prod{0}, cons{1}, serv{2};
        Comm             prod_serv = Comm::create_intercomm(world, prod, serv);
        Comm             cons_serv = Comm::create_intercomm(world, cons, serv);
        Comm             prod_cons = Comm::create_intercomm(world, prod, cons);

        diy::Bounds whole(1);
        whole.max[0] = 8;

        if (role == Serv) {
            ds::Server::run(prod_serv, cons_serv);
        } else if (role == Prod) {
            ds::ProducerClient  client(prod_serv, prod_cons);
            std::vector<std::vector<std::int32_t>> kept;
            for (int v = 0; v < 3; ++v) {
                kept.emplace_back(8, v * 10);
                client.put_local("x", v, whole, kept.back().data(), 4);
            }
            client.serve_pulls();
            client.finalize();
        } else {
            ds::ConsumerClient client(cons_serv, prod_cons);
            for (int v = 2; v >= 0; --v) { // read versions out of order
                std::vector<std::int32_t> out(8);
                client.get("x", v, 1, whole, out.data(), 4);
                EXPECT_EQ(out[5], v * 10);
            }
            client.done();
            client.finalize();
        }
    });
}

// --- Bredala -----------------------------------------------------------------

namespace br = baselines::bredala;

TEST(Bredala, ContiguousPolicyRedistributesList) {
    constexpr int           n = 3, m = 4;
    constexpr std::uint64_t per_prod = 100, total = per_prod * n;

    run_pair(
        n, m,
        [&](Comm& local, Comm& ic) {
            br::Container c;
            br::Field     f;
            f.name         = "particles";
            f.policy       = br::RedistPolicy::Contiguous;
            f.elem         = sizeof(float) * 3;
            f.global_count = total;
            f.offset       = per_prod * static_cast<std::uint64_t>(local.rank());
            f.data.resize(per_prod * f.elem);
            auto* p = reinterpret_cast<float*>(f.data.data());
            for (std::uint64_t i = 0; i < per_prod; ++i) {
                auto gid     = static_cast<float>(f.offset + i);
                p[i * 3]     = gid;
                p[i * 3 + 1] = gid + 0.5f;
                p[i * 3 + 2] = gid + 0.75f;
            }
            c.append(std::move(f));
            br::redistribute_producer(c, local, ic);
        },
        [&](Comm& local, Comm& ic) {
            br::Container c;
            br::Field     f;
            f.name         = "particles";
            f.policy       = br::RedistPolicy::Contiguous;
            f.elem         = sizeof(float) * 3;
            f.global_count = total;
            c.append(std::move(f));
            br::redistribute_consumer(c, local, ic);

            const auto& rf = *c.find("particles");
            auto        lo = total * static_cast<std::uint64_t>(local.rank()) / m;
            auto        hi = total * static_cast<std::uint64_t>(local.rank() + 1) / m;
            EXPECT_EQ(rf.offset, lo);
            EXPECT_EQ(rf.count(), hi - lo);
            const auto* p = reinterpret_cast<const float*>(rf.data.data());
            for (std::uint64_t i = 0; i < hi - lo; ++i) {
                ASSERT_EQ(p[i * 3], static_cast<float>(lo + i));
                ASSERT_EQ(p[i * 3 + 2], static_cast<float>(lo + i) + 0.75f);
            }
        });
}

TEST(Bredala, BBoxPolicyRedistributesGrid) {
    constexpr int          n = 4, m = 3;
    constexpr std::int64_t rows = 18, cols = 12;
    const diy::Bounds      dom = domain2(rows, cols);
    diy::RegularDecomposer pdec(dom, n);

    run_pair(
        n, m,
        [&](Comm& local, Comm& ic) {
            br::Container c;
            br::Field     f;
            f.name   = "grid";
            f.policy = br::RedistPolicy::BBox;
            f.elem   = 8;
            f.domain = dom;
            f.bounds = pdec.block_bounds(local.rank());
            f.data.resize(f.bounds.size() * 8);
            auto*       v = reinterpret_cast<std::uint64_t*>(f.data.data());
            std::size_t k = 0;
            for (auto r = f.bounds.min[0]; r < f.bounds.max[0]; ++r)
                for (auto cc = f.bounds.min[1]; cc < f.bounds.max[1]; ++cc)
                    v[k++] = static_cast<std::uint64_t>(r * cols + cc);
            c.append(std::move(f));
            br::redistribute_producer(c, local, ic);
        },
        [&](Comm& local, Comm& ic) {
            br::Container c;
            br::Field     f;
            f.name   = "grid";
            f.policy = br::RedistPolicy::BBox;
            f.elem   = 8;
            f.domain = dom;
            c.append(std::move(f));
            br::redistribute_consumer(c, local, ic);

            const auto& rf = *c.find("grid");
            diy::RegularDecomposer cdec(dom, m);
            EXPECT_EQ(rf.bounds, cdec.block_bounds(local.rank()));
            const auto* v = reinterpret_cast<const std::uint64_t*>(rf.data.data());
            std::size_t k = 0;
            for (auto r = rf.bounds.min[0]; r < rf.bounds.max[0]; ++r)
                for (auto cc = rf.bounds.min[1]; cc < rf.bounds.max[1]; ++cc, ++k)
                    ASSERT_EQ(v[k], static_cast<std::uint64_t>(r * cols + cc));
        });
}

TEST(Bredala, MixedContainerWithPerFieldTiming) {
    constexpr int n = 2, m = 2;
    const diy::Bounds dom = domain2(8, 8);
    diy::RegularDecomposer pdec(dom, n);

    run_pair(
        n, m,
        [&](Comm& local, Comm& ic) {
            br::Container c;
            br::Field     grid;
            grid.name   = "grid";
            grid.policy = br::RedistPolicy::BBox;
            grid.elem   = 8;
            grid.domain = dom;
            grid.bounds = pdec.block_bounds(local.rank());
            grid.data.assign(grid.bounds.size() * 8, std::byte{1});
            c.append(std::move(grid));

            br::Field parts;
            parts.name         = "particles";
            parts.policy       = br::RedistPolicy::Contiguous;
            parts.elem         = 12;
            parts.global_count = 20;
            parts.offset       = static_cast<std::uint64_t>(local.rank()) * 10;
            parts.data.assign(10 * 12, std::byte{2});
            c.append(std::move(parts));

            std::map<std::string, double> times;
            br::redistribute_producer(c, local, ic, &times);
            EXPECT_TRUE(times.count("grid"));
            EXPECT_TRUE(times.count("particles"));
        },
        [&](Comm& local, Comm& ic) {
            br::Container c;
            br::Field     grid;
            grid.name   = "grid";
            grid.policy = br::RedistPolicy::BBox;
            grid.elem   = 8;
            grid.domain = dom;
            c.append(std::move(grid));
            br::Field parts;
            parts.name         = "particles";
            parts.policy       = br::RedistPolicy::Contiguous;
            parts.elem         = 12;
            parts.global_count = 20;
            c.append(std::move(parts));

            std::map<std::string, double> times;
            br::redistribute_consumer(c, local, ic, &times);
            EXPECT_EQ(times.size(), 2u);
            EXPECT_EQ(c.find("grid")->data.size(), c.find("grid")->bounds.size() * 8);
            EXPECT_EQ(c.find("particles")->count(), 10u);
        });
}
