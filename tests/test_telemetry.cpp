/// The obs telemetry subsystem: span tracing well-formedness across
/// simmpi rank lanes, near-zero disabled mode, the metrics registry, the
/// JSON model, the Chrome trace exporter, the per-phase aggregation, and
/// the L5_TRACE workflow hook.

#include <h5/h5.hpp>
#include <obs/obs.hpp>
#include <simmpi/simmpi.hpp>
#include <workflow/workflow.hpp>

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

namespace {

/// Enable tracing on a clean slate; disable and wipe on scope exit so
/// tests cannot leak state into each other.
struct TraceGuard {
    TraceGuard() {
        obs::Tracer::instance().clear();
        obs::Tracer::instance().set_enabled(true);
    }
    ~TraceGuard() {
        obs::Tracer::instance().set_enabled(false);
        obs::Tracer::instance().clear();
    }
};

std::map<int, std::vector<obs::Event>> events_by_rank(const std::vector<obs::Event>& events) {
    std::map<int, std::vector<obs::Event>> by_rank;
    for (const auto& e : events) by_rank[e.rank].push_back(e);
    return by_rank;
}

} // namespace

TEST(Telemetry, DisabledModeEmitsNothing) {
    obs::Tracer::instance().clear();
    ASSERT_FALSE(obs::Tracer::enabled());
    {
        obs::Span span("outer", "test");
        span.end_arg("bytes", 7);
        obs::instant("point", "test");
        obs::counter("gauge", "test", 42);
    }
    EXPECT_TRUE(obs::Tracer::instance().snapshot().empty());
    EXPECT_EQ(obs::Tracer::instance().dropped(), 0u);
}

TEST(Telemetry, SpanInertWhenDisabledAtConstruction) {
    obs::Tracer::instance().clear();
    auto span = std::make_unique<obs::Span>("late", "test");
    obs::Tracer::instance().set_enabled(true);
    span.reset(); // End must be suppressed: its Begin was never emitted
    obs::Tracer::instance().set_enabled(false);
    EXPECT_TRUE(obs::Tracer::instance().snapshot().empty());
    obs::Tracer::instance().clear();
}

TEST(Telemetry, SpanNestingWellFormedPerRank) {
    TraceGuard guard;
    simmpi::Runtime::run(4, [](simmpi::Comm& world) {
        obs::Span outer("outer", "test", {{"rank", static_cast<std::uint64_t>(world.rank()), nullptr}});
        {
            obs::Span inner("inner", "test");
            obs::instant("tick", "test");
        }
        world.barrier();
    });
    obs::Tracer::instance().set_enabled(false);

    auto by_rank = events_by_rank(obs::Tracer::instance().snapshot());
    for (int r = 0; r < 4; ++r) {
        ASSERT_TRUE(by_rank.count(r)) << "rank " << r << " has no lane";
        // every Begin closes in LIFO order with a matching End, and
        // timestamps never go backwards within the lane
        std::vector<const char*> stack;
        std::uint64_t            last_ts = 0;
        for (const auto& e : by_rank[r]) {
            EXPECT_GE(e.ts_ns, last_ts);
            last_ts = e.ts_ns;
            if (e.type == obs::EventType::Begin) {
                stack.push_back(e.name);
            } else if (e.type == obs::EventType::End) {
                ASSERT_FALSE(stack.empty()) << "orphan End '" << e.name << "' on rank " << r;
                EXPECT_STREQ(stack.back(), e.name) << "non-LIFO End on rank " << r;
                stack.pop_back();
            }
        }
        EXPECT_TRUE(stack.empty()) << "unclosed span on rank " << r;
        // the explicit test spans are all present in this lane
        int outer_begins = 0, inner_begins = 0, ticks = 0;
        for (const auto& e : by_rank[r]) {
            if (std::string_view(e.name) == "outer" && e.type == obs::EventType::Begin) ++outer_begins;
            if (std::string_view(e.name) == "inner" && e.type == obs::EventType::Begin) ++inner_begins;
            if (std::string_view(e.name) == "tick") ++ticks;
        }
        EXPECT_EQ(outer_begins, 1);
        EXPECT_EQ(inner_begins, 1);
        EXPECT_EQ(ticks, 1);
    }
}

TEST(Telemetry, RingOverflowDropsInsteadOfBlocking) {
    auto& tracer = obs::Tracer::instance();
    tracer.clear();
    tracer.set_capacity(16);
    tracer.set_enabled(true);
    for (int i = 0; i < 100; ++i) obs::instant("burst", "test");
    tracer.set_enabled(false);
    EXPECT_EQ(tracer.snapshot().size(), 16u);
    EXPECT_EQ(tracer.dropped(), 84u);
    tracer.set_capacity(1u << 15);
    tracer.clear();
}

TEST(Telemetry, InternIsStableAndIdempotent) {
    const char* a = obs::intern("dynamic-name");
    const char* b = obs::intern(std::string("dynamic-") + "name");
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, "dynamic-name");
}

TEST(Telemetry, ChromeExportParsesAndRoundTrips) {
    TraceGuard guard;
    simmpi::Runtime::run(2, [](simmpi::Comm& world) {
        obs::Span span("work", "test", {{"bytes", 128, nullptr}});
        world.barrier();
    });
    obs::Tracer::instance().set_enabled(false);
    auto events = obs::Tracer::instance().snapshot();
    ASSERT_FALSE(events.empty());

    std::ostringstream os;
    obs::write_chrome_trace(os, events);

    // parses as JSON, and survives a dump/parse round trip intact
    auto doc = obs::json::Value::parse(os.str());
    auto rt  = obs::json::Value::parse(doc.dump(2));
    const auto* tev  = doc.find("traceEvents");
    const auto* tev2 = rt.find("traceEvents");
    ASSERT_NE(tev, nullptr);
    ASSERT_NE(tev2, nullptr);
    ASSERT_TRUE(tev->is_array());
    EXPECT_EQ(tev->array().size(), tev2->array().size());

    // per rank lane: named metadata, balanced Begin/End, "work" present
    std::map<int, int> begins, ends;
    int                name_meta = 0, work_spans = 0;
    for (const auto& ev : tev->array()) {
        const auto* ph  = ev.find("ph");
        const auto* tid = ev.find("tid");
        ASSERT_NE(ph, nullptr);
        const int lane = tid && tid->is_number() ? static_cast<int>(tid->number()) : -2;
        if (ph->str() == "M" && ev.find("name")->str() == "thread_name") ++name_meta;
        if (ph->str() == "B") ++begins[lane];
        if (ph->str() == "E") ++ends[lane];
        if (ph->str() == "B" && ev.find("name")->str() == "work") ++work_spans;
    }
    EXPECT_GE(name_meta, 2);
    EXPECT_EQ(work_spans, 2); // one per rank
    for (const auto& [lane, n] : begins) EXPECT_EQ(n, ends[lane]) << "lane " << lane;
}

TEST(Telemetry, PhaseTotalsPairsSpansAndSumsBytes) {
    std::vector<obs::Event> events;
    auto push = [&](const char* name, obs::EventType type, std::uint64_t ts, std::uint64_t bytes) {
        obs::Event e;
        e.name  = name;
        e.cat   = "test";
        e.ts_ns = ts;
        e.type  = type;
        e.rank  = 0;
        if (bytes) {
            e.nargs   = 1;
            e.args[0] = {"bytes", bytes, nullptr};
        }
        events.push_back(e);
    };
    push("a", obs::EventType::Begin, 100, 64);
    push("b", obs::EventType::Begin, 200, 0);  // nested inside a
    push("b", obs::EventType::End, 500, 32);
    push("a", obs::EventType::End, 1100, 0);
    push("i", obs::EventType::Instant, 1200, 8);

    auto phases = obs::phase_totals(events);
    ASSERT_TRUE(phases.count("a"));
    ASSERT_TRUE(phases.count("b"));
    ASSERT_TRUE(phases.count("i"));
    EXPECT_EQ(phases["a"].count, 1u);
    EXPECT_EQ(phases["a"].total_ns, 1000u);
    EXPECT_EQ(phases["a"].bytes, 64u);
    EXPECT_EQ(phases["b"].total_ns, 300u);
    EXPECT_EQ(phases["b"].bytes, 32u);
    EXPECT_EQ(phases["i"].count, 1u);
    EXPECT_EQ(phases["i"].bytes, 8u);
}

TEST(Telemetry, MetricsRegistryCountersAndHistograms) {
    obs::Registry reg;
    auto&         c = reg.counter("bytes");
    auto&         g = reg.gauge("depth");
    auto&         h = reg.histogram("lat");

    c.add(10);
    c.inc();
    g.set(5);
    g.add(-2);
    h.observe(1);
    h.observe(1000);
    h.observe(1'000'000);

    // lookup by the same name returns the same instrument
    EXPECT_EQ(&reg.counter("bytes"), &c);

    auto snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("bytes"), 11u);
    EXPECT_EQ(snap.gauges.at("depth"), 3);
    const auto& hs = snap.histograms.at("lat");
    EXPECT_EQ(hs.count, 3u);
    EXPECT_EQ(hs.sum, 1'001'001u);
    EXPECT_LE(hs.quantile(0.5), hs.quantile(0.99));
    EXPECT_GE(hs.quantile(1.0), 1'000'000u);
    EXPECT_NEAR(hs.mean(), 1'001'001.0 / 3.0, 1.0);
}

TEST(Telemetry, ScopedTimerAccumulates) {
    obs::Registry reg;
    auto&         total = reg.counter("t_ns");
    auto&         hist  = reg.histogram("t_hist");
    {
        obs::ScopedTimerNs timer(total, &hist);
    }
    {
        obs::ScopedTimerNs timer(total);
    }
    EXPECT_GT(total.value(), 0u);
    EXPECT_EQ(reg.snapshot().histograms.at("t_hist").count, 1u);
}

TEST(Telemetry, JsonParseRejectsMalformedInput) {
    EXPECT_THROW(obs::json::Value::parse("{\"a\": }"), std::runtime_error);
    EXPECT_THROW(obs::json::Value::parse("[1, 2"), std::runtime_error);
    EXPECT_THROW(obs::json::Value::parse(""), std::runtime_error);
    EXPECT_THROW(obs::json::Value::parse("{\"a\": 1} trailing"), std::runtime_error);
}

TEST(Telemetry, JsonRoundTripsEscapesAndNumbers) {
    const std::string text = R"({"s": "a\"b\\c\ndA", "n": -2.5, "i": 123456789, )"
                             R"("arr": [true, false, null], "nested": {"k": 0}})";
    auto v = obs::json::Value::parse(text);
    EXPECT_EQ(v.find("s")->str(), "a\"b\\c\nd\x41");
    EXPECT_DOUBLE_EQ(v.find("n")->number(), -2.5);
    EXPECT_DOUBLE_EQ(v.find("i")->number(), 123456789.0);
    auto rt = obs::json::Value::parse(v.dump());
    EXPECT_EQ(rt.find("arr")->array().size(), 3u);
    EXPECT_EQ(rt.find("nested")->find("k")->number(), 0.0);
    EXPECT_EQ(v.dump(), rt.dump());
}

TEST(Telemetry, WorkflowTraceEnvWritesLoadableChromeJson) {
    const auto path =
        (std::filesystem::temp_directory_path() / "l5_test_trace.json").string();
    std::filesystem::remove(path);
    obs::Tracer::instance().clear(); // only this run's events in the file
    ::setenv("L5_TRACE", path.c_str(), 1);

    workflow::run(
        {
            {"producer", 2,
             [](workflow::Context& ctx) {
                 h5::File f = h5::File::create("trace.h5", ctx.vol);
                 auto     d = f.create_dataset("v", h5::dt::int32(), h5::Dataspace({16}));
                 if (ctx.rank() == 0) {
                     std::vector<std::int32_t> v(16, 7);
                     d.write(v.data());
                 }
                 f.close();
             }},
            {"consumer", 1,
             [](workflow::Context& ctx) {
                 h5::File f = h5::File::open("trace.h5", ctx.vol);
                 auto     v = f.open_dataset("v").read_vector<std::int32_t>();
                 EXPECT_EQ(v.size(), 16u);
                 f.close();
             }},
        },
        {workflow::Link{0, 1, "*"}});

    ::unsetenv("L5_TRACE");
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear();

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "L5_TRACE did not write " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    auto doc = obs::json::Value::parse(ss.str());
    const auto* tev = doc.find("traceEvents");
    ASSERT_NE(tev, nullptr);
    EXPECT_FALSE(tev->array().empty());

    // the index / query / task phases all show up in the trace
    bool saw_index = false, saw_query = false, saw_task = false;
    for (const auto& ev : tev->array()) {
        const auto* name = ev.find("name");
        if (!name || !name->is_string()) continue;
        if (name->str() == "dist.index") saw_index = true;
        if (name->str() == "query.read") saw_query = true;
        if (name->str().rfind("task:", 0) == 0) saw_task = true;
    }
    EXPECT_TRUE(saw_index);
    EXPECT_TRUE(saw_query);
    EXPECT_TRUE(saw_task);
    std::filesystem::remove(path);
}

TEST(Telemetry, DistVolPhaseBreakdownSumsToQueryTime) {
    std::mutex              mutex;
    obs::Registry::Snapshot consumer_metrics;

    workflow::run(
        {
            {"producer", 2,
             [](workflow::Context& ctx) {
                 h5::File f = h5::File::create("phases.h5", ctx.vol);
                 auto d = f.create_dataset("v", h5::dt::uint64(), h5::Dataspace({1024}));
                 if (ctx.rank() == 0) {
                     std::vector<std::uint64_t> v(1024, 3);
                     d.write(v.data());
                 }
                 f.close();
             }},
            {"consumer", 2,
             [&](workflow::Context& ctx) {
                 h5::File f = h5::File::open("phases.h5", ctx.vol);
                 for (int r = 0; r < 3; ++r)
                     (void)f.open_dataset("v").read_vector<std::uint64_t>();
                 f.close();
                 if (ctx.rank() == 0) {
                     std::lock_guard<std::mutex> lock(mutex);
                     consumer_metrics = ctx.vol->metrics().snapshot();
                 }
             }},
        },
        {workflow::Link{0, 1, "*"}});

    const auto& c         = consumer_metrics.counters;
    const auto  query     = c.at("time_query_ns");
    const auto  intersect = c.at("time_query_intersect_ns");
    const auto  data      = c.at("time_query_data_ns");
    EXPECT_GT(query, 0u);
    // the intersect and data timers nest inside the query timer, so the
    // breakdown can never exceed the total
    EXPECT_LE(intersect + data, query);
    // and the measured sub-phases dominate a remote read: "other" (cache
    // lookups, request marshalling) is bounded by the total
    EXPECT_GT(intersect + data, 0u);
    // the registry is per-vol, i.e. per-rank: rank 0 made 3 reads
    EXPECT_EQ(consumer_metrics.histograms.at("query_latency_ns").count, 3u);
}

TEST(Telemetry, BenchScenarioJsonCarriesPhases) {
    obs::Registry reg;
    reg.counter("time_query_ns").add(1000);
    reg.counter("time_query_intersect_ns").add(300);
    reg.counter("time_query_data_ns").add(600);
    reg.counter("bytes_fetched").add(4096);
    auto snap = reg.snapshot();

    // the envelope helpers live in bench/common.*, which tests do not
    // link; this checks the underlying invariant they rely on instead:
    // phase counters reconstruct an exact breakdown from any snapshot
    const auto query     = snap.counters.at("time_query_ns");
    const auto intersect = snap.counters.at("time_query_intersect_ns");
    const auto data      = snap.counters.at("time_query_data_ns");
    EXPECT_EQ(query - intersect - data, 100u);
}
