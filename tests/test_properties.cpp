/// Property-style parameterized tests: invariants of the selection
/// algebra, the decomposer, and — most importantly — the index–serve–
/// query protocol under *irregular* producer decompositions (random
/// recursive partitions, multiple write pieces per rank, random consumer
/// queries), which is the full generality the paper claims.

#include <lowfive/lowfive.hpp>
#include <workflow/workflow.hpp>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <random>

using namespace h5;

namespace {

diy::Bounds box2(std::int64_t x0, std::int64_t x1, std::int64_t y0, std::int64_t y1) {
    diy::Bounds b(2);
    b.min = {x0, y0};
    b.max = {x1, y1};
    return b;
}

/// Recursively split `domain` into random disjoint boxes.
void random_partition(std::mt19937& rng, const diy::Bounds& domain, int depth,
                      std::vector<diy::Bounds>& out) {
    bool can_split = false;
    for (int i = 0; i < domain.dim; ++i)
        if (domain.max[static_cast<std::size_t>(i)] - domain.min[static_cast<std::size_t>(i)] >= 2)
            can_split = true;
    if (depth == 0 || !can_split) {
        out.push_back(domain);
        return;
    }
    // pick a splittable axis
    int axis;
    do {
        axis = static_cast<int>(rng() % static_cast<unsigned>(domain.dim));
    } while (domain.max[static_cast<std::size_t>(axis)] - domain.min[static_cast<std::size_t>(axis)] < 2);
    auto u   = static_cast<std::size_t>(axis);
    auto lo  = domain.min[u] + 1;
    auto hi  = domain.max[u];
    auto cut = lo + static_cast<std::int64_t>(rng() % static_cast<unsigned>(hi - lo));

    diy::Bounds left = domain, right = domain;
    left.max[u]  = cut;
    right.min[u] = cut;
    random_partition(rng, left, depth - 1, out);
    random_partition(rng, right, depth - 1, out);
}

std::uint64_t grid_value(const Extent& dims, std::int64_t x, std::int64_t y) {
    return static_cast<std::uint64_t>(x) * dims[1] + static_cast<std::uint64_t>(y);
}

} // namespace

// --- selection algebra invariants ------------------------------------------------

class SelectionProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SelectionProperty, PackUnpackIsIdentityOnSelection) {
    std::mt19937 rng(GetParam());
    Extent       dims{8 + rng() % 20, 8 + rng() % 20};
    Dataspace    sp(dims);
    sp.select_none();
    std::vector<diy::Bounds> boxes;
    diy::Bounds              domain(2);
    domain.max = {static_cast<std::int64_t>(dims[0]), static_cast<std::int64_t>(dims[1])};
    random_partition(rng, domain, 3, boxes);
    // select a random subset of the partition (disjoint by construction)
    std::vector<diy::Bounds> chosen;
    for (const auto& b : boxes)
        if (rng() % 2) {
            sp.add_box(b);
            chosen.push_back(b);
        }
    if (sp.npoints() == 0) return;

    std::vector<std::uint32_t> full(dims[0] * dims[1]);
    for (std::size_t i = 0; i < full.size(); ++i) full[i] = static_cast<std::uint32_t>(i * 7 + 1);

    std::vector<std::uint32_t> packed(sp.npoints());
    pack_selection(sp, full.data(), 4, packed.data());
    std::vector<std::uint32_t> restored(full.size(), 0);
    unpack_selection(sp, packed.data(), 4, restored.data());

    for (std::uint64_t x = 0; x < dims[0]; ++x)
        for (std::uint64_t y = 0; y < dims[1]; ++y) {
            bool in = false;
            for (const auto& b : chosen)
                if (b.contains({static_cast<std::int64_t>(x), static_cast<std::int64_t>(y)})) in = true;
            auto idx = x * dims[1] + y;
            ASSERT_EQ(restored[idx], in ? full[idx] : 0u);
        }
}

TEST_P(SelectionProperty, ExtractFromPackedMatchesDirectPack) {
    std::mt19937 rng(GetParam() + 1000);
    Extent       dims{10 + rng() % 20, 10 + rng() % 20};

    // the piece covers a random box; want is a random sub-box of it
    auto rand_box_within = [&](const diy::Bounds& outer) {
        diy::Bounds b(2);
        for (int i = 0; i < 2; ++i) {
            auto u  = static_cast<std::size_t>(i);
            auto lo = outer.min[u] + static_cast<std::int64_t>(
                          rng() % static_cast<unsigned>(outer.max[u] - outer.min[u]));
            auto hi = lo + 1 + static_cast<std::int64_t>(
                          rng() % static_cast<unsigned>(outer.max[u] - lo));
            b.min[u] = lo;
            b.max[u] = hi;
        }
        return b;
    };
    diy::Bounds whole(2);
    whole.max = {static_cast<std::int64_t>(dims[0]), static_cast<std::int64_t>(dims[1])};
    diy::Bounds piece_box = rand_box_within(whole);
    diy::Bounds want_box  = rand_box_within(piece_box);

    Dataspace piece(dims), want(dims);
    piece.select_box(piece_box);
    want.select_box(want_box);

    std::vector<std::uint32_t> full(dims[0] * dims[1]);
    for (std::size_t i = 0; i < full.size(); ++i) full[i] = static_cast<std::uint32_t>(i);

    std::vector<std::uint32_t> piece_packed(piece.npoints());
    pack_selection(piece, full.data(), 4, piece_packed.data());

    std::vector<std::byte> extracted;
    extract_from_packed(piece, piece_packed.data(), want, 4, extracted);

    std::vector<std::uint32_t> direct(want.npoints());
    pack_selection(want, full.data(), 4, direct.data());

    ASSERT_EQ(extracted.size(), direct.size() * 4);
    EXPECT_EQ(std::memcmp(extracted.data(), direct.data(), extracted.size()), 0);
}

TEST_P(SelectionProperty, IntersectionNpointsSymmetric) {
    std::mt19937 rng(GetParam() + 2000);
    Extent       dims{16, 16};
    Dataspace    a(dims), b(dims);
    a.select_none();
    b.select_none();
    std::vector<diy::Bounds> pa, pb;
    diy::Bounds              domain = box2(0, 16, 0, 16);
    random_partition(rng, domain, 2, pa);
    random_partition(rng, domain, 2, pb);
    for (std::size_t i = 0; i < pa.size(); i += 2) a.add_box(pa[i]);
    for (std::size_t i = 0; i < pb.size(); i += 2) b.add_box(pb[i]);

    auto          ab = intersect_selections(a, b);
    auto          ba = intersect_selections(b, a);
    std::uint64_t nab = 0, nba = 0;
    for (const auto& x : ab) nab += x.size();
    for (const auto& x : ba) nba += x.size();
    EXPECT_EQ(nab, nba);

    // intersection never exceeds either operand
    EXPECT_LE(nab, a.npoints());
    EXPECT_LE(nab, b.npoints());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionProperty, ::testing::Range(1u, 16u));

// --- decomposer invariants ---------------------------------------------------------

struct DecompParam {
    int          nblocks;
    std::int64_t x, y, z;
};

class DecomposerProperty : public ::testing::TestWithParam<DecompParam> {};

TEST_P(DecomposerProperty, BlocksTileTheDomainExactly) {
    auto [n, x, y, z] = GetParam();
    diy::Bounds domain(3);
    domain.max = {x, y, z};
    diy::RegularDecomposer dec(domain, n);

    std::uint64_t total = 0;
    for (int g = 0; g < n; ++g) {
        auto b = dec.block_bounds(g);
        total += b.size();
        for (int h = g + 1; h < n; ++h)
            ASSERT_FALSE(diy::intersects(b, dec.block_bounds(h)));
    }
    EXPECT_EQ(total, domain.size());

    // every sampled point maps to the block that contains it
    std::mt19937 rng(42);
    for (int k = 0; k < 50; ++k) {
        std::array<std::int64_t, diy::max_dim> pt{
            static_cast<std::int64_t>(rng() % static_cast<unsigned>(x)),
            static_cast<std::int64_t>(rng() % static_cast<unsigned>(y)),
            static_cast<std::int64_t>(rng() % static_cast<unsigned>(z))};
        int g = dec.point_to_block(pt);
        ASSERT_GE(g, 0);
        ASSERT_TRUE(dec.block_bounds(g).contains(pt));
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, DecomposerProperty,
                         ::testing::Values(DecompParam{1, 10, 10, 10}, DecompParam{2, 9, 17, 3},
                                           DecompParam{5, 11, 7, 23}, DecompParam{6, 64, 64, 64},
                                           DecompParam{12, 30, 20, 10}, DecompParam{16, 17, 17, 17},
                                           DecompParam{48, 100, 60, 30},
                                           DecompParam{7, 13, 29, 5}));

// --- irregular-decomposition redistribution (full protocol generality) -----------

class IrregularRedistribution : public ::testing::TestWithParam<unsigned> {};

TEST_P(IrregularRedistribution, RandomPiecesRandomQueries) {
    const unsigned seed = GetParam();
    std::mt19937   setup_rng(seed);

    const Extent dims{24 + setup_rng() % 16, 24 + setup_rng() % 16};
    const int    nprod = 2 + static_cast<int>(setup_rng() % 4);
    const int    ncons = 1 + static_cast<int>(setup_rng() % 4);

    // random disjoint partition, leaves dealt round-robin to producers:
    // producers hold MULTIPLE non-rectangular-union pieces each
    std::vector<diy::Bounds> leaves;
    diy::Bounds              domain = box2(0, static_cast<std::int64_t>(dims[0]), 0,
                                           static_cast<std::int64_t>(dims[1]));
    random_partition(setup_rng, domain, 4, leaves);

    workflow::run(
        {
            {"producer", nprod,
             [&](workflow::Context& ctx) {
                 File f = File::create("irregular.h5", ctx.vol);
                 auto d = f.create_dataset("g", dt::uint64(), Dataspace(dims));
                 for (std::size_t i = 0; i < leaves.size(); ++i) {
                     if (static_cast<int>(i % static_cast<std::size_t>(nprod)) != ctx.rank())
                         continue;
                     const auto& leaf = leaves[i];
                     Dataspace   sel(dims);
                     sel.select_box(leaf);
                     std::vector<std::uint64_t> vals(leaf.size());
                     std::size_t                k = 0;
                     for (auto x = leaf.min[0]; x < leaf.max[0]; ++x)
                         for (auto y = leaf.min[1]; y < leaf.max[1]; ++y)
                             vals[k++] = grid_value(dims, x, y);
                     d.write(vals.data(), sel);
                 }
                 f.close();
             }},
            {"consumer", ncons,
             [&](workflow::Context& ctx) {
                 std::mt19937 rng(seed * 100 + static_cast<unsigned>(ctx.rank()));
                 File         f = File::open("irregular.h5", ctx.vol);
                 auto         d = f.open_dataset("g");
                 for (int q = 0; q < 3; ++q) {
                     // random query box
                     auto x0 = static_cast<std::int64_t>(rng() % dims[0]);
                     auto y0 = static_cast<std::int64_t>(rng() % dims[1]);
                     auto x1 = x0 + 1 + static_cast<std::int64_t>(rng() % (dims[0] - static_cast<std::uint64_t>(x0)));
                     auto y1 = y0 + 1 + static_cast<std::int64_t>(rng() % (dims[1] - static_cast<std::uint64_t>(y0)));
                     Dataspace sel(dims);
                     sel.select_box(box2(x0, x1, y0, y1));
                     auto        vals = d.read_vector<std::uint64_t>(sel);
                     std::size_t k    = 0;
                     for (auto x = x0; x < x1; ++x)
                         for (auto y = y0; y < y1; ++y, ++k)
                             ASSERT_EQ(vals[k], grid_value(dims, x, y))
                                 << "seed " << seed << " query " << q << " at (" << x << "," << y << ")";
                 }
                 f.close();
             }},
        },
        {workflow::Link{0, 1, "*"}});
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrregularRedistribution, ::testing::Range(1u, 13u));

// --- 3-d irregular redistribution, with and without zero-copy ------------------

class IrregularRedistribution3d : public ::testing::TestWithParam<unsigned> {};

TEST_P(IrregularRedistribution3d, RandomBoxesValidate) {
    const unsigned seed = GetParam();
    std::mt19937   setup_rng(seed * 31 + 5);

    const std::uint64_t n = 10 + setup_rng() % 8;
    const Extent        dims{n, n, n};
    const int           nprod    = 2 + static_cast<int>(setup_rng() % 3);
    const int           ncons    = 1 + static_cast<int>(setup_rng() % 3);
    const bool          zerocopy = (seed % 2) == 0;

    std::vector<diy::Bounds> leaves;
    diy::Bounds              domain(3);
    domain.max = {static_cast<std::int64_t>(n), static_cast<std::int64_t>(n),
                  static_cast<std::int64_t>(n)};
    random_partition(setup_rng, domain, 4, leaves);

    auto value_at = [&](std::int64_t x, std::int64_t y, std::int64_t z) {
        return (static_cast<std::uint64_t>(x) * n + static_cast<std::uint64_t>(y)) * n
               + static_cast<std::uint64_t>(z);
    };

    workflow::Options opts;
    opts.mode = workflow::Mode::in_situ();
    if (zerocopy) opts.zerocopy = {{"*", "*"}};

    workflow::run(
        {
            {"producer", nprod,
             [&](workflow::Context& ctx) {
                 // zero-copy contract: buffers must outlive the close
                 std::vector<std::vector<std::uint64_t>> kept;
                 File f = File::create("irr3.h5", ctx.vol);
                 auto d = f.create_dataset("g", dt::uint64(), Dataspace(dims));
                 for (std::size_t i = 0; i < leaves.size(); ++i) {
                     if (static_cast<int>(i % static_cast<std::size_t>(nprod)) != ctx.rank())
                         continue;
                     const auto& leaf = leaves[i];
                     Dataspace   sel(dims);
                     sel.select_box(leaf);
                     kept.emplace_back(leaf.size());
                     std::size_t k = 0;
                     for (auto x = leaf.min[0]; x < leaf.max[0]; ++x)
                         for (auto y = leaf.min[1]; y < leaf.max[1]; ++y)
                             for (auto z = leaf.min[2]; z < leaf.max[2]; ++z)
                                 kept.back()[k++] = value_at(x, y, z);
                     d.write(kept.back().data(), sel);
                 }
                 f.close();
             }},
            {"consumer", ncons,
             [&](workflow::Context& ctx) {
                 std::mt19937 rng(seed * 1000 + static_cast<unsigned>(ctx.rank()));
                 File         f = File::open("irr3.h5", ctx.vol);
                 auto         d = f.open_dataset("g");
                 for (int q = 0; q < 2; ++q) {
                     diy::Bounds box(3);
                     for (int i = 0; i < 3; ++i) {
                         auto u   = static_cast<std::size_t>(i);
                         box.min[u] = static_cast<std::int64_t>(rng() % n);
                         box.max[u] = box.min[u] + 1
                                      + static_cast<std::int64_t>(
                                            rng() % (n - static_cast<std::uint64_t>(box.min[u])));
                     }
                     Dataspace sel(dims);
                     sel.select_box(box);
                     auto        vals = d.read_vector<std::uint64_t>(sel);
                     std::size_t k    = 0;
                     for (auto x = box.min[0]; x < box.max[0]; ++x)
                         for (auto y = box.min[1]; y < box.max[1]; ++y)
                             for (auto z = box.min[2]; z < box.max[2]; ++z, ++k)
                                 ASSERT_EQ(vals[k], value_at(x, y, z))
                                     << "seed " << seed << (zerocopy ? " (zerocopy)" : "");
                 }
                 f.close();
             }},
        },
        {workflow::Link{0, 1, "*"}}, opts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrregularRedistribution3d, ::testing::Range(1u, 9u));

// --- differential transport oracle ------------------------------------------------
//
// The paper's core claim is that switching L5_MODE between in-situ and
// file transport is *seamless*: task code is unchanged and consumers see
// identical bytes. This seeded differential suite checks exactly that —
// a randomized workflow (producer/consumer counts, domain shape, random
// disjoint decomposition, union-of-boxes hyperslab queries, atomic and
// compound datatypes) runs once through the memory data plane and once
// through physical files (passthru), and the consumers' raw reply bytes
// must agree bit-for-bit. A failure prints the seed: replay with the
// same GetParam() value (and L5_SCHED, if scheduled) to reproduce.

namespace {

/// One randomized workflow pass; returns every consumer's replies,
/// concatenated in (consumer rank, query index) order.
template <class T, class ValueFn>
std::vector<std::byte> run_differential(unsigned seed, workflow::Mode mode,
                                        const h5::Datatype& type, ValueFn value_at) {
    std::mt19937 setup(seed * 2654435761u + 97);

    const Extent dims{6 + setup() % 18, 6 + setup() % 18};
    const int    nprod = 1 + static_cast<int>(setup() % 4);
    const int    ncons = 1 + static_cast<int>(setup() % 3);

    std::vector<diy::Bounds> leaves;
    diy::Bounds domain = box2(0, static_cast<std::int64_t>(dims[0]), 0,
                              static_cast<std::int64_t>(dims[1]));
    random_partition(setup, domain, 3, leaves);

    const std::string fname =
        "diff_" + std::to_string(seed) + (mode.memory ? "_mem" : "_file") + ".h5";

    std::vector<std::vector<std::byte>> got(static_cast<std::size_t>(ncons));
    workflow::Options opts;
    opts.mode = mode;
    workflow::run(
        {
            {"producer", nprod,
             [&](workflow::Context& ctx) {
                 File f = File::create(fname, ctx.vol);
                 auto d = f.create_dataset("g", type, Dataspace(dims));
                 for (std::size_t i = 0; i < leaves.size(); ++i) {
                     if (static_cast<int>(i % static_cast<std::size_t>(nprod)) != ctx.rank())
                         continue;
                     const auto& leaf = leaves[i];
                     Dataspace   sel(dims);
                     sel.select_box(leaf);
                     std::vector<T> vals(leaf.size());
                     std::size_t    k = 0;
                     for (auto x = leaf.min[0]; x < leaf.max[0]; ++x)
                         for (auto y = leaf.min[1]; y < leaf.max[1]; ++y)
                             vals[k++] = value_at(x, y);
                     d.write(vals.data(), sel);
                 }
                 f.close();
             }},
            {"consumer", ncons,
             [&](workflow::Context& ctx) {
                 // query stream depends only on (seed, rank): both modes
                 // replay the identical selections
                 std::mt19937 rng(seed * 131071u + static_cast<unsigned>(ctx.rank()));
                 File         f = File::open(fname, ctx.vol);
                 auto         d = f.open_dataset("g");
                 auto&        mine = got[static_cast<std::size_t>(ctx.rank())];
                 for (int q = 0; q < 3; ++q) {
                     // union of disjoint boxes from a fresh random
                     // partition: a genuinely irregular hyperslab
                     std::vector<diy::Bounds> qleaves;
                     random_partition(rng, domain, 2, qleaves);
                     Dataspace sel(dims);
                     sel.select_none();
                     for (std::size_t i = 0; i < qleaves.size(); ++i)
                         if (rng() % 2) sel.add_box(qleaves[i]);
                     if (sel.npoints() == 0) sel.select_box(qleaves[0]);
                     auto vals = d.read_vector<T>(sel);
                     const auto* p = reinterpret_cast<const std::byte*>(vals.data());
                     mine.insert(mine.end(), p, p + vals.size() * sizeof(T));
                 }
                 f.close();
             }},
        },
        {workflow::Link{0, 1, "*"}}, opts);

    if (mode.passthru) std::remove(fname.c_str());

    std::vector<std::byte> all;
    for (const auto& c : got) all.insert(all.end(), c.begin(), c.end());
    return all;
}

template <class T, class ValueFn>
void expect_modes_agree(unsigned seed, const h5::Datatype& type, ValueFn value_at) {
    SCOPED_TRACE("differential seed " + std::to_string(seed));
    h5::PfsModel::instance().configure(0, 0, 0); // no simulated PFS latency
    auto mem  = run_differential<T>(seed, workflow::Mode::in_situ(), type, value_at);
    auto file = run_differential<T>(seed, workflow::Mode::file(), type, value_at);
    ASSERT_EQ(mem.size(), file.size()) << "reply sizes diverged at seed " << seed;
    EXPECT_EQ(std::memcmp(mem.data(), file.data(), mem.size()), 0)
        << "memory-mode bytes differ from the file oracle at seed " << seed;
}

// padding-free on purpose: the memory plane ships raw struct bytes while
// the file oracle converts member-by-member, so padding bytes are not part
// of the seamless-transport contract and must not participate in memcmp
struct DiffPair {
    double        b;
    std::uint32_t a;
    std::uint32_t c;
};
static_assert(sizeof(DiffPair) == 16, "DiffPair must have no padding");

h5::Datatype diff_pair_type() {
    return h5::Datatype::compound(sizeof(DiffPair))
        .insert("b", offsetof(DiffPair, b), dt::float64())
        .insert("a", offsetof(DiffPair, a), dt::uint32())
        .insert("c", offsetof(DiffPair, c), dt::uint32());
}

} // namespace

class DifferentialTransport : public ::testing::TestWithParam<unsigned> {};

TEST_P(DifferentialTransport, Uint32MatchesFileOracle) {
    expect_modes_agree<std::uint32_t>(GetParam(), dt::uint32(), [](std::int64_t x, std::int64_t y) {
        return static_cast<std::uint32_t>(x * 131 + y);
    });
}

TEST_P(DifferentialTransport, Uint64MatchesFileOracle) {
    expect_modes_agree<std::uint64_t>(
        GetParam() + 100, dt::uint64(), [](std::int64_t x, std::int64_t y) {
            return static_cast<std::uint64_t>(x) * 1000003u + static_cast<std::uint64_t>(y);
        });
}

TEST_P(DifferentialTransport, Float32MatchesFileOracle) {
    expect_modes_agree<float>(GetParam() + 200, dt::float32(), [](std::int64_t x, std::int64_t y) {
        return static_cast<float>(x) + static_cast<float>(y) * 0.5f;
    });
}

TEST_P(DifferentialTransport, Float64MatchesFileOracle) {
    expect_modes_agree<double>(GetParam() + 300, dt::float64(), [](std::int64_t x, std::int64_t y) {
        return static_cast<double>(x) * 1.25 + static_cast<double>(y) / 7.0;
    });
}

TEST_P(DifferentialTransport, CompoundMatchesFileOracle) {
    expect_modes_agree<DiffPair>(
        GetParam() + 400, diff_pair_type(), [](std::int64_t x, std::int64_t y) {
            return DiffPair{static_cast<double>(x) + static_cast<double>(y) / 7.0,
                            static_cast<std::uint32_t>(x * 31 + y),
                            static_cast<std::uint32_t>(x ^ (y << 3))};
        });
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTransport, ::testing::Range(1u, 7u));

// --- multi-step streaming differential oracle ----------------------------------------
//
// The streaming transport extends the seamless-transport contract across
// time: a block-policy (lossless) streamed drain through the memory data
// plane must deliver, step by step, the same bytes as writing each step
// to its own physical file and reading the files back sequentially. The
// producer decomposition, the payload, and the consumers' irregular
// hyperslab queries are all reseeded per step, so any cross-step state
// leak (a stale intersect-cache entry, a snapshot mutated after publish,
// a misrouted step) breaks the byte comparison.

namespace {

constexpr int kStreamSteps   = 3;
constexpr int kStreamQueries = 2;

std::uint64_t stream_value_at(std::int64_t x, std::int64_t y, int step) {
    return static_cast<std::uint64_t>(step) * 1000000u
           + static_cast<std::uint64_t>(x) * 1000u + static_cast<std::uint64_t>(y);
}

/// Write one step's dataset: seeded random disjoint decomposition, each
/// leaf owned by a producer rank round-robin.
void write_stream_step(workflow::Context& ctx, h5::File& f, unsigned seed, int step,
                       const Extent& dims, const diy::Bounds& domain) {
    auto         d = f.create_dataset("g", dt::uint64(), Dataspace(dims));
    std::mt19937 rng(seed * 7919u + static_cast<unsigned>(step));
    std::vector<diy::Bounds> leaves;
    random_partition(rng, domain, 3, leaves);
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        if (static_cast<int>(i % static_cast<std::size_t>(ctx.size())) != ctx.rank()) continue;
        const auto& leaf = leaves[i];
        Dataspace   sel(dims);
        sel.select_box(leaf);
        std::vector<std::uint64_t> vals(leaf.size());
        std::size_t                k = 0;
        for (auto x = leaf.min[0]; x < leaf.max[0]; ++x)
            for (auto y = leaf.min[1]; y < leaf.max[1]; ++y)
                vals[k++] = stream_value_at(x, y, step);
        d.write(vals.data(), sel);
    }
}

/// Read one step back with the consumer's seeded irregular queries and
/// append the raw reply bytes.
void query_stream_step(h5::File& f, std::mt19937& rng, const Extent& dims,
                       const diy::Bounds& domain, std::vector<std::byte>& out) {
    auto d = f.open_dataset("g");
    for (int q = 0; q < kStreamQueries; ++q) {
        std::vector<diy::Bounds> qleaves;
        random_partition(rng, domain, 2, qleaves);
        Dataspace sel(dims);
        sel.select_none();
        for (std::size_t i = 0; i < qleaves.size(); ++i)
            if (rng() % 2) sel.add_box(qleaves[i]);
        if (sel.npoints() == 0) sel.select_box(qleaves[0]);
        auto        vals = d.read_vector<std::uint64_t>(sel);
        const auto* p    = reinterpret_cast<const std::byte*>(vals.data());
        out.insert(out.end(), p, p + vals.size() * sizeof(std::uint64_t));
    }
}

/// The streamed pass: one stream, kStreamSteps published snapshots,
/// block policy (lossless) so the drain sees every step in order.
std::vector<std::byte> run_stream_pass(unsigned seed, int nprod, int ncons,
                                       const Extent& dims, const diy::Bounds& domain) {
    std::vector<std::vector<std::byte>> got(static_cast<std::size_t>(ncons));
    workflow::run(
        {
            {"producer", nprod,
             [&](workflow::Context& ctx) {
                 lowfive::stream::Writer w(ctx.vol, "stream_diff.h5");
                 for (int t = 0; t < kStreamSteps; ++t) {
                     write_stream_step(ctx, w.begin_step(), seed, t, dims, domain);
                     w.end_step();
                 }
                 w.close();
             }},
            {"consumer", ncons,
             [&](workflow::Context& ctx) {
                 std::mt19937 rng(seed * 131071u + static_cast<unsigned>(ctx.rank()));
                 auto&        mine = got[static_cast<std::size_t>(ctx.rank())];
                 lowfive::stream::Reader r(ctx.vol, "stream_diff.h5");
                 int t = 0;
                 while (r.next_step()) {
                     EXPECT_EQ(r.current_step().value(), static_cast<std::uint64_t>(t));
                     query_stream_step(r.file(), rng, dims, domain, mine);
                     ++t;
                 }
                 EXPECT_EQ(t, kStreamSteps); // block policy: lossless
                 r.close();
             }},
        },
        {workflow::Link{0, 1, "*", "block", 2}});

    std::vector<std::byte> all;
    for (const auto& c : got) all.insert(all.end(), c.begin(), c.end());
    return all;
}

/// The oracle pass: the same steps written sequentially, one physical
/// file per step, read back through the native VOL.
std::vector<std::byte> run_file_steps_pass(unsigned seed, int nprod, int ncons,
                                           const Extent& dims, const diy::Bounds& domain) {
    std::vector<std::vector<std::byte>> got(static_cast<std::size_t>(ncons));
    workflow::Options opts;
    opts.mode = workflow::Mode::file();
    auto fname = [&](int t) {
        return "stream_diff_" + std::to_string(seed) + "_" + std::to_string(t) + ".h5";
    };
    workflow::run(
        {
            {"producer", nprod,
             [&](workflow::Context& ctx) {
                 for (int t = 0; t < kStreamSteps; ++t) {
                     File f = File::create(fname(t), ctx.vol);
                     write_stream_step(ctx, f, seed, t, dims, domain);
                     f.close();
                 }
             }},
            {"consumer", ncons,
             [&](workflow::Context& ctx) {
                 std::mt19937 rng(seed * 131071u + static_cast<unsigned>(ctx.rank()));
                 auto&        mine = got[static_cast<std::size_t>(ctx.rank())];
                 for (int t = 0; t < kStreamSteps; ++t) {
                     File f = File::open(fname(t), ctx.vol);
                     query_stream_step(f, rng, dims, domain, mine);
                     f.close();
                 }
             }},
        },
        {workflow::Link{0, 1, "*", "", 0}}, opts);

    for (int t = 0; t < kStreamSteps; ++t) std::remove(fname(t).c_str());

    std::vector<std::byte> all;
    for (const auto& c : got) all.insert(all.end(), c.begin(), c.end());
    return all;
}

} // namespace

class StreamDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(StreamDifferential, DrainMatchesPerStepFileOracle) {
    const unsigned seed = GetParam();
    SCOPED_TRACE("stream differential seed " + std::to_string(seed));
    h5::PfsModel::instance().configure(0, 0, 0); // no simulated PFS latency

    std::mt19937 setup(seed * 2654435761u + 1013);
    const Extent dims{6 + setup() % 14, 6 + setup() % 14};
    const int    nprod = 1 + static_cast<int>(setup() % 3);
    const int    ncons = 1 + static_cast<int>(setup() % 2);
    diy::Bounds  domain = box2(0, static_cast<std::int64_t>(dims[0]), 0,
                               static_cast<std::int64_t>(dims[1]));

    auto mem  = run_stream_pass(seed, nprod, ncons, dims, domain);
    auto file = run_file_steps_pass(seed, nprod, ncons, dims, domain);
    ASSERT_EQ(mem.size(), file.size()) << "reply sizes diverged at seed " << seed;
    EXPECT_EQ(std::memcmp(mem.data(), file.data(), mem.size()), 0)
        << "streamed drain differs from the per-step file oracle at seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamDifferential, ::testing::Range(1u, 6u));

// --- glob properties -----------------------------------------------------------------

TEST(GlobProperty, PrefixStarSuffix) {
    std::mt19937 rng(7);
    for (int k = 0; k < 50; ++k) {
        std::string s;
        for (int i = 0; i < static_cast<int>(rng() % 12); ++i)
            s.push_back(static_cast<char>('a' + rng() % 26));
        // every string matches "*", itself, and prefix+"*"
        EXPECT_TRUE(lowfive::glob_match("*", s));
        EXPECT_TRUE(lowfive::glob_match(s, s));
        if (!s.empty()) {
            EXPECT_TRUE(lowfive::glob_match(s.substr(0, s.size() / 2) + "*", s));
            EXPECT_TRUE(lowfive::glob_match("*" + s.substr(s.size() / 2), s));
            std::string q = s;
            q[rng() % q.size()] = '?';
            EXPECT_TRUE(lowfive::glob_match(q, s));
        }
    }
}
