/// MVCC snapshot index (ROADMAP item 2): store-level unit tests for the
/// publish/pin/GC invariants and the serve-lock-after-pin lint,
/// raw-thread races (pin/read/unpin vs publish/retire/GC — the TSan
/// tree runs these under -R Mvcc), and seeded end-to-end property
/// workflows proving every remote read is byte-identical to the exact
/// version it pinned while rewrites race it, and that neither the
/// producer's live-snapshot set nor the consumer's producer-set cache
/// grows unboundedly over long streams.

#include <check/check.hpp>
#include <lowfive/lowfive.hpp>
#include <lowfive/mvcc.hpp>
#include <obs/obs.hpp>
#include <workflow/workflow.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

using namespace lowfive;
using simmpi::SchedConfig;
using workflow::Context;
using workflow::Link;
using workflow::Options;

namespace {

/// A tiny per-version index payload: every entry encodes the version in
/// its bounds, so a reader can prove a pinned snapshot is internally
/// consistent (no mixing of two publishes).
mvcc::IndexMap make_index(std::uint64_t v, std::size_t entries = 4) {
    mvcc::IndexMap m;
    auto&          e = m["/v"];
    for (std::size_t i = 0; i < entries; ++i) {
        diy::Bounds b(1);
        b.min[0] = static_cast<std::int64_t>(v);
        b.max[0] = static_cast<std::int64_t>(v + i);
        e.emplace_back(b, static_cast<int>(v % 7));
    }
    return m;
}

/// The version encoded in a snapshot's index; ~0 when entries disagree
/// (a torn snapshot — must never happen).
std::uint64_t index_version(const mvcc::Snapshot& s) {
    const auto* e = s.index_for("/v");
    if (!e || e->empty()) return 0;
    const auto v = static_cast<std::uint64_t>((*e)[0].first.min[0]);
    for (const auto& [b, rank] : *e)
        if (static_cast<std::uint64_t>(b.min[0]) != v) return ~std::uint64_t(0);
    return v;
}

/// Arm/disarm the lock lint for one test body.
struct LintGuard {
    explicit LintGuard(bool armed) { mvcc::set_lock_lint(armed); }
    ~LintGuard() { mvcc::set_lock_lint(false); }
};

} // namespace

// --- store: publish / pin / GC invariants -------------------------------------

TEST(MvccStore, PublishInstallsMonotonicVersionsAndPinReadsThem) {
    mvcc::SnapshotStore store;
    EXPECT_FALSE(store.pin("f"));
    EXPECT_EQ(store.live_snapshots(), 0u);

    auto p1 = store.publish("f", nullptr, make_index(1), 100);
    ASSERT_TRUE(p1);
    EXPECT_EQ(p1->version(), 1u);
    EXPECT_EQ(p1->publish_ns(), 100u);
    EXPECT_EQ(p1->name(), "f");
    p1.release();

    auto p2 = store.publish("f", nullptr, make_index(2), 200);
    EXPECT_EQ(p2->version(), 2u);
    p2.release();

    auto cur = store.pin("f");
    ASSERT_TRUE(cur);
    EXPECT_EQ(cur->version(), 2u);
    EXPECT_EQ(index_version(*cur), 2u);
    EXPECT_EQ(cur->index_for("/nope"), nullptr);
    // v1 was unpinned when v2 superseded it: GC'd at publish
    EXPECT_EQ(store.live_snapshots(), 1u);
}

TEST(MvccStore, SupersededVersionSurvivesExactlyUntilItsLastUnpin) {
    mvcc::SnapshotStore store;
    store.publish("f", nullptr, make_index(1), 0).release();

    auto held  = store.pin("f");
    auto held2 = store.pin("f"); // two readers of v1
    store.publish("f", nullptr, make_index(2), 0).release();

    // v1 is superseded but pinned: still live, still byte-identical
    EXPECT_EQ(store.live_snapshots(), 2u);
    EXPECT_EQ(held->version(), 1u);
    EXPECT_EQ(index_version(*held), 1u);

    held.release();
    EXPECT_EQ(store.live_snapshots(), 2u); // second pin still holds it
    EXPECT_EQ(index_version(*held2), 1u);
    held2.release(); // the GC-on-last-unpin edge
    EXPECT_EQ(store.live_snapshots(), 1u);
    EXPECT_EQ(store.pin("f")->version(), 2u);
}

TEST(MvccStore, ExactVersionPinHitsCurrentAndSupersededAndMissesGone) {
    mvcc::SnapshotStore store;
    store.publish("f", nullptr, make_index(1), 0).release();
    auto held = store.pin("f", 1);
    ASSERT_TRUE(held);
    store.publish("f", nullptr, make_index(2), 0).release();

    EXPECT_EQ(store.pin("f", 2)->version(), 2u);   // current: lock-free path
    auto old = store.pin("f", 1);                  // superseded: live-set path
    ASSERT_TRUE(old);
    EXPECT_EQ(index_version(*old), 1u);
    EXPECT_FALSE(store.pin("f", 5)); // never published
    EXPECT_FALSE(store.pin("g", 1)); // unknown name

    old.release();
    held.release(); // last pin of v1: GC
    EXPECT_FALSE(store.pin("f", 1));
    EXPECT_EQ(store.live_snapshots(), 1u);
}

TEST(MvccStore, RetireDropsCurrentAndOptionallyForgetsTheVersionCounter) {
    mvcc::SnapshotStore store;
    store.publish("s", nullptr, make_index(1), 0).release();
    store.retire("s");
    EXPECT_FALSE(store.pin("s"));
    EXPECT_EQ(store.live_snapshots(), 0u);
    // counter kept: a republish of the same name continues the sequence
    EXPECT_EQ(store.publish("s", nullptr, make_index(2), 0)->version(), 2u);

    store.retire("s", /*forget_versions=*/true);
    // counter forgotten (step names are never republished; bounded
    // memory over long streams): the sequence restarts
    EXPECT_EQ(store.publish("s", nullptr, make_index(1), 0)->version(), 1u);
    store.retire("s", true);
    EXPECT_EQ(store.live_snapshots(), 0u);
    store.retire("s", true); // idempotent on a retired name
}

TEST(MvccStore, RetiredButPinnedVersionStaysReadableUntilUnpin) {
    mvcc::SnapshotStore store;
    store.publish("s", nullptr, make_index(7), 0).release();
    auto held = store.pin("s");
    store.retire("s", true); // window eviction while a reader holds it
    EXPECT_FALSE(store.pin("s"));
    EXPECT_EQ(store.live_snapshots(), 1u);
    EXPECT_EQ(index_version(*held), 7u);
    EXPECT_TRUE(store.pin("s", held->version())); // exact-version pin still finds it
    held.release();
    EXPECT_EQ(store.live_snapshots(), 0u);
}

TEST(MvccStore, MetricsBalanceAcrossTheWholeLifecycle) {
    obs::Registry reg;
    auto&         live = reg.gauge("n_snapshots_live");
    auto&         pins = reg.counter("n_snapshot_pins");
    auto&         gc   = reg.counter("n_snapshot_gc");

    mvcc::SnapshotStore store(mvcc::SnapshotStore::Metrics{&live, &pins, &gc});
    store.publish("a", nullptr, make_index(1), 0).release(); // pin #1
    auto held = store.pin("a");                              // pin #2
    store.publish("a", nullptr, make_index(2), 0).release(); // pin #3
    EXPECT_EQ(live.value(), 2);
    held.release(); // GC #1
    EXPECT_EQ(live.value(), 1);
    store.retire("a"); // GC #2
    EXPECT_EQ(live.value(), 0);
    EXPECT_EQ(pins.value(), 3u);
    EXPECT_EQ(gc.value(), 2u);
    EXPECT_EQ(store.outstanding_pins(), 0u);
}

TEST(MvccStore, PinOutlivesTheStore) {
    mvcc::SnapshotPin held;
    {
        mvcc::SnapshotStore store;
        store.publish("f", nullptr, make_index(3), 0).release();
        held = store.pin("f");
    }
    // the store is gone; the pinned snapshot's data must still be valid
    // and release must be safe (weak back-reference)
    ASSERT_TRUE(held);
    EXPECT_EQ(index_version(*held), 3u);
    held.release();
    EXPECT_FALSE(held);
}

TEST(MvccStore, EmptyAndMovedPinsAreInert) {
    mvcc::SnapshotStore store;
    store.publish("f", nullptr, make_index(1), 0).release();

    mvcc::SnapshotPin empty;
    EXPECT_FALSE(empty);
    empty.release(); // no-op

    auto a = store.pin("f");
    EXPECT_EQ(store.outstanding_pins(), 1u);
    auto b = std::move(a);
    EXPECT_FALSE(a); // NOLINT(bugprone-use-after-move): moved-from is empty
    EXPECT_TRUE(b);
    EXPECT_EQ(store.outstanding_pins(), 1u); // a move is not a new pin
    b.release();
    b.release(); // idempotent
    EXPECT_EQ(store.outstanding_pins(), 0u);
}

// --- the serve-lock-after-pin lint --------------------------------------------

TEST(MvccLint, ServeLockInsideAPinnedReadSectionRaises) {
    LintGuard guard(true);
    EXPECT_FALSE(mvcc::in_read_section());
    mvcc::note_serve_lock("outside"); // armed but not in a read section: fine
    {
        mvcc::ReadSection section;
        EXPECT_TRUE(mvcc::in_read_section());
        try {
            mvcc::note_serve_lock("serve/control");
            FAIL() << "expected CheckError";
        } catch (const l5check::CheckError& e) {
            EXPECT_EQ(e.kind(), "serve-lock-after-pin");
            EXPECT_NE(std::string(e.what()).find("serve/control"), std::string::npos);
        }
        {
            mvcc::ReadSection nested; // depth is counted, not a flag
            EXPECT_THROW(mvcc::note_serve_lock("x"), l5check::CheckError);
        }
        EXPECT_TRUE(mvcc::in_read_section());
    }
    EXPECT_FALSE(mvcc::in_read_section());
    mvcc::note_serve_lock("after"); // section closed: fine again
}

TEST(MvccLint, DisarmedLintIsSilentEvenInsideAReadSection) {
    LintGuard         guard(false);
    mvcc::ReadSection section;
    mvcc::note_serve_lock("anywhere"); // must not throw
}

// --- raw-thread races (TSan tree runs these under -R Mvcc) --------------------

TEST(MvccStoreTsan, ConcurrentPinsReadConsistentlyWhilePublishesRace) {
    mvcc::SnapshotStore store;
    store.publish("f", nullptr, make_index(1), 0).release();

    constexpr int     kReaders  = 4;
    constexpr int     kVersions = 300;
    std::atomic<bool> done{false};
    std::atomic<int>  torn{0};

    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r)
        readers.emplace_back([&] {
            std::uint64_t last = 0;
            while (!done.load(std::memory_order_acquire)) {
                auto p = store.pin("f");
                if (!p) continue;
                const auto v = index_version(*p);
                // internal consistency: a pinned snapshot can never mix
                // two publishes, and versions are monotone per reader
                if (v != p->version() || v < last) torn.fetch_add(1);
                last = v;
                // exercise the exact-version slow path racing GC too
                if (auto q = store.pin("f", v)) q.release();
                p.release();
            }
        });

    for (std::uint64_t v = 2; v <= kVersions; ++v)
        store.publish("f", nullptr, make_index(v), v).release();
    done.store(true, std::memory_order_release);
    for (auto& t : readers) t.join();

    EXPECT_EQ(torn.load(), 0);
    EXPECT_EQ(store.live_snapshots(), 1u); // every superseded version GC'd
    EXPECT_EQ(store.outstanding_pins(), 0u);
    EXPECT_EQ(store.pin("f")->version(), static_cast<std::uint64_t>(kVersions));
}

TEST(MvccStoreTsan, LastReaderUnpinRacesTheSupersedingPublish) {
    // the GC-while-last-reader-unpins edge: one reader holds the only
    // pin of the current version and drops it exactly while the writer
    // supersedes it — exactly one side must run the GC
    mvcc::SnapshotStore store;
    constexpr int       kRounds = 2000;
    std::atomic<bool>   done{false};

    std::thread reader([&] {
        while (!done.load(std::memory_order_acquire)) {
            auto p = store.pin("f");
            p.release();
        }
    });
    for (std::uint64_t v = 1; v <= kRounds; ++v)
        store.publish("f", nullptr, make_index(v), v).release();
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(store.live_snapshots(), 1u);
    EXPECT_EQ(store.outstanding_pins(), 0u);
}

TEST(MvccStoreTsan, RetireRacesPinnedReadersWithoutLeaking) {
    mvcc::SnapshotStore store;
    std::atomic<bool>   done{false};
    std::atomic<int>    torn{0};

    std::thread reader([&] {
        while (!done.load(std::memory_order_acquire)) {
            auto p = store.pin("s");
            if (!p) continue;
            if (index_version(*p) != p->version()) torn.fetch_add(1);
            p.release();
        }
    });
    // step-like lifecycle: publish once, retire (window eviction),
    // forget the counter, repeat — versions restart at 1 every round
    for (int round = 0; round < 1000; ++round) {
        store.publish("s", nullptr, make_index(1), 0).release();
        store.retire("s", /*forget_versions=*/true);
    }
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(torn.load(), 0);
    EXPECT_EQ(store.live_snapshots(), 0u);
    EXPECT_EQ(store.outstanding_pins(), 0u);
}

// --- end-to-end property workflows --------------------------------------------

namespace {

constexpr std::uint64_t kN      = 32;
constexpr std::uint64_t kStride = 1'000'003;

/// One rewrite round: every producer rank writes its slice of round r's
/// payload f(r, i) = r*kStride + i into the SAME file name.
void write_round(Context& ctx, const std::string& name, std::uint64_t r) {
    h5::File f = h5::File::create(name, ctx.vol);
    auto     d = f.create_dataset("v", h5::dt::uint64(), h5::Dataspace({kN}));
    const auto lo = kN * static_cast<std::uint64_t>(ctx.rank()) //
                    / static_cast<std::uint64_t>(ctx.size());
    const auto hi = kN * static_cast<std::uint64_t>(ctx.rank() + 1) //
                    / static_cast<std::uint64_t>(ctx.size());
    h5::Dataspace sel({kN});
    diy::Bounds   b(1);
    b.min[0] = static_cast<std::int64_t>(lo);
    b.max[0] = static_cast<std::int64_t>(hi);
    sel.select_box(b);
    std::vector<std::uint64_t> vals(hi - lo);
    for (std::uint64_t i = lo; i < hi; ++i) vals[i - lo] = r * kStride + i;
    d.write(vals.data(), sel);
    f.close();
}

/// One consumer round: open whatever version is current, read the whole
/// dataset, and prove the bytes all belong to ONE round — the oracle for
/// the version the open pinned. Returns that round.
std::uint64_t read_round(Context& ctx, const std::string& name) {
    h5::File   f    = h5::File::open(name, ctx.vol);
    const auto vals = f.open_dataset("v").read_vector<std::uint64_t>();
    EXPECT_EQ(vals.size(), kN);
    const std::uint64_t r = vals.empty() ? 0 : vals[0] / kStride;
    for (std::uint64_t i = 0; i < vals.size(); ++i)
        EXPECT_EQ(vals[i], r * kStride + i)
            << "torn read: byte " << i << " not from round " << r;
    f.close();
    return r;
}

void run_rewrite_property(int producers, int consumers, int rounds, Options opts) {
    opts.mode             = workflow::Mode::in_situ();
    opts.background_serve = true; // rewrites race in-flight reads

    std::atomic<std::uint64_t> gc_total{0};
    workflow::run(
        {
            {"producer", producers,
             [&](Context& ctx) {
                 for (int r = 1; r <= rounds; ++r)
                     write_round(ctx, "mvcc.h5", static_cast<std::uint64_t>(r));
                 ctx.vol->finish_serving();
                 // all rounds done: only the last version is still live
                 auto s = ctx.vol->stats();
                 EXPECT_EQ(s.n_snapshots_live, 1);
                 EXPECT_EQ(ctx.vol->snapshot_store().outstanding_pins(), 0u);
                 ctx.vol->drop_file("mvcc.h5");
                 s = ctx.vol->stats();
                 EXPECT_EQ(s.n_snapshots_live, 0); // back to baseline
                 EXPECT_EQ(s.n_snapshot_gc, static_cast<std::uint64_t>(rounds));
                 gc_total += s.n_snapshot_gc;
             }},
            {"consumer", consumers,
             [&](Context& ctx) {
                 std::uint64_t prev = 0;
                 for (int r = 1; r <= rounds; ++r) {
                     const auto got = read_round(ctx, "mvcc.h5");
                     // versions a rank observes are monotone: a round
                     // can re-read the version it already saw (consumer
                     // ahead of producer) but never an older one
                     EXPECT_GE(got, prev) << "round " << r;
                     EXPECT_GE(got, 1u);
                     EXPECT_LE(got, static_cast<std::uint64_t>(rounds));
                     prev = got;
                 }
             }},
        },
        {Link{0, 1, "*"}}, opts);
    // every producer rank published `rounds` versions and GC'd them all
    EXPECT_EQ(gc_total.load(), static_cast<std::uint64_t>(rounds * producers));
}

} // namespace

TEST(MvccProperty, ConcurrentRewritesNeverTearReads) {
    run_rewrite_property(/*producers=*/2, /*consumers=*/2, /*rounds=*/8, Options{});
}

TEST(MvccProperty, SeededSchedulesStayByteIdentical) {
    // the in-test slice of the seed sweep (ci runs 200 more through
    // mh5sched): adversarial interleavings of publish, serve, GC, and
    // reads must preserve the pinned-version oracle
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Options opts;
        opts.runtime.sched       = SchedConfig{};
        opts.runtime.sched->seed = seed;
        SCOPED_TRACE("seed " + std::to_string(seed));
        run_rewrite_property(/*producers=*/2, /*consumers=*/1, /*rounds=*/5, opts);
    }
}

TEST(MvccProperty, SnapshotsAndCachesStayBoundedOverLongStreams) {
    // satellite regression: 1000 steps through a window-4 stream must
    // keep the producer's live-snapshot set bounded by the window (plus
    // in-flight pins) and the consumer's producer-set cache bounded by
    // the steps it concurrently holds — and both return to baseline
    constexpr int kSteps  = 1000;
    constexpr int kWindow = 4;

    std::int64_t  live_max  = 0;
    std::size_t   cache_max = 0;
    std::uint64_t gc_end = 0, published_end = 0;
    workflow::run(
        {
            {"producer", 1,
             [&](Context& ctx) {
                 stream::Writer w(ctx.vol, "long.h5");
                 for (int t = 0; t < kSteps; ++t) {
                     h5::File& f = w.begin_step();
                     auto      d = f.create_dataset("v", h5::dt::uint64(),
                                                    h5::Dataspace({kN}));
                     h5::Dataspace sel({kN});
                     sel.select_all();
                     std::vector<std::uint64_t> vals(kN);
                     for (std::uint64_t i = 0; i < kN; ++i)
                         vals[i] = static_cast<std::uint64_t>(t) * kStride + i;
                     d.write(vals.data(), sel);
                     w.end_step();
                     live_max = std::max(live_max, ctx.vol->stats().n_snapshots_live);
                 }
                 w.close();
                 ctx.vol->finish_serving();
                 const auto s  = ctx.vol->stats();
                 gc_end        = s.n_snapshot_gc;
                 published_end = s.n_steps_published;
                 EXPECT_EQ(s.n_snapshots_live, 0) << "stream fully retired";
                 EXPECT_EQ(ctx.vol->snapshot_store().outstanding_pins(), 0u);
             }},
            {"consumer", 1,
             [&](Context& ctx) {
                 stream::Reader r(ctx.vol, "long.h5");
                 std::uint64_t  n = 0;
                 while (r.next_step()) {
                     const auto vals =
                         r.file().open_dataset("v").read_vector<std::uint64_t>();
                     const auto t = r.current_step().value();
                     ASSERT_EQ(vals.size(), kN);
                     for (std::uint64_t i = 0; i < kN; ++i)
                         ASSERT_EQ(vals[i], t * kStride + i) << "step " << t;
                     cache_max = std::max(cache_max, ctx.vol->producer_cache_sets());
                     ++n;
                 }
                 r.close();
                 EXPECT_EQ(n, static_cast<std::uint64_t>(kSteps));
                 EXPECT_EQ(ctx.vol->producer_cache_sets(), 0u) << "cache baseline";
             }},
        },
        {Link{0, 1, "*", "block", kWindow}});

    // bounded, not merely finite: window + the acquired step + slack for
    // in-flight pins — nowhere near O(steps)
    EXPECT_LE(live_max, kWindow + 4);
    EXPECT_GE(live_max, 2); // the window did overlap versions
    EXPECT_LE(cache_max, 8u);
    EXPECT_EQ(published_end, static_cast<std::uint64_t>(kSteps));
    EXPECT_EQ(gc_end, static_cast<std::uint64_t>(kSteps)); // every step GC'd
}
