#include <simmpi/simmpi.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using namespace simmpi;

TEST(SimMpi, WorldSizeAndRanks) {
    std::atomic<int> sum{0};
    Runtime::run(7, [&](Comm& c) {
        EXPECT_EQ(c.size(), 7);
        EXPECT_GE(c.rank(), 0);
        EXPECT_LT(c.rank(), 7);
        sum += c.rank();
    });
    EXPECT_EQ(sum.load(), 21);
}

TEST(SimMpi, RunRejectsBadWorldSize) {
    EXPECT_THROW(Runtime::run(0, [](Comm&) {}), Error);
    EXPECT_THROW(Runtime::run(-3, [](Comm&) {}), Error);
}

TEST(SimMpi, TaskExceptionPropagates) {
    EXPECT_THROW(Runtime::run(2, [](Comm& c) {
        c.barrier();
        if (c.rank() == 1) throw std::runtime_error("boom");
    }),
                 std::runtime_error);
}

TEST(SimMpi, PointToPointRoundtrip) {
    Runtime::run(2, [](Comm& c) {
        if (c.rank() == 0) {
            std::vector<int> data{1, 2, 3, 4};
            c.send_span<int>(1, 7, data);
            auto echoed = c.recv_vector<int>(1, 8);
            EXPECT_EQ(echoed, (std::vector<int>{4, 3, 2, 1}));
        } else {
            auto data = c.recv_vector<int>(0, 7);
            std::reverse(data.begin(), data.end());
            c.send_span<int>(0, 8, data);
        }
    });
}

TEST(SimMpi, MessagesDoNotOvertakePerSourceAndTag) {
    Runtime::run(2, [](Comm& c) {
        constexpr int n = 200;
        if (c.rank() == 0) {
            for (int i = 0; i < n; ++i) c.send_value(1, 5, i);
        } else {
            for (int i = 0; i < n; ++i) EXPECT_EQ(c.recv_value<int>(0, 5), i);
        }
    });
}

TEST(SimMpi, TagSelectsMessage) {
    Runtime::run(2, [](Comm& c) {
        if (c.rank() == 0) {
            c.send_value(1, 10, 100);
            c.send_value(1, 20, 200);
        } else {
            // receive in the opposite order of sending, by tag
            EXPECT_EQ(c.recv_value<int>(0, 20), 200);
            EXPECT_EQ(c.recv_value<int>(0, 10), 100);
        }
    });
}

TEST(SimMpi, AnySourceAnyTag) {
    Runtime::run(4, [](Comm& c) {
        if (c.rank() == 0) {
            // the total is a sum, so this any-source drain is
            // intentionally order-insensitive
            c.check_commutative(any_tag, "summed drain");
            int total = 0;
            for (int i = 1; i < 4; ++i) {
                Status st;
                total += c.recv_value<int>(any_source, any_tag, &st);
                EXPECT_GE(st.source, 1);
                EXPECT_EQ(st.tag, st.source);
            }
            EXPECT_EQ(total, 1 + 2 + 3);
        } else {
            c.send_value(0, c.rank(), c.rank());
        }
    });
}

TEST(SimMpi, ProbeReportsSizeWithoutConsuming) {
    Runtime::run(2, [](Comm& c) {
        if (c.rank() == 0) {
            std::vector<double> v(13, 3.5);
            c.send_span<double>(1, 3, v);
        } else {
            Status st = c.probe(0, 3);
            EXPECT_EQ(st.count, 13 * sizeof(double));
            auto v = c.recv_vector<double>(0, 3);
            EXPECT_EQ(v.size(), 13u);
        }
    });
}

TEST(SimMpi, IprobeNonblocking) {
    Runtime::run(2, [](Comm& c) {
        if (c.rank() == 0) {
            c.barrier();
            EXPECT_FALSE(c.iprobe(1, 99).has_value());
            c.send_value(1, 42, 1);
        } else {
            c.barrier();
            while (!c.iprobe(0, 42)) {}
            EXPECT_EQ(c.recv_value<int>(0, 42), 1);
        }
    });
}

TEST(SimMpi, IsendIrecvWait) {
    Runtime::run(2, [](Comm& c) {
        if (c.rank() == 0) {
            int  v   = 17;
            auto req = c.isend(1, 1, &v, sizeof(v));
            EXPECT_TRUE(req.done());
        } else {
            std::vector<std::byte> buf;
            auto                   req = c.irecv(0, 1, buf);
            Status                 st  = req.wait();
            EXPECT_EQ(st.count, sizeof(int));
            int v = 0;
            std::memcpy(&v, buf.data(), sizeof(v));
            EXPECT_EQ(v, 17);
        }
    });
}

TEST(SimMpi, BarrierSynchronizes) {
    std::atomic<int> phase{0};
    Runtime::run(8, [&](Comm& c) {
        phase.fetch_add(1);
        c.barrier();
        EXPECT_EQ(phase.load(), 8);
    });
}

TEST(SimMpi, BcastFromEveryRoot) {
    Runtime::run(5, [](Comm& c) {
        for (int root = 0; root < c.size(); ++root) {
            int v = c.rank() == root ? root * 11 : -1;
            v     = c.bcast_value(v, root);
            EXPECT_EQ(v, root * 11);
        }
    });
}

TEST(SimMpi, GatherCollectsAtRoot) {
    Runtime::run(6, [](Comm& c) {
        int  mine = c.rank() * c.rank();
        auto all  = c.gather(std::span<const std::byte>(
                                reinterpret_cast<const std::byte*>(&mine), sizeof(mine)),
                            2);
        if (c.rank() == 2) {
            ASSERT_EQ(all.size(), 6u);
            for (int r = 0; r < 6; ++r) {
                int v = 0;
                std::memcpy(&v, all[static_cast<std::size_t>(r)].data(), sizeof(v));
                EXPECT_EQ(v, r * r);
            }
        } else {
            for (int r = 0; r < 6; ++r)
                if (r != c.rank()) { EXPECT_TRUE(all.empty() || all[static_cast<std::size_t>(r)].empty()); }
        }
    });
}

TEST(SimMpi, AllgatherValue) {
    Runtime::run(5, [](Comm& c) {
        auto all = c.allgather_value(c.rank() + 100);
        ASSERT_EQ(all.size(), 5u);
        for (int r = 0; r < 5; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r + 100);
    });
}

TEST(SimMpi, AllreduceSumAndMax) {
    Runtime::run(6, [](Comm& c) {
        EXPECT_EQ(c.allreduce(c.rank()), 15);
        EXPECT_EQ(c.allreduce(c.rank(), [](int a, int b) { return std::max(a, b); }), 5);
    });
}

TEST(SimMpi, AlltoallPersonalized) {
    Runtime::run(4, [](Comm& c) {
        std::vector<std::vector<std::byte>> out(4);
        for (int r = 0; r < 4; ++r) {
            int v = c.rank() * 10 + r;
            out[static_cast<std::size_t>(r)].resize(sizeof(v));
            std::memcpy(out[static_cast<std::size_t>(r)].data(), &v, sizeof(v));
        }
        auto in = c.alltoall(std::move(out));
        ASSERT_EQ(in.size(), 4u);
        for (int r = 0; r < 4; ++r) {
            int v = 0;
            std::memcpy(&v, in[static_cast<std::size_t>(r)].data(), sizeof(v));
            EXPECT_EQ(v, r * 10 + c.rank());
        }
    });
}

TEST(SimMpi, SplitByParity) {
    Runtime::run(6, [](Comm& c) {
        Comm sub = c.split(c.rank() % 2);
        EXPECT_EQ(sub.size(), 3);
        EXPECT_EQ(sub.rank(), c.rank() / 2);
        // traffic in the subcommunicator is isolated from the parent
        int sum = sub.allreduce(c.rank());
        EXPECT_EQ(sum, c.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
    });
}

TEST(SimMpi, SplitKeyReordersRanks) {
    Runtime::run(4, [](Comm& c) {
        // key = -rank reverses the order
        Comm sub = c.split(0, -c.rank());
        EXPECT_EQ(sub.rank(), c.size() - 1 - c.rank());
    });
}

TEST(SimMpi, IntercommSendRecv) {
    Runtime::run(5, [](Comm& c) {
        std::vector<int> a{0, 1, 2}, b{3, 4};
        Comm             ic = Comm::create_intercomm(c, a, b);
        ASSERT_TRUE(ic.valid());
        EXPECT_TRUE(ic.is_inter());
        if (c.rank() <= 2) {
            EXPECT_EQ(ic.size(), 3);
            EXPECT_EQ(ic.peer_size(), 2);
            // each producer sends its rank to every consumer
            for (int d = 0; d < 2; ++d) ic.send_value(d, 1, ic.rank());
        } else {
            EXPECT_EQ(ic.size(), 2);
            EXPECT_EQ(ic.peer_size(), 3);
            int sum = 0;
            for (int s = 0; s < 3; ++s) sum += ic.recv_value<int>(s, 1);
            EXPECT_EQ(sum, 0 + 1 + 2);
        }
    });
}

TEST(SimMpi, IntercommNonMembersGetInvalidComm) {
    Runtime::run(4, [](Comm& c) {
        std::vector<int> a{0}, b{1};
        Comm             ic = Comm::create_intercomm(c, a, b);
        if (c.rank() >= 2)
            EXPECT_FALSE(ic.valid());
        else
            EXPECT_TRUE(ic.valid());
    });
}

TEST(SimMpi, IntercommOverlapRejected) {
    EXPECT_THROW(Runtime::run(2, [](Comm& c) {
        std::vector<int> a{0, 1}, b{1};
        (void)Comm::create_intercomm(c, a, b);
    }),
                 Error);
}

TEST(SimMpi, CollectivesOnIntercommRejected) {
    EXPECT_THROW(Runtime::run(2, [](Comm& c) {
        std::vector<int> a{0}, b{1};
        Comm             ic = Comm::create_intercomm(c, a, b);
        ic.barrier();
    }),
                 Error);
}

TEST(SimMpi, LargePayloadIntegrity) {
    Runtime::run(2, [](Comm& c) {
        constexpr std::size_t n = 1 << 20;
        if (c.rank() == 0) {
            std::vector<std::uint64_t> v(n);
            std::iota(v.begin(), v.end(), 0);
            c.send_span<std::uint64_t>(1, 2, v);
        } else {
            auto v = c.recv_vector<std::uint64_t>(0, 2);
            ASSERT_EQ(v.size(), n);
            EXPECT_EQ(v.front(), 0u);
            EXPECT_EQ(v[n / 2], n / 2);
            EXPECT_EQ(v.back(), n - 1);
        }
    });
}

TEST(SimMpi, ManyRanksStress) {
    // ring pass around 64 ranks
    Runtime::run(64, [](Comm& c) {
        int next = (c.rank() + 1) % c.size();
        int prev = (c.rank() + c.size() - 1) % c.size();
        if (c.rank() == 0) {
            c.send_value(next, 1, 1);
            EXPECT_EQ(c.recv_value<int>(prev, 1), c.size());
        } else {
            int v = c.recv_value<int>(prev, 1);
            c.send_value(next, 1, v + 1);
        }
    });
}

TEST(SimMpi, UserTagsMustBeNonNegative) {
    // every rank throws on its own send, so no rank is left blocked
    EXPECT_THROW(Runtime::run(2, [](Comm& c) { c.send_value((c.rank() + 1) % 2, -5, 0); }), Error);
}
